package repro

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/lagrange"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/poly"
	"repro/internal/reedsolomon"
	"repro/internal/traffic"
)

// benchOptions shrinks each figure run so a single benchmark iteration
// stays in the sub-second range; shapes are validated at full scale by
// cmd/lcofl (see EXPERIMENTS.md).
func benchOptions() experiments.Options {
	return experiments.Options{Vehicles: 32, Rounds: 3, Rows: 800, Seed: 7}
}

// benchFigure runs one figure driver per iteration.
func benchFigure(b *testing.B, name string) {
	b.Helper()
	benchFigureOpts(b, name, benchOptions())
}

// benchFigureOpts runs one figure driver per iteration with explicit
// options — the workers-sweep benchmarks pin Options.Workers through it.
func benchFigureOpts(b *testing.B, name string, o experiments.Options) {
	b.Helper()
	driver, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(7 + i) // vary the seed, keep the workload
		if _, err := driver(o); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per figure of the paper's evaluation (Figs. 2–9).

func BenchmarkFig2Convergence(b *testing.B) { benchFigure(b, "fig2") }
func BenchmarkFig3Vehicles(b *testing.B)    { benchFigure(b, "fig3") }
func BenchmarkFig4Trace(b *testing.B)       { benchFigure(b, "fig4") }
func BenchmarkFig5Malicious(b *testing.B)   { benchFigure(b, "fig5") }
func BenchmarkFig6AbsError(b *testing.B)    { benchFigure(b, "fig6") }
func BenchmarkFig7PDF(b *testing.B)         { benchFigure(b, "fig7") }
func BenchmarkFig8ErrPDF(b *testing.B)      { benchFigure(b, "fig8") }
func BenchmarkFig9Cost(b *testing.B)        { benchFigure(b, "fig9") }

// BenchmarkFig3VehiclesWorkers is the speedup baseline scripts/bench.sh
// reads: the same Fig. 3 workload at pinned worker counts. workers=1 runs
// the inline sequential paths (no pool overhead), so comparing it against
// workers=4 isolates the parallel execution engine's gain.
func BenchmarkFig3VehiclesWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(sizeName("workers", workers), func(b *testing.B) {
			o := benchOptions()
			o.Workers = workers
			benchFigureOpts(b, "fig3", o)
		})
	}
}

// BenchmarkEncodeVectorsWorkers sweeps the coder's worker pool on the
// paper-scale vector encode (M=16 batches × 64 features → V=100
// vehicles) — the library-level half of the speedup report.
func BenchmarkEncodeVectorsWorkers(b *testing.B) {
	const m, v, features = 16, 100, 64
	for _, workers := range []int{1, 2, 4} {
		b.Run(sizeName("workers", workers), func(b *testing.B) {
			rng := rand.New(rand.NewSource(10))
			nodes := field.RandDistinct(rng, m, nil)
			points := field.RandDistinct(rng, v, nodes)
			coder, err := lagrange.NewCoder(nodes, points)
			if err != nil {
				b.Fatal(err)
			}
			coder.SetParallelism(workers)
			batches := make([][]field.Element, m)
			for i := range batches {
				batches[i] = make([]field.Element, features)
				for j := range batches[i] {
					batches[i][j] = field.Rand(rng)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coder.EncodeVectors(batches); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeBWWorkers races the Berlekamp–Welch error-budget scan at
// paper scale (V=100, K=46, 27 planted errors) across worker counts.
func BenchmarkDecodeBWWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	k := 46
	coeffs := make([]field.Element, k)
	for i := range coeffs {
		coeffs[i] = field.Rand(rng)
	}
	f := poly.New(coeffs...)
	xs := field.RandDistinct(rng, 100, nil)
	ys := f.EvalMany(xs)
	for _, p := range rng.Perm(100)[:27] {
		ys[p] = field.Rand(rng)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(sizeName("workers", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := reedsolomon.DecodeBWParallel(xs, ys, k, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Proposition 1 scaling: encoding is O(M²) per vehicle, decoding is
// O((K+2E)³) at the fusion centre. The sub-benchmarks sweep one axis at a
// time so the scaling exponents are visible in the ns/op column. ---

func BenchmarkEncodeScalingM(b *testing.B) {
	for _, m := range []int{8, 16, 32, 64} {
		b.Run(sizeName("M", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			nodes := field.RandDistinct(rng, m, nil)
			points := field.RandDistinct(rng, 100, nodes)
			coder, err := lagrange.NewCoder(nodes, points)
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]field.Element, m)
			for i := range batch {
				batch[i] = field.Rand(rng)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coder.EncodeScalars(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeScalingV(b *testing.B) {
	for _, v := range []int{32, 64, 100, 200} {
		b.Run(sizeName("V", v), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			k := v / 3
			coeffs := make([]field.Element, k)
			for i := range coeffs {
				coeffs[i] = field.Rand(rng)
			}
			f := poly.New(coeffs...)
			xs := field.RandDistinct(rng, v, nil)
			ys := f.EvalMany(xs)
			e := reedsolomon.MaxErrors(v, k)
			for _, p := range rng.Perm(v)[:e] {
				ys[p] = field.Rand(rng)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reedsolomon.Decode(xs, ys, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations called out in DESIGN.md §5. ---

// BenchmarkAblationApproxMethods compares the three approximation methods
// at equal degree; the reported supErr metric is the paper's Theorem 1 σ.
func BenchmarkAblationApproxMethods(b *testing.B) {
	act := approx.SymmetricSigmoid()
	methods := []approx.Method{
		approx.LeastSquares{SamplePoints: 21},
		approx.Chebyshev{},
		approx.Taylor{},
		approx.Remez{},
	}
	for _, m := range methods {
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var rep approx.Report
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = approx.Evaluate(m, act.F, -2, 2, 3)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.MaxError, "supErr")
		})
	}
}

// BenchmarkAblationExactVsRealDecode contrasts the exact GF(p) decoder
// with the robust real-valued decoder on the same corruption pattern —
// the DESIGN.md §1 trade-off between quantised-exact and analog decoding.
func BenchmarkAblationExactVsRealDecode(b *testing.B) {
	const v, k, e = 100, 16, 30
	b.Run("exact-field", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		coeffs := make([]field.Element, k)
		for i := range coeffs {
			coeffs[i] = field.Rand(rng)
		}
		f := poly.New(coeffs...)
		xs := field.RandDistinct(rng, v, nil)
		ys := f.EvalMany(xs)
		for _, p := range rng.Perm(v)[:e] {
			ys[p] = field.Rand(rng)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reedsolomon.Decode(xs, ys, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("real-robust", func(b *testing.B) {
		rng := rand.New(rand.NewSource(4))
		nodes := lagrange.ChebyshevNodes(k, -1, 1)
		points := lagrange.ChebyshevNodes(v, -0.99991, 0.99991)
		vals := make([]float64, k)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		h, err := poly.InterpolateReal(nodes, vals)
		if err != nil {
			b.Fatal(err)
		}
		ys := make([]float64, v)
		for i, p := range points {
			ys[i] = h.Eval(p)
		}
		for _, p := range rng.Perm(v)[:e] {
			ys[p] = 5 + 10*rng.Float64()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reedsolomon.DecodeRealRobust(points, ys, k, reedsolomon.RealOptions{InlierThreshold: 0.25}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationElementSelection quantifies the eq. 9 selection rule:
// Chebyshev-distributed encoding elements keep the redundancy bound D (and
// therefore the encoded-data range) near the Lebesgue constant, while
// equispaced nodes blow it up exponentially in M.
func BenchmarkAblationElementSelection(b *testing.B) {
	const m, v = 16, 100
	cases := []struct {
		name  string
		nodes []float64
	}{
		{"chebyshev", lagrange.ChebyshevNodes(m, -1, 1)},
		{"equispaced", lagrange.EquispacedNodes(m, -1, 1)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			points := lagrange.InteriorPoints(v, -0.999, 0.999, tc.nodes)
			var d float64
			for i := 0; i < b.N; i++ {
				coder, err := lagrange.NewRealCoder(tc.nodes, points)
				if err != nil {
					b.Fatal(err)
				}
				d = coder.Redundancy()
			}
			b.ReportMetric(d, "redundancyD")
		})
	}
}

// BenchmarkAggregateBatch measures the fusion centre's verification
// decode for one Aggregate call at growing slot counts, batch
// (shared-locator fast path, DESIGN.md §9) against per-slot decoding.
// The adversary count sits at the full eq. 6 budget, the regime where
// per-slot decoding is slowest; the batch advantage grows with S.
func BenchmarkAggregateBatch(b *testing.B) {
	const v, m, degree = 40, 8, 2
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, degree)
	if err != nil {
		b.Fatal(err)
	}
	net, err := nn.New(nn.Config{
		LayerSizes: []int{traffic.NumFeatures, 1},
		Activation: approx.FromPolynomial("ls", p),
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, slots := range []int{8, 32} {
		ds, err := traffic.Generate(traffic.GenConfig{Rows: m * slots, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		ref := ds.Features()
		for _, mode := range []string{"perslot", "batch"} {
			b.Run(sizeName("slots", slots)+"/mode="+mode, func(b *testing.B) {
				s, err := core.NewScheme(ref, core.SchemeConfig{
					NumVehicles: v, NumBatches: m, Degree: degree,
					Seed: 3, Workers: 1, DisableBatchDecode: mode == "perslot",
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.BeginRound(net); err != nil {
					b.Fatal(err)
				}
				ups := make([][]float64, v)
				for i := range ups {
					if ups[i], err = s.Upload(i, net); err != nil {
						b.Fatal(err)
					}
				}
				rng := rand.New(rand.NewSource(9))
				for _, id := range rng.Perm(v)[:s.MaxMalicious()] {
					for j := range ups[id] {
						ups[id][j] = ups[id][j]*2 + 7
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Aggregate(ups); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAggregateObs measures the observability layer's overhead on
// the fusion centre's hot path: the BenchmarkAggregateBatch workload
// with obs detached (mode=off), with counters and histograms only
// (mode=metrics), with the JSONL tracer also attached, writing to
// io.Discard (mode=trace), and with trace-context propagation on top —
// a round span parent installed via SetSpanParent so every
// core.aggregate span carries trace/span/parent fields (mode=propagate).
// scripts/bench.sh gates mode=off against the checked-in baseline so
// instrumentation cost can never creep into the disabled path.
func BenchmarkAggregateObs(b *testing.B) {
	const v, m, degree, slots = 40, 8, 2, 32
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, degree)
	if err != nil {
		b.Fatal(err)
	}
	net, err := nn.New(nn.Config{
		LayerSizes: []int{traffic.NumFeatures, 1},
		Activation: approx.FromPolynomial("ls", p),
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := traffic.Generate(traffic.GenConfig{Rows: m * slots, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	ref := ds.Features()
	for _, mode := range []string{"off", "metrics", "trace", "propagate"} {
		b.Run("mode="+mode, func(b *testing.B) {
			var o *obs.Obs
			switch mode {
			case "metrics":
				o = obs.New(obs.NewRegistry(), nil, obs.NewRealClock())
			case "trace", "propagate":
				clk := obs.NewRealClock()
				o = obs.New(obs.NewRegistry(), obs.NewTracer(io.Discard, clk), clk)
			}
			s, err := core.NewScheme(ref, core.SchemeConfig{
				NumVehicles: v, NumBatches: m, Degree: degree,
				Seed: 3, Workers: 1, Obs: o,
			})
			if err != nil {
				b.Fatal(err)
			}
			if mode == "propagate" {
				trace := obs.TraceIDFromSeed(3)
				s.SetSpanParent(obs.SpanContext{Trace: trace, Span: obs.DeriveSpan(trace, "node.round", 0)})
			}
			if err := s.BeginRound(net); err != nil {
				b.Fatal(err)
			}
			ups := make([][]float64, v)
			for i := range ups {
				if ups[i], err = s.Upload(i, net); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(9))
			for _, id := range rng.Perm(v)[:s.MaxMalicious()] {
				for j := range ups[id] {
					ups[id][j] = ups[id][j]*2 + 7
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Aggregate(ups); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodedInferenceRound measures one full exact coded-inference
// round at paper scale (V=100, M=16, degree 3): encode + 100 vehicle
// evaluations + decode.
func BenchmarkCodedInferenceRound(b *testing.B) {
	inf, err := core.NewInference(core.InferenceConfig{
		NumVehicles: 100, NumBatches: 16, FracBits: 7, Seed: 5,
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	w := make([]float64, 16)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	batches := make([][]float64, 16)
	for i := range batches {
		batches[i] = make([]float64, 16)
		for j := range batches[i] {
			batches[i][j] = rng.Float64()*2 - 1
		}
	}
	corrupt := map[int]field.Element{}
	for _, id := range rng.Perm(100)[:27] {
		corrupt[id] = field.Rand(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inf.Run(w, 0.1, p, batches, corrupt); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(axis string, n int) string {
	return axis + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationFracBits sweeps the fixed-point resolution of the
// verification channel: more fractional bits shrink the gap between the
// quantised estimation and the float64 computation (reported as
// quantErr), bounded above by the field-headroom rule of fixedpoint.
func BenchmarkAblationFracBits(b *testing.B) {
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	w := make([]float64, 16)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	var z float64
	for i := range w {
		z += w[i] * x[i]
	}
	want := p.Eval(z + 0.1)
	for _, frac := range []uint{4, 8, 12, 16} {
		b.Run(sizeName("frac", int(frac)), func(b *testing.B) {
			b.ReportAllocs()
			inf, err := core.NewInference(core.InferenceConfig{
				NumVehicles: 20, NumBatches: 4, FracBits: frac, Seed: 9,
			}, 1)
			if err != nil {
				b.Fatal(err)
			}
			var got float64
			for i := 0; i < b.N; i++ {
				got, err = inf.PlaintextModel(w, 0.1, p, x)
				if err != nil {
					b.Fatal(err)
				}
			}
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			b.ReportMetric(diff, "quantErr")
		})
	}
}
