package repro

import (
	"math/rand"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestAggregateAllocs pins the fusion centre's steady-state allocation
// budget on the BenchmarkAggregateBatch workload (V=40, M=8, degree 2,
// S=32 slots, adversaries at the full eq. 6 budget). The ISSUE 7
// acceptance bar is a >= 10x cut from the 1209 allocs/op baseline
// (<= 120); after the scratch-reuse pass the measured steady state is
// ~35 (uploads gather, batch decode slabs, per-round DetectedMalicious
// and targets). The bound leaves headroom for a GC clearing the decoder
// scratch pools mid-measurement.
func TestAggregateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const v, m, degree, slots = 40, 8, 2, 32
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, degree)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.New(nn.Config{
		LayerSizes: []int{traffic.NumFeatures, 1},
		Activation: approx.FromPolynomial("ls", p),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := traffic.Generate(traffic.GenConfig{Rows: m * slots, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewScheme(ds.Features(), core.SchemeConfig{
		NumVehicles: v, NumBatches: m, Degree: degree,
		Seed: 3, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginRound(net); err != nil {
		t.Fatal(err)
	}
	ups := make([][]float64, v)
	for i := range ups {
		if ups[i], err = s.Upload(i, net); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	malicious := rng.Perm(v)[:s.MaxMalicious()]
	for _, id := range malicious {
		for j := range ups[id] {
			ups[id][j] = ups[id][j]*2 + 7
		}
	}
	for i := 0; i < 3; i++ { // warm the aggregate and decoder scratch
		if _, err := s.Aggregate(ups); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(30, func() {
		if _, err := s.Aggregate(ups); err != nil {
			t.Fatal(err)
		}
	})
	if got := len(s.SuspectedMalicious()); got != len(malicious) {
		t.Fatalf("flagged %d vehicles, want %d", got, len(malicious))
	}
	if avg > 120 {
		t.Errorf("Aggregate allocates %.1f times per call, want <= 120", avg)
	}

	// Trace-context propagation must be free when tracing is off: with no
	// obs attached, a scheme carrying a span parent (the node engine sets
	// one every round regardless) must allocate exactly what the plain
	// scheme allocates — the parent is two stored uint64s, and the span
	// emission path behind them is never reached.
	trace := obs.TraceIDFromSeed(3)
	s.SetSpanParent(obs.SpanContext{Trace: trace, Span: obs.DeriveSpan(trace, "node.round", 0)})
	withParent := testing.AllocsPerRun(30, func() {
		if _, err := s.Aggregate(ups); err != nil {
			t.Fatal(err)
		}
	})
	if withParent != avg {
		t.Errorf("SetSpanParent changed the untraced alloc count: %.1f with parent, %.1f without", withParent, avg)
	}
}
