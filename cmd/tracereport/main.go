// Command tracereport summarises a JSONL event trace written by
// `lcofl -trace` (see DESIGN.md §10): rounds, decode outcomes, stage
// latency percentiles, per-peer transport traffic and per-vehicle
// training time.
//
// Usage:
//
//	tracereport [-json] [-check-metrics metrics.json] [trace.jsonl]
//	tracereport -merge fusion.jsonl [vehicle.jsonl ...]
//
// With no file argument the trace is read from stdin. -json replaces
// the text tables with a machine-readable summary. -check-metrics
// cross-checks the trace-derived counts against the counter snapshot
// written by `lcofl -metrics` — both exact event counts against the
// registry counters and exact stage-span duration sums against the
// histogram sums — and fails when the two ledgers disagree; CI runs
// this so the tracer and the registry can never drift apart silently.
// -merge combines the fusion centre's trace with per-vehicle traces
// from a distributed run into one causally ordered per-round timeline
// on the fusion clock (see merge.go).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracereport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tracereport", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the summary as JSON instead of text tables")
	checkMetrics := fs.String("check-metrics", "", "cross-check against this `lcofl -metrics` snapshot and fail on disagreement")
	merge := fs.Bool("merge", false, "merge a fusion trace (first file) with per-vehicle traces into one fleet timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *merge {
		if *asJSON || *checkMetrics != "" {
			return fmt.Errorf("-merge cannot be combined with -json or -check-metrics")
		}
		return runMerge(fs.Args(), w)
	}
	var r io.Reader = os.Stdin
	name := "stdin"
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one trace file, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r, name = f, fs.Arg(0)
	}
	sum, err := summarize(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if *checkMetrics != "" {
		if err := crossCheck(sum, *checkMetrics); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	return writeText(w, sum)
}

// decodeSummary aggregates the verification-channel events. Every field
// mirrors a registry counter (crossCheck pins the pairing).
type decodeSummary struct {
	SlotFailures   int64 `json:"slot_failures"`
	BWAttempts     int64 `json:"bw_attempts"`
	BWWins         int64 `json:"bw_wins"`
	BatchGroups    int64 `json:"batch_groups"`
	BatchWords     int64 `json:"batch_words"`
	BatchRecovered int64 `json:"batch_recovered"`
	BatchFallbacks int64 `json:"batch_fallbacks"`
}

// stageStats holds exact (nearest-rank over every sample) latency
// percentiles for one event kind.
type stageStats struct {
	Count int   `json:"count"`
	P50   int64 `json:"p50_ns"`
	P95   int64 `json:"p95_ns"`
	P99   int64 `json:"p99_ns"`
	Max   int64 `json:"max_ns"`
}

type peerStats struct {
	SentMsgs  int64 `json:"sent_msgs"`
	SentBytes int64 `json:"sent_bytes"`
	RecvMsgs  int64 `json:"recv_msgs"`
	RecvBytes int64 `json:"recv_bytes"`
}

type vehicleStats struct {
	Rounds  int   `json:"rounds"`
	TrainNs int64 `json:"train_ns"`
}

// recoverySummary aggregates the fault-recovery events the node layer
// emits under chaos (DESIGN.md §11). Every field mirrors a registry
// counter (crossCheck pins the pairing).
type recoverySummary struct {
	CorruptFrames       int64 `json:"corrupt_frames"`
	Retransmits         int64 `json:"retransmits"`
	Rejoins             int64 `json:"rejoins"`
	Reconnects          int64 `json:"reconnects"`
	DegradedRounds      int64 `json:"degraded_rounds"`
	ClientCorruptFrames int64 `json:"client_corrupt_frames"`
}

// fleetSummary aggregates the multi-session admission-plane events the
// fleet front door emits (DESIGN.md §16). Every field mirrors a
// registry counter (crossCheck pins the pairing).
type fleetSummary struct {
	Admitted        int64 `json:"admitted"`
	Rejected        int64 `json:"rejected"`
	Queued          int64 `json:"queued"`
	SessionsStarted int64 `json:"sessions_started"`
	SessionsDone    int64 `json:"sessions_done"`
	HandshakeFails  int64 `json:"handshake_fails"`
}

// relaySummary aggregates the edge-relay aggregation-tree events.
// GatheredUploads sums each relay.gather event's uploads field, matching
// the relay.gathered_uploads counter's batched Add.
type relaySummary struct {
	Gathers          int64 `json:"gathers"`
	GatheredUploads  int64 `json:"gathered_uploads"`
	DialErrors       int64 `json:"dial_errors"`
	CorruptForwarded int64 `json:"corrupt_forwarded"`
}

// sessionStats is one session's slice of the admission ledger, keyed by
// the session field the fleet stamps on its events.
type sessionStats struct {
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
	// Rejoins counts the admits that re-attached a vehicle to a running
	// session (the rejoin flag on fleet.admit).
	Rejoins int64 `json:"rejoins"`
	// Rounds is the completed-round count from fleet.session_done (0
	// until the session finishes, or when it failed).
	Rounds int64 `json:"rounds"`
}

// chaosSummary counts the faults the internal/chaos injector reported
// having fired — the "what was done to the run" side of the ledger that
// recoverySummary answers.
type chaosSummary struct {
	Drops    int64 `json:"drops"`
	Corrupts int64 `json:"corrupts"`
	Delays   int64 `json:"delays"`
	Crashes  int64 `json:"crashes"`
}

type summary struct {
	Events     int   `json:"events"`
	Runs       int   `json:"runs"`
	FLRounds   int   `json:"fl_rounds"`
	NodeRounds int   `json:"node_rounds"`
	RecvErrors int64 `json:"recv_errors"`
	Stragglers int64 `json:"stragglers"`
	// PipelineRounds counts node.pipeline events (one per round on the
	// pipelined engine); EarlyCloses are the budget-closed subset, and
	// PipelineOverlapRatio is Σ overlap_ns over Σ node.round dur_ns — the
	// fraction of total round time spent ingesting uploads concurrently
	// with the rest of the round.
	PipelineRounds       int             `json:"pipeline_rounds"`
	EarlyCloses          int64           `json:"early_closes"`
	PipelineOverlapRatio float64         `json:"pipeline_overlap_ratio"`
	Decode               decodeSummary   `json:"decode"`
	Recovery             recoverySummary `json:"recovery"`
	Chaos                chaosSummary    `json:"chaos"`
	Fleet                fleetSummary    `json:"fleet"`
	Relay                relaySummary    `json:"relay"`
	// Sessions breaks the fleet admission ledger down per session ID.
	Sessions map[string]*sessionStats `json:"sessions,omitempty"`
	// SpanSums holds the exact total duration per span event — the raw
	// Σ dur_ns, unkeyed by round — paired by crossCheck against the
	// matching histogram's sum field.
	SpanSums map[string]int64         `json:"span_sum_ns,omitempty"`
	Stages   map[string]*stageStats   `json:"stages"`
	Peers    map[string]*peerStats    `json:"peers"`
	Vehicles map[string]*vehicleStats `json:"vehicles"`
}

// num reads a numeric field; JSON numbers decode as float64.
func num(rec map[string]any, key string) (int64, bool) {
	f, ok := rec[key].(float64)
	return int64(f), ok
}

func str(rec map[string]any, key string) string {
	s, _ := rec[key].(string)
	return s
}

func summarize(r io.Reader) (*summary, error) {
	sum := &summary{
		SpanSums: map[string]int64{},
		Stages:   map[string]*stageStats{},
		Peers:    map[string]*peerStats{},
		Vehicles: map[string]*vehicleStats{},
		Sessions: map[string]*sessionStats{},
	}
	durs := map[string][]int64{}
	// Spans that carry a round ID are keyed by it and summed per round, so
	// a stage whose work for one round is split across several spans — or
	// interleaved with the next round's by the pipelined engine — yields
	// one latency sample per ROUND, not one per span in arrival order.
	roundDurs := map[string]map[int64]int64{}
	var overlapNs, nodeRoundNs int64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		ev := str(rec, "ev")
		if ev == "" {
			return nil, fmt.Errorf("line %d: event has no \"ev\" field", lineNo)
		}
		if _, ok := rec["t_ns"].(float64); !ok {
			return nil, fmt.Errorf("line %d: event %q has no numeric \"t_ns\"", lineNo, ev)
		}
		sum.Events++
		if d, ok := num(rec, "dur_ns"); ok {
			sum.SpanSums[ev] += d
			if round, ok := num(rec, "round"); ok {
				m := roundDurs[ev]
				if m == nil {
					m = map[int64]int64{}
					roundDurs[ev] = m
				}
				m[round] += d
			} else {
				durs[ev] = append(durs[ev], d)
			}
		}
		switch ev {
		case "experiments.run_start":
			sum.Runs++
		case "fl.round":
			sum.FLRounds++
		case "node.round":
			sum.NodeRounds++
			if d, ok := num(rec, "dur_ns"); ok {
				nodeRoundNs += d
			}
		case "node.pipeline":
			sum.PipelineRounds++
			o, _ := num(rec, "overlap_ns")
			overlapNs += o
			if str(rec, "closed_by") == "budget" {
				sum.EarlyCloses++
			}
		case "node.recv_error":
			sum.RecvErrors++
		case "node.straggler":
			sum.Stragglers++
		case "node.corrupt_frame":
			sum.Recovery.CorruptFrames++
		case "node.retransmit":
			sum.Recovery.Retransmits++
		case "node.rejoin":
			sum.Recovery.Rejoins++
		case "node.reconnect":
			sum.Recovery.Reconnects++
		case "node.degraded":
			sum.Recovery.DegradedRounds++
		case "node.client_corrupt_frame":
			sum.Recovery.ClientCorruptFrames++
		case "fleet.admit":
			sum.Fleet.Admitted++
			ss := sum.session(str(rec, "session"))
			ss.Admitted++
			if rj, _ := rec["rejoin"].(bool); rj {
				ss.Rejoins++
			}
		case "fleet.reject":
			sum.Fleet.Rejected++
			sum.session(str(rec, "session")).Rejected++
		case "fleet.queue":
			sum.Fleet.Queued++
			sum.session(str(rec, "session")).Queued++
		case "fleet.session_start":
			sum.Fleet.SessionsStarted++
		case "fleet.session_done":
			sum.Fleet.SessionsDone++
			if r, ok := num(rec, "rounds"); ok {
				sum.session(str(rec, "session")).Rounds = r
			}
		case "fleet.handshake_fail":
			sum.Fleet.HandshakeFails++
		case "relay.gather":
			sum.Relay.Gathers++
			u, _ := num(rec, "uploads")
			sum.Relay.GatheredUploads += u
		case "relay.dial_error":
			sum.Relay.DialErrors++
		case "relay.corrupt_forward":
			sum.Relay.CorruptForwarded++
		case "chaos.drop":
			sum.Chaos.Drops++
		case "chaos.corrupt":
			sum.Chaos.Corrupts++
		case "chaos.delay":
			sum.Chaos.Delays++
		case "chaos.crash":
			sum.Chaos.Crashes++
		case "core.slot_fail":
			sum.Decode.SlotFailures++
		case "rs.bw_attempt":
			sum.Decode.BWAttempts++
			if ok, _ := rec["ok"].(bool); ok {
				sum.Decode.BWWins++
			}
		case "rs.batch":
			sum.Decode.BatchGroups++
			w, _ := num(rec, "words")
			rec2, _ := num(rec, "recovered")
			fb, _ := num(rec, "fallbacks")
			sum.Decode.BatchWords += w
			sum.Decode.BatchRecovered += rec2
			sum.Decode.BatchFallbacks += fb
		case "transport.send":
			p := sum.peer(str(rec, "peer"))
			b, _ := num(rec, "bytes")
			p.SentMsgs++
			p.SentBytes += b
		case "transport.recv":
			p := sum.peer(str(rec, "peer"))
			b, _ := num(rec, "bytes")
			p.RecvMsgs++
			p.RecvBytes += b
		case "fl.vehicle":
			id, _ := num(rec, "vehicle")
			v := sum.vehicle(strconv.FormatInt(id, 10))
			t, _ := num(rec, "train_ns")
			v.Rounds++
			v.TrainNs += t
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
	}
	for ev, byRound := range roundDurs {
		for _, d := range byRound {
			durs[ev] = append(durs[ev], d)
		}
	}
	for ev, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		sum.Stages[ev] = &stageStats{
			Count: len(ds),
			P50:   percentile(ds, 0.50),
			P95:   percentile(ds, 0.95),
			P99:   percentile(ds, 0.99),
			Max:   ds[len(ds)-1],
		}
	}
	if nodeRoundNs > 0 {
		sum.PipelineOverlapRatio = float64(overlapNs) / float64(nodeRoundNs)
	}
	return sum, nil
}

func (s *summary) peer(name string) *peerStats {
	p := s.Peers[name]
	if p == nil {
		p = &peerStats{}
		s.Peers[name] = p
	}
	return p
}

func (s *summary) session(id string) *sessionStats {
	ss := s.Sessions[id]
	if ss == nil {
		ss = &sessionStats{}
		s.Sessions[id] = ss
	}
	return ss
}

func (s *summary) vehicle(id string) *vehicleStats {
	v := s.Vehicles[id]
	if v == nil {
		v = &vehicleStats{}
		s.Vehicles[id] = v
	}
	return v
}

// percentile is the exact nearest-rank percentile of a sorted sample.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// crossCheck pins the trace-derived counts to the registry snapshot:
// both observe the same execution through independent code paths, so any
// disagreement is an instrumentation bug.
func crossCheck(sum *summary, metricsPath string) error {
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		return err
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
			Sum   int64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", metricsPath, err)
	}
	checks := []struct {
		counter string
		trace   int64
	}{
		{"fl.rounds", int64(sum.FLRounds)},
		{"node.rounds", int64(sum.NodeRounds)},
		{"node.recv_errors", sum.RecvErrors},
		{"node.stragglers", sum.Stragglers},
		{"core.decode_failures", sum.Decode.SlotFailures},
		{"rs.bw.attempts", sum.Decode.BWAttempts},
		{"rs.bw.wins", sum.Decode.BWWins},
		{"rs.batch.words", sum.Decode.BatchWords},
		{"rs.batch.recovered", sum.Decode.BatchRecovered},
		{"rs.batch.fallbacks", sum.Decode.BatchFallbacks},
		{"node.corrupt_frames", sum.Recovery.CorruptFrames},
		{"node.retransmits", sum.Recovery.Retransmits},
		{"node.rejoins", sum.Recovery.Rejoins},
		{"node.reconnects", sum.Recovery.Reconnects},
		{"node.degraded_rounds", sum.Recovery.DegradedRounds},
		{"node.client_corrupt_frames", sum.Recovery.ClientCorruptFrames},
		{"node.early_closes", sum.EarlyCloses},
		{"chaos.drops", sum.Chaos.Drops},
		{"chaos.corrupts", sum.Chaos.Corrupts},
		{"chaos.delays", sum.Chaos.Delays},
		{"chaos.crashes", sum.Chaos.Crashes},
		{"fleet.admitted", sum.Fleet.Admitted},
		{"fleet.rejected", sum.Fleet.Rejected},
		{"fleet.queued", sum.Fleet.Queued},
		{"fleet.sessions_started", sum.Fleet.SessionsStarted},
		{"fleet.sessions_done", sum.Fleet.SessionsDone},
		{"fleet.handshake_fails", sum.Fleet.HandshakeFails},
		{"relay.gathers", sum.Relay.Gathers},
		{"relay.gathered_uploads", sum.Relay.GatheredUploads},
		{"relay.dial_errors", sum.Relay.DialErrors},
		{"relay.corrupt_forwarded", sum.Relay.CorruptForwarded},
	}
	for _, c := range checks {
		if got := snap.Counters[c.counter]; got != c.trace {
			return fmt.Errorf("trace disagrees with %s: %s = %d in counters, %d derived from trace",
				metricsPath, c.counter, got, c.trace)
		}
	}
	// Histograms and spans observe the SAME measured interval through
	// independent sinks, so when a run records both (-trace and -metrics
	// together) the histogram's sum must equal the trace's Σ dur_ns
	// exactly. fl.train_ns is the odd one out: the fl layer emits the
	// per-vehicle training time as a train_ns field on fl.vehicle events
	// rather than as a span. Skipped when the snapshot predates the
	// histogram (absent key), since the counter checks above still hold.
	var flTrainNs int64
	for _, v := range sum.Vehicles {
		flTrainNs += v.TrainNs
	}
	histChecks := []struct {
		hist  string
		trace int64
	}{
		{"core.aggregate_ns", sum.SpanSums["core.aggregate"]},
		{"lagrange.encode_ns", sum.SpanSums["lagrange.encode"]},
		{"node.train_ns", sum.SpanSums["node.train"]},
		{"node.encode_ns", sum.SpanSums["node.encode"]},
		{"node.upload_ns", sum.SpanSums["node.upload"]},
		{"fl.train_ns", flTrainNs},
	}
	for _, c := range histChecks {
		h, ok := snap.Histograms[c.hist]
		if !ok {
			continue
		}
		if h.Sum != c.trace {
			return fmt.Errorf("trace disagrees with %s: histogram %s sum = %d ns, %d ns derived from trace spans",
				metricsPath, c.hist, h.Sum, c.trace)
		}
	}
	return nil
}

// writeText renders the tables into memory first so only the final Write
// can fail — table building against a bytes.Buffer never does.
func writeText(w io.Writer, sum *summary) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "trace: %d events, %d runs, %d fl rounds, %d node rounds\n",
		sum.Events, sum.Runs, sum.FLRounds, sum.NodeRounds)
	fmt.Fprintf(&b, "decode: %d slot failures, %d/%d BW attempts won, %d batch groups (%d words, %d recovered, %d fallbacks)\n",
		sum.Decode.SlotFailures, sum.Decode.BWWins, sum.Decode.BWAttempts,
		sum.Decode.BatchGroups, sum.Decode.BatchWords, sum.Decode.BatchRecovered, sum.Decode.BatchFallbacks)
	if sum.RecvErrors > 0 || sum.Stragglers > 0 {
		fmt.Fprintf(&b, "node: %d receive errors, %d straggler timeouts\n", sum.RecvErrors, sum.Stragglers)
	}
	if sum.PipelineRounds > 0 {
		fmt.Fprintf(&b, "pipeline: %d pipelined rounds, %d early closes, overlap ratio %.3f\n",
			sum.PipelineRounds, sum.EarlyCloses, sum.PipelineOverlapRatio)
	}
	if sum.Chaos != (chaosSummary{}) {
		fmt.Fprintf(&b, "chaos: %d drops, %d corrupts, %d delays, %d crashes injected\n",
			sum.Chaos.Drops, sum.Chaos.Corrupts, sum.Chaos.Delays, sum.Chaos.Crashes)
	}
	if sum.Recovery != (recoverySummary{}) {
		fmt.Fprintf(&b, "recovery: %d corrupt frames (%d client-side), %d retransmits, %d rejoins, %d reconnects, %d degraded rounds\n",
			sum.Recovery.CorruptFrames, sum.Recovery.ClientCorruptFrames, sum.Recovery.Retransmits,
			sum.Recovery.Rejoins, sum.Recovery.Reconnects, sum.Recovery.DegradedRounds)
	}
	if sum.Fleet != (fleetSummary{}) {
		fmt.Fprintf(&b, "fleet: %d admitted, %d queued, %d rejected, %d handshake fails, %d/%d sessions done\n",
			sum.Fleet.Admitted, sum.Fleet.Queued, sum.Fleet.Rejected, sum.Fleet.HandshakeFails,
			sum.Fleet.SessionsDone, sum.Fleet.SessionsStarted)
	}
	if sum.Relay != (relaySummary{}) {
		fmt.Fprintf(&b, "relay: %d gathers batching %d uploads, %d dial errors, %d corrupt frames re-signalled\n",
			sum.Relay.Gathers, sum.Relay.GatheredUploads, sum.Relay.DialErrors, sum.Relay.CorruptForwarded)
	}

	if len(sum.Sessions) > 0 {
		fmt.Fprintf(&b, "\nadmission by session:\n")
		tw := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
		mustFprintf(tw, "session\tadmitted\tqueued\trejected\trejoins\trounds\n")
		for _, id := range sortedKeys(sum.Sessions) {
			ss := sum.Sessions[id]
			mustFprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n", id, ss.Admitted, ss.Queued, ss.Rejected, ss.Rejoins, ss.Rounds)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(sum.Stages) > 0 {
		fmt.Fprintf(&b, "\nstage latencies (ns):\n")
		tw := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
		mustFprintf(tw, "stage\tcount\tp50\tp95\tp99\tmax\n")
		for _, ev := range sortedKeys(sum.Stages) {
			s := sum.Stages[ev]
			mustFprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n", ev, s.Count, s.P50, s.P95, s.P99, s.Max)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(sum.Peers) > 0 {
		fmt.Fprintf(&b, "\ntransport by peer:\n")
		tw := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
		mustFprintf(tw, "peer\tsent_msgs\tsent_bytes\trecv_msgs\trecv_bytes\n")
		for _, name := range sortedKeys(sum.Peers) {
			p := sum.Peers[name]
			mustFprintf(tw, "%s\t%d\t%d\t%d\t%d\n", name, p.SentMsgs, p.SentBytes, p.RecvMsgs, p.RecvBytes)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(sum.Vehicles) > 0 {
		fmt.Fprintf(&b, "\nvehicle training:\n")
		tw := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
		mustFprintf(tw, "vehicle\trounds\ttotal_train_ns\tmean_train_ns\n")
		ids := sortedKeys(sum.Vehicles)
		sort.Slice(ids, func(i, j int) bool {
			a, erra := strconv.Atoi(ids[i])
			b, errb := strconv.Atoi(ids[j])
			if erra != nil || errb != nil {
				return ids[i] < ids[j]
			}
			return a < b
		})
		for _, id := range ids {
			v := sum.Vehicles[id]
			mean := int64(0)
			if v.Rounds > 0 {
				mean = v.TrainNs / int64(v.Rounds)
			}
			mustFprintf(tw, "%s\t%d\t%d\t%d\n", id, v.Rounds, v.TrainNs, mean)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// mustFprintf writes a table row into a tabwriter backed by an in-memory
// buffer, where writes cannot fail (any error would surface at Flush).
func mustFprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
