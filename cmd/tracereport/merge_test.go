package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// mergeFixtures is the handcrafted distributed run under testdata: a
// fusion trace plus three vehicle traces with distinct clock offsets,
// covering a clean round, a budget-closed round with a compute
// straggler, and one deliberate causality violation (vehicle 1's round-1
// ingest precedes its offset-corrected upload by more than the
// tolerance).
var mergeFixtures = []string{
	"testdata/merge_fusion.jsonl",
	"testdata/merge_vehicle0.jsonl",
	"testdata/merge_vehicle1.jsonl",
	"testdata/merge_vehicle2.jsonl",
}

// TestMergeGolden pins the merged timeline byte-for-byte: the fixtures
// are fixed-clock traces, so two runs must agree with each other and
// with the committed golden file exactly — any nondeterminism (map
// iteration, unsorted sweeps) shows up as a diff here.
func TestMergeGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/merge_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	var first, second bytes.Buffer
	if err := run(append([]string{"-merge"}, mergeFixtures...), &first); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-merge"}, mergeFixtures...), &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("merge output is nondeterministic:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
	}
	if !bytes.Equal(first.Bytes(), want) {
		t.Fatalf("merge output drifted from golden file:\n--- got ---\n%s--- want ---\n%s", first.String(), want)
	}
}

// TestMergeSemantics spot-checks the load-bearing lines of the golden
// run so a regenerated golden file can't silently bless a regression.
func TestMergeSemantics(t *testing.T) {
	var buf bytes.Buffer
	if err := run(append([]string{"-merge"}, mergeFixtures...), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		// Vehicle 0's clock runs 100µs behind the fusion centre, so its
		// round-0 train span (local t=1400000) lands at 1500000 and its
		// upload completes exactly at the ingest time: transit=0.
		"vehicle 0: train@1500000+2000000 encode@3600000+300000 upload@4900000+100000 ingest@5000000 transit=0",
		// Vehicle 1 runs 200µs ahead; its round-0 upload still orders
		// correctly and shows real network transit.
		"vehicle 1: train@2000000+1500000 encode@3600000+200000 upload@4900000+50000 ingest@5200000 transit=250000",
		"vehicle 2: STRAGGLER — compute: trained but no upload sent before the deadline",
		"aggregate@6000000+800000",
		"causality: 1 violation(s)",
		"round 1 vehicle 1: ingest at 12500000 ns precedes upload send at 14000000 ns",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merge output missing %q:\n%s", want, out)
		}
	}
}

// TestMergeFusionOnly exercises the single-file mode: an in-process
// `lcofl dist` run traces both sides into one file on one clock, so the
// fusion file's own stage spans must appear with offset 0 even though
// the file contains node.clock_offset events.
func TestMergeFusionOnly(t *testing.T) {
	trace := writeTemp(t, "combined.jsonl",
		`{"ev":"node.clock_offset","t_ns":500,"vehicle":0,"offset_ns":123456,"rtt_ns":1000}
{"ev":"node.round","t_ns":1000,"dur_ns":9000,"round":0,"span":"a000000000000000"}
{"ev":"node.train","t_ns":2000,"dur_ns":1000,"round":0,"vehicle":0}
{"ev":"node.upload","t_ns":4000,"dur_ns":100,"round":0,"vehicle":0}
{"ev":"node.ingest","t_ns":4200,"round":0,"vehicle":0}
`)
	var buf bytes.Buffer
	if err := run([]string{"-merge", trace}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The offset_ns value must NOT shift the spans — same clock.
	for _, want := range []string{
		"vehicle 0: offset=0 rtt=1000",
		"vehicle 0: train@2000+1000 upload@4000+100 ingest@4200 transit=100",
		"causality: ok (no violations)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fusion-only merge missing %q:\n%s", want, out)
		}
	}
}

func TestMergeFlagConflicts(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-merge", "-json", "x.jsonl"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "cannot be combined") {
		t.Fatalf("-merge -json accepted: %v", err)
	}
	if err := run([]string{"-merge"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "fusion-centre trace") {
		t.Fatalf("-merge with no files accepted: %v", err)
	}
}

func TestStragglerAttribution(t *testing.T) {
	m := &mergeState{
		rounds:      map[int64]*mergeRound{},
		vehicles:    map[int64]*mergeVehicle{},
		roundBySpan: map[string]int64{},
	}
	// No trace at all for vehicle 9.
	if got := m.attributeStraggler(0, 9); !strings.Contains(got, "never started") {
		t.Fatalf("missing-vehicle attribution = %q", got)
	}
	v := m.vehicle(7)
	v.stages[0] = map[string]stageSpan{"node.train": {t: 10, dur: 5}}
	if got := m.attributeStraggler(0, 7); !strings.Contains(got, "compute") {
		t.Fatalf("trained-only attribution = %q", got)
	}
	v.stages[0]["node.upload"] = stageSpan{t: 20, dur: 1}
	if got := m.attributeStraggler(0, 7); !strings.Contains(got, "network") {
		t.Fatalf("uploaded-but-lost attribution = %q", got)
	}
}
