package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTrace = `{"ev":"experiments.run_start","t_ns":0,"variant":"l-cofl"}
{"ev":"fl.round","t_ns":100,"dur_ns":1000,"round":1}
{"ev":"fl.round","t_ns":2000,"dur_ns":3000,"round":2}
{"ev":"fl.vehicle","t_ns":150,"round":1,"vehicle":0,"train_ns":500}
{"ev":"fl.vehicle","t_ns":160,"round":2,"vehicle":0,"train_ns":700}
{"ev":"fl.vehicle","t_ns":170,"round":1,"vehicle":3,"train_ns":900}
{"ev":"core.slot_fail","t_ns":200,"slot":4}
{"ev":"rs.bw_attempt","t_ns":210,"budget":1,"ok":false}
{"ev":"rs.bw_attempt","t_ns":220,"budget":2,"ok":true}
{"ev":"rs.batch","t_ns":230,"words":8,"points":20,"recovered":6,"fallbacks":2,"combined_ok":true}
{"ev":"transport.send","t_ns":240,"peer":"vehicle-0","kind":"round","bytes":100}
{"ev":"transport.send","t_ns":250,"peer":"vehicle-0","kind":"round","bytes":60}
{"ev":"transport.recv","t_ns":260,"peer":"vehicle-0","kind":"upload","bytes":300}
{"ev":"node.round","t_ns":300,"dur_ns":5000,"round":1}
{"ev":"node.pipeline","t_ns":305,"round":1,"wait_budget":2,"arrived":10,"closed_by":"budget","overlap_ns":2000}
{"ev":"node.round","t_ns":600,"dur_ns":3000,"round":2}
{"ev":"node.pipeline","t_ns":605,"round":2,"wait_budget":-1,"arrived":12,"closed_by":"all","overlap_ns":1000}
{"ev":"core.aggregate","t_ns":320,"dur_ns":400,"round":1}
{"ev":"core.aggregate","t_ns":610,"dur_ns":250,"round":2}
{"ev":"core.aggregate","t_ns":650,"dur_ns":150,"round":2}
{"ev":"node.recv_error","t_ns":310,"round":1,"vehicle":2,"error":"closed"}
{"ev":"node.straggler","t_ns":320,"round":1,"vehicle":5}
{"ev":"chaos.drop","t_ns":330,"peer":4,"kind":"upload","rule":0}
{"ev":"chaos.corrupt","t_ns":340,"peer":4,"kind":"upload","rule":1}
{"ev":"chaos.corrupt","t_ns":350,"peer":6,"kind":"upload","rule":1}
{"ev":"chaos.delay","t_ns":360,"peer":2,"kind":"hello","rule":2,"delay_ns":2000000}
{"ev":"chaos.crash","t_ns":370,"peer":7,"kind":"upload","point":"before-upload","round":2}
{"ev":"node.corrupt_frame","t_ns":380,"round":1,"vehicle":4}
{"ev":"node.corrupt_frame","t_ns":390,"round":1,"vehicle":6}
{"ev":"node.retransmit","t_ns":400,"round":1,"vehicle":4,"attempt":1}
{"ev":"node.rejoin","t_ns":410,"round":2,"vehicle":7}
{"ev":"node.reconnect","t_ns":420,"vehicle":7,"failures":1,"delay_ns":100000000,"error":"closed"}
{"ev":"node.degraded","t_ns":430,"round":2,"present":3,"need":8}
{"ev":"node.client_corrupt_frame","t_ns":440,"vehicle":4}
{"ev":"fleet.admit","t_ns":450,"session":"s0","vehicle":0,"version":5,"rejoin":false}
{"ev":"fleet.admit","t_ns":460,"session":"s0","vehicle":1,"version":5,"rejoin":false}
{"ev":"fleet.admit","t_ns":465,"session":"s0","vehicle":1,"version":5,"rejoin":true}
{"ev":"fleet.queue","t_ns":470,"session":"s1","vehicle":0}
{"ev":"fleet.reject","t_ns":480,"session":"s2","vehicle":3,"reason":"admission queue full","retry":true}
{"ev":"fleet.handshake_fail","t_ns":485,"error":"node: hello timeout"}
{"ev":"fleet.session_start","t_ns":490,"session":"s0","vehicles":2}
{"ev":"fleet.session_done","t_ns":500,"session":"s0","rounds":2}
{"ev":"relay.gather","t_ns":510,"uploads":3}
{"ev":"relay.gather","t_ns":520,"uploads":2}
{"ev":"relay.dial_error","t_ns":530,"error":"closed"}
{"ev":"relay.corrupt_forward","t_ns":540,"upstream":"up-0"}
`

func TestSummarize(t *testing.T) {
	sum, err := summarize(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 46 || sum.Runs != 1 || sum.FLRounds != 2 || sum.NodeRounds != 2 {
		t.Fatalf("headline counts wrong: %+v", sum)
	}
	if sum.RecvErrors != 1 || sum.Stragglers != 1 {
		t.Fatalf("node counts wrong: %+v", sum)
	}
	// Two pipelined rounds, one budget-closed; overlap ratio is the
	// summed overlap over the summed node.round duration.
	if sum.PipelineRounds != 2 || sum.EarlyCloses != 1 {
		t.Fatalf("pipeline counts wrong: %+v", sum)
	}
	if want := 3000.0 / 8000.0; sum.PipelineOverlapRatio != want {
		t.Fatalf("overlap ratio = %g, want %g", sum.PipelineOverlapRatio, want)
	}
	wantChaos := chaosSummary{Drops: 1, Corrupts: 2, Delays: 1, Crashes: 1}
	if sum.Chaos != wantChaos {
		t.Fatalf("chaos summary = %+v, want %+v", sum.Chaos, wantChaos)
	}
	wantRec := recoverySummary{
		CorruptFrames: 2, Retransmits: 1, Rejoins: 1,
		Reconnects: 1, DegradedRounds: 1, ClientCorruptFrames: 1,
	}
	if sum.Recovery != wantRec {
		t.Fatalf("recovery summary = %+v, want %+v", sum.Recovery, wantRec)
	}
	wantFleet := fleetSummary{
		Admitted: 3, Rejected: 1, Queued: 1,
		SessionsStarted: 1, SessionsDone: 1, HandshakeFails: 1,
	}
	if sum.Fleet != wantFleet {
		t.Fatalf("fleet summary = %+v, want %+v", sum.Fleet, wantFleet)
	}
	wantRelay := relaySummary{Gathers: 2, GatheredUploads: 5, DialErrors: 1, CorruptForwarded: 1}
	if sum.Relay != wantRelay {
		t.Fatalf("relay summary = %+v, want %+v", sum.Relay, wantRelay)
	}
	// Per-session ledger: s0's three admits include one rejoin and its
	// session_done stamps the completed rounds; s1 only ever queued, s2
	// only ever bounced.
	if s0 := sum.Sessions["s0"]; s0 == nil || *s0 != (sessionStats{Admitted: 3, Rejoins: 1, Rounds: 2}) {
		t.Fatalf("session s0 stats wrong: %+v", sum.Sessions["s0"])
	}
	if s1 := sum.Sessions["s1"]; s1 == nil || *s1 != (sessionStats{Queued: 1}) {
		t.Fatalf("session s1 stats wrong: %+v", sum.Sessions["s1"])
	}
	if s2 := sum.Sessions["s2"]; s2 == nil || *s2 != (sessionStats{Rejected: 1}) {
		t.Fatalf("session s2 stats wrong: %+v", sum.Sessions["s2"])
	}
	d := sum.Decode
	if d.SlotFailures != 1 || d.BWAttempts != 2 || d.BWWins != 1 ||
		d.BatchGroups != 1 || d.BatchWords != 8 || d.BatchRecovered != 6 || d.BatchFallbacks != 2 {
		t.Fatalf("decode summary wrong: %+v", d)
	}
	fr := sum.Stages["fl.round"]
	if fr == nil || fr.Count != 2 || fr.P50 != 1000 || fr.P95 != 3000 || fr.Max != 3000 {
		t.Fatalf("fl.round stage stats wrong: %+v", fr)
	}
	// Round-keyed pairing: round 2's aggregate work is split across two
	// spans but must yield ONE 400ns sample, same as round 1 — not three
	// arrival-order samples.
	ca := sum.Stages["core.aggregate"]
	if ca == nil || ca.Count != 2 || ca.P50 != 400 || ca.Max != 400 {
		t.Fatalf("core.aggregate stage stats wrong: %+v", ca)
	}
	p := sum.Peers["vehicle-0"]
	if p == nil || p.SentMsgs != 2 || p.SentBytes != 160 || p.RecvMsgs != 1 || p.RecvBytes != 300 {
		t.Fatalf("peer stats wrong: %+v", p)
	}
	v0 := sum.Vehicles["0"]
	if v0 == nil || v0.Rounds != 2 || v0.TrainNs != 1200 {
		t.Fatalf("vehicle 0 stats wrong: %+v", v0)
	}
	if v3 := sum.Vehicles["3"]; v3 == nil || v3.Rounds != 1 || v3.TrainNs != 900 {
		t.Fatalf("vehicle 3 stats wrong: %+v", sum.Vehicles["3"])
	}
}

func TestSummarizeRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, trace, want string }{
		{"bad json", "{\"ev\":\"a\",\"t_ns\":0}\nnot json\n", "line 2"},
		{"missing ev", "{\"t_ns\":0}\n", "no \"ev\""},
		{"missing t_ns", "{\"ev\":\"a\"}\n", "t_ns"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := summarize(strings.NewReader(tc.trace))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := percentile(s, 0.50); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := percentile(s, 0.95); got != 100 {
		t.Fatalf("p95 = %d, want 100", got)
	}
	if got := percentile([]int64{7}, 0.99); got != 7 {
		t.Fatalf("single-sample p99 = %d, want 7", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %d, want 0", got)
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCrossCheck(t *testing.T) {
	sum, err := summarize(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	good := `{"counters":{"fl.rounds":2,"node.rounds":2,"node.recv_errors":1,"node.stragglers":1,
		"node.early_closes":1,
		"core.decode_failures":1,"rs.bw.attempts":2,"rs.bw.wins":1,
		"rs.batch.words":8,"rs.batch.recovered":6,"rs.batch.fallbacks":2,
		"node.corrupt_frames":2,"node.retransmits":1,"node.rejoins":1,"node.reconnects":1,
		"node.degraded_rounds":1,"node.client_corrupt_frames":1,
		"chaos.drops":1,"chaos.corrupts":2,"chaos.delays":1,"chaos.crashes":1,
		"fleet.admitted":3,"fleet.rejected":1,"fleet.queued":1,
		"fleet.sessions_started":1,"fleet.sessions_done":1,"fleet.handshake_fails":1,
		"relay.gathers":2,"relay.gathered_uploads":5,"relay.dial_errors":1,"relay.corrupt_forwarded":1},
		"histograms":{"core.aggregate_ns":{"count":3,"sum":800},"fl.train_ns":{"count":3,"sum":2100}}}`
	if err := crossCheck(sum, writeTemp(t, "good.json", good)); err != nil {
		t.Fatalf("consistent snapshot rejected: %v", err)
	}
	// Histogram sums are pinned to the trace-span duration sums: the
	// sample trace carries three core.aggregate spans of 400+250+150 ns
	// and per-vehicle training times of 500+700+900 ns, so a histogram
	// whose sum drifts from either total must fail the gate. A snapshot
	// without the histogram is still accepted (older metrics files).
	badHist := strings.Replace(good, `"core.aggregate_ns":{"count":3,"sum":800}`,
		`"core.aggregate_ns":{"count":3,"sum":801}`, 1)
	err = crossCheck(sum, writeTemp(t, "bad-hist.json", badHist))
	if err == nil || !strings.Contains(err.Error(), "core.aggregate_ns") {
		t.Fatalf("drifting histogram sum accepted: %v", err)
	}
	badHist = strings.Replace(good, `"fl.train_ns":{"count":3,"sum":2100}`,
		`"fl.train_ns":{"count":3,"sum":2000}`, 1)
	err = crossCheck(sum, writeTemp(t, "bad-train-hist.json", badHist))
	if err == nil || !strings.Contains(err.Error(), "fl.train_ns") {
		t.Fatalf("drifting train histogram sum accepted: %v", err)
	}
	bad := strings.Replace(good, `"rs.batch.fallbacks":2`, `"rs.batch.fallbacks":5`, 1)
	err = crossCheck(sum, writeTemp(t, "bad.json", bad))
	if err == nil || !strings.Contains(err.Error(), "rs.batch.fallbacks") {
		t.Fatalf("inconsistent snapshot accepted: %v", err)
	}
	// The recovery/chaos ledger is cross-checked too: a chaos counter that
	// drifts from the trace-derived count must fail the gate.
	bad = strings.Replace(good, `"chaos.corrupts":2`, `"chaos.corrupts":3`, 1)
	err = crossCheck(sum, writeTemp(t, "bad-chaos.json", bad))
	if err == nil || !strings.Contains(err.Error(), "chaos.corrupts") {
		t.Fatalf("drifting chaos counter accepted: %v", err)
	}
	bad = strings.Replace(good, `"node.rejoins":1`, `"node.rejoins":0`, 1)
	err = crossCheck(sum, writeTemp(t, "bad-rejoin.json", bad))
	if err == nil || !strings.Contains(err.Error(), "node.rejoins") {
		t.Fatalf("drifting rejoin counter accepted: %v", err)
	}
	// The early-close ledger is pinned: the counter must match the count
	// of budget-closed node.pipeline events.
	bad = strings.Replace(good, `"node.early_closes":1`, `"node.early_closes":2`, 1)
	err = crossCheck(sum, writeTemp(t, "bad-early.json", bad))
	if err == nil || !strings.Contains(err.Error(), "node.early_closes") {
		t.Fatalf("drifting early-close counter accepted: %v", err)
	}
	// The fleet admission ledger and the relay gather ledger are pinned
	// the same way; gathered_uploads is a summed field, not an event
	// count, so a drift there proves the Σ pairing is live too.
	bad = strings.Replace(good, `"fleet.admitted":3`, `"fleet.admitted":4`, 1)
	err = crossCheck(sum, writeTemp(t, "bad-fleet.json", bad))
	if err == nil || !strings.Contains(err.Error(), "fleet.admitted") {
		t.Fatalf("drifting fleet admission counter accepted: %v", err)
	}
	bad = strings.Replace(good, `"relay.gathered_uploads":5`, `"relay.gathered_uploads":6`, 1)
	err = crossCheck(sum, writeTemp(t, "bad-relay.json", bad))
	if err == nil || !strings.Contains(err.Error(), "relay.gathered_uploads") {
		t.Fatalf("drifting relay gather counter accepted: %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	trace := writeTemp(t, "trace.jsonl", sampleTrace)
	var buf bytes.Buffer
	if err := run([]string{"-json", trace}, &buf); err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if sum.FLRounds != 2 || sum.Decode.BWAttempts != 2 {
		t.Fatalf("JSON summary wrong: %+v", sum)
	}
}

func TestRunText(t *testing.T) {
	trace := writeTemp(t, "trace.jsonl", sampleTrace)
	var buf bytes.Buffer
	if err := run([]string{trace}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 fl rounds", "1/2 BW attempts won", "vehicle-0", "stage latencies",
		"chaos: 1 drops, 2 corrupts, 1 delays, 1 crashes injected",
		"recovery: 2 corrupt frames (1 client-side), 1 retransmits, 1 rejoins, 1 reconnects, 1 degraded rounds",
		"pipeline: 2 pipelined rounds, 1 early closes, overlap ratio 0.375",
		"fleet: 3 admitted, 1 queued, 1 rejected, 1 handshake fails, 1/1 sessions done",
		"relay: 2 gathers batching 5 uploads, 1 dial errors, 1 corrupt frames re-signalled",
		"admission by session",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}
