// Merged fleet timelines (-merge): combine the fusion centre's trace
// with per-vehicle traces from a distributed run into one causally
// ordered per-round timeline on the fusion centre's clock.
//
// Each vehicle process runs on its own clock. The handshake estimates
// the offset between that clock and the fusion centre's (the RTT
// midpoint of Hello→Setup, emitted as node.clock_offset — DESIGN.md
// §15); -merge applies the first offset each vehicle reported, so its
// train/encode/upload spans land on the fusion timeline next to the
// server-side ingest and round spans they caused. The output is fully
// deterministic for a given set of input files: every sweep is sorted,
// and nothing reads a clock.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// stageSpan is one vehicle-side stage occurrence on the vehicle's own
// clock (t is the span start).
type stageSpan struct {
	t, dur int64
}

// mergeVehicle accumulates one vehicle's view across all input files.
type mergeVehicle struct {
	id        int64
	offset    int64 // fusion_time ≈ vehicle_time + offset
	rtt       int64
	hasOffset bool
	// stages maps round → stage name ("node.train"/"node.encode"/
	// "node.upload") → span, on the vehicle's clock.
	stages map[int64]map[string]stageSpan
}

// mergeRound is the fusion centre's view of one round.
type mergeRound struct {
	t, dur   int64
	span     string
	arrived  int64
	closedBy string
	agg      stageSpan
	hasAgg   bool
	// ingest maps vehicle → fusion-clock arrival time of its upload.
	ingest map[int64]int64
	// stragglers is the set of vehicles that missed the round deadline.
	stragglers map[int64]bool
}

// mergeState is everything the timeline needs, keyed deterministically.
type mergeState struct {
	fusionFile   string
	vehicleFiles []string
	rounds       map[int64]*mergeRound
	vehicles     map[int64]*mergeVehicle
	// roundBySpan resolves a propagated parent span ID back to its
	// round, attaching core.aggregate spans to the round that ran them.
	roundBySpan map[string]int64
	warnings    []string
}

func (m *mergeState) vehicle(id int64) *mergeVehicle {
	v := m.vehicles[id]
	if v == nil {
		v = &mergeVehicle{id: id, stages: map[int64]map[string]stageSpan{}}
		m.vehicles[id] = v
	}
	return v
}

func (m *mergeState) round(r int64) *mergeRound {
	rd := m.rounds[r]
	if rd == nil {
		rd = &mergeRound{ingest: map[int64]int64{}, stragglers: map[int64]bool{}}
		m.rounds[r] = rd
	}
	return rd
}

// causalityTolerance bounds how far an ingest may apparently precede the
// upload that caused it before -merge calls it a causality violation:
// the offset estimate's error is bounded by the handshake RTT, plus a
// floor for scheduling jitter.
const causalityToleranceFloorNs = 1_000_000

// runMerge reads the fusion trace (first path) and the vehicle traces
// (remaining paths) and writes the merged timeline.
func runMerge(paths []string, w io.Writer) error {
	if len(paths) < 1 {
		return fmt.Errorf("-merge needs at least the fusion-centre trace (first file)")
	}
	st := &mergeState{
		fusionFile:   paths[0],
		vehicleFiles: paths[1:],
		rounds:       map[int64]*mergeRound{},
		vehicles:     map[int64]*mergeVehicle{},
		roundBySpan:  map[string]int64{},
	}
	if err := st.loadFusion(paths[0]); err != nil {
		return err
	}
	// The fusion file itself may carry vehicle-side spans (an in-process
	// `lcofl dist` run traces both sides into one file, offset 0), so it
	// is scanned for stages too — loadVehicle with a zero offset.
	if err := st.loadVehicle(paths[0], true); err != nil {
		return err
	}
	for _, p := range paths[1:] {
		if err := st.loadVehicle(p, false); err != nil {
			return err
		}
	}
	st.check()
	return st.write(w)
}

// scanTrace streams path's records through fn with the same limits the
// summariser uses.
func scanTrace(path string, fn func(rec map[string]any) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("%s: line %d: %w", path, lineNo, err)
		}
		if err := fn(rec); err != nil {
			return fmt.Errorf("%s: line %d: %w", path, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: line %d: %w", path, lineNo+1, err)
	}
	return nil
}

// loadFusion gathers the fusion-side structure: round spans, ingest
// arrivals, stragglers, pipeline close records and aggregate spans.
func (m *mergeState) loadFusion(path string) error {
	// core.aggregate spans whose parent round span arrives later in the
	// file are resolved in a second pass over this slice.
	type pendingAgg struct {
		parent string
		span   stageSpan
	}
	var aggs []pendingAgg
	err := scanTrace(path, func(rec map[string]any) error {
		t, _ := num(rec, "t_ns")
		switch str(rec, "ev") {
		case "node.round":
			round, ok := num(rec, "round")
			if !ok {
				return fmt.Errorf("node.round without round")
			}
			d, _ := num(rec, "dur_ns")
			rd := m.round(round)
			rd.t, rd.dur = t, d
			if sp := str(rec, "span"); sp != "" {
				rd.span = sp
				m.roundBySpan[sp] = round
			}
		case "node.pipeline":
			round, _ := num(rec, "round")
			rd := m.round(round)
			rd.arrived, _ = num(rec, "arrived")
			rd.closedBy = str(rec, "closed_by")
		case "node.ingest":
			round, _ := num(rec, "round")
			vehicle, _ := num(rec, "vehicle")
			m.round(round).ingest[vehicle] = t
		case "node.straggler":
			round, _ := num(rec, "round")
			vehicle, _ := num(rec, "vehicle")
			m.round(round).stragglers[vehicle] = true
		case "core.aggregate":
			d, _ := num(rec, "dur_ns")
			aggs = append(aggs, pendingAgg{parent: str(rec, "parent"), span: stageSpan{t: t, dur: d}})
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, a := range aggs {
		if round, ok := m.roundBySpan[a.parent]; ok {
			rd := m.round(round)
			rd.agg, rd.hasAgg = a.span, true
		}
	}
	return nil
}

// loadVehicle gathers one file's vehicle-side view: the clock offset
// from its handshake and the per-round stage spans. isFusion marks the
// fusion file re-scan, whose events are already on the fusion clock and
// must not adopt an offset (an in-process run emits node.clock_offset
// there too, but against the same clock).
func (m *mergeState) loadVehicle(path string, isFusion bool) error {
	return scanTrace(path, func(rec map[string]any) error {
		ev := str(rec, "ev")
		switch ev {
		case "node.clock_offset":
			vehicle, ok := num(rec, "vehicle")
			if !ok {
				return fmt.Errorf("node.clock_offset without vehicle")
			}
			v := m.vehicle(vehicle)
			// First estimate wins: later ones come from rejoin
			// handshakes after a crash, when the round timeline the
			// merge orders is mostly behind the vehicle already.
			if !v.hasOffset {
				v.rtt, _ = num(rec, "rtt_ns")
				if !isFusion {
					v.offset, _ = num(rec, "offset_ns")
				}
				v.hasOffset = true
			}
		case "node.train", "node.encode", "node.upload":
			round, okR := num(rec, "round")
			vehicle, okV := num(rec, "vehicle")
			dur, okD := num(rec, "dur_ns")
			if !okR || !okV || !okD {
				return nil // plain event (e.g. a resend note), not a span
			}
			t, _ := num(rec, "t_ns")
			v := m.vehicle(vehicle)
			byStage := v.stages[round]
			if byStage == nil {
				byStage = map[string]stageSpan{}
				v.stages[round] = byStage
			}
			// Keep the first occurrence: a retransmit resend re-emits
			// node.upload for the same round, but the original send is
			// what the waterfall should show.
			if _, dup := byStage[ev]; !dup {
				byStage[ev] = stageSpan{t: t, dur: dur}
			}
		}
		return nil
	})
}

// adjust maps a vehicle-clock time onto the fusion clock.
func (v *mergeVehicle) adjust(t int64) int64 { return t + v.offset }

// tolerance is how much apparent causality inversion this vehicle's
// offset estimate permits before it is a real violation.
func (v *mergeVehicle) tolerance() int64 {
	tol := v.rtt
	if tol < causalityToleranceFloorNs {
		tol = causalityToleranceFloorNs
	}
	return tol
}

// check scans the merged structure for causality violations: an upload
// ingested before (tolerance-adjusted) the vehicle finished sending it,
// or a vehicle stage span that ends before it starts.
func (m *mergeState) check() {
	for _, round := range sortedInt64Keys(m.rounds) {
		rd := m.rounds[round]
		for _, vid := range sortedInt64Keys(rd.ingest) {
			v := m.vehicles[vid]
			if v == nil {
				continue
			}
			up, ok := v.stages[round]["node.upload"]
			if !ok {
				continue
			}
			if ingestT := rd.ingest[vid]; ingestT < v.adjust(up.t)-v.tolerance() {
				m.warnings = append(m.warnings, fmt.Sprintf(
					"round %d vehicle %d: ingest at %d ns precedes upload send at %d ns (offset-corrected, tolerance %d ns)",
					round, vid, ingestT, v.adjust(up.t), v.tolerance()))
			}
		}
	}
}

// attributeStraggler explains why a vehicle missed a round: it never
// started (no train span), it was still computing (trained but never
// sent), or the network ate the upload (sent but never ingested).
func (m *mergeState) attributeStraggler(round, vid int64) string {
	v := m.vehicles[vid]
	if v == nil || v.stages[round] == nil {
		return "never started: no trace or no train span for this round"
	}
	stages := v.stages[round]
	if _, ok := stages["node.upload"]; ok {
		return "network: upload sent but never ingested"
	}
	if _, ok := stages["node.train"]; ok {
		return "compute: trained but no upload sent before the deadline"
	}
	return "never started: no train span for this round"
}

// write renders the merged timeline. All output is on the fusion clock;
// per-vehicle stage rows show start+duration for each waterfall stage
// plus the transit gap between upload completion and fusion ingest.
func (m *mergeState) write(w io.Writer) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "merged fleet timeline: %s + %d vehicle trace(s), %d round(s), %d vehicle(s)\n",
		m.fusionFile, len(m.vehicleFiles), len(m.rounds), len(m.vehicles))
	fmt.Fprintf(&b, "clock offsets vs fusion centre (ns):\n")
	for _, vid := range sortedInt64Keys(m.vehicles) {
		v := m.vehicles[vid]
		if v.hasOffset {
			fmt.Fprintf(&b, "  vehicle %d: offset=%d rtt=%d\n", vid, v.offset, v.rtt)
		} else {
			fmt.Fprintf(&b, "  vehicle %d: no clock_offset event (offset assumed 0)\n", vid)
		}
	}
	for _, round := range sortedInt64Keys(m.rounds) {
		rd := m.rounds[round]
		fmt.Fprintf(&b, "round %d: start=%d dur=%d", round, rd.t, rd.dur)
		if rd.closedBy != "" {
			fmt.Fprintf(&b, " arrived=%d closed_by=%s", rd.arrived, rd.closedBy)
		}
		fmt.Fprintf(&b, "\n")
		for _, vid := range m.roundVehicles(round) {
			v := m.vehicles[vid]
			if rd.stragglers[vid] {
				fmt.Fprintf(&b, "  vehicle %d: STRAGGLER — %s\n", vid, m.attributeStraggler(round, vid))
				continue
			}
			stages := map[string]stageSpan{}
			if v != nil {
				stages = v.stages[round]
			}
			fmt.Fprintf(&b, "  vehicle %d:", vid)
			for _, stage := range [...]string{"node.train", "node.encode", "node.upload"} {
				if sp, ok := stages[stage]; ok {
					fmt.Fprintf(&b, " %s@%d+%d", stage[len("node."):], v.adjust(sp.t), sp.dur)
				}
			}
			if ingestT, ok := rd.ingest[vid]; ok {
				fmt.Fprintf(&b, " ingest@%d", ingestT)
				if sp, ok := stages["node.upload"]; ok && v != nil {
					fmt.Fprintf(&b, " transit=%d", ingestT-v.adjust(sp.t+sp.dur))
				}
			}
			fmt.Fprintf(&b, "\n")
		}
		if rd.hasAgg {
			fmt.Fprintf(&b, "  aggregate@%d+%d\n", rd.agg.t, rd.agg.dur)
		}
	}
	if len(m.warnings) == 0 {
		fmt.Fprintf(&b, "causality: ok (no violations)\n")
	} else {
		fmt.Fprintf(&b, "causality: %d violation(s)\n", len(m.warnings))
		for _, warning := range m.warnings {
			fmt.Fprintf(&b, "  WARNING: %s\n", warning)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// roundVehicles lists every vehicle that participated in (or missed)
// the round, sorted: ingested uploads, stragglers, and any vehicle with
// stage spans for it.
func (m *mergeState) roundVehicles(round int64) []int64 {
	set := map[int64]bool{}
	rd := m.rounds[round]
	for vid := range rd.ingest {
		set[vid] = true
	}
	for vid := range rd.stragglers {
		set[vid] = true
	}
	for vid, v := range m.vehicles {
		if v.stages[round] != nil {
			set[vid] = true
		}
	}
	return sortedInt64Keys(set)
}

func sortedInt64Keys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
