// Command benchreport converts `go test -bench` output into the
// machine-readable speedup report BENCH_parallel.json. It groups the
// workers-sweep benchmarks (sub-benchmarks named workers=N) and computes,
// per benchmark, the speedup of every worker count against workers=1 —
// the number the parallel execution engine is judged by.
//
// Usage:
//
//	go test -run NONE -bench Workers -benchtime 3x . | go run ./cmd/benchreport -out BENCH_parallel.json
//
// The report deliberately carries the host's core count: on a single-core
// machine the pool degrades to interleaving and speedups hover at 1×, so
// a reader must interpret the ratios against "cores".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Run is one benchmark measurement at a fixed worker count.
type Run struct {
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Bench is one workers-sweep benchmark with its per-count speedups.
type Bench struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
	// Speedups maps "workers=N" to ns(workers=1)/ns(workers=N).
	Speedups map[string]float64 `json:"speedups"`
	// SpeedupAtMaxWorkers is the headline ratio at the largest swept count.
	SpeedupAtMaxWorkers float64 `json:"speedup_at_max_workers"`
}

// Report is the BENCH_parallel.json schema.
type Report struct {
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	// Cores is runtime.NumCPU() on the measuring host. Wall-clock speedup
	// is bounded by it; ratios near 1 on cores=1 are expected, not a
	// regression of the engine.
	Cores      int     `json:"cores"`
	Benchmarks []Bench `json:"benchmarks"`
	// TargetSpeedup/TargetMet record the ≥2×-at-4-workers acceptance bar
	// evaluated on this host (only meaningful with cores >= 2).
	TargetSpeedup float64 `json:"target_speedup"`
	TargetMet     bool    `json:"target_met"`
	Note          string  `json:"note,omitempty"`
}

// benchLine matches one sub-benchmark result, e.g.
//
//	BenchmarkFig3VehiclesWorkers/workers=4-8   2  70178653 ns/op  36659424 B/op  581373 allocs/op
//
// (the -P GOMAXPROCS suffix is absent when GOMAXPROCS=1).
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)/workers=(\d+)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(lines []string) (*Report, error) {
	rep := &Report{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Cores: runtime.NumCPU(), TargetSpeedup: 2.0}
	byName := map[string][]Run{}
	for _, line := range lines {
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		workers, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad workers count in %q: %w", line, err)
		}
		iters, err := strconv.Atoi(m[3])
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad ns/op in %q: %w", line, err)
		}
		run := Run{Workers: workers, Iterations: iters, NsPerOp: ns}
		if m[5] != "" {
			run.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			run.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		byName[m[1]] = append(byName[m[1]], run)
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("benchreport: no workers-sweep benchmark lines found in input")
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		runs := byName[name]
		sort.Slice(runs, func(i, j int) bool { return runs[i].Workers < runs[j].Workers })
		b := Bench{Name: name, Runs: runs, Speedups: map[string]float64{}}
		var base float64
		for _, r := range runs {
			if r.Workers == 1 {
				base = r.NsPerOp
			}
		}
		if base > 0 {
			for _, r := range runs {
				if r.Workers == 1 {
					continue
				}
				s := base / r.NsPerOp
				b.Speedups[fmt.Sprintf("workers=%d", r.Workers)] = s
				if r.Workers == runs[len(runs)-1].Workers {
					b.SpeedupAtMaxWorkers = s
					if s >= rep.TargetSpeedup {
						rep.TargetMet = true
					}
				}
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if rep.Cores < 2 {
		rep.Note = fmt.Sprintf("measured on a %d-core host: wall-clock speedup is bounded by the core count, so ratios near 1x reflect the hardware, not the engine; re-run scripts/bench.sh on a multi-core machine for the >=2x target", rep.Cores)
	}
	return rep, nil
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	rep, err := parse(lines)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmark(s), cores=%d)\n", *out, len(rep.Benchmarks), rep.Cores)
}
