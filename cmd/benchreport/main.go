// Command benchreport converts `go test -bench` output into a
// machine-readable JSON report. Every benchmark line is recorded under
// its full sub-benchmark name; benchmarks following the workers-sweep
// convention (sub-benchmarks named workers=N) additionally get per-count
// speedups against workers=1 — the number the parallel execution engine
// is judged by.
//
// Usage:
//
//	go test -run NONE -bench Workers -benchtime 3x . | go run ./cmd/benchreport -out BENCH_parallel.json
//
// With -compare old.json the freshly parsed report is checked against a
// previously written one: any benchmark whose ns/op grew by more than
// -max-regress (fraction, default 0.20) fails the run with exit code 1,
// making the report a CI regression gate.
//
// With -procs the input is treated as a GOMAXPROCS matrix (several go
// test runs concatenated): each line's trailing -N suffix becomes a
// /procs=N segment of the entry name instead of being stripped, so the
// same benchmark measured at different core budgets stays distinct and
// workers-sweep speedups are grouped per procs setting.
//
// Two further gates make the report a speedup matrix in CI:
//
//   - -require-speedup X fails the run unless some workers sweep reaches
//     the effective target — min(X, 0.75·min(cores, max swept workers)),
//     so the bar scales down to what the host can physically show. On a
//     single-core host the gate is skipped (and target_met is omitted
//     from the JSON rather than emitted as a silent false); the measured
//     max_speedup is still recorded either way.
//   - -min-ratio name=V (repeatable) fails the run unless derived ratio
//     "name" exists and is >= V. Ratios are computed from sibling
//     entries: batch_vs_perslot from /mode=batch vs /mode=perslot pairs,
//     binary_vs_json from /enc=binary vs /enc=json pairs and
//     pipelined_vs_lockstep from the RoundPipelined vs RoundLockstep
//     pair, each the minimum (most conservative) across all matched
//     pairs. A requested ratio that cannot be derived is a loud failure,
//     never a skip.
//
// The report deliberately carries the host's core count: on a single-core
// machine the pool degrades to interleaving and speedups hover at 1×, so
// a reader must interpret the ratios against "cores".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Run is one benchmark measurement at a fixed worker count.
type Run struct {
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Bench is one workers-sweep benchmark with its per-count speedups.
type Bench struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
	// Speedups maps "workers=N" to ns(workers=1)/ns(workers=N).
	Speedups map[string]float64 `json:"speedups"`
	// SpeedupAtMaxWorkers is the headline ratio at the largest swept count.
	SpeedupAtMaxWorkers float64 `json:"speedup_at_max_workers"`
}

// Entry is one benchmark measurement under its full sub-benchmark name
// (GOMAXPROCS suffix stripped) — the unit of -compare matching.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the benchmark-report JSON schema.
type Report struct {
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	// Cores is runtime.NumCPU() on the measuring host. Wall-clock speedup
	// is bounded by it; ratios near 1 on cores=1 are expected, not a
	// regression of the engine.
	Cores int `json:"cores"`
	// Entries lists every benchmark line, workers-sweep or not.
	Entries    []Entry `json:"entries,omitempty"`
	Benchmarks []Bench `json:"benchmarks,omitempty"`
	// TargetSpeedup is the requested parallel-speedup bar; EffectiveTarget
	// is the bar after scaling to what this host can physically show:
	// min(TargetSpeedup, 0.75·min(cores, max swept workers)).
	TargetSpeedup   float64 `json:"target_speedup"`
	EffectiveTarget float64 `json:"effective_target,omitempty"`
	// MaxSpeedup is the best workers-sweep speedup measured anywhere in
	// the input — always recorded, whatever the core count.
	MaxSpeedup float64 `json:"max_speedup,omitempty"`
	// TargetMet is present only when the host can meaningfully judge the
	// bar (>= 2 cores and at least one workers sweep). On a single-core
	// host it is omitted — never emitted as a silent false. Old baselines
	// that carry "target_met": false still parse.
	TargetMet *bool `json:"target_met,omitempty"`
	// Ratios holds derived sibling-entry ratios (see the package doc):
	// batch_vs_perslot, binary_vs_json, pipelined_vs_lockstep.
	Ratios map[string]float64 `json:"ratios,omitempty"`
	Note   string             `json:"note,omitempty"`
}

// benchLine matches one sub-benchmark result, e.g.
//
//	BenchmarkFig3VehiclesWorkers/workers=4-8   2  70178653 ns/op  36659424 B/op  581373 allocs/op
//
// (the -P GOMAXPROCS suffix is absent when GOMAXPROCS=1; it is captured
// for -procs matrix mode and stripped otherwise).
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)/workers=(\d+)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// anyBenchLine matches ANY benchmark result line.
var anyBenchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseOpts tunes parse. procsSuffix keeps GOMAXPROCS as a /procs=N name
// segment (matrix mode); cores is the measuring host's core count
// (injectable for tests).
type parseOpts struct {
	procsSuffix   bool
	cores         int
	targetSpeedup float64
}

func parse(lines []string, opts parseOpts) (*Report, error) {
	if opts.cores == 0 {
		opts.cores = runtime.NumCPU()
	}
	if opts.targetSpeedup == 0 {
		opts.targetSpeedup = 2.0
	}
	rep := &Report{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Cores: opts.cores, TargetSpeedup: opts.targetSpeedup}
	byName := map[string][]Run{}
	entryIdx := map[string]int{}
	procsOf := func(s string) string {
		if !opts.procsSuffix {
			return ""
		}
		if s == "" {
			s = "1"
		}
		return "/procs=" + s
	}
	for _, line := range lines {
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if m := anyBenchLine.FindStringSubmatch(line); m != nil {
			iters, err := strconv.Atoi(m[3])
			if err != nil {
				return nil, fmt.Errorf("benchreport: bad iteration count in %q: %w", line, err)
			}
			ns, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchreport: bad ns/op in %q: %w", line, err)
			}
			e := Entry{Name: m[1] + procsOf(m[2]), Iterations: iters, NsPerOp: ns}
			if m[5] != "" {
				e.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			if m[6] != "" {
				e.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
			}
			// Repeated names (go test -count) keep the last measurement.
			if i, seen := entryIdx[e.Name]; seen {
				rep.Entries[i] = e
			} else {
				entryIdx[e.Name] = len(rep.Entries)
				rep.Entries = append(rep.Entries, e)
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		workers, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad workers count in %q: %w", line, err)
		}
		iters, err := strconv.Atoi(m[4])
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[5], 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad ns/op in %q: %w", line, err)
		}
		run := Run{Workers: workers, Iterations: iters, NsPerOp: ns}
		if m[6] != "" {
			run.BytesPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		if m[7] != "" {
			run.AllocsPerOp, _ = strconv.ParseInt(m[7], 10, 64)
		}
		byName[m[1]+procsOf(m[3])] = append(byName[m[1]+procsOf(m[3])], run)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("benchreport: no benchmark lines found in input")
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	maxSwept := 0
	for _, name := range names {
		runs := byName[name]
		sort.Slice(runs, func(i, j int) bool { return runs[i].Workers < runs[j].Workers })
		b := Bench{Name: name, Runs: runs, Speedups: map[string]float64{}}
		var base float64
		for _, r := range runs {
			if r.Workers == 1 {
				base = r.NsPerOp
			}
			if r.Workers > maxSwept {
				maxSwept = r.Workers
			}
		}
		if base > 0 {
			for _, r := range runs {
				if r.Workers == 1 {
					continue
				}
				s := base / r.NsPerOp
				b.Speedups[fmt.Sprintf("workers=%d", r.Workers)] = s
				if r.Workers == runs[len(runs)-1].Workers {
					b.SpeedupAtMaxWorkers = s
					if s > rep.MaxSpeedup {
						rep.MaxSpeedup = s
					}
				}
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	rep.Ratios = computeRatios(rep.Entries)
	switch {
	case rep.Cores < 2:
		// A single-core host cannot show wall-clock speedup: record the
		// measured ratio but omit the verdict instead of emitting a
		// silent target_met: false.
		rep.Note = fmt.Sprintf("measured on a %d-core host: wall-clock speedup is bounded by the core count, so ratios near 1x reflect the hardware, not the engine; re-run scripts/bench.sh --matrix on a multi-core machine for the >=%gx target", rep.Cores, rep.TargetSpeedup)
	case len(rep.Benchmarks) > 0:
		rep.EffectiveTarget = effectiveTarget(rep.TargetSpeedup, rep.Cores, maxSwept)
		met := rep.MaxSpeedup >= rep.EffectiveTarget
		rep.TargetMet = &met
	}
	return rep, nil
}

// effectiveTarget scales the requested speedup bar down to what the host
// can physically show: 75% of the smaller of core count and widest swept
// worker count (2 cores cannot show 2x; 4 can).
func effectiveTarget(target float64, cores, maxSwept int) float64 {
	lim := cores
	if maxSwept < lim {
		lim = maxSwept
	}
	if bound := 0.75 * float64(lim); bound < target {
		return bound
	}
	return target
}

// ratioSpecs defines the sibling-entry ratios benchreport derives: the
// recorded value is slowNs/fastNs — how many times faster the fast
// variant runs — minimized over every matched pair.
var ratioSpecs = []struct {
	key        string
	fast, slow string
}{
	{"batch_vs_perslot", "mode=batch", "mode=perslot"},
	{"binary_vs_json", "enc=binary", "enc=json"},
	{"pipelined_vs_lockstep", "RoundPipelined", "RoundLockstep"},
	{"fleet_gather_vs_relay", "mode=gather", "mode=relay"},
}

// computeRatios derives the sibling-entry ratios present in entries.
func computeRatios(entries []Entry) map[string]float64 {
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	ratios := map[string]float64{}
	for _, spec := range ratioSpecs {
		worst := 0.0
		for _, e := range entries {
			if e.NsPerOp <= 0 || !strings.Contains(e.Name, spec.fast) {
				continue
			}
			sib, ok := byName[strings.Replace(e.Name, spec.fast, spec.slow, 1)]
			if !ok || sib.NsPerOp <= 0 {
				continue
			}
			if r := sib.NsPerOp / e.NsPerOp; worst == 0 || r < worst {
				worst = r
			}
		}
		if worst > 0 {
			ratios[spec.key] = worst
		}
	}
	return ratios
}

// regression is one benchmark whose ns/op grew beyond the tolerance.
type regression struct {
	Name     string
	OldNs    float64
	NewNs    float64
	Fraction float64 // (new-old)/old
}

// compareReports matches new entries against old ones by name and returns
// every regression beyond maxRegress (a fraction: 0.20 = 20% slower).
// Benchmarks present on only one side are ignored — adding or retiring a
// benchmark is not a performance regression.
func compareReports(oldRep, newRep *Report, maxRegress float64) []regression {
	oldByName := make(map[string]Entry, len(oldRep.Entries))
	for _, e := range oldRep.Entries {
		oldByName[e.Name] = e
	}
	var regs []regression
	for _, e := range newRep.Entries {
		prev, ok := oldByName[e.Name]
		if !ok || prev.NsPerOp <= 0 {
			continue
		}
		frac := (e.NsPerOp - prev.NsPerOp) / prev.NsPerOp
		if frac > maxRegress {
			regs = append(regs, regression{Name: e.Name, OldNs: prev.NsPerOp, NewNs: e.NsPerOp, Fraction: frac})
		}
	}
	return regs
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
	compare := flag.String("compare", "", "baseline report JSON to compare against; regressions fail with exit 1")
	maxRegress := flag.Float64("max-regress", 0.20, "tolerated ns/op growth over the baseline, as a fraction")
	procs := flag.Bool("procs", false, "matrix mode: keep GOMAXPROCS as a /procs=N name segment")
	requireSpeedup := flag.Float64("require-speedup", 0, "fail unless a workers sweep reaches this speedup (scaled to the host, skipped below 2 cores); 0 disables")
	minRatios := map[string]float64{}
	flag.Func("min-ratio", "name=V (repeatable): fail unless derived ratio name exists and is >= V", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return err
		}
		minRatios[name] = v
		return nil
	})
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	rep, err := parse(lines, parseOpts{procsSuffix: *procs, targetSpeedup: *requireSpeedup})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Load the baseline before writing -out, so comparing against the
	// report being refreshed in place works.
	var base *Report
	if *compare != "" {
		baseData, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		base = new(Report)
		if err := json.Unmarshal(baseData, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: parsing baseline %s: %v\n", *compare, err)
			os.Exit(2)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d entr(ies), cores=%d)\n", *out, len(rep.Entries), rep.Cores)
	}

	failed := false
	if base != nil {
		regs := compareReports(base, rep, *maxRegress)
		if len(regs) == 0 {
			fmt.Fprintf(os.Stderr, "benchreport: no regressions beyond %.0f%% against %s\n", *maxRegress*100, *compare)
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchreport: REGRESSION %s: %.0f -> %.0f ns/op (+%.1f%%)\n",
				r.Name, r.OldNs, r.NewNs, r.Fraction*100)
			failed = true
		}
	}
	if *requireSpeedup > 0 {
		switch {
		case rep.Cores < 2:
			fmt.Fprintf(os.Stderr, "benchreport: speedup gate skipped on a %d-core host (max_speedup %.2fx recorded)\n",
				rep.Cores, rep.MaxSpeedup)
		case rep.TargetMet == nil:
			fmt.Fprintln(os.Stderr, "benchreport: speedup gate FAILED: no workers sweep found in the input")
			failed = true
		case !*rep.TargetMet:
			fmt.Fprintf(os.Stderr, "benchreport: speedup gate FAILED: max %.2fx < effective target %.2fx (requested %.2fx, cores=%d)\n",
				rep.MaxSpeedup, rep.EffectiveTarget, *requireSpeedup, rep.Cores)
			failed = true
		default:
			fmt.Fprintf(os.Stderr, "benchreport: speedup gate passed: %.2fx >= %.2fx\n", rep.MaxSpeedup, rep.EffectiveTarget)
		}
	}
	// Ratio gates are core-count independent: the compared variants run
	// on the same hardware, so the ratio is meaningful even single-core.
	ratioNames := make([]string, 0, len(minRatios))
	for name := range minRatios {
		ratioNames = append(ratioNames, name)
	}
	sort.Strings(ratioNames)
	for _, name := range ratioNames {
		want := minRatios[name]
		got, ok := rep.Ratios[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchreport: ratio gate FAILED: %s not derivable from the input\n", name)
			failed = true
		case got < want:
			fmt.Fprintf(os.Stderr, "benchreport: ratio gate FAILED: %s = %.2fx < %.2fx\n", name, got, want)
			failed = true
		default:
			fmt.Fprintf(os.Stderr, "benchreport: ratio gate passed: %s = %.2fx >= %.2fx\n", name, got, want)
		}
	}
	if failed {
		os.Exit(1)
	}
}
