// Command benchreport converts `go test -bench` output into a
// machine-readable JSON report. Every benchmark line is recorded under
// its full sub-benchmark name; benchmarks following the workers-sweep
// convention (sub-benchmarks named workers=N) additionally get per-count
// speedups against workers=1 — the number the parallel execution engine
// is judged by.
//
// Usage:
//
//	go test -run NONE -bench Workers -benchtime 3x . | go run ./cmd/benchreport -out BENCH_parallel.json
//
// With -compare old.json the freshly parsed report is checked against a
// previously written one: any benchmark whose ns/op grew by more than
// -max-regress (fraction, default 0.20) fails the run with exit code 1,
// making the report a CI regression gate.
//
// The report deliberately carries the host's core count: on a single-core
// machine the pool degrades to interleaving and speedups hover at 1×, so
// a reader must interpret the ratios against "cores".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Run is one benchmark measurement at a fixed worker count.
type Run struct {
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Bench is one workers-sweep benchmark with its per-count speedups.
type Bench struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
	// Speedups maps "workers=N" to ns(workers=1)/ns(workers=N).
	Speedups map[string]float64 `json:"speedups"`
	// SpeedupAtMaxWorkers is the headline ratio at the largest swept count.
	SpeedupAtMaxWorkers float64 `json:"speedup_at_max_workers"`
}

// Entry is one benchmark measurement under its full sub-benchmark name
// (GOMAXPROCS suffix stripped) — the unit of -compare matching.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the benchmark-report JSON schema.
type Report struct {
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	// Cores is runtime.NumCPU() on the measuring host. Wall-clock speedup
	// is bounded by it; ratios near 1 on cores=1 are expected, not a
	// regression of the engine.
	Cores int `json:"cores"`
	// Entries lists every benchmark line, workers-sweep or not.
	Entries    []Entry `json:"entries,omitempty"`
	Benchmarks []Bench `json:"benchmarks,omitempty"`
	// TargetSpeedup/TargetMet record the ≥2×-at-4-workers acceptance bar
	// evaluated on this host (only meaningful with cores >= 2).
	TargetSpeedup float64 `json:"target_speedup"`
	TargetMet     bool    `json:"target_met"`
	Note          string  `json:"note,omitempty"`
}

// benchLine matches one sub-benchmark result, e.g.
//
//	BenchmarkFig3VehiclesWorkers/workers=4-8   2  70178653 ns/op  36659424 B/op  581373 allocs/op
//
// (the -P GOMAXPROCS suffix is absent when GOMAXPROCS=1).
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)/workers=(\d+)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// anyBenchLine matches ANY benchmark result line; the lazy name plus the
// optional trailing -N strips the GOMAXPROCS suffix Go appends.
var anyBenchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(lines []string) (*Report, error) {
	rep := &Report{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Cores: runtime.NumCPU(), TargetSpeedup: 2.0}
	byName := map[string][]Run{}
	entryIdx := map[string]int{}
	for _, line := range lines {
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if m := anyBenchLine.FindStringSubmatch(line); m != nil {
			iters, err := strconv.Atoi(m[2])
			if err != nil {
				return nil, fmt.Errorf("benchreport: bad iteration count in %q: %w", line, err)
			}
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchreport: bad ns/op in %q: %w", line, err)
			}
			e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
			if m[4] != "" {
				e.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			}
			if m[5] != "" {
				e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			// Repeated names (go test -count) keep the last measurement.
			if i, seen := entryIdx[e.Name]; seen {
				rep.Entries[i] = e
			} else {
				entryIdx[e.Name] = len(rep.Entries)
				rep.Entries = append(rep.Entries, e)
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		workers, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad workers count in %q: %w", line, err)
		}
		iters, err := strconv.Atoi(m[3])
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad ns/op in %q: %w", line, err)
		}
		run := Run{Workers: workers, Iterations: iters, NsPerOp: ns}
		if m[5] != "" {
			run.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			run.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		byName[m[1]] = append(byName[m[1]], run)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("benchreport: no benchmark lines found in input")
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		runs := byName[name]
		sort.Slice(runs, func(i, j int) bool { return runs[i].Workers < runs[j].Workers })
		b := Bench{Name: name, Runs: runs, Speedups: map[string]float64{}}
		var base float64
		for _, r := range runs {
			if r.Workers == 1 {
				base = r.NsPerOp
			}
		}
		if base > 0 {
			for _, r := range runs {
				if r.Workers == 1 {
					continue
				}
				s := base / r.NsPerOp
				b.Speedups[fmt.Sprintf("workers=%d", r.Workers)] = s
				if r.Workers == runs[len(runs)-1].Workers {
					b.SpeedupAtMaxWorkers = s
					if s >= rep.TargetSpeedup {
						rep.TargetMet = true
					}
				}
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if rep.Cores < 2 {
		rep.Note = fmt.Sprintf("measured on a %d-core host: wall-clock speedup is bounded by the core count, so ratios near 1x reflect the hardware, not the engine; re-run scripts/bench.sh on a multi-core machine for the >=2x target", rep.Cores)
	}
	return rep, nil
}

// regression is one benchmark whose ns/op grew beyond the tolerance.
type regression struct {
	Name     string
	OldNs    float64
	NewNs    float64
	Fraction float64 // (new-old)/old
}

// compareReports matches new entries against old ones by name and returns
// every regression beyond maxRegress (a fraction: 0.20 = 20% slower).
// Benchmarks present on only one side are ignored — adding or retiring a
// benchmark is not a performance regression.
func compareReports(oldRep, newRep *Report, maxRegress float64) []regression {
	oldByName := make(map[string]Entry, len(oldRep.Entries))
	for _, e := range oldRep.Entries {
		oldByName[e.Name] = e
	}
	var regs []regression
	for _, e := range newRep.Entries {
		prev, ok := oldByName[e.Name]
		if !ok || prev.NsPerOp <= 0 {
			continue
		}
		frac := (e.NsPerOp - prev.NsPerOp) / prev.NsPerOp
		if frac > maxRegress {
			regs = append(regs, regression{Name: e.Name, OldNs: prev.NsPerOp, NewNs: e.NsPerOp, Fraction: frac})
		}
	}
	return regs
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
	compare := flag.String("compare", "", "baseline report JSON to compare against; regressions fail with exit 1")
	maxRegress := flag.Float64("max-regress", 0.20, "tolerated ns/op growth over the baseline, as a fraction")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	rep, err := parse(lines)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Load the baseline before writing -out, so comparing against the
	// report being refreshed in place works.
	var base *Report
	if *compare != "" {
		baseData, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		base = new(Report)
		if err := json.Unmarshal(baseData, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: parsing baseline %s: %v\n", *compare, err)
			os.Exit(2)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d entr(ies), cores=%d)\n", *out, len(rep.Entries), rep.Cores)
	}

	if base == nil {
		return
	}
	regs := compareReports(base, rep, *maxRegress)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no regressions beyond %.0f%% against %s\n", *maxRegress*100, *compare)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchreport: REGRESSION %s: %.0f -> %.0f ns/op (+%.1f%%)\n",
			r.Name, r.OldNs, r.NewNs, r.Fraction*100)
	}
	os.Exit(1)
}
