package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeVectorsWorkers/workers=1-8         	     100	    643345 ns/op	  262144 B/op	     120 allocs/op
BenchmarkEncodeVectorsWorkers/workers=4-8         	     100	    180000 ns/op	  262144 B/op	     130 allocs/op
BenchmarkDecodeBatch/slots=32/mode=batch-8        	     310	   3747009 ns/op	  198784 B/op	     857 allocs/op
BenchmarkDecodeBatch/slots=32/mode=perslot        	      15	  75091930 ns/op	 3802885 B/op	   16608 allocs/op
PASS
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	rep, err := parse(strings.Split(text, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseRecordsEveryEntry(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if rep.CPU == "" {
		t.Error("cpu line not captured")
	}
	want := map[string]float64{
		"EncodeVectorsWorkers/workers=1":    643345,
		"EncodeVectorsWorkers/workers=4":    180000,
		"DecodeBatch/slots=32/mode=batch":   3747009,
		"DecodeBatch/slots=32/mode=perslot": 75091930,
	}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d: %+v", len(rep.Entries), len(want), rep.Entries)
	}
	for _, e := range rep.Entries {
		ns, ok := want[e.Name]
		if !ok {
			t.Errorf("unexpected entry %q (GOMAXPROCS suffix not stripped?)", e.Name)
			continue
		}
		if e.NsPerOp != ns {
			t.Errorf("%s: ns/op = %g, want %g", e.Name, e.NsPerOp, ns)
		}
	}
	// Alloc columns parse when present.
	for _, e := range rep.Entries {
		if e.Name == "DecodeBatch/slots=32/mode=batch" && (e.BytesPerOp != 198784 || e.AllocsPerOp != 857) {
			t.Errorf("alloc columns = %d B/op %d allocs/op", e.BytesPerOp, e.AllocsPerOp)
		}
	}
}

func TestParseWorkersSweepSpeedups(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d workers-sweep benchmarks, want 1", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "EncodeVectorsWorkers" {
		t.Fatalf("sweep name = %q", b.Name)
	}
	if s := b.Speedups["workers=4"]; s < 3.5 || s > 3.6 {
		t.Errorf("speedup at 4 workers = %g, want ~3.574", s)
	}
}

func TestParseNoSweepStillSucceeds(t *testing.T) {
	// A suite without workers= sub-benchmarks (the batch-decode suite)
	// must produce a valid entries-only report.
	rep := parseSample(t, "BenchmarkDotAcc/n=100/kernel=dotacc-8  100  140 ns/op\n")
	if len(rep.Entries) != 1 || len(rep.Benchmarks) != 0 {
		t.Fatalf("entries=%d benchmarks=%d", len(rep.Entries), len(rep.Benchmarks))
	}
}

func TestParseNoBenchLinesFails(t *testing.T) {
	if _, err := parse([]string{"PASS", "ok  repro  1.2s"}); err == nil {
		t.Fatal("no benchmark lines accepted")
	}
}

func TestParseRepeatedNamesKeepLast(t *testing.T) {
	rep := parseSample(t, strings.Join([]string{
		"BenchmarkX/a=1-8  100  500 ns/op",
		"BenchmarkX/a=1-8  100  400 ns/op",
	}, "\n"))
	if len(rep.Entries) != 1 || rep.Entries[0].NsPerOp != 400 {
		t.Fatalf("entries = %+v, want one entry at 400 ns/op", rep.Entries)
	}
}

func TestCompareReports(t *testing.T) {
	oldRep := &Report{Entries: []Entry{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "Retired", NsPerOp: 1000},
	}}
	newRep := &Report{Entries: []Entry{
		{Name: "A", NsPerOp: 1190}, // +19%: inside tolerance
		{Name: "B", NsPerOp: 1300}, // +30%: regression
		{Name: "Fresh", NsPerOp: 5000},
	}}
	regs := compareReports(oldRep, newRep, 0.20)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].Name != "B" || regs[0].Fraction < 0.29 || regs[0].Fraction > 0.31 {
		t.Fatalf("regression = %+v", regs[0])
	}
	// Faster is never a regression; looser tolerance passes everything.
	if regs := compareReports(oldRep, newRep, 0.50); len(regs) != 0 {
		t.Fatalf("50%% tolerance flagged %+v", regs)
	}
}

func TestCompareIgnoresZeroBaseline(t *testing.T) {
	oldRep := &Report{Entries: []Entry{{Name: "A", NsPerOp: 0}}}
	newRep := &Report{Entries: []Entry{{Name: "A", NsPerOp: 100}}}
	if regs := compareReports(oldRep, newRep, 0.2); len(regs) != 0 {
		t.Fatalf("zero baseline flagged %+v", regs)
	}
}
