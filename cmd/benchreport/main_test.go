package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeVectorsWorkers/workers=1-8         	     100	    643345 ns/op	  262144 B/op	     120 allocs/op
BenchmarkEncodeVectorsWorkers/workers=4-8         	     100	    180000 ns/op	  262144 B/op	     130 allocs/op
BenchmarkDecodeBatch/slots=32/mode=batch-8        	     310	   3747009 ns/op	  198784 B/op	     857 allocs/op
BenchmarkDecodeBatch/slots=32/mode=perslot        	      15	  75091930 ns/op	 3802885 B/op	   16608 allocs/op
PASS
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	return parseSampleOpts(t, text, parseOpts{})
}

func parseSampleOpts(t *testing.T, text string, opts parseOpts) *Report {
	t.Helper()
	rep, err := parse(strings.Split(text, "\n"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseRecordsEveryEntry(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if rep.CPU == "" {
		t.Error("cpu line not captured")
	}
	want := map[string]float64{
		"EncodeVectorsWorkers/workers=1":    643345,
		"EncodeVectorsWorkers/workers=4":    180000,
		"DecodeBatch/slots=32/mode=batch":   3747009,
		"DecodeBatch/slots=32/mode=perslot": 75091930,
	}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d: %+v", len(rep.Entries), len(want), rep.Entries)
	}
	for _, e := range rep.Entries {
		ns, ok := want[e.Name]
		if !ok {
			t.Errorf("unexpected entry %q (GOMAXPROCS suffix not stripped?)", e.Name)
			continue
		}
		if e.NsPerOp != ns {
			t.Errorf("%s: ns/op = %g, want %g", e.Name, e.NsPerOp, ns)
		}
	}
	// Alloc columns parse when present.
	for _, e := range rep.Entries {
		if e.Name == "DecodeBatch/slots=32/mode=batch" && (e.BytesPerOp != 198784 || e.AllocsPerOp != 857) {
			t.Errorf("alloc columns = %d B/op %d allocs/op", e.BytesPerOp, e.AllocsPerOp)
		}
	}
}

func TestParseWorkersSweepSpeedups(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d workers-sweep benchmarks, want 1", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "EncodeVectorsWorkers" {
		t.Fatalf("sweep name = %q", b.Name)
	}
	if s := b.Speedups["workers=4"]; s < 3.5 || s > 3.6 {
		t.Errorf("speedup at 4 workers = %g, want ~3.574", s)
	}
}

func TestParseNoSweepStillSucceeds(t *testing.T) {
	// A suite without workers= sub-benchmarks (the batch-decode suite)
	// must produce a valid entries-only report.
	rep := parseSample(t, "BenchmarkDotAcc/n=100/kernel=dotacc-8  100  140 ns/op\n")
	if len(rep.Entries) != 1 || len(rep.Benchmarks) != 0 {
		t.Fatalf("entries=%d benchmarks=%d", len(rep.Entries), len(rep.Benchmarks))
	}
}

func TestParseNoBenchLinesFails(t *testing.T) {
	if _, err := parse([]string{"PASS", "ok  repro  1.2s"}, parseOpts{}); err == nil {
		t.Fatal("no benchmark lines accepted")
	}
}

// TestTargetMetOnlyOnMultiCore pins the no-silent-false contract: on a
// single-core host target_met is absent from the JSON entirely; with
// cores the verdict appears, judged against the host-scaled target.
func TestTargetMetOnlyOnMultiCore(t *testing.T) {
	single := parseSampleOpts(t, sampleOutput, parseOpts{cores: 1})
	if single.TargetMet != nil {
		t.Errorf("1-core host emitted target_met = %v, want omitted", *single.TargetMet)
	}
	if single.MaxSpeedup < 3.5 {
		t.Errorf("max speedup %g not recorded on 1-core host", single.MaxSpeedup)
	}
	if single.Note == "" {
		t.Error("1-core host report carries no interpretation note")
	}

	quad := parseSampleOpts(t, sampleOutput, parseOpts{cores: 4})
	if quad.TargetMet == nil || !*quad.TargetMet {
		t.Fatalf("4-core host with 3.57x speedup: target_met = %v, want true", quad.TargetMet)
	}
	if quad.EffectiveTarget != 2.0 {
		t.Errorf("effective target = %g, want 2.0 (4 cores, 4 workers)", quad.EffectiveTarget)
	}

	// Two cores cannot show 2x: the bar scales to 0.75*2 = 1.5.
	dual := parseSampleOpts(t, sampleOutput, parseOpts{cores: 2})
	if dual.EffectiveTarget != 1.5 {
		t.Errorf("effective target on 2 cores = %g, want 1.5", dual.EffectiveTarget)
	}
}

// TestOldBaselineWithBoolTargetMetParses guards -compare against reports
// written before target_met became optional.
func TestOldBaselineWithBoolTargetMetParses(t *testing.T) {
	var rep Report
	old := `{"goos":"linux","cores":1,"entries":[{"name":"A","iterations":1,"ns_per_op":10}],"target_speedup":2,"target_met":false}`
	if err := json.Unmarshal([]byte(old), &rep); err != nil {
		t.Fatalf("old baseline rejected: %v", err)
	}
	if rep.TargetMet == nil || *rep.TargetMet {
		t.Fatalf("target_met = %v, want false", rep.TargetMet)
	}
}

func TestComputeRatios(t *testing.T) {
	rep := parseSample(t, strings.Join([]string{
		"BenchmarkDecodeBatch/slots=32/mode=batch-8    310  1000 ns/op",
		"BenchmarkDecodeBatch/slots=32/mode=perslot-8   15  8000 ns/op",
		"BenchmarkDecodeBatch/slots=8/mode=batch-8     310  1000 ns/op",
		"BenchmarkDecodeBatch/slots=8/mode=perslot-8    15  3000 ns/op",
		"BenchmarkWireCodec/params=1000/enc=json-8     100  9000 ns/op",
		"BenchmarkWireCodec/params=1000/enc=binary-8   100  1000 ns/op",
		"BenchmarkRoundPipelined-8                      10  2000 ns/op",
		"BenchmarkRoundLockstep-8                       10  8000 ns/op",
		"BenchmarkFleetFanIn/mode=relay-8               10  6000 ns/op",
		"BenchmarkFleetFanIn/mode=gather-8              10  5000 ns/op",
	}, "\n"))
	// Minimum across pairs: slots=8 gives 3x, slots=32 gives 8x.
	if r := rep.Ratios["batch_vs_perslot"]; r != 3 {
		t.Errorf("batch_vs_perslot = %g, want 3 (conservative pair)", r)
	}
	if r := rep.Ratios["binary_vs_json"]; r != 9 {
		t.Errorf("binary_vs_json = %g, want 9", r)
	}
	if r := rep.Ratios["pipelined_vs_lockstep"]; r != 4 {
		t.Errorf("pipelined_vs_lockstep = %g, want 4", r)
	}
	if r := rep.Ratios["fleet_gather_vs_relay"]; r != 1.2 {
		t.Errorf("fleet_gather_vs_relay = %g, want 1.2", r)
	}
	if _, ok := rep.Ratios["nonexistent"]; ok {
		t.Error("phantom ratio derived")
	}
}

// TestMatrixModeKeepsProcs pins -procs: the same benchmark at different
// GOMAXPROCS stays distinct, workers sweeps group per procs setting, and
// a suffix-less line (GOMAXPROCS=1) lands under procs=1.
func TestMatrixModeKeepsProcs(t *testing.T) {
	rep := parseSampleOpts(t, strings.Join([]string{
		"BenchmarkFig3VehiclesWorkers/workers=1  3  9000 ns/op",
		"BenchmarkFig3VehiclesWorkers/workers=4  3  8500 ns/op",
		"BenchmarkFig3VehiclesWorkers/workers=1-4  3  9000 ns/op",
		"BenchmarkFig3VehiclesWorkers/workers=4-4  3  3000 ns/op",
	}, "\n"), parseOpts{procsSuffix: true, cores: 4})
	names := map[string]bool{}
	for _, e := range rep.Entries {
		names[e.Name] = true
	}
	for _, want := range []string{
		"Fig3VehiclesWorkers/workers=1/procs=1",
		"Fig3VehiclesWorkers/workers=4/procs=4",
	} {
		if !names[want] {
			t.Errorf("entry %q missing: have %v", want, names)
		}
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d sweep groups, want 2 (one per procs): %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// The procs=4 group shows 3x; procs=1 shows ~1x. The headline ratio
	// must come from the parallel run, not be averaged away.
	if rep.MaxSpeedup != 3 {
		t.Errorf("max speedup = %g, want 3", rep.MaxSpeedup)
	}
	if rep.TargetMet == nil || !*rep.TargetMet {
		t.Errorf("target_met = %v, want true at 3x on 4 cores", rep.TargetMet)
	}
}

func TestParseRepeatedNamesKeepLast(t *testing.T) {
	rep := parseSample(t, strings.Join([]string{
		"BenchmarkX/a=1-8  100  500 ns/op",
		"BenchmarkX/a=1-8  100  400 ns/op",
	}, "\n"))
	if len(rep.Entries) != 1 || rep.Entries[0].NsPerOp != 400 {
		t.Fatalf("entries = %+v, want one entry at 400 ns/op", rep.Entries)
	}
}

func TestCompareReports(t *testing.T) {
	oldRep := &Report{Entries: []Entry{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "Retired", NsPerOp: 1000},
	}}
	newRep := &Report{Entries: []Entry{
		{Name: "A", NsPerOp: 1190}, // +19%: inside tolerance
		{Name: "B", NsPerOp: 1300}, // +30%: regression
		{Name: "Fresh", NsPerOp: 5000},
	}}
	regs := compareReports(oldRep, newRep, 0.20)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].Name != "B" || regs[0].Fraction < 0.29 || regs[0].Fraction > 0.31 {
		t.Fatalf("regression = %+v", regs[0])
	}
	// Faster is never a regression; looser tolerance passes everything.
	if regs := compareReports(oldRep, newRep, 0.50); len(regs) != 0 {
		t.Fatalf("50%% tolerance flagged %+v", regs)
	}
}

func TestCompareIgnoresZeroBaseline(t *testing.T) {
	oldRep := &Report{Entries: []Entry{{Name: "A", NsPerOp: 0}}}
	newRep := &Report{Entries: []Entry{{Name: "A", NsPerOp: 100}}}
	if regs := compareReports(oldRep, newRep, 0.2); len(regs) != 0 {
		t.Fatalf("zero baseline flagged %+v", regs)
	}
}
