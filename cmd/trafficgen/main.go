// Command trafficgen generates the synthetic São Paulo-style urban-traffic
// dataset (see internal/traffic and DESIGN.md §2) as CSV.
//
// Usage:
//
//	trafficgen [-rows 2500] [-seed 1] [-noise 0.05] [-out traffic.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/traffic"
)

func main() {
	rows := flag.Int("rows", 2500, "number of samples")
	seed := flag.Int64("seed", 1, "generator seed")
	noise := flag.Float64("noise", 0, "latent noise std (0 = default 0.05)")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	ds, err := traffic.Generate(traffic.GenConfig{Rows: *rows, Seed: *seed, NoiseStd: *noise})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trafficgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
}
