package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newFloatPurityAnalyzer forbids floating-point arithmetic in the exact
// packages — the ones whose entire purpose is that every operation is a
// field operation, so Reed–Solomon decoding recovers results bit-exactly.
// A float64 sneaking into a decode path turns "exact" into "usually
// close", which defeats error identification (a residual of 1e-12 is a
// rounding artefact or a malicious vehicle — exact arithmetic is what
// tells them apart).
//
// Functions whose signature mentions a floating-point type are exempt:
// they are declared conversion boundaries (fixed-point encode/decode, the
// real-valued robust decoder), where float arithmetic is the job.
// Comparisons are allowed everywhere; only arithmetic is flagged.
func newFloatPurityAnalyzer(exact map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "floatpurity",
		Doc: "forbid float arithmetic in exact-arithmetic packages, outside functions " +
			"whose signature declares a float boundary",
		Run: func(pass *Pass) error {
			if !exact[pass.Pkg.Path] {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				exempt := exemptRanges(pass, f)
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.BinaryExpr:
						switch n.Op {
						case token.ADD, token.SUB, token.MUL, token.QUO:
							if !inRanges(exempt, n.OpPos) && (isFloat(pass, n.X) || isFloat(pass, n.Y)) {
								pass.Reportf(n.OpPos, "float %s in exact-arithmetic package %s; compute over GF(p) or declare a float boundary in the function signature", n.Op, pass.Pkg.Path)
							}
						}
					case *ast.AssignStmt:
						switch n.Tok {
						case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
							for _, lhs := range n.Lhs {
								if !inRanges(exempt, n.TokPos) && isFloat(pass, lhs) {
									pass.Reportf(n.TokPos, "float %s in exact-arithmetic package %s; compute over GF(p) or declare a float boundary in the function signature", n.Tok, pass.Pkg.Path)
								}
							}
						}
					case *ast.UnaryExpr:
						if n.Op == token.SUB && !inRanges(exempt, n.OpPos) && isFloat(pass, n.X) {
							pass.Reportf(n.OpPos, "float negation in exact-arithmetic package %s; compute over GF(p) or declare a float boundary in the function signature", pass.Pkg.Path)
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

// defaultFloatExact lists the packages where exactness is the invariant.
func defaultFloatExact() map[string]bool {
	return map[string]bool{
		"repro/internal/field":       true,
		"repro/internal/reedsolomon": true,
		"repro/internal/fixedpoint":  true,
	}
}

type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p <= r.hi {
			return true
		}
	}
	return false
}

// exemptRanges returns the body spans of every function (declaration or
// literal) whose signature mentions a float type — declared boundaries.
func exemptRanges(pass *Pass, f *ast.File) []posRange {
	var out []posRange
	ast.Inspect(f, func(n ast.Node) bool {
		var typeExpr ast.Expr
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			typeExpr, body = n.Name, n.Body
		case *ast.FuncLit:
			typeExpr, body = n.Type, n.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		t := pass.TypeOf(typeExpr)
		if id, ok := typeExpr.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				t = obj.Type()
			}
		}
		if sig, ok := t.(*types.Signature); ok && signatureHasFloat(sig) {
			out = append(out, posRange{lo: body.Pos(), hi: body.End()})
		}
		return true
	})
	return out
}

// signatureHasFloat reports whether a param or result carries a float.
func signatureHasFloat(sig *types.Signature) bool {
	for _, tuple := range []*types.Tuple{sig.Params(), sig.Results()} {
		for i := 0; i < tuple.Len(); i++ {
			if containsFloat(tuple.At(i).Type(), 0) {
				return true
			}
		}
	}
	return false
}

// containsFloat looks through pointers, slices, arrays, and maps for a
// floating-point basic type. It does not look inside named struct types:
// returning a struct that happens to hold a float field is not a declared
// float boundary.
func containsFloat(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	switch t := types.Unalias(t).(type) {
	case *types.Basic:
		return t.Kind() == types.Float32 || t.Kind() == types.Float64
	case *types.Pointer:
		return containsFloat(t.Elem(), depth+1)
	case *types.Slice:
		return containsFloat(t.Elem(), depth+1)
	case *types.Array:
		return containsFloat(t.Elem(), depth+1)
	case *types.Map:
		return containsFloat(t.Key(), depth+1) || containsFloat(t.Elem(), depth+1)
	case *types.Named:
		if basic, ok := t.Underlying().(*types.Basic); ok {
			return basic.Kind() == types.Float32 || basic.Kind() == types.Float64
		}
	}
	return false
}

// isFloat reports whether e has (typed) float32 or float64 type. Untyped
// constant expressions are excluded: they are evaluated exactly at compile
// time as arbitrary-precision rationals.
func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := types.Unalias(t.Underlying()).(*types.Basic)
	if !ok {
		return false
	}
	return basic.Kind() == types.Float32 || basic.Kind() == types.Float64
}
