package main

import (
	"go/ast"
	"go/types"
)

// rngConstructors are the math/rand functions that build an explicitly
// seeded generator — fine as long as the seed is not wall-clock time.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, // math/rand
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// newDeterminismAnalyzer keeps figure reproduction bit-reproducible in the
// experiment packages: every random draw must come from a *rand.Rand
// seeded by the scenario configuration. Two things break that:
//
//   - seeding from time.Now() — the classic rand.NewSource(time.Now().
//     UnixNano()) makes every run a different experiment;
//   - the package-level math/rand functions (rand.Intn, rand.Float64, …),
//     whose shared global source is randomly seeded since Go 1.20.
func newDeterminismAnalyzer(reproducible map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "forbid time-seeded and auto-seeded global math/rand use in experiment " +
			"packages, so figure generation stays bit-reproducible",
		Run: func(pass *Pass) error {
			if !reproducible[pass.Pkg.Path] {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					pkg, name := mathRandCallee(pass, call)
					if pkg == "" {
						return true
					}
					if rngConstructors[name] {
						if argsContainTimeNow(pass, call) {
							pass.Reportf(call.Pos(), "time-seeded RNG makes figure generation non-reproducible; seed %s.%s from the scenario configuration", pkg, name)
							return false // one finding for the whole construction chain
						}
						return true
					}
					pass.Reportf(call.Pos(), "%s.%s uses the auto-seeded global source, which is non-reproducible; draw from a *rand.Rand seeded by the scenario configuration", pkg, name)
					return true
				})
			}
			return nil
		},
	}
}

// defaultReproducible lists the packages that regenerate paper figures.
func defaultReproducible() map[string]bool {
	return map[string]bool{
		"repro/internal/experiments": true,
	}
}

// mathRandCallee returns the short package name and function name when
// call invokes a package-level function of math/rand or math/rand/v2,
// and "" otherwise (methods on a *rand.Rand value do not qualify).
func mathRandCallee(pass *Pass, call *ast.CallExpr) (pkg, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	path := pkgName.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return "", ""
	}
	if _, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); !ok {
		return "", "" // type or var reference, not a call target
	}
	return pkgName.Name(), sel.Sel.Name
}

// argsContainTimeNow reports whether any argument subtree calls time.Now.
func argsContainTimeNow(pass *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok && pkgName.Imported().Path() == "time" {
				found = true
				return false
			}
			return true
		})
	}
	return found
}
