package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// loadPackages type-checks every package matching patterns (resolved in
// dir) and returns them ready for analysis. Only the packages named by
// the patterns are parsed; their dependencies — stdlib and intra-module
// alike — are imported from compiler export data, which `go list -export
// -deps` places in the build cache. This keeps the loader stdlib-only
// (no golang.org/x/tools) while staying module-aware and fast.
func loadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lcofl-lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lcofl-lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lcofl-lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lcofl-lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
