package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a file and returns the body of its first
// function declaration.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// hasCycle reports whether any reachable block lies on a cycle.
func hasCycle(c *cfg) bool {
	cyc := c.inCycle()
	for _, b := range c.reachable() {
		if cyc[b.index] {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	c := buildCFG(parseBody(t, `package p
func f() { a(); b(); c() }
func a(); func b(); func c()`))
	if hasCycle(c) {
		t.Error("straight-line function reported cyclic")
	}
	if got := len(c.entry.nodes); got != 3 {
		t.Errorf("entry block holds %d nodes, want 3", got)
	}
}

func TestCFGLoopIsCyclic(t *testing.T) {
	c := buildCFG(parseBody(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}`))
	if !hasCycle(c) {
		t.Error("for loop not detected as cyclic")
	}
	// The code after the loop (the synthetic exit) must still be
	// reachable, and must not itself be in the cycle.
	cyc := c.inCycle()
	if cyc[c.exit.index] {
		t.Error("exit block reported inside the loop cycle")
	}
}

func TestCFGReturnReachesExit(t *testing.T) {
	c := buildCFG(parseBody(t, `package p
func f(p bool) int {
	if p {
		return 1
	}
	return 2
}`))
	if len(c.exit.preds) < 2 {
		t.Errorf("exit has %d predecessors, want both returns", len(c.exit.preds))
	}
	if hasCycle(c) {
		t.Error("branchy function reported cyclic")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// The labeled break must target the OUTER loop's exit. Here every
	// trip through the inner body takes the break, so neither loop has
	// a reachable back edge — the CFG must reflect that, and the exit
	// must stay reachable through the break.
	c := buildCFG(parseBody(t, `package p
func f(xs []int) {
outer:
	for range xs {
		for {
			break outer
		}
	}
}`))
	if hasCycle(c) {
		t.Error("unconditional labeled break still produced a reachable cycle")
	}
	if len(c.exit.preds) == 0 {
		t.Error("labeled break left the exit unreachable")
	}
	// With a conditional break, the inner back edge is live again.
	c2 := buildCFG(parseBody(t, `package p
func f(xs []int, p bool) {
outer:
	for range xs {
		for {
			if p {
				break outer
			}
		}
	}
}`))
	if !hasCycle(c2) {
		t.Error("conditional labeled break erased the loop cycle")
	}
}

func TestCFGSelectAndSwitch(t *testing.T) {
	c := buildCFG(parseBody(t, `package p
func f(ch chan int, n int) int {
	switch n {
	case 0:
		return 0
	default:
	}
	select {
	case v := <-ch:
		return v
	default:
	}
	return n
}`))
	if hasCycle(c) {
		t.Error("switch+select reported cyclic")
	}
	if len(c.exit.preds) < 3 {
		t.Errorf("exit has %d predecessors, want the three returns", len(c.exit.preds))
	}
}

// TestCFGRangeBodySeparate pins the contract walkers rely on: a
// RangeStmt node stored in a header block must not drag its body
// statements along (they live in their own blocks).
func TestCFGRangeBodySeparate(t *testing.T) {
	c := buildCFG(parseBody(t, `package p
func f(m map[int]int) {
	for k := range m {
		_ = k
	}
}`))
	for _, b := range c.blocks {
		for _, n := range b.nodes {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				continue
			}
			for _, other := range c.blocks {
				for _, on := range other.nodes {
					if as, ok := on.(*ast.AssignStmt); ok && as.Pos() > rs.Pos() && as.End() < rs.End() {
						return // body statement found in its own block: contract holds
					}
				}
			}
			t.Fatal("range body statement not placed in a separate block")
		}
	}
	t.Fatal("no RangeStmt header found in any block")
}

// TestDataflowMustMeet runs the generic engine with an intersection
// lattice over a diamond: a fact set on only one branch must not
// survive the join.
func TestDataflowMustMeet(t *testing.T) {
	body := parseBody(t, `package p
func f(p bool) {
	if p {
		lock()
	}
	use()
}
func lock(); func use()`)
	c := buildCFG(body)
	in := dataflow(c, lockSet{},
		func(b *block, s lockSet) lockSet {
			out := s.clone()
			for _, n := range b.nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					if ce, ok := x.(*ast.CallExpr); ok {
						if id, ok := ce.Fun.(*ast.Ident); ok && id.Name == "lock" {
							out["mu"] = lockExcl
						}
					}
					return true
				})
			}
			return out
		},
		meetLocks,
	)
	st, ok := in[c.exit]
	if !ok {
		t.Fatal("exit block never reached by the fixpoint")
	}
	if _, held := st["mu"]; held {
		t.Error("must-analysis kept a fact set on only one branch")
	}
}
