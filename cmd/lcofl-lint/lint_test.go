package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one package from testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := loadPackages(".", []string{"./testdata/src/" + name})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for fixture %s, want 1", len(pkgs), name)
	}
	return pkgs[0]
}

// want is one expected diagnostic: a message substring at a file:line.
type want struct {
	file      string
	line      int
	substring string
}

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

// parseWants scans the fixture sources for // want "substring" comments.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
				wants = append(wants, want{file: file, line: i + 1, substring: q[1]})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", dir)
	}
	return wants
}

// matchDiagnostics asserts a one-to-one correspondence between diags and
// wants: every expectation fires exactly once, nothing else fires.
func matchDiagnostics(t *testing.T, diags []Diagnostic, wants []want) {
	t.Helper()
	used := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if used[i] || d.Pos.Line != w.line || !strings.Contains(d.Message, w.substring) {
				continue
			}
			if filepath.Base(d.Pos.Filename) != filepath.Base(w.file) {
				continue
			}
			used[i] = true
			continue outer
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substring)
		}
	}
}

func TestAnalyzersOnFixtures(t *testing.T) {
	tests := []struct {
		fixture  string
		analyzer func(pkgPath string) *Analyzer
	}{
		{"fieldarith", func(string) *Analyzer { return newFieldArithAnalyzer() }},
		{"cryptorand", func(p string) *Analyzer { return newCryptoRandAnalyzer(map[string]bool{p: true}) }},
		{"droppederr", func(string) *Analyzer { return newDroppedErrAnalyzer(nil) }},
		{"floatpurity", func(p string) *Analyzer { return newFloatPurityAnalyzer(map[string]bool{p: true}) }},
		{"determinism", func(p string) *Analyzer { return newDeterminismAnalyzer(map[string]bool{p: true}) }},
		{"rawgo", func(string) *Analyzer { return newRawGoAnalyzer(nil) }},
		{"wallclock", func(string) *Analyzer { return newWallClockAnalyzer(nil) }},
		{"lockguard", func(p string) *Analyzer { return newLockGuardAnalyzer(map[string]bool{p: true}) }},
		{"maporder", func(p string) *Analyzer { return newMapOrderAnalyzer(map[string]bool{p: true}) }},
		{"obshandle", func(p string) *Analyzer { return newObsHandleAnalyzer(map[string]bool{p: true}) }},
		{"groupwait", func(string) *Analyzer { return newGroupWaitAnalyzer() }},
	}
	for _, tc := range tests {
		t.Run(tc.fixture, func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture)
			diags, err := runAnalyzers([]*Package{pkg}, []*Analyzer{tc.analyzer(pkg.Path)})
			if err != nil {
				t.Fatal(err)
			}
			matchDiagnostics(t, diags, parseWants(t, pkg.Dir))
		})
	}
}

func TestSuppressionMachinery(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags, err := runAnalyzers([]*Package{pkg}, []*Analyzer{newDroppedErrAnalyzer(nil)})
	if err != nil {
		t.Fatal(err)
	}
	var malformed, dropped []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			malformed = append(malformed, d)
		case "droppederr":
			dropped = append(dropped, d)
		default:
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "malformed suppression") {
		t.Errorf("want exactly one malformed-suppression report, got %v", malformed)
	}
	// Malformed and wrong-analyzer directives must not suppress; the
	// comma-separated list must. That leaves exactly two findings.
	if len(dropped) != 2 {
		t.Errorf("want 2 droppederr findings (malformed + wrong-analyzer lines), got %d: %v", len(dropped), dropped)
	}
}

// TestSelfClean runs the full default suite over the linter's own package:
// the tool must hold itself to its rules.
func TestSelfClean(t *testing.T) {
	pkgs, err := loadPackages(".", []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runAnalyzers(pkgs, defaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("lcofl-lint flags itself: %s", d)
	}
}

// TestChaosLayerClean runs the full default suite over the fault-injection
// package: the chaos layer must itself obey the invariants it perturbs —
// delays through an injected obs.Sleeper (wallclock), no bare goroutines
// (rawgo), and seeded randomness only (determinism).
func TestChaosLayerClean(t *testing.T) {
	pkgs, err := loadPackages(".", []string{"repro/internal/chaos"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want internal/chaos alone", len(pkgs))
	}
	diags, err := runAnalyzers(pkgs, defaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("internal/chaos flagged: %s", d)
	}
}

// TestSuppressionEdgeCases pins the //lint:ignore corner cases on the
// suppressedge fixture: unknown analyzer names are reported, reason-less
// directives are malformed and inert, a directive two lines above its
// target does not apply, and a directive suppresses only the analyzers
// it names. Expectations are programmatic because the directives would
// collide with // want comments on the same lines.
func TestSuppressionEdgeCases(t *testing.T) {
	pkg := loadFixture(t, "suppressedge")
	diags, err := runAnalyzers([]*Package{pkg},
		[]*Analyzer{newDroppedErrAnalyzer(nil), newRawGoAnalyzer(nil)})
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, d := range diags {
		count[d.Analyzer]++
	}
	var unknown, malformed int
	for _, d := range diags {
		if d.Analyzer != "lint" {
			continue
		}
		switch {
		case strings.Contains(d.Message, `unknown analyzer "nosuchanalyzer"`):
			unknown++
		case strings.Contains(d.Message, "malformed suppression"):
			malformed++
		default:
			t.Errorf("unexpected lint diagnostic: %s", d)
		}
	}
	if unknown != 1 {
		t.Errorf("want 1 unknown-analyzer report, got %d: %v", unknown, diags)
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed-suppression report, got %d: %v", malformed, diags)
	}
	// droppederr fires in UnknownName (directive names nothing valid),
	// MissingReason (malformed directives are inert), WrongLine (out of
	// the suppression window) and PartialSuppression (directive names
	// rawgo only); FullySuppressed stays silent.
	if count["droppederr"] != 4 {
		t.Errorf("want 4 droppederr findings, got %d: %v", count["droppederr"], diags)
	}
	// The one bare go statement is suppressed by name.
	if count["rawgo"] != 0 {
		t.Errorf("want 0 rawgo findings, got %d: %v", count["rawgo"], diags)
	}
}

// TestLintSelfClean asserts the whole repository passes the full default
// suite with zero diagnostics — the CFG analyzers included — so a future
// PR cannot silently regress the lock, ordering, obs-handle or
// goroutine-join invariants.
func TestLintSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every package; skipped in -short")
	}
	pkgs, err := loadPackages(".", []string{"repro/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the full module", len(pkgs))
	}
	diags, err := runAnalyzers(pkgs, defaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestAllowedPackageCarveOut pins the allow-list mechanism from the
// other side: the same fixture sources that produce diagnostics above
// must produce NONE when their package path is in the analyzer's allowed
// map — the mechanism the defaults use to exempt internal/obs/debugz
// (a net/http accept loop and an operator-facing /healthz wall-clock
// stamp) without per-line suppressions.
func TestAllowedPackageCarveOut(t *testing.T) {
	tests := []struct {
		fixture  string
		analyzer func(allowed map[string]bool) *Analyzer
	}{
		{"rawgo", newRawGoAnalyzer},
		{"wallclock", newWallClockAnalyzer},
	}
	for _, tc := range tests {
		t.Run(tc.fixture, func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture)
			diags, err := runAnalyzers([]*Package{pkg},
				[]*Analyzer{tc.analyzer(map[string]bool{pkg.Path: true})})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("allowed package still diagnosed: %s", d)
			}
		})
	}
}

// TestDiagnosticOrdering checks the driver sorts findings by position.
func TestDiagnosticOrdering(t *testing.T) {
	pkg := loadFixture(t, "fieldarith")
	diags, err := runAnalyzers([]*Package{pkg}, []*Analyzer{newFieldArithAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
	if len(diags) == 0 {
		t.Fatal("fieldarith fixture produced no diagnostics")
	}
}
