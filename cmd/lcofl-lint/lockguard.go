package main

// lockguard enforces the repo's mutex annotation discipline with a
// must-hold dataflow analysis over the CFG (DESIGN.md §12).
//
// Discipline:
//
//   - A struct field annotated `// guarded by <mu>` (in its doc or line
//     comment) may be read only while <mu> is held (Lock or RLock) and
//     written only while <mu> is held exclusively (Lock), where <mu> is
//     a sync.Mutex or sync.RWMutex field of the same struct. The same
//     annotation works on var declarations for function-local state
//     shared with closures.
//   - In the configured packages, every mutex field or variable must
//     either be referenced by at least one `guarded by` annotation or
//     carry its own `guards ...` / `serializes ...` comment — an
//     undocumented mutex is a finding, so new concurrent state cannot
//     land unannotated.
//
// The analysis is intraprocedural and per-path: a field access is clean
// only when EVERY path reaching it holds the lock (intersection meet).
// Function literals are analyzed separately with an empty entry lock
// set, because they may run on another goroutine. A deferred Unlock is
// a no-op for the analysis — the lock is held until function exit.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

var (
	guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	lockDocRe   = regexp.MustCompile(`\b(guards|serializes)\b`)
)

// defaultLockGuardPkgs lists the packages where every mutex must be
// annotated (the mutex-heavy concurrent core).
func defaultLockGuardPkgs() map[string]bool {
	return map[string]bool{
		"repro/internal/node":      true,
		"repro/internal/chaos":     true,
		"repro/internal/obs":       true,
		"repro/internal/transport": true,
		"repro/internal/parallel":  true,
	}
}

func newLockGuardAnalyzer(annotate map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "lockguard",
		Doc:  "fields annotated 'guarded by <mu>' are only accessed with <mu> held; every mutex in the concurrent core is annotated",
		Run:  func(p *Pass) error { return runLockGuard(p, annotate) },
	}
}

// lockKind is the strength of a held lock.
type lockKind int

const (
	lockRead lockKind = 1 // RLock
	lockExcl lockKind = 2 // Lock
)

// lockSet maps a rendered mutex path ("s.mu", "mu") to the strength it
// is held with on every path reaching the current point.
type lockSet map[string]lockKind

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// meetLocks intersects from into into (nil into means "first
// predecessor seen": adopt from). Reports whether into changed.
func meetLocks(into, from lockSet) (lockSet, bool) {
	if into == nil {
		return from.clone(), true
	}
	changed := false
	for k, v := range into {
		fv, ok := from[k]
		if !ok {
			delete(into, k)
			changed = true
			continue
		}
		if fv < v {
			into[k] = fv
			changed = true
		}
	}
	return into, changed
}

// lockGuardState is the per-package annotation model.
type lockGuardState struct {
	pass *Pass
	// guardedField maps a struct field object to the name of the mutex
	// field (same struct) guarding it.
	guardedField map[types.Object]string
	// guardedVar maps a variable object to the name of the mutex
	// variable guarding it (both in the same scope).
	guardedVar map[types.Object]string
	// mutexRefd marks mutex objects referenced by some annotation.
	mutexRefd map[types.Object]bool
}

func runLockGuard(p *Pass, annotate map[string]bool) error {
	st := &lockGuardState{
		pass:         p,
		guardedField: map[types.Object]string{},
		guardedVar:   map[types.Object]string{},
		mutexRefd:    map[types.Object]bool{},
	}
	// Pass 1: collect and validate annotations across the package.
	for _, f := range p.Pkg.Files {
		st.collectStructAnnotations(f)
		st.collectVarAnnotations(f)
	}
	// Pass 2: in configured packages, demand documentation on every mutex.
	if annotate[p.Pkg.Path] {
		for _, f := range p.Pkg.Files {
			st.checkMutexDocumented(f)
		}
	}
	// Pass 3: dataflow enforcement of every annotation.
	for _, f := range p.Pkg.Files {
		for _, fb := range collectFuncBodies(f) {
			st.checkBody(fb.body)
		}
	}
	return nil
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// fieldCommentText concatenates a field's doc and line comments.
func fieldCommentText(doc, line *ast.CommentGroup) string {
	var b strings.Builder
	if doc != nil {
		b.WriteString(doc.Text())
		b.WriteString(" ")
	}
	if line != nil {
		b.WriteString(line.Text())
	}
	return b.String()
}

func (st *lockGuardState) collectStructAnnotations(f *ast.File) {
	info := st.pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		s, ok := n.(*ast.StructType)
		if !ok || s.Fields == nil {
			return true
		}
		// Index the struct's mutex fields by name for sibling lookups.
		mutexes := map[string]types.Object{}
		for _, fld := range s.Fields.List {
			for _, name := range fld.Names {
				obj := info.Defs[name]
				if obj != nil && isMutexType(obj.Type()) {
					mutexes[name.Name] = obj
				}
			}
		}
		for _, fld := range s.Fields.List {
			m := guardedByRe.FindStringSubmatch(fieldCommentText(fld.Doc, fld.Comment))
			if m == nil {
				continue
			}
			mu, ok := mutexes[m[1]]
			if !ok {
				st.pass.Reportf(fld.Pos(), "guarded by %s: no sync.Mutex/RWMutex field named %s in this struct", m[1], m[1])
				continue
			}
			st.mutexRefd[mu] = true
			for _, name := range fld.Names {
				if obj := info.Defs[name]; obj != nil {
					st.guardedField[obj] = m[1]
				}
			}
		}
		return true
	})
}

func (st *lockGuardState) collectVarAnnotations(f *ast.File) {
	info := st.pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		m := guardedByRe.FindStringSubmatch(fieldCommentText(vs.Doc, vs.Comment))
		if m == nil {
			return true
		}
		for _, name := range vs.Names {
			if obj := info.Defs[name]; obj != nil {
				if isMutexType(obj.Type()) {
					continue // a mutex does not guard itself
				}
				st.guardedVar[obj] = m[1]
			}
		}
		return true
	})
	// Record which mutex VARIABLES the var annotations reference, so an
	// annotated-against mutex var counts as documented.
	for _, mu := range st.guardedVar {
		st.markMutexVarRefd(f, mu)
	}
}

func (st *lockGuardState) markMutexVarRefd(f *ast.File, name string) {
	info := st.pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, id := range vs.Names {
			if id.Name != name {
				continue
			}
			if obj := info.Defs[id]; obj != nil && isMutexType(obj.Type()) {
				st.mutexRefd[obj] = true
			}
		}
		return true
	})
}

func (st *lockGuardState) checkMutexDocumented(f *ast.File) {
	info := st.pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			if n.Fields == nil {
				return true
			}
			for _, fld := range n.Fields.List {
				for _, name := range fld.Names {
					obj := info.Defs[name]
					if obj == nil || !isMutexType(obj.Type()) {
						continue
					}
					if st.mutexRefd[obj] || lockDocRe.MatchString(fieldCommentText(fld.Doc, fld.Comment)) {
						continue
					}
					st.pass.Reportf(name.Pos(), "mutex field %s is not referenced by any 'guarded by' annotation and has no guards/serializes comment", name.Name)
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				obj := info.Defs[name]
				if obj == nil || !isMutexType(obj.Type()) {
					continue
				}
				if st.mutexRefd[obj] || lockDocRe.MatchString(fieldCommentText(n.Doc, n.Comment)) {
					continue
				}
				st.pass.Reportf(name.Pos(), "mutex %s is not referenced by any 'guarded by' annotation and has no guards/serializes comment", name.Name)
			}
		}
		return true
	})
}

// checkBody runs the must-hold fixpoint over one function body and
// reports every guarded access outside its mutex's protection.
func (st *lockGuardState) checkBody(body *ast.BlockStmt) {
	c := buildCFG(body)
	in := dataflow(c, lockSet{},
		func(b *block, s lockSet) lockSet {
			out := s.clone()
			for _, n := range b.nodes {
				st.applyLockOps(n, out)
			}
			return out
		},
		meetLocks,
	)
	for _, b := range c.reachable() {
		s, ok := in[b]
		if !ok {
			continue
		}
		cur := s.clone()
		for _, n := range b.nodes {
			st.checkAccesses(n, cur)
			st.applyLockOps(n, cur)
		}
	}
}

var lockMethods = map[string]lockKind{
	"Lock":    lockExcl,
	"RLock":   lockRead,
	"Unlock":  0,
	"RUnlock": 0,
}

// applyLockOps updates s for every mutex Lock/Unlock call in n.
// Deferred calls are skipped: a deferred Unlock keeps the lock held for
// the rest of the function as far as in-body accesses are concerned.
func (st *lockGuardState) applyLockOps(n ast.Node, s lockSet) {
	walkNode(n, func(n ast.Node, stack []ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ce.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind, isLockOp := lockMethods[sel.Sel.Name]
		if !isLockOp || !isMutexType(st.pass.TypeOf(sel.X)) {
			return true
		}
		for _, a := range stack {
			if _, isDefer := a.(*ast.DeferStmt); isDefer {
				return true
			}
		}
		path := renderPath(sel.X)
		if path == "" {
			return true
		}
		if kind == 0 {
			delete(s, path)
		} else if s[path] < kind {
			s[path] = kind
		}
		return true
	})
}

// checkAccesses reports guarded accesses in n not covered by s.
func (st *lockGuardState) checkAccesses(n ast.Node, s lockSet) {
	info := st.pass.Pkg.Info
	walkNode(n, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			mu, ok := st.guardedField[obj]
			if !ok {
				return true
			}
			base := renderPath(n.X)
			if base == "" {
				return true // untrackable base: stay lenient
			}
			st.reportAccess(n.Pos(), base+"."+n.Sel.Name, base+"."+mu, s[base+"."+mu], isWriteContext(n, stack))
		case *ast.Ident:
			if len(stack) > 0 {
				if p, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && p.Sel == n {
					return true // handled via the SelectorExpr case
				}
			}
			obj := info.Uses[n]
			mu, ok := st.guardedVar[obj]
			if !ok {
				return true
			}
			st.reportAccess(n.Pos(), n.Name, mu, s[mu], isWriteContext(n, stack))
		}
		return true
	})
}

func (st *lockGuardState) reportAccess(pos token.Pos, what, mu string, held lockKind, write bool) {
	switch {
	case held == 0:
		st.pass.Reportf(pos, "%s accessed without holding %s (guarded by annotation)", what, mu)
	case write && held < lockExcl:
		st.pass.Reportf(pos, "%s written while holding only a read lock on %s", what, mu)
	}
}

// isWriteContext reports whether the expression at the top of stack is
// written: an assignment target, an IncDec operand, a range assignment
// target, or has its address taken (the alias may be written).
func isWriteContext(n ast.Node, stack []ast.Node) bool {
	child := n
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return true
			}
		case *ast.RangeStmt:
			return child == ast.Node(p.Key) || child == ast.Node(p.Value)
		case ast.Stmt:
			return false
		}
		child = stack[i]
	}
	return false
}
