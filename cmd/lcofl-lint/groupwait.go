package main

// groupwait: every parallel.Group spawn must be joined — a g.Go with a
// path to function exit on which no g.Wait runs is a leaked goroutine
// (and a swallowed panic, since Group repanics in Wait). This is the
// dataflow half of the rawgo ban: rawgo forces goroutines through
// parallel.Group, groupwait proves the group is actually waited on.
//
// The analysis tracks function-local groups only (`var g
// parallel.Group`, `g := parallel.Group{}`). A group that escapes the
// function — stored in a struct, passed to a call, captured by a
// function literal, aliased via & — is skipped: its lifecycle is the
// escapee's business (obs.RuntimeSampler holds its group in a field
// and joins in Stop, for example). A deferred g.Wait() joins every
// path by construction. Otherwise a may-analysis (union meet) runs the
// pending-spawn set to the synthetic exit block: any group still
// pending there has a leaking path, reported at its first Go call.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

func newGroupWaitAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "groupwait",
		Doc:  "every parallel.Group.Go has a Wait on all paths to function exit",
		Run:  runGroupWait,
	}
}

func runGroupWait(p *Pass) error {
	for _, f := range p.Pkg.Files {
		for _, fb := range collectFuncBodies(f) {
			checkGroupWait(p, fb.body)
		}
	}
	return nil
}

func isGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	s := strings.TrimPrefix(t.String(), "*")
	return strings.HasSuffix(s, "internal/parallel.Group")
}

// groupVar is one tracked local's lifecycle summary.
type groupVar struct {
	escaped      bool
	deferredWait bool
}

func checkGroupWait(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	// Locals declared in THIS body (not in nested literals, which are
	// their own analysis unit).
	vars := map[types.Object]*groupVar{}
	walkNode(body, func(n ast.Node, _ []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Defs[id]; obj != nil && isGroupType(obj.Type()) {
			if _, isVar := obj.(*types.Var); isVar {
				vars[obj] = &groupVar{}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}
	// Escape analysis over the FULL body, nested literals included: a
	// use is benign only as the declaration itself or as the receiver
	// of a direct method call in this body.
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if gv, tracked := vars[obj]; tracked && info.Uses[id] != nil {
				use, deferred := classifyGroupUse(stack)
				switch use {
				case "Wait":
					if deferred {
						gv.deferredWait = true
					}
				case "Go":
					if deferred {
						gv.escaped = true // defer g.Go: out of scope here
					}
				case "":
					gv.escaped = true
				}
				// Any use under a nested function literal escapes: the
				// literal may run on another goroutine or later.
				for _, a := range stack {
					if _, isLit := a.(*ast.FuncLit); isLit {
						gv.escaped = true
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(body, walk)

	tracked := false
	for _, gv := range vars {
		if !gv.escaped && !gv.deferredWait {
			tracked = true
		}
	}
	if !tracked {
		return
	}

	// May-analysis: pending[obj] = position of the first unjoined Go.
	type pending map[types.Object]token.Pos
	c := buildCFG(body)
	in := dataflow(c, pending{},
		func(b *block, s pending) pending {
			out := make(pending, len(s))
			for k, v := range s {
				out[k] = v
			}
			for _, n := range b.nodes {
				applyGroupOps(p, vars, n, out)
			}
			return out
		},
		func(into, from pending) (pending, bool) {
			if into == nil {
				out := make(pending, len(from))
				for k, v := range from {
					out[k] = v
				}
				return out, true
			}
			changed := false
			for k, v := range from {
				if cur, ok := into[k]; !ok || v < cur {
					into[k] = v
					changed = true
				}
			}
			return into, changed
		},
	)
	exitState, ok := in[c.exit]
	if !ok {
		return
	}
	// Deterministic report order for multiple leaked groups.
	var poss []token.Pos
	for obj, pos := range exitState {
		gv := vars[obj]
		if gv.escaped || gv.deferredWait {
			continue
		}
		poss = append(poss, pos)
	}
	sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
	for _, pos := range poss {
		p.Reportf(pos, "parallel.Group.Go without a Wait on every path to function exit")
	}
}

// classifyGroupUse inspects the ancestor stack of a tracked group ident
// and returns the method name for a direct g.<Method>() call ("Go",
// "Wait", or another method), plus whether that call is deferred. An
// empty name means the use is not a direct method call (escape).
func classifyGroupUse(stack []ast.Node) (method string, deferred bool) {
	if len(stack) < 2 {
		return "", false
	}
	sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ce, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || ce.Fun != ast.Expr(sel) {
		return "", false
	}
	for _, a := range stack {
		if ds, isDefer := a.(*ast.DeferStmt); isDefer && ds.Call == ce {
			return sel.Sel.Name, true
		}
	}
	return sel.Sel.Name, false
}

// applyGroupOps updates the pending set for g.Go / g.Wait calls in n.
func applyGroupOps(p *Pass, vars map[types.Object]*groupVar, n ast.Node, s map[types.Object]token.Pos) {
	info := p.Pkg.Info
	walkNode(n, func(n ast.Node, stack []ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ce.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if _, tracked := vars[obj]; !tracked {
			return true
		}
		for _, a := range stack {
			if _, isDefer := a.(*ast.DeferStmt); isDefer {
				return true // deferred ops handled via deferredWait/escape
			}
		}
		switch sel.Sel.Name {
		case "Go":
			if _, already := s[obj]; !already {
				s[obj] = ce.Pos()
			}
		case "Wait":
			delete(s, obj)
		}
		return true
	})
}
