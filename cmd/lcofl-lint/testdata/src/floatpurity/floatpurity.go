// Package floatpurity exercises the floatpurity analyzer: float
// arithmetic in an exact package must be flagged unless the enclosing
// function declares a float boundary in its signature.
package floatpurity

// Scale has no float in its signature, so its internal float arithmetic
// violates exactness.
func Scale(n int) int {
	x := float64(n)
	y := x * 3 // want "float * in exact-arithmetic package"
	y = y + 1  // want "float + in exact-arithmetic package"
	y -= 2     // want "float -= in exact-arithmetic package"
	z := -y    // want "float negation in exact-arithmetic package"
	return int(z)
}

// Boundary declares float64 parameters and results: conversion
// arithmetic is its job and is exempt.
func Boundary(x float64) float64 {
	return x*2 + 1
}

// SliceBoundary is exempt through a composite float type.
func SliceBoundary(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * 0.5
	}
	return out
}

// Closure inherits no exemption from Scale-like context, but its own
// float signature exempts it.
var Closure = func(x float64) float64 { return x / 3 }

// Suppressed documents an intentional boundary computation.
func Suppressed(n int) int {
	x := float64(n)
	//lint:ignore floatpurity fixture demonstrates an acknowledged boundary computation
	return int(x * 2)
}
