// Package obshandle is the fixture for the obshandle analyzer: registry
// lookups (Counter/Gauge/Histogram) belong in constructors — inside a
// loop, inside a literal defined in a loop, or chained straight into a
// method call they re-pay the mutex-guarded map access per event.
package obshandle

import (
	"sync"

	"repro/internal/obs"
)

type worker struct {
	o    *obs.Obs
	cOps *obs.Counter
}

// Lookups at construction are the sanctioned pattern.
func newWorker(o *obs.Obs) *worker {
	return &worker{o: o, cOps: o.Counter("worker.ops")}
}

func (w *worker) goodStep() {
	w.cOps.Inc()
}

func (w *worker) badLoop(n int) {
	for i := 0; i < n; i++ {
		c := w.o.Counter("worker.loop_ops") // want "lookup inside a loop"
		c.Inc()
	}
}

func (w *worker) badChained() {
	w.o.Counter("worker.chained").Inc() // want "chained into a method call"
}

func (w *worker) badGaugeInRange(xs []int) {
	for _, x := range xs {
		g := w.o.Gauge("worker.x") // want "lookup inside a loop"
		g.Set(int64(x))
	}
}

func (w *worker) badLitInLoop(items []int) {
	for range items {
		f := func() {
			c := w.o.Counter("worker.lit") // want "function literal defined in a loop"
			c.Inc()
		}
		f()
	}
}

// Hoisting the lookup out of the loop is the fix.
func (w *worker) hoisted(xs []int) {
	c := w.o.Counter("worker.hoisted")
	for range xs {
		c.Inc()
	}
}

// A lookup stored outside any loop is fine even mid-function.
func (w *worker) storedLate() {
	h := w.o.Histogram("worker.lat", obs.LatencyBuckets())
	h.Observe(1)
}

// Pooled scratch (the zero-alloc decode path): scratch structs carry
// buffers, never registry handles — the owning object resolves its
// handles once at construction and the hot loop only ever touches
// those, so pool Get/Put cycles stay lookup-free.
type scratch struct{ buf []int }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (w *worker) pooledSteps(n int) {
	s := scratchPool.Get().(*scratch)
	s.buf = s.buf[:0]
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, i)
		w.cOps.Inc() // construction-resolved handle: clean in the loop
	}
	scratchPool.Put(s)
}
