// Package determinism exercises the determinism analyzer: wall-clock
// seeding and the auto-seeded global math/rand source must be flagged;
// configuration-seeded generators must not.
package determinism

import (
	"math/rand"
	"time"
)

// TimeSeeded is the classic non-reproducible construction.
func TimeSeeded() int {
	rng := rand.New(rand.NewSource(time.Now().UnixNano())) // want "time-seeded RNG"
	return rng.Intn(10)
}

// GlobalSource draws from the package-level functions, whose shared
// source is randomly seeded since Go 1.20.
func GlobalSource() float64 {
	return rand.Float64() // want "auto-seeded global source"
}

// ConfigSeeded is the reproducible pattern: the seed flows in from the
// scenario configuration.
func ConfigSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Suppressed documents an intentional wall-clock seed.
func Suppressed() int {
	//lint:ignore determinism fixture demonstrates an acknowledged wall-clock seed
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return rng.Intn(10)
}
