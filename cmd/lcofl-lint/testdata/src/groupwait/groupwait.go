// Package groupwait is the fixture for the groupwait analyzer: every
// local parallel.Group spawn needs a Wait on all paths to function
// exit. Escaping groups (stored, passed, captured) are the escapee's
// business and are skipped.
package groupwait

import "repro/internal/parallel"

func neverWaited() {
	var g parallel.Group
	g.Go(func() error { return nil }) // want "without a Wait on every path"
}

func leakyPath(n int) error {
	var g parallel.Group
	g.Go(func() error { return nil }) // want "without a Wait on every path"
	if n > 0 {
		return nil // leaks: this path skips the Wait below
	}
	return g.Wait()
}

func joined() error {
	var g parallel.Group
	g.Go(func() error { return nil })
	return g.Wait()
}

func deferredJoin() {
	var g parallel.Group
	defer g.Wait()
	g.Go(func() error { return nil })
}

func loopSpawn(n int) error {
	var g parallel.Group
	for i := 0; i < n; i++ {
		g.Go(func() error { return nil })
	}
	return g.Wait()
}

func branchJoined(p bool) error {
	var g parallel.Group
	g.Go(func() error { return nil })
	if p {
		return g.Wait()
	}
	return g.Wait()
}

// Escapes: the group's lifecycle belongs to whoever received it.
func escapesByPointer(sink func(*parallel.Group)) {
	var g parallel.Group
	g.Go(func() error { return nil })
	sink(&g)
}

func escapesIntoLiteral() func() error {
	var g parallel.Group
	start := func() { g.Go(func() error { return nil }) }
	start()
	return g.Wait // method value: escape
}

// A struct-held group is tracked by its owner (cf. obs.RuntimeSampler),
// not by this analyzer.
type holder struct{ g parallel.Group }

func (h *holder) start() {
	h.g.Go(func() error { return nil })
}

func (h *holder) stop() error { return h.g.Wait() }

func twoGroups() error {
	var a, b parallel.Group
	a.Go(func() error { return nil }) // want "without a Wait on every path"
	b.Go(func() error { return nil })
	return b.Wait()
}

// The pipelined collect idiom (node's round engine): receiver
// goroutines are spawned per connection, and the collect loop may exit
// early on a labeled break (budget close) — the Wait after the loop
// still covers every path.
func budgetCloseJoined(n, target int) error {
	var g parallel.Group
	for i := 0; i < n; i++ {
		g.Go(func() error { return nil })
	}
	arrived := 0
collect:
	for i := 0; i < n; i++ {
		arrived++
		if arrived >= target {
			break collect
		}
	}
	return g.Wait()
}

// An early return from inside the collect loop skips the join: flagged.
func budgetCloseLeaky(n, target int) error {
	var g parallel.Group
	g.Go(func() error { return nil }) // want "without a Wait on every path"
	for i := 0; i < n; i++ {
		if i >= target {
			return nil // leaks the receivers
		}
	}
	return g.Wait()
}
