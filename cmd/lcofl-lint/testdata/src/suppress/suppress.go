// Package suppress exercises the suppression machinery itself: malformed
// directives are reported and suppress nothing, directives naming the
// wrong analyzer do not apply, and comma-separated lists do.
package suppress

import "errors"

func mayFail() error { return errors.New("boom") }

// Malformed holds a reason-less directive: the driver reports it and the
// call below stays flagged.
func Malformed() {
	//lint:ignore droppederr
	mayFail()
}

// WrongAnalyzer shows a directive naming another analyzer does not apply.
func WrongAnalyzer() {
	//lint:ignore fieldarith the reason names the wrong analyzer
	mayFail()
}

// Multi suppresses through the comma-separated list form.
func Multi() {
	//lint:ignore fieldarith,droppederr fixture demonstrates the list form
	mayFail()
}
