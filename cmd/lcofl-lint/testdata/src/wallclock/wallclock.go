// Package wallclock exercises the wallclock analyzer: direct wall-clock
// reads and blocking sleeps must be flagged; clock/sleeper injection and
// non-blocking scheduling primitives must not.
package wallclock

import "time"

// Clock mirrors obs.Clock: the sanctioned way to observe time.
type Clock interface {
	Now() time.Duration
}

// DirectRead observes the wall clock — non-deterministic under test.
func DirectRead() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

// Elapsed measures against the wall clock twice over.
func Elapsed(t0 time.Time) (time.Duration, time.Duration) {
	return time.Since(t0), time.Until(t0.Add(time.Second)) // want "wall-clock read time.Since" "wall-clock read time.Until"
}

// Injected takes time from a clock — the deterministic pattern.
func Injected(c Clock) time.Duration {
	return c.Now()
}

// Scheduling consumes time without observing it; all of it stays legal.
func Scheduling() {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
	case <-time.After(time.Millisecond):
	}
}

// Sleeper mirrors obs.Sleeper: the sanctioned way to block on time.
type Sleeper interface {
	Sleep(time.Duration)
}

// Blocks stalls the caller on the wall clock — a chaos delay or retry
// backoff written this way makes every test really wait.
func Blocks() {
	time.Sleep(time.Millisecond) // want "blocking time.Sleep outside internal/obs"
}

// InjectedSleep delays through a sleeper — the deterministic pattern.
func InjectedSleep(s Sleeper) {
	s.Sleep(time.Millisecond)
}

// Suppressed documents an acknowledged wall-clock read.
func Suppressed() time.Time {
	//lint:ignore wallclock fixture demonstrates an acknowledged wall-clock read
	return time.Now()
}
