// Package lockguard is the fixture for the lockguard analyzer: fields
// annotated `guarded by <mu>` need the mutex held on every path
// reaching an access, writes need it exclusively, annotations must name
// a real mutex sibling, and unannotated mutexes are themselves flagged.
package lockguard

import "sync"

type counterBox struct {
	mu sync.Mutex // guards n
	n  int        // guarded by mu
}

func (b *counterBox) good() int {
	b.mu.Lock()
	defer b.mu.Unlock() // deferred unlock: the lock is held to the end
	b.n++
	return b.n
}

func (b *counterBox) inlineUnlock() int {
	b.mu.Lock()
	v := b.n
	b.mu.Unlock()
	return v
}

func (b *counterBox) bad() int {
	return b.n // want "b.n accessed without holding b.mu"
}

func (b *counterBox) badAfterUnlock() {
	b.mu.Lock()
	b.n = 1
	b.mu.Unlock()
	b.n = 2 // want "accessed without holding"
}

func (b *counterBox) badOneBranch(p bool) {
	if p {
		b.mu.Lock()
	}
	b.n++ // want "accessed without holding"
	if p {
		b.mu.Unlock()
	}
}

func (b *counterBox) goodLoop(rounds int) {
	for i := 0; i < rounds; i++ {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}
}

type rwBox struct {
	mu sync.RWMutex // guards v
	v  int          // guarded by mu
}

func (b *rwBox) readOK() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func (b *rwBox) writeUnderReadLock() {
	b.mu.RLock()
	b.v = 1 // want "written while holding only a read lock"
	b.mu.RUnlock()
}

func (b *rwBox) writeOK() {
	b.mu.Lock()
	b.v = 2
	b.mu.Unlock()
}

// closures get a fresh (empty) entry lock set: the literal may run on
// another goroutine, so the lock must be taken inside it.
func (b *counterBox) closures() (func(), func()) {
	good := func() {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}
	bad := func() {
		b.n++ // want "accessed without holding"
	}
	return good, bad
}

type badAnnotation struct {
	mu sync.Mutex // guards nothing here, but documented
	// guarded by nosuch
	x int // want "no sync.Mutex/RWMutex field named nosuch"
}

type undocumented struct {
	mu sync.Mutex // want "is not referenced by any"
}

// function-local shared state works through the same annotation.
func localGuard(rounds int) int {
	var (
		mu    sync.Mutex // guards total
		total int        // guarded by mu
	)
	for i := 0; i < rounds; i++ {
		mu.Lock()
		total++
		mu.Unlock()
	}
	return total // want "total accessed without holding mu"
}

// The buffered-conn idiom (transport's framed TCP conn): a mutex whose
// doc says what it serializes satisfies the documentation pass without
// being referenced by any guarded-by annotation, and a pointer that is
// set once at construction and never reassigned is described in prose
// instead of annotated — the analysis is intraprocedural, so a
// 'guarded by' annotation on such a field would only manufacture
// findings in the constructor and in TryLock'd best-effort paths it
// cannot see into.
type bufWriter struct{ n int }

func (b *bufWriter) add(k int) { b.n += k }

type framedConn struct {
	sendMu sync.Mutex // serializes frame writes on the socket
	// bw is nil when unbuffered. The pointer is set once at
	// construction and never reassigned; the buffer's mutable state is
	// only touched under sendMu or best-effort in close.
	bw      *bufWriter
	closeMu sync.Mutex // guards closed
	closed  bool       // guarded by closeMu
}

func newFramedConn(buffered bool) *framedConn {
	c := &framedConn{}
	if buffered {
		c.bw = &bufWriter{} // prose-documented pointer: no finding here
	}
	return c
}

func (c *framedConn) send(k int) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.bw != nil {
		c.bw.add(k)
	}
}

func (c *framedConn) close() {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return
	}
	c.closed = true
	c.closeMu.Unlock()
	// TryLock is invisible to the must-hold analysis (it is not in the
	// lock-op table), which is exactly why bw carries prose, not an
	// annotation: this best-effort flush is legitimate and unprovable.
	if c.bw != nil && c.sendMu.TryLock() {
		c.bw.add(0)
		c.sendMu.Unlock()
	}
}

func (c *framedConn) badClosedRead() bool {
	return c.closed // want "c.closed accessed without holding c.closeMu"
}

// The pipelined-ingest idiom (node's round engine): a sink fed by a
// receiver goroutine while the round loop polls it for the budget
// close — both sides must hold the mutex, including the early-close
// check inside a collect loop.
type ingestBox struct {
	mu      sync.Mutex // guards arrived
	arrived int        // guarded by mu
}

func (b *ingestBox) ingest() {
	b.mu.Lock()
	b.arrived++
	b.mu.Unlock()
}

func (b *ingestBox) closeAtBudget(target int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.arrived >= target
}

func (b *ingestBox) collect(target, uploads int) int {
	closed := 0
	for i := 0; i < uploads; i++ {
		b.ingest()
		if b.closeAtBudget(target) {
			closed++
			break
		}
	}
	return closed
}

func (b *ingestBox) finalizeBad() int {
	return b.arrived // want "b.arrived accessed without holding b.mu"
}

func (b *ingestBox) budgetCheckBad(target, uploads int) bool {
	for i := 0; i < uploads; i++ {
		if b.arrived >= target { // want "accessed without holding"
			return true
		}
	}
	return false
}
