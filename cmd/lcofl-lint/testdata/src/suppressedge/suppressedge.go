// Package suppressedge exercises the //lint:ignore edge cases the
// driver must get right: an unknown analyzer name is itself a finding,
// a reason-less directive is malformed and suppresses nothing, a
// directive two lines above its target does not apply, and a directive
// suppresses only the analyzers it names. Expectations are asserted
// programmatically in TestSuppressionEdgeCases (the directives would
// collide with // want comments on the same line).
package suppressedge

import "errors"

func mayFail() error { return errors.New("boom") }

// UnknownName: the directive names an analyzer that does not exist, so
// the driver reports the directive and the call stays flagged.
func UnknownName() {
	//lint:ignore nosuchanalyzer the name above is not a real analyzer
	mayFail()
}

// MissingReason: reason-less directives are malformed and inert.
func MissingReason() {
	//lint:ignore droppederr
	mayFail()
}

// WrongLine: the directive sits two lines above the violation, outside
// the same-line-or-line-above window, so it does not apply.
func WrongLine() {
	//lint:ignore droppederr fixture: directive is one line too early
	_ = 0
	mayFail()
}

// PartialSuppression: the line triggers both rawgo and droppederr; the
// directive names only rawgo, so droppederr still fires.
func PartialSuppression() {
	//lint:ignore rawgo fixture: suppress the goroutine finding only
	go mayFail()
}

// FullySuppressed: the happy path — a well-formed directive naming the
// right analyzer on the line above silences it.
func FullySuppressed() {
	//lint:ignore droppederr fixture: the result is intentionally unused
	mayFail()
}
