// Package maporder is the fixture for the maporder analyzer: ranging a
// map while writing order-sensitive output (appends, builders, fmt,
// trace events, transport sends, float accumulators) is flagged; the
// sorted-collect idiom, slice ranges, and exact integer accumulation
// are not.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func badAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v+"!") // want "append inside a map range"
	}
	return out
}

// The sorted-collect idiom is the sanctioned fix and stays clean.
func sortedCollect(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "builder write inside a map range"
	}
	return b.String()
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt output inside a map range"
	}
}

func badEmit(o *obs.Obs, m map[int]bool) {
	for id := range m {
		o.Emit("flagged", obs.F("vehicle", id)) // want "trace event emission inside a map range"
	}
}

func badSend(conns map[int]transport.Conn, msg *protocol.Message) {
	for _, c := range conns {
		_ = c.Send(msg) // want "transport send inside a map range"
	}
}

func badFloatAccum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation inside a map range"
	}
	return total
}

// Integer accumulation is exact and commutative: order independent.
func intAccumOK(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Slice iteration order is defined; nothing to flag.
func sliceRangeOK(xs []string) []string {
	out := make([]string, 0, len(xs))
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}

// Reads and keyed writes that do not serialize anything are fine.
func lookupOK(m map[int]string, dst map[int]string) {
	for k, v := range m {
		dst[k] = v
	}
}
