// Package rawgo is the fixture for the rawgo analyzer: bare go
// statements are flagged wherever they appear; function literals,
// deferred calls and ordinary calls are not.
package rawgo

import "sync"

func fanOut(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { // want "bare go statement"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func named() {
	go worker(1) // want "bare go statement"
}

func worker(i int) { _ = i }

func notGoroutines() {
	defer worker(0)         // deferred call: fine
	f := func() { go f2() } // want "bare go statement"
	f()
	worker(2) // plain call: fine
}

func f2() {}
