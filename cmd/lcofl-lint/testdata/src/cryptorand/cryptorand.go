// Package cryptorand exercises the cryptorand analyzer: math/rand (v1 or
// v2) imported in a privacy-sensitive package must be flagged unless
// suppressed with a stated reason.
package cryptorand

import (
	"math/rand" // want "math/rand imported in privacy-sensitive package"

	//lint:ignore cryptorand fixture demonstrates an acknowledged simulation-only import
	randv2 "math/rand/v2"
)

// UniformByte shows that any use of the deterministic generators in a
// sensitive package is reached through the flagged imports.
func UniformByte(rng *rand.Rand) byte { return byte(rng.Uint64()) }

// UniformByteV2 uses the suppressed v2 import.
func UniformByteV2(rng *randv2.Rand) byte { return byte(rng.Uint64()) }
