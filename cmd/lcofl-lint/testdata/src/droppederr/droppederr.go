// Package droppederr exercises the droppederr analyzer: error results
// vanishing in bare call statements must be flagged; visible discards and
// vacuous errors must not.
package droppederr

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Bad drops errors invisibly.
func Bad() {
	mayFail()    // want "includes an error that is discarded"
	pair()       // want "includes an error that is discarded"
	go mayFail() // want "includes an error that is discarded"
}

// Good handles, visibly discards, or drops only vacuous errors.
func Good() string {
	if err := mayFail(); err != nil {
		fmt.Println("handled:", err)
	}
	_ = mayFail()               // explicit discard is visible to review
	defer mayFail()             // defer'd cleanup is conventional
	fmt.Println("stdout")       // process stdio errors are vacuous
	fmt.Fprintf(os.Stderr, "x") // ditto
	var b strings.Builder
	b.WriteString("in-memory ")            // builder writes never fail
	fmt.Fprintf(&b, "writer %d", len("x")) // ditto through fmt
	return b.String()
}

// Suppressed documents an intentional fire-and-forget.
func Suppressed() {
	//lint:ignore droppederr fixture demonstrates acknowledged fire-and-forget telemetry
	mayFail()
}
