// Package fieldarith exercises the fieldarith analyzer: native operators
// on field.Element outside internal/field must be flagged, Element-method
// arithmetic and equality must not.
package fieldarith

import "repro/internal/field"

// Sink and SinkBool keep results alive so the fixture compiles.
var (
	Sink     field.Element
	SinkBool bool
)

// Bad trips every banned operator class.
func Bad(a, b field.Element) {
	Sink = a + b     // want "native + on field.Element"
	Sink = a - b     // want "native - on field.Element"
	Sink = a * b     // want "native * on field.Element"
	Sink = a / b     // want "native / on field.Element"
	Sink = a % b     // want "native % on field.Element"
	Sink = a << 3    // want "native << on field.Element"
	Sink = a ^ b     // want "native ^ on field.Element"
	SinkBool = a < b // want "native < on field.Element"
	a += b           // want "native += on field.Element"
	Sink = -a        // want "native unary - on field.Element"
	a++              // want "native ++ on field.Element"
	Sink = a
}

// Good is the sound idiom: Element methods and equality.
func Good(a, b field.Element) {
	Sink = a.Add(b).Mul(a.Sub(b)).Neg()
	SinkBool = a == b && !b.IsZero()
	Sink = field.Element(3)
	Sink = field.New(uint64(a) + uint64(b)) // explicit widening then reduction is fine
}

// Suppressed demonstrates both directive placements.
func Suppressed(a, b field.Element) {
	//lint:ignore fieldarith fixture demonstrates an acknowledged unchecked add
	Sink = a + b
	Sink = a * b //lint:ignore fieldarith fixture demonstrates the same-line form
}
