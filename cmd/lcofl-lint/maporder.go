package main

// maporder: in the deterministic packages, a `range` over a map whose
// body writes to order-sensitive output — a slice append, a
// strings.Builder / bytes.Buffer, a trace event, a transport frame, a
// printf sink, or a floating-point accumulator — must iterate sorted
// keys instead. Go randomizes map iteration order, so any of those
// sinks inside a map range makes output depend on the per-process seed,
// which breaks the repo's bit-reproducibility contract (DESIGN §8).
//
// The one exempt shape is the sorted-collect idiom itself:
//
//	for k := range m {
//	    keys = append(keys, k)
//	}
//	sort.Ints(keys)
//
// i.e. an append of exactly the range key/value into a slice that the
// same function later passes to a sort call. Everything else needs the
// keys sorted before the loop (or a //lint:ignore with a reason).
//
// Integer/field-element compound assignments are NOT sinks: those
// accumulations are exact and commutative, so iteration order cannot
// change the result. Float accumulation rounds per step and is order
// sensitive, so it is flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// defaultMapOrderPkgs lists the packages whose outputs must be
// schedule- and seed-independent.
func defaultMapOrderPkgs() map[string]bool {
	return map[string]bool{
		"repro/internal/core":        true,
		"repro/internal/fl":          true,
		"repro/internal/node":        true,
		"repro/internal/reedsolomon": true,
		"repro/internal/lagrange":    true,
		"repro/internal/chaos":       true,
	}
}

func newMapOrderAnalyzer(pkgs map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "map ranges feeding slices, builders, trace events, frames or float accumulators must iterate sorted keys",
		Run:  func(p *Pass) error { return runMapOrder(p, pkgs) },
	}
}

func runMapOrder(p *Pass, pkgs map[string]bool) error {
	if !pkgs[p.Pkg.Path] {
		return nil
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(p, fd.Body)
		}
	}
	return nil
}

func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		reportMapRangeSinks(p, body, rs)
		return true
	})
}

// reportMapRangeSinks flags every order-sensitive sink in the body of
// one map range. funcBody is the enclosing function body, searched for
// the sort call that makes a sorted-collect append exempt.
func reportMapRangeSinks(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := p.Pkg.Info
	keyObj := rangeVarObj(info, rs.Key)
	valObj := rangeVarObj(info, rs.Value)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(info, n) {
				if isSortedCollect(p, funcBody, rs, n, keyObj, valObj) {
					return true
				}
				p.Reportf(n.Pos(), "append inside a map range: iteration order is randomized; range over sorted keys")
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if why := orderSensitiveCall(p, sel, n); why != "" {
					p.Reportf(n.Pos(), "%s inside a map range: iteration order is randomized; range over sorted keys", why)
				}
			}
		case *ast.AssignStmt:
			if isFloatCompound(p, n) {
				p.Reportf(n.Pos(), "float accumulation inside a map range: per-step rounding makes the sum order dependent; range over sorted keys")
			}
		}
		return true
	})
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isBuiltinAppend(info *types.Info, ce *ast.CallExpr) bool {
	id, ok := ce.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// orderSensitiveCall classifies a method/function call as a sink,
// returning a short description ("" when benign).
func orderSensitiveCall(p *Pass, sel *ast.SelectorExpr, ce *ast.CallExpr) string {
	name := sel.Sel.Name
	// fmt.Fprintf / fmt.Printf and friends.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				return "fmt output"
			}
			return ""
		}
	}
	recv := p.TypeOf(sel.X)
	if recv == nil {
		return ""
	}
	rs := recv.String()
	switch {
	case strings.HasSuffix(rs, "strings.Builder") || strings.HasSuffix(rs, "bytes.Buffer"):
		if strings.HasPrefix(name, "Write") {
			return "builder write"
		}
	case strings.Contains(rs, "internal/obs."):
		if name == "Emit" || name == "EmitSpan" || name == "Start" {
			return "trace event emission"
		}
	}
	// A transport frame send: any Send/SendCorrupt whose first
	// parameter is a *protocol.Message (covers the Conn interface and
	// every concrete fabric).
	if name == "Send" || name == "SendCorrupt" {
		if fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Params().Len() == 1 &&
				strings.HasSuffix(sig.Params().At(0).Type().String(), "internal/protocol.Message") {
				return "transport send"
			}
		}
	}
	return ""
}

func isFloatCompound(p *Pass, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 {
		return false
	}
	t := p.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isSortedCollect recognizes the one exempt append shape: the appended
// values are exactly the range key/value, the result is assigned back
// to the destination, and the same function later sorts that
// destination.
func isSortedCollect(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, ce *ast.CallExpr, keyObj, valObj types.Object) bool {
	if len(ce.Args) < 2 {
		return false
	}
	info := p.Pkg.Info
	for _, a := range ce.Args[1:] {
		id, ok := a.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Uses[id]
		if obj == nil || (obj != keyObj && obj != valObj) {
			return false
		}
	}
	dest := renderPath(ce.Args[0])
	if dest == "" {
		return false
	}
	return hasSortOf(p, funcBody, dest)
}

// sortFuncs are the call paths that count as sorting a collected slice.
var sortFuncs = map[string]bool{
	"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func hasSortOf(p *Pass, funcBody *ast.BlockStmt, dest string) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok || len(ce.Args) == 0 {
			return true
		}
		if !sortFuncs[renderPath(ce.Fun)] {
			return true
		}
		if renderPath(ce.Args[0]) == dest {
			found = true
		}
		return true
	})
	return found
}
