package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fieldPkgPath is the package whose Element type fieldarith guards. Inside
// it, native operators implement the modular reduction itself; everywhere
// else they silently skip it.
const fieldPkgPath = "repro/internal/field"

// bannedBinaryOps are the operators that treat an Element as a bare
// uint64: arithmetic and bitwise ops skip modular reduction, and ordering
// comparisons are meaningless on residues (only == / != are sound).
var bannedBinaryOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true, token.REM: true,
	token.AND: true, token.OR: true, token.XOR: true, token.SHL: true, token.SHR: true,
	token.AND_NOT: true,
	token.LSS:     true, token.GTR: true, token.LEQ: true, token.GEQ: true,
}

var bannedAssignOps = map[token.Token]string{
	token.ADD_ASSIGN: "+=", token.SUB_ASSIGN: "-=", token.MUL_ASSIGN: "*=",
	token.QUO_ASSIGN: "/=", token.REM_ASSIGN: "%=",
	token.AND_ASSIGN: "&=", token.OR_ASSIGN: "|=", token.XOR_ASSIGN: "^=",
	token.SHL_ASSIGN: "<<=", token.SHR_ASSIGN: ">>=", token.AND_NOT_ASSIGN: "&^=",
}

// newFieldArithAnalyzer enforces that field.Element values are only
// combined through the Element methods (Add/Sub/Mul/Div/Neg/Exp/Inv),
// whose Mersenne reduction keeps every residue canonical. A stray native
// operator compiles fine — Element's underlying type is uint64 — but
// wraps mod 2^64 instead of mod p, which corrupts Lagrange encoding and
// breaks the exact-decoding premise of Reed–Solomon error correction.
func newFieldArithAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "fieldarith",
		Doc: "forbid native arithmetic, bitwise, and ordering operators on field.Element " +
			"outside " + fieldPkgPath + "; use the Element methods, which reduce mod p",
		Run: runFieldArith,
	}
}

func runFieldArith(pass *Pass) error {
	if pass.Pkg.Path == fieldPkgPath {
		return nil // the one package where native ops implement the reduction
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if bannedBinaryOps[n.Op] && (isFieldElement(pass, n.X) || isFieldElement(pass, n.Y)) {
					pass.Reportf(n.OpPos, "native %s on field.Element skips modular reduction; use the Element methods (Add/Sub/Mul/Div/Exp)", n.Op)
				}
			case *ast.AssignStmt:
				if name, banned := bannedAssignOps[n.Tok]; banned {
					for _, lhs := range n.Lhs {
						if isFieldElement(pass, lhs) {
							pass.Reportf(n.TokPos, "native %s on field.Element skips modular reduction; use the Element methods (Add/Sub/Mul/Div/Exp)", name)
						}
					}
				}
			case *ast.UnaryExpr:
				if (n.Op == token.SUB || n.Op == token.XOR) && isFieldElement(pass, n.X) {
					pass.Reportf(n.OpPos, "native unary %s on field.Element skips modular reduction; use Element.Neg", n.Op)
				}
			case *ast.IncDecStmt:
				if isFieldElement(pass, n.X) {
					op := "++"
					if n.Tok == token.DEC {
						op = "--"
					}
					pass.Reportf(n.TokPos, "native %s on field.Element skips modular reduction; use Add(field.One) / Sub(field.One)", op)
				}
			}
			return true
		})
	}
	return nil
}

// isFieldElement reports whether e's type is exactly field.Element.
func isFieldElement(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Element" && obj.Pkg() != nil && obj.Pkg().Path() == fieldPkgPath
}
