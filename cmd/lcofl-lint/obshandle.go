package main

// obshandle: obs.Registry / obs.Obs handle lookups (Counter, Gauge,
// Histogram) are a map access behind a mutex, so they may not sit on
// hot paths. PR 4 established the discipline by convention — resolve
// every handle once at construction, store it, and touch only the
// atomic in steady state — and this analyzer makes it machine-checked:
//
//   - a lookup inside a loop (any CFG block that lies on a cycle) is a
//     finding, as is a lookup anywhere inside a function literal that
//     is itself defined in a loop (the literal runs per iteration or
//     per event);
//   - a lookup whose result is consumed immediately
//     (o.Counter("x").Inc()) is a finding even outside loops: the
//     handle is discarded, so every call re-pays the lookup.
//
// internal/obs itself is exempt (it implements the lookups), as are
// the cmd/ entry points, which resolve handles only at startup and
// exit.

import (
	"go/ast"
	"go/token"
	"strings"
)

// defaultObsHandlePkgs lists the instrumented packages whose steady
// state must not re-resolve handles.
func defaultObsHandlePkgs() map[string]bool {
	return map[string]bool{
		"repro/internal/node":        true,
		"repro/internal/chaos":       true,
		"repro/internal/core":        true,
		"repro/internal/fl":          true,
		"repro/internal/lagrange":    true,
		"repro/internal/reedsolomon": true,
		"repro/internal/transport":   true,
		"repro/internal/experiments": true,
	}
}

func newObsHandleAnalyzer(pkgs map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "obshandle",
		Doc:  "obs Counter/Gauge/Histogram lookups must happen once at construction, never in loops or chained per call",
		Run:  func(p *Pass) error { return runObsHandle(p, pkgs) },
	}
}

func runObsHandle(p *Pass, pkgs map[string]bool) error {
	if !pkgs[p.Pkg.Path] {
		return nil
	}
	reported := map[token.Pos]bool{}
	for _, f := range p.Pkg.Files {
		for _, fb := range collectFuncBodies(f) {
			checkObsBody(p, fb.body, reported)
		}
	}
	return nil
}

// isObsLookup reports whether ce resolves a handle on an obs.Obs or
// obs.Registry receiver.
func isObsLookup(p *Pass, ce *ast.CallExpr) bool {
	sel, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	s := strings.TrimPrefix(t.String(), "*")
	return strings.HasSuffix(s, "internal/obs.Obs") || strings.HasSuffix(s, "internal/obs.Registry")
}

func checkObsBody(p *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	c := buildCFG(body)
	cyclic := c.inCycle()
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		p.Reportf(pos, format, args...)
	}
	for _, b := range c.reachable() {
		inLoop := cyclic[b.index]
		for _, n := range b.nodes {
			walkNode(n, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// A literal defined in a loop runs per iteration:
					// every lookup inside it pays per iteration too.
					if inLoop {
						ast.Inspect(n.Body, func(in ast.Node) bool {
							if ce, ok := in.(*ast.CallExpr); ok && isObsLookup(p, ce) {
								report(ce.Pos(), "obs handle lookup inside a function literal defined in a loop; resolve the handle once at construction")
							}
							return true
						})
					}
				case *ast.CallExpr:
					if !isObsLookup(p, n) {
						return true
					}
					if inLoop {
						report(n.Pos(), "obs handle lookup inside a loop; resolve the handle once at construction and store it")
						return true
					}
					// Chained immediate use: the parent consumes the
					// call result through a selector, so the handle is
					// discarded after one use.
					if len(stack) > 0 {
						if ps, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && ps.X == ast.Expr(n) {
							report(n.Pos(), "obs handle lookup chained into a method call; resolve the handle once at construction and store it")
						}
					}
				}
				return true
			})
		}
	}
}
