package main

import (
	"flag"
	"fmt"
	"os"
)

// defaultAnalyzers builds the suite with the repo's package configuration.
func defaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		newFieldArithAnalyzer(),
		newCryptoRandAnalyzer(defaultCryptoSensitive()),
		newDroppedErrAnalyzer([]string{"repro/examples"}),
		newFloatPurityAnalyzer(defaultFloatExact()),
		newDeterminismAnalyzer(defaultReproducible()),
		newRawGoAnalyzer(defaultRawGoAllowed()),
		newWallClockAnalyzer(defaultWallClockAllowed()),
		newLockGuardAnalyzer(defaultLockGuardPkgs()),
		newMapOrderAnalyzer(defaultMapOrderPkgs()),
		newObsHandleAnalyzer(defaultObsHandlePkgs()),
		newGroupWaitAnalyzer(),
	}
}

// knownAnalyzerNames is the suppression vocabulary: the default suite
// plus the built-in "lint" meta-analyzer that reports directive
// problems. A //lint:ignore naming anything else is itself a finding.
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{"lint": true}
	for _, a := range defaultAnalyzers() {
		names[a.Name] = true
	}
	return names
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lcofl-lint [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Static analysis of L-CoFL invariants. Analyzers:\n\n")
		for _, a := range defaultAnalyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nSuppress a finding with  //lint:ignore <analyzer> <reason>  on the\nsame line or the line above. Exit status: 0 clean, 1 findings, 2 error.\n")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := runAnalyzers(pkgs, defaultAnalyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lcofl-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
