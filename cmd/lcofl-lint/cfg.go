package main

// Intraprocedural control-flow graph and dataflow engine (DESIGN.md §12).
//
// The first-generation analyzers (PR 1) were per-node AST scans: a
// property either held at a call site or it did not. The lock-discipline
// and goroutine-lifecycle invariants this tool now checks are path
// properties — "every path from a parallel.Group.Go reaches a Wait",
// "every read of a guarded field happens with the mutex held" — so they
// need a CFG and a fixpoint, not a walk.
//
// The graph is deliberately small: statement-level basic blocks whose
// nodes are the statements and control expressions executed when the
// block runs, a synthetic exit block that every return edge targets, and
// explicit handling for the control constructs the repo actually uses
// (if/for/range/switch/type switch/select, labeled break and continue,
// goto, fallthrough, defer). Function literals are NOT inlined: each
// FuncLit body gets its own graph, analyzed with a fresh entry state,
// because the literal may run on another goroutine or at another time.

import (
	"go/ast"
	"go/token"
)

// block is one basic block: a maximal straight-line sequence of
// executed nodes. nodes holds statements and, for control headers, the
// governing expression (an if condition, a for condition, a switch tag)
// or the *ast.RangeStmt itself — walkers must treat a RangeStmt node as
// its header only (Key, Value, X) since the body lives in other blocks.
type block struct {
	index int
	nodes []ast.Node
	succs []*block
	preds []*block
}

// cfg is one function body's control-flow graph.
type cfg struct {
	entry  *block
	exit   *block // synthetic: every return and fall-off-the-end edge lands here
	blocks []*block
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{c: &cfg{}, labels: map[string]*labelInfo{}}
	b.c.entry = b.newBlock()
	b.c.exit = b.newBlock()
	b.cur = b.c.entry
	b.stmtList(body.List)
	b.edge(b.cur, b.c.exit)
	return b.c
}

// branchCtx is one enclosing breakable/continuable construct.
type branchCtx struct {
	label string // enclosing label, "" if unlabeled
	brk   *block // break target
	cont  *block // continue target; nil for switch/select
}

// labelInfo tracks a label's jump-target block for goto (and, via
// branchCtx, labeled break/continue).
type labelInfo struct {
	target *block
}

type cfgBuilder struct {
	c      *cfg
	cur    *block
	stack  []branchCtx
	labels map[string]*labelInfo
	// pendingLabel names the label attached to the statement being
	// built, so `outer: for ...` registers outer as its loop's label.
	pendingLabel string
	// fallthroughTo is the next case clause's block while building a
	// switch clause body.
	fallthroughTo *block
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) labelTarget(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.labelTarget(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		b.edge(b.cur, b.c.exit)
		b.cur = b.newBlock() // unreachable successor

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		endThen := b.cur
		join := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.edge(endThen, join)
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		exitB := b.newBlock()
		contTo := head
		var postB *block
		if s.Post != nil {
			postB = b.newBlock()
			postB.nodes = append(postB.nodes, s.Post)
			b.edge(postB, head)
			contTo = postB
		}
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			b.edge(head, exitB)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.push(branchCtx{label: label, brk: exitB, cont: contTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.pop()
		b.edge(b.cur, contTo)
		b.cur = exitB

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		// The RangeStmt node itself is the header: walkers look at
		// Key/Value/X only and must not descend into Body.
		head.nodes = append(head.nodes, s)
		b.edge(b.cur, head)
		exitB := b.newBlock()
		b.edge(head, exitB)
		body := b.newBlock()
		b.edge(head, body)
		b.push(branchCtx{label: label, brk: exitB, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.pop()
		b.edge(b.cur, head)
		b.cur = exitB

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.nodes = append(b.cur.nodes, s.Tag)
		}
		b.switchClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Assign)
		b.switchClauses(label, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.selectClauses(label, s.Body.List)

	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.cur.nodes = append(b.cur.nodes, s)

	default:
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

// switchClauses wires the clause blocks of a switch or type switch: the
// dispatch block has an edge to every clause, plus one to the exit when
// there is no default clause. fallthrough jumps to the next clause body.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, _ *block) {
	dispatch := b.cur
	exitB := b.newBlock()
	b.push(branchCtx{label: label, brk: exitB})
	bodies := make([]*block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			bodies[i].nodes = append(bodies[i].nodes, e)
		}
		b.edge(dispatch, bodies[i])
		savedFT := b.fallthroughTo
		if i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.fallthroughTo = savedFT
		b.edge(b.cur, exitB)
	}
	if !hasDefault {
		b.edge(dispatch, exitB)
	}
	b.pop()
	b.cur = exitB
}

// selectClauses wires a select: one block per comm clause holding its
// comm statement; control reaches exactly one clause.
func (b *cfgBuilder) selectClauses(label string, clauses []ast.Stmt) {
	dispatch := b.cur
	exitB := b.newBlock()
	b.push(branchCtx{label: label, brk: exitB})
	for _, cs := range clauses {
		cc := cs.(*ast.CommClause)
		body := b.newBlock()
		if cc.Comm != nil {
			body.nodes = append(body.nodes, cc.Comm)
		}
		b.edge(dispatch, body)
		b.cur = body
		b.stmtList(cc.Body)
		b.edge(b.cur, exitB)
	}
	b.pop()
	b.cur = exitB
}

func (b *cfgBuilder) push(ctx branchCtx) { b.stack = append(b.stack, ctx) }
func (b *cfgBuilder) pop()               { b.stack = b.stack[:len(b.stack)-1] }

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		for i := len(b.stack) - 1; i >= 0; i-- {
			ctx := b.stack[i]
			if s.Label == nil || ctx.label == s.Label.Name {
				b.edge(b.cur, ctx.brk)
				b.cur = b.newBlock()
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.stack) - 1; i >= 0; i-- {
			ctx := b.stack[i]
			if ctx.cont == nil {
				continue // switch/select: continue targets the enclosing loop
			}
			if s.Label == nil || ctx.label == s.Label.Name {
				b.edge(b.cur, ctx.cont)
				b.cur = b.newBlock()
				return
			}
		}
	case token.GOTO:
		li := b.labelTarget(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = b.newBlock()
		return
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.edge(b.cur, b.fallthroughTo)
			b.cur = b.newBlock()
			return
		}
	}
	// Malformed or out-of-context branch: keep the statement so nothing
	// downstream is lost, but add no edge.
	b.cur.nodes = append(b.cur.nodes, s)
}

// reachable returns the blocks reachable from the entry, in a stable
// order (by construction index).
func (c *cfg) reachable() []*block {
	seen := make([]bool, len(c.blocks))
	var stack []*block
	stack = append(stack, c.entry)
	seen[c.entry.index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.succs {
			if !seen[s.index] {
				seen[s.index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*block
	for _, blk := range c.blocks {
		if seen[blk.index] {
			out = append(out, blk)
		}
	}
	return out
}

// inCycle reports, per block, whether the block lies on a cycle (it can
// reach itself through at least one edge). Loop bodies and loop headers
// are cyclic; straight-line code is not.
func (c *cfg) inCycle() []bool {
	n := len(c.blocks)
	out := make([]bool, n)
	// Reachability closure per block via DFS. The graphs are tiny
	// (tens of blocks), so the quadratic sweep is irrelevant.
	for _, start := range c.blocks {
		seen := make([]bool, n)
		var stack []*block
		stack = append(stack, start)
		for len(stack) > 0 {
			blk := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range blk.succs {
				if s == start {
					out[start.index] = true
				}
				if !seen[s.index] {
					seen[s.index] = true
					stack = append(stack, s)
				}
			}
			if out[start.index] {
				break
			}
		}
	}
	return out
}

// dataflow runs a forward worklist fixpoint over the reachable blocks.
//
//	entry    — the state on function entry
//	transfer — returns the out-state of a block given its in-state
//	           (must not mutate the input)
//	merge    — combines a predecessor's out-state into a block's
//	           in-state, reporting whether the in-state changed; called
//	           with into == nil-state via zero to initialize
//
// The meet operator (must = intersection, may = union) lives inside
// merge, so the same driver serves both lattice directions. Returns the
// fixed in-state per reachable block.
func dataflow[S any](c *cfg, entry S, transfer func(*block, S) S, merge func(into S, from S) (S, bool)) map[*block]S {
	in := make(map[*block]S)
	out := make(map[*block]S)
	in[c.entry] = entry
	work := []*block{c.entry}
	queued := make([]bool, len(c.blocks))
	queued[c.entry.index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.index] = false
		o := transfer(blk, in[blk])
		out[blk] = o
		for _, s := range blk.succs {
			cur, seen := in[s]
			if !seen {
				merged, _ := merge(cur, o)
				in[s] = merged
			} else {
				merged, changed := merge(cur, o)
				if !changed {
					continue
				}
				in[s] = merged
			}
			if !queued[s.index] {
				queued[s.index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// renderPath renders a selector chain as a dotted path ("s.mu",
// "c.peer"). Parens and derefs are transparent; anything else (calls,
// indexes) yields "" meaning "not a trackable path".
func renderPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderPath(e.X)
	case *ast.StarExpr:
		return renderPath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return renderPath(e.X)
		}
	}
	return ""
}

// walkNode visits n and its children in source order, maintaining the
// ancestor stack, without descending into *ast.FuncLit bodies (their
// code runs on another goroutine or at another time) and treating an
// *ast.RangeStmt as its header only (Key, Value, X — never Body, which
// lives in other CFG blocks). fn returning false prunes the subtree.
func walkNode(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	var f func(ast.Node) bool
	f = func(c ast.Node) bool {
		if c == nil {
			// ast.Inspect's post-visit callback for every node f
			// returned true on: pop exactly what was pushed.
			stack = stack[:len(stack)-1]
			return true
		}
		if fl, ok := c.(*ast.FuncLit); ok {
			fn(fl, stack) // report the literal itself, never its body
			return false  // pruned: Inspect emits no nil callback
		}
		if rs, ok := c.(*ast.RangeStmt); ok {
			if fn(rs, stack) {
				stack = append(stack, rs)
				if rs.Key != nil {
					ast.Inspect(rs.Key, f)
				}
				if rs.Value != nil {
					ast.Inspect(rs.Value, f)
				}
				ast.Inspect(rs.X, f)
				stack = stack[:len(stack)-1]
			}
			return false
		}
		if !fn(c, stack) {
			return false
		}
		stack = append(stack, c)
		return true
	}
	ast.Inspect(n, f)
}

// funcBodies returns every function body in the file that gets its own
// CFG: each FuncDecl body and each FuncLit body, paired with the
// enclosing FuncDecl's name for diagnostics ("" for package-level lits).
type funcBody struct {
	name string
	body *ast.BlockStmt
	lit  bool
}

func collectFuncBodies(file *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Body != nil {
			out = append(out, funcBody{name: fd.Name.Name, body: fd.Body})
		}
	}
	// Function literals anywhere in the file (including inside the
	// decls above — walkNode never descends into them, so each body is
	// analyzed exactly once, with a fresh entry state).
	ast.Inspect(file, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			out = append(out, funcBody{name: "func literal", body: fl.Body, lit: true})
		}
		return true
	})
	return out
}
