package main

import "go/ast"

// newRawGoAnalyzer forbids bare `go` statements outside the packages that
// own concurrency. A bare goroutine silently swallows errors and panics
// (a panic in it kills the whole process with no caller in the stack) and
// makes results scheduling-dependent; the repo's parallel hot paths must
// instead run through internal/parallel (ForEach/Map for indexed work,
// Group for free-form tasks), which propagates the lowest-index error and
// re-raises worker panics in the caller. allowed lists the package paths
// exempt from the rule — the pool itself plus the packages whose
// goroutines ARE the abstraction (connection serving).
//
// Test files are exempt by construction: lcofl-lint analyzes only the
// non-test files of each package.
func newRawGoAnalyzer(allowed map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "rawgo",
		Doc: "forbid bare go statements outside internal/parallel and the transport/node " +
			"layers; concurrency must run through the parallel worker pool",
		Run: func(pass *Pass) error {
			if allowed[pass.Pkg.Path] {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						pass.Reportf(g.Pos(), "bare go statement in %s; use parallel.ForEach/Map for indexed work or parallel.Group for free-form tasks so errors and panics propagate", pass.Pkg.Path)
					}
					return true
				})
			}
			return nil
		},
	}
}

// defaultRawGoAllowed lists the packages allowed to start goroutines
// directly: the worker pool itself, the networking layers whose
// goroutine-per-connection structure is the point, and the debug server
// whose accept loop runs for the life of the process (net/http's serving
// model — there is nothing to join it to).
func defaultRawGoAllowed() map[string]bool {
	return map[string]bool{
		"repro/internal/parallel":   true,
		"repro/internal/transport":  true,
		"repro/internal/node":       true,
		"repro/internal/obs/debugz": true,
	}
}
