package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// newDroppedErrAnalyzer flags calls whose error result vanishes without a
// trace: a call used as a bare statement (or `go` statement) when the
// callee returns an error. In a coded-computation pipeline a swallowed
// error is worse than a crash — a decode that silently failed feeds
// garbage into the next round's aggregation.
//
// Deliberately not flagged, because the discard is visible in the code:
//   - explicit blank assignment `_ = f()` — the reviewer can see intent;
//   - `defer f()` — `defer c.Close()` on a read path is idiomatic;
//   - fmt.Print*/fmt.Fprint* to os.Stdout or os.Stderr, and writes to
//     bytes.Buffer / strings.Builder, whose errors are vacuous.
//
// Packages under excludePrefixes (examples) are skipped entirely.
func newDroppedErrAnalyzer(excludePrefixes []string) *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc:  "forbid call statements that discard an error result outside tests and examples",
		Run: func(pass *Pass) error {
			for _, prefix := range excludePrefixes {
				if strings.HasPrefix(pass.Pkg.Path, prefix) {
					return nil
				}
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					var call *ast.CallExpr
					switch n := n.(type) {
					case *ast.ExprStmt:
						call, _ = n.X.(*ast.CallExpr)
					case *ast.GoStmt:
						call = n.Call
					}
					if call == nil || !returnsError(pass, call) || vacuousError(pass, call) {
						return true
					}
					pass.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or assign to _ explicitly", types.ExprString(call.Fun))
					return true
				})
			}
			return nil
		},
	}
}

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// vacuousError reports whether the callee's error is conventionally
// meaningless: fmt printing to the process's own stdio, or writes to
// in-memory buffers documented never to fail.
func vacuousError(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	full := fn.FullName()
	if strings.HasPrefix(full, "(*bytes.Buffer).") || strings.HasPrefix(full, "(*strings.Builder).") {
		return true
	}
	switch full {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		return true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		return len(call.Args) > 0 && (isProcessStdio(pass, call.Args[0]) || isMemoryWriter(pass, call.Args[0]))
	}
	return false
}

// isMemoryWriter reports whether e is a *bytes.Buffer or
// *strings.Builder, whose Write methods are documented never to fail.
func isMemoryWriter(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}

// isProcessStdio reports whether e is os.Stdout or os.Stderr.
func isProcessStdio(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
