package main

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read the wall
// clock. Scheduling primitives (time.After, time.NewTicker, time.Sleep)
// stay legal everywhere: they consume time without observing it, so they
// cannot leak nondeterminism into traces or figures.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// newWallClockAnalyzer confines wall-clock reads to the observability
// package. Everything else must take time from an injected obs.Clock, so
// a test can substitute obs.ManualClock and get byte-identical traces —
// one stray time.Now() in a library quietly breaks that contract.
// Test files never reach the analyzer (the driver loads only GoFiles).
func newWallClockAnalyzer(allowed map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc: "confine wall-clock reads (time.Now/Since/Until) to internal/obs, so all " +
			"other packages stay deterministic under an injected obs.Clock",
		Run: func(pass *Pass) error {
			if allowed[pass.Pkg.Path] {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || !wallClockFuncs[sel.Sel.Name] {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
					if !ok || pkgName.Imported().Path() != "time" {
						return true
					}
					pass.Reportf(call.Pos(), "wall-clock read time.%s outside internal/obs; take time from an injected obs.Clock so traces stay deterministic", sel.Sel.Name)
					return true
				})
			}
			return nil
		},
	}
}

// defaultWallClockAllowed lists the packages permitted to read the wall
// clock: only the observability layer, whose NewRealClock is the single
// sanctioned bridge to real time.
func defaultWallClockAllowed() map[string]bool {
	return map[string]bool{
		"repro/internal/obs": true,
	}
}
