package main

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read the wall
// clock. Non-blocking scheduling primitives (time.After, time.NewTicker)
// stay legal everywhere: they consume time without observing it, so they
// cannot leak nondeterminism into traces or figures.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// blockingFuncs are the time functions that stall the caller on the wall
// clock. Libraries must take an injected obs.Sleeper instead (the chaos
// delay and retry-backoff paths do), so tests substitute
// obs.ManualSleeper and never actually sleep.
var blockingFuncs = map[string]bool{
	"Sleep": true,
}

// newWallClockAnalyzer confines wall-clock reads and blocking sleeps to
// the observability package. Everything else must take time from an
// injected obs.Clock and delays from an injected obs.Sleeper, so a test
// can substitute obs.ManualClock/ManualSleeper and get byte-identical,
// instant runs — one stray time.Now() or time.Sleep() in a library
// quietly breaks that contract.
// Test files never reach the analyzer (the driver loads only GoFiles).
func newWallClockAnalyzer(allowed map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc: "confine wall-clock reads (time.Now/Since/Until) and blocking sleeps " +
			"(time.Sleep) to internal/obs, so all other packages stay deterministic " +
			"under an injected obs.Clock/obs.Sleeper",
		Run: func(pass *Pass) error {
			if allowed[pass.Pkg.Path] {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || (!wallClockFuncs[sel.Sel.Name] && !blockingFuncs[sel.Sel.Name]) {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
					if !ok || pkgName.Imported().Path() != "time" {
						return true
					}
					if blockingFuncs[sel.Sel.Name] {
						pass.Reportf(call.Pos(), "blocking time.%s outside internal/obs; take delays from an injected obs.Sleeper so tests never sleep", sel.Sel.Name)
						return true
					}
					pass.Reportf(call.Pos(), "wall-clock read time.%s outside internal/obs; take time from an injected obs.Clock so traces stay deterministic", sel.Sel.Name)
					return true
				})
			}
			return nil
		},
	}
}

// defaultWallClockAllowed lists the packages permitted to read the wall
// clock: the observability layer, whose NewRealClock is the single
// sanctioned bridge to real time, and its debug server, whose /healthz
// uptime stamp is operator-facing wall time by design (nothing
// deterministic consumes it).
func defaultWallClockAllowed() map[string]bool {
	return map[string]bool{
		"repro/internal/obs":        true,
		"repro/internal/obs/debugz": true,
	}
}
