package main

import "strconv"

// newCryptoRandAnalyzer forbids math/rand imports in the packages whose
// randomness is secret material. LCC's privacy guarantee (Yu et al.,
// arXiv:1806.00939) requires the padding batches and share randomness to
// be uniform and unpredictable; math/rand is a small deterministic PRNG
// whose whole stream is recoverable from a few outputs. Sensitive
// packages must draw through field.Source — field.NewCryptoSource
// (crypto/rand) for secret material, field.NewSeededSource only for
// explicitly non-secret reproducible simulation.
//
// Test files are exempt by construction: lcofl-lint analyzes only the
// non-test files of each package.
func newCryptoRandAnalyzer(sensitive map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "cryptorand",
		Doc: "forbid math/rand in privacy-sensitive packages; secret material must come " +
			"from field.NewCryptoSource (crypto/rand)",
		Run: func(pass *Pass) error {
			if !sensitive[pass.Pkg.Path] {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						pass.Reportf(imp.Pos(), "%s imported in privacy-sensitive package %s; draw secret material from field.NewCryptoSource (crypto/rand)", path, pass.Pkg.Path)
					}
				}
			}
			return nil
		},
	}
}

// defaultCryptoSensitive lists the packages whose non-test randomness
// feeds the LCC privacy construction: the field samplers themselves, the
// Lagrange encoder (padding batches), and the coded-FL baseline's private
// coding blocks.
func defaultCryptoSensitive() map[string]bool {
	return map[string]bool{
		"repro/internal/field":    true,
		"repro/internal/lagrange": true,
		"repro/internal/codedfl":  true,
	}
}
