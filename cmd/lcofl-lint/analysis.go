// lcofl-lint is a stdlib-only static-analysis suite enforcing the
// algebraic, randomness, and concurrency invariants L-CoFL's correctness
// rests on but the Go compiler cannot check: exact GF(p) arithmetic
// (fieldarith, floatpurity), cryptographic secret-share randomness
// (cryptorand), surfaced failures (droppederr), bit-reproducible
// figure generation (determinism, maporder), goroutine hygiene (rawgo,
// groupwait), lock discipline (lockguard), simulated time (wallclock)
// and steady-state observability cost (obshandle). lockguard, obshandle
// and groupwait run on an intraprocedural CFG/dataflow core (cfg.go,
// DESIGN.md §12); the rest are per-node AST scans.
//
// Usage:
//
//	go run ./cmd/lcofl-lint ./...
//
// A finding can be suppressed with a comment on the same line or the line
// directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a suppression without one is itself reported.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc states the invariant the analyzer guards, for -help output.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass is one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when untracked.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

const ignoreDirective = "//lint:ignore"

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	line      int
	analyzers map[string]bool
}

// collectSuppressions parses every //lint:ignore directive in the package.
// Malformed directives (missing analyzer name or reason) are returned as
// diagnostics of the built-in "lint" analyzer so they cannot silently
// disable nothing.
func collectSuppressions(pkg *Package) (map[string][]suppression, []Diagnostic) {
	byFile := make(map[string][]suppression)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreDirective))
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				known := knownAnalyzerNames()
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					if !known[n] {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  fmt.Sprintf("suppression names unknown analyzer %q", n),
						})
						continue
					}
					names[n] = true
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], suppression{line: pos.Line, analyzers: names})
			}
		}
	}
	return byFile, malformed
}

// suppressed reports whether d is covered by a directive on its own line
// or the line directly above it.
func suppressed(byFile map[string][]suppression, d Diagnostic) bool {
	for _, s := range byFile[d.Pos.Filename] {
		if (s.line == d.Pos.Line || s.line == d.Pos.Line-1) && s.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}

// runAnalyzers applies every analyzer to every package and returns the
// unsuppressed findings in source order.
func runAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sups, malformed := collectSuppressions(pkg)
		out = append(out, malformed...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lcofl-lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range raw {
			if !suppressed(sups, d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
