// Fleet-mode helpers shared by the soak and serve commands: deterministic
// multi-session scenario derivation (both sides of a TCP deployment
// rebuild it from the master seed alone), the in-process vehicle driver,
// and the relay-tree plumbing. See DESIGN.md §16.
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"repro/internal/approx"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/debugz"
	"repro/internal/parallel"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// fleetSessionIDs names n sessions s0..s{n-1}.
func fleetSessionIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
	}
	return ids
}

// fleetSessionSeed derives session j's master seed: a fixed odd stride
// keeps per-session datasets and models distinct and reproducible.
func fleetSessionSeed(seed int64, j int) int64 { return seed + 1009*int64(j) }

// buildFleetScenario derives one independent, deterministic scenario per
// session — dataset, partitions, scheme, and client configs — from the
// master seed, so a fusion centre and remote vehicles agree without
// exchanging data files.
func buildFleetScenario(sessions, vehicles, rounds, workers int, seed int64, timeout time.Duration, ob *obs.Obs) (map[string]node.ServerConfig, map[string][]node.ClientConfig, error) {
	if vehicles < 4 {
		return nil, nil, fmt.Errorf("fleet scenario needs at least 4 vehicles per session, got %d", vehicles)
	}
	exact := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, 1)
	if err != nil {
		return nil, nil, err
	}
	cfgs := make(map[string]node.ServerConfig, sessions)
	clients := make(map[string][]node.ClientConfig, sessions)
	for j, id := range fleetSessionIDs(sessions) {
		s := fleetSessionSeed(seed, j)
		refX, train, _, _, err := distributedSetup(vehicles, s)
		if err != nil {
			return nil, nil, err
		}
		parts, err := train.PartitionIID(vehicles, s+3)
		if err != nil {
			return nil, nil, err
		}
		cfgs[id] = node.ServerConfig{
			FL: fl.Config{
				InputSize: traffic.NumFeatures, LocalEpochs: 5, LocalRate: 0.2,
				DistillEpochs: 30, DistillRate: 0.2, ServerStep: 0.5, Seed: s + 4,
			},
			Scheme: core.SchemeConfig{
				NumVehicles: vehicles, NumBatches: chooseBatches(vehicles), Degree: 1, Seed: s + 5,
				Workers: workers,
			},
			RefX:             refX,
			ActivationCoeffs: p,
			Rounds:           rounds,
			RoundTimeout:     timeout,
			Obs:              ob,
		}
		cc := make([]node.ClientConfig, vehicles)
		for i := 0; i < vehicles; i++ {
			cc[i] = node.ClientConfig{VehicleID: i, SessionID: id, Data: parts[i], Seed: s + 100 + int64(i)}
		}
		clients[id] = cc
	}
	return cfgs, clients, nil
}

// runFleetScenario drives every session's vehicles concurrently against
// dial, each under bounded-reconnect retry. Session "s0" is the chaos
// shard: when an injector is configured, its vehicles' connections are
// wrapped (the injector persists across redials, so a spec'd crash fires
// exactly once per vehicle).
func runFleetScenario(dial func(session string, vehicle int) (transport.Conn, error), clients map[string][]node.ClientConfig, inj *chaos.Injector, retries int, ob *obs.Obs) error {
	ids := make([]string, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var fleet parallel.Group
	for _, id := range ids {
		for _, cc := range clients[id] {
			id, cc := id, cc
			fleet.Go(func() error {
				d := func() (transport.Conn, error) {
					conn, err := dial(id, cc.VehicleID)
					if err != nil {
						return nil, err
					}
					if id == "s0" {
						conn = chaosWrap(inj, cc.VehicleID, conn)
					}
					return conn, nil
				}
				err := node.RunVehicleRetry(cc, node.RetryConfig{
					Dial:        d,
					MaxAttempts: retries,
					BaseDelay:   time.Millisecond,
					Obs:         ob,
				})
				if err != nil {
					return fmt.Errorf("vehicle %s/%d: %w", id, cc.VehicleID, err)
				}
				return nil
			})
		}
	}
	return fleet.Wait()
}

// cmdSoak runs the fleet-scale soak in one process: many concurrent
// sessions behind one listener (in-memory pipes by default, TCP loopback
// with -tcp), vehicles optionally reaching the fusion centre through
// per-session edge relays (-shards) that gather their shard's uploads
// into combined frames, session s0 optionally under a -chaos fault
// schedule. This is what the CI soak-smoke gate drives; tracereport
// -check-metrics then cross-checks the admission and gather ledgers.
func cmdSoak(args []string) (retErr error) {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	sessions := fs.Int("sessions", 3, "concurrent sessions")
	vehicles := fs.Int("vehicles", 12, "vehicles per session")
	rounds := fs.Int("rounds", 2, "global rounds per session")
	seed := fs.Int64("seed", 1, "master scenario seed")
	workers := fs.Int("workers", 0, "worker-pool size for the decode hot paths (0 = all cores)")
	maxConns := fs.Int("max-conns", 0, "global connection budget, reserved in session-sized chunks (0 = unlimited)")
	queueDepth := fs.Int("queue-depth", 0, "handshaked connections parked when the budget is exhausted (0 = reject with a retry hint)")
	shards := fs.Int("shards", 0, "edge relays per session; vehicles are striped across them (0 = dial the fusion centre directly)")
	gatherWindow := fs.Duration("gather-window", 0, "relay gather window for partial shards (0 = default, negative = forward without gathering)")
	useTCP := fs.Bool("tcp", false, "run over TCP loopback sockets instead of in-memory pipes")
	timeout := fs.Duration("timeout", 60*time.Second, "per-round upload deadline")
	retries := fs.Int("retries", 8, "per-vehicle consecutive failed connection attempts before giving up")
	buildChaos := addChaosFlag(fs)
	observe := addObsFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, dbg, closeObs, err := observe()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	inj, err := buildChaos(ob)
	if err != nil {
		return err
	}
	cfgs, clients, err := buildFleetScenario(*sessions, *vehicles, *rounds, *workers, *seed, *timeout, ob)
	if err != nil {
		return err
	}
	fleet, err := node.NewFleet(node.FleetConfig{
		Sessions:   cfgs,
		MaxConns:   *maxConns,
		QueueDepth: *queueDepth,
		Obs:        ob,
	})
	if err != nil {
		return err
	}
	dbg.SetSessionz(func() any { return fleet.Status() })

	listen := func() (transport.Listener, error) {
		if *useTCP {
			return transport.ListenTCP("127.0.0.1:0")
		}
		return transport.NewPipeFabric(0), nil
	}
	ln, err := listen()
	if err != nil {
		return err
	}
	dialFusion := fabricDialer(ln)
	var serveGroup parallel.Group
	serveGroup.Go(func() error { return fleet.Serve(ln) })
	defer func() {
		// Join the accept loop on every exit path: closing the listener
		// unblocks Serve. On the success path the explicit Wait below has
		// already run; Wait is idempotent and the close is a no-op.
		_ = ln.Close()
		if werr := serveGroup.Wait(); werr != nil && retErr == nil {
			retErr = werr
		}
	}()

	// The relay tree: -shards edge relays per session, each gathering its
	// stripe's uploads into combined frames before the fusion hop. Relays
	// are per-session — a gather frame batches uploads for exactly one
	// session's engine.
	dial := func(session string, vehicle int) (transport.Conn, error) { return dialFusion() }
	var relays []*node.Relay
	var relayGroup parallel.Group
	defer func() {
		for _, r := range relays {
			_ = r.Close()
		}
		if werr := relayGroup.Wait(); werr != nil && retErr == nil {
			retErr = werr
		}
	}()
	if *shards > 0 {
		relayDial := make(map[string][]func() (transport.Conn, error), *sessions)
		for _, id := range fleetSessionIDs(*sessions) {
			for k := 0; k < *shards; k++ {
				rln, err := listen()
				if err != nil {
					return err
				}
				relay, err := node.NewRelayWith(node.RelayConfig{
					Listener:     rln,
					Dial:         dialFusion,
					GatherWindow: *gatherWindow,
					Obs:          ob,
				})
				if err != nil {
					return err
				}
				relays = append(relays, relay)
				relayGroup.Go(relay.Serve)
				relayDial[id] = append(relayDial[id], fabricDialer(rln))
			}
		}
		dial = func(session string, vehicle int) (transport.Conn, error) {
			return relayDial[session][vehicle%*shards]()
		}
	}

	mode := "pipes"
	if *useTCP {
		mode = fmt.Sprintf("tcp %s", ln.Addr())
	}
	fmt.Printf("lcofl soak: %d sessions x %d vehicles x %d rounds over %s, %d relays/session\n",
		*sessions, *vehicles, *rounds, mode, *shards)
	if inj != nil {
		fmt.Printf("lcofl soak: chaos spec %q active on session s0\n", inj.Spec().String())
	}

	if err := runFleetScenario(dial, clients, inj, *retries, ob); err != nil {
		return err
	}
	if err := serveGroup.Wait(); err != nil {
		return err
	}
	results := fleet.Results()
	for _, id := range fleetSessionIDs(*sessions) {
		r := results[id]
		if r.Err != nil {
			return fmt.Errorf("session %s: %w", id, r.Err)
		}
		fmt.Printf("lcofl soak: session %s completed %d rounds, flagged %v, stragglers %d, rejoins %d\n",
			id, r.Report.Rounds, r.Report.SuspectedMalicious, r.Report.Stragglers, r.Report.Rejoins)
	}
	st := fleet.Status()
	fmt.Printf("lcofl soak: admission ledger: %d admitted, %d rejected, %d queued, %d live at exit\n",
		st.Admitted, st.Rejected, st.QueuedTotal, st.Live)
	if st.Live != 0 || st.Committed != 0 {
		return fmt.Errorf("soak: fleet not drained: live=%d committed=%d", st.Live, st.Committed)
	}
	return nil
}

// serveFleet is lcofl serve's multi-session mode: every session's
// scenario derived from the master seed (vehicles join with
// -session sN), one TCP listener, admission control and the global
// connection budget in front of the per-session engines.
func serveFleet(addr string, sessions, vehicles, rounds, maxConns, queueDepth int, seed int64, pipeline func(*node.ServerConfig), ob *obs.Obs, dbg *debugz.Server) error {
	cfgs, _, err := buildFleetScenario(sessions, vehicles, rounds, 0, seed, 0, ob)
	if err != nil {
		return err
	}
	for id := range cfgs {
		c := cfgs[id]
		pipeline(&c)
		cfgs[id] = c
	}
	fleet, err := node.NewFleet(node.FleetConfig{
		Sessions:       cfgs,
		DefaultSession: "s0",
		MaxConns:       maxConns,
		QueueDepth:     queueDepth,
		Obs:            ob,
	})
	if err != nil {
		return err
	}
	dbg.SetSessionz(func() any { return fleet.Status() })
	ln, err := transport.ListenTCP(addr)
	if err != nil {
		return err
	}
	fmt.Printf("lcofl serve: fleet of %d sessions x %d vehicles listening on %s\n",
		sessions, vehicles, ln.Addr())
	if err := fleet.Serve(ln); err != nil {
		return err
	}
	results := fleet.Results()
	for _, id := range fleetSessionIDs(sessions) {
		r := results[id]
		if r.Err != nil {
			return fmt.Errorf("session %s: %w", id, r.Err)
		}
		fmt.Printf("lcofl serve: session %s completed %d rounds, flagged %v, stragglers %d, rejoins %d\n",
			id, r.Report.Rounds, r.Report.SuspectedMalicious, r.Report.Stragglers, r.Report.Rejoins)
	}
	st := fleet.Status()
	fmt.Printf("lcofl serve: admission ledger: %d admitted, %d rejected, %d queued\n",
		st.Admitted, st.Rejected, st.QueuedTotal)
	return nil
}

// fabricDialer returns the dial function matching a listener: the pipe
// fabric's own Dial for in-memory runs, a TCP dial to the bound address
// otherwise.
func fabricDialer(ln transport.Listener) func() (transport.Conn, error) {
	if fab, ok := ln.(*transport.PipeFabric); ok {
		return fab.Dial
	}
	addr := ln.Addr()
	return func() (transport.Conn, error) { return transport.DialTCP(addr) }
}
