// Command lcofl is the experiment driver for the L-CoFL reproduction.
//
// Usage:
//
//	lcofl run -figure fig5 [-vehicles 100] [-rounds 15] [-rows 2500] [-seed 1] [-out fig5.tsv]
//	lcofl all [-outdir results] [flags]
//	lcofl demo [-vehicles 40] [-malicious 0.3]
//	lcofl serve -addr :9444 [-vehicles 20] [-rounds 10] [-seed 1] [-sessions 3 -max-conns 40 -queue-depth 60]
//	lcofl vehicle -addr host:9444 -id 3 [-session s1] [-malicious] [-seed 1] [-chaos SPEC]
//	lcofl dist [-vehicles 12] [-rounds 3] [-seed 1] [-shards 2] [-chaos SPEC]
//	lcofl soak [-sessions 3] [-vehicles 12] [-shards 2] [-tcp] [-max-conns 24] [-chaos SPEC]
//
// "run" regenerates one paper figure's data as TSV; "all" writes every
// figure to a directory; "demo" walks one verified round verbosely;
// "serve"/"vehicle" run the genuinely distributed deployment over TCP
// (both sides derive the dataset deterministically from the shared seed,
// so no data file needs to be exchanged); "dist" runs the same
// distributed session in one process over in-memory pipes, optionally
// under a seeded fault-injection spec (see internal/chaos and DESIGN.md
// §11) — the CI chaos gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/debugz"
	"repro/internal/parallel"
	"repro/internal/plot"
	"repro/internal/traffic"
	"repro/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "all":
		err = cmdAll(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "vehicle":
		err = cmdVehicle(os.Args[2:])
	case "dist":
		err = cmdDist(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lcofl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcofl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `lcofl — Lagrange Coded Federated Learning reproduction driver

commands:
  run      regenerate one figure (fig2..fig9) as TSV
  all      regenerate every figure into a directory
  demo     walk one verified round verbosely
  serve    run a fusion centre over TCP (-checkpoint saves the model)
  vehicle  run one vehicle over TCP (with bounded reconnect)
  dist     run the distributed session in-process, optionally under -chaos faults
  soak     run a multi-session fleet soak in-process (pipes or TCP, optional edge relays)
  predict  load a model checkpoint and score a dataset
`)
}

func addOptionFlags(fs *flag.FlagSet) *experiments.Options {
	o := &experiments.Options{}
	fs.IntVar(&o.Vehicles, "vehicles", 0, "fleet size V (0 = paper default 100)")
	fs.IntVar(&o.Rounds, "rounds", 0, "global rounds per run (0 = default 15)")
	fs.IntVar(&o.Rows, "rows", 0, "synthetic dataset rows (0 = default 2500)")
	fs.Int64Var(&o.Seed, "seed", 1, "master seed")
	fs.IntVar(&o.Workers, "workers", 0, "worker-pool size for the parallel hot paths (0 = all cores, 1 = sequential; results are identical at any value)")
	return o
}

// addProfileFlags registers -cpuprofile/-memprofile and returns a starter
// whose stop function finalises the profiles (see EXPERIMENTS.md,
// "Profiling").
func addProfileFlags(fs *flag.FlagSet) func() (stop func() error, err error) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	mem := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	return func() (func() error, error) {
		var cpuFile *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return nil, err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				_ = f.Close() // the profile-start error takes precedence
				return nil, err
			}
			cpuFile = f
		}
		stop := func() error {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					return err
				}
			}
			if *mem != "" {
				f, err := os.Create(*mem)
				if err != nil {
					return err
				}
				defer f.Close()
				runtime.GC() // flush garbage so the profile shows live allocations
				if err := pprof.WriteHeapProfile(f); err != nil {
					return err
				}
			}
			return nil
		}
		return stop, nil
	}
}

// watchSignals installs a SIGINT/SIGTERM handler that runs flush —
// the once-wrapped observability shutdown — before exiting, so an
// interrupted session still yields a valid (flushed) trace and a final
// metrics snapshot instead of a truncated file.
func watchSignals(flush func() error) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	//lint:ignore rawgo the signal watcher lives for the whole process and exits it; nothing joins it
	go func() {
		sig := <-ch
		if err := flush(); err != nil {
			fmt.Fprintln(os.Stderr, "lcofl:", err)
		}
		code := 130 // 128 + SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
}

// addObsFlags registers -trace/-metrics (plus -debug-addr when
// withDebug is set) and returns a builder. The builder yields the run's
// Obs (nil when no flag is set, so the whole stack stays
// uninstrumented), the live introspection server (nil without
// -debug-addr), and a close function that stops the runtime sampler,
// publishes the worker-pool counters, flushes the trace, and writes the
// metrics snapshot. The close function is idempotent and also wired to
// SIGINT/SIGTERM, so interrupted runs flush too. See DESIGN.md §10/§15.
func addObsFlags(fs *flag.FlagSet, withDebug bool) func() (*obs.Obs, *debugz.Server, func() error, error) {
	trace := fs.String("trace", "", "write a JSONL event trace to this file (summarise with cmd/tracereport)")
	metricsPath := fs.String("metrics", "", "write a JSON counter/gauge/histogram snapshot to this file on exit")
	debugAddr := new(string)
	if withDebug {
		debugAddr = fs.String("debug-addr", "",
			"serve the live introspection plane (/healthz /metricz /roundz /profilez, net/http/pprof) on this address")
	}
	return func() (*obs.Obs, *debugz.Server, func() error, error) {
		if *trace == "" && *metricsPath == "" && *debugAddr == "" {
			return nil, nil, func() error { return nil }, nil
		}
		reg := obs.NewRegistry()
		clock := obs.NewRealClock()
		var tr *obs.Tracer
		var traceFile *os.File
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				return nil, nil, nil, err
			}
			traceFile = f
			tr = obs.NewTracer(f, clock)
		}
		o := obs.New(reg, tr, clock)
		sampler := obs.NewRuntimeSampler(reg)
		var dbg *debugz.Server
		if *debugAddr != "" {
			// Periodic heap profiles back /profilez between scrapes.
			sampler.EnableProfiles(clock)
			srv, err := debugz.Start(debugz.Config{
				Addr:     *debugAddr,
				Registry: reg,
				Sampler:  sampler,
				Clock:    clock,
			})
			if err != nil {
				if traceFile != nil {
					_ = traceFile.Close()
				}
				return nil, nil, nil, err
			}
			dbg = srv
			fmt.Fprintf(os.Stderr, "lcofl: debug server on http://%s\n", dbg.Addr())
		}
		sampler.Start(obs.DefaultSampleInterval)
		closeObs := func() error {
			firstErr := dbg.Close()
			sampler.Stop()
			ps := parallel.Snapshot()
			reg.Gauge("parallel.pool_runs").Set(ps.PoolRuns)
			reg.Gauge("parallel.seq_runs").Set(ps.SeqRuns)
			reg.Gauge("parallel.tasks").Set(ps.Tasks)
			reg.Gauge("parallel.workers_spawned").Set(ps.WorkersSpawned)
			reg.Gauge("parallel.group_tasks").Set(ps.GroupTasks)
			if traceFile != nil {
				if err := tr.Flush(); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := traceFile.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if *metricsPath != "" {
				f, err := os.Create(*metricsPath)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					if err := reg.WriteJSON(f); err != nil && firstErr == nil {
						firstErr = err
					}
					if err := f.Close(); err != nil && firstErr == nil {
						firstErr = err
					}
				}
			}
			return firstErr
		}
		// Both the deferred command-exit path and the signal handler call
		// the close function; the Once keeps the flush single-shot.
		var once sync.Once
		var closeErr error
		closeOnce := func() error {
			once.Do(func() { closeErr = closeObs() })
			return closeErr
		}
		watchSignals(closeOnce)
		return o, dbg, closeOnce, nil
	}
}

func cmdRun(args []string) (retErr error) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	o := addOptionFlags(fs)
	figure := fs.String("figure", "", "figure to regenerate (fig2..fig9, ext-*)")
	out := fs.String("out", "", "output file (default stdout)")
	repeat := fs.Int("repeat", 1, "repeat over this many consecutive seeds and report mean ± std")
	asPlot := fs.Bool("plot", false, "render an ASCII chart instead of TSV")
	profiles := addProfileFlags(fs)
	observe := addObsFlags(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *figure == "" {
		return fmt.Errorf("run: -figure is required")
	}
	driver, err := experiments.ByName(*figure)
	if err != nil {
		return err
	}
	ob, _, closeObs, err := observe()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	o.Obs = ob
	stopProfiles, err := profiles()
	if err != nil {
		return err
	}
	clock := obs.NewRealClock()
	start := clock.Now()
	var fig *experiments.Figure
	if *repeat > 1 {
		seeds := make([]int64, *repeat)
		for i := range seeds {
			seeds[i] = o.Seed + int64(i)
		}
		fig, err = experiments.Repeat(driver, *o, seeds)
	} else {
		fig, err = driver(*o)
	}
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lcofl: %s computed in %s\n", *figure, (clock.Now() - start).Round(time.Millisecond))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *asPlot {
		return plot.RenderFigure(w, fig, plot.Options{})
	}
	return fig.WriteTSV(w)
}

func cmdAll(args []string) (retErr error) {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	o := addOptionFlags(fs)
	outdir := fs.String("outdir", "results", "output directory")
	profiles := addProfileFlags(fs)
	observe := addObsFlags(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	ob, _, closeObs, err := observe()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	o.Obs = ob
	stopProfiles, err := profiles()
	if err != nil {
		return err
	}
	figs, err := experiments.All(*o)
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	for _, fig := range figs {
		path := filepath.Join(*outdir, fig.Name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fig.WriteTSV(f); err != nil {
			_ = f.Close() // the write error takes precedence
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lcofl: wrote %s\n", path)
	}
	return nil
}

func cmdDemo(args []string) (retErr error) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	vehicles := fs.Int("vehicles", 40, "fleet size")
	malicious := fs.Float64("malicious", 0.3, "malicious fraction")
	seed := fs.Int64("seed", 1, "seed")
	observe := addObsFlags(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, _, closeObs, err := observe()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	fmt.Printf("L-CoFL demo: %d vehicles, %.0f%% malicious\n\n", *vehicles, *malicious*100)

	ds, err := traffic.Generate(traffic.GenConfig{Rows: 1500, Seed: *seed})
	if err != nil {
		return err
	}
	train, test, err := ds.Split(0.8, *seed+1)
	if err != nil {
		return err
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: 16 * 8, Seed: *seed + 2})
	if err != nil {
		return err
	}
	refX := refDS.Features()
	parts, err := train.PartitionIID(*vehicles, *seed+3)
	if err != nil {
		return err
	}
	exact := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, 1)
	if err != nil {
		return err
	}
	fmt.Printf("Step 1  activation approximated by least squares (degree 1): %v\n", p)

	cfg := fl.Config{
		InputSize: traffic.NumFeatures, LocalEpochs: 5, LocalRate: 0.2,
		DistillEpochs: 30, DistillRate: 0.2, ServerStep: 0.5, Seed: *seed + 4,
		Obs: ob,
	}
	sys, err := fl.NewSystem(cfg, parts, refX, approx.FromPolynomial("demo", p))
	if err != nil {
		return err
	}
	scheme, err := core.NewScheme(refX, core.SchemeConfig{
		NumVehicles: *vehicles, NumBatches: 16, Degree: 1, Seed: *seed + 5,
		Obs: ob,
	})
	if err != nil {
		return err
	}
	fmt.Printf("        recover threshold K=%d, E-security budget %d of %d vehicles (eq. 6)\n",
		scheme.RecoverThreshold(), scheme.MaxMalicious(), *vehicles)
	fmt.Printf("        verification: %d slots x 2 symbols + %d learning estimates per vehicle\n\n",
		scheme.Slots(), len(refX))

	plan, err := adversary.NewPlan(*vehicles, *malicious, adversary.ConstantLie{Value: 5}, *seed+6)
	if err != nil {
		return err
	}
	fmt.Printf("Step 2  %d vehicles turned malicious (constant-lie): %v\n", plan.Count(), plan.IDs())
	if plan.Count() > scheme.MaxMalicious() {
		fmt.Printf("        WARNING: %d malicious exceeds the eq. 6 budget of %d — decoding will refuse and rounds degrade to the median fallback\n", plan.Count(), scheme.MaxMalicious())
	}
	fmt.Println()

	for r := 0; r < 10; r++ {
		if _, err := sys.RunRound(scheme, plan, nil); err != nil {
			return err
		}
		acc, err := sys.Accuracy(test.Samples)
		if err != nil {
			return err
		}
		fmt.Printf("Step 3  round %2d: decode failures %d/%d, flagged %2d vehicles, test accuracy %.3f\n",
			r+1, scheme.DecodeFailures, scheme.Slots(), len(scheme.SuspectedMalicious()), acc)
	}
	fmt.Printf("\nFlagged vehicles: %v\n", scheme.SuspectedMalicious())
	fmt.Println("All malicious vehicles identified by the Reed-Solomon verification channel;")
	fmt.Println("their estimation results never entered the shared model update.")
	return nil
}

// addChaosFlag registers -chaos and returns a builder for the fault
// injector. An empty spec yields a nil injector (fault-free run); the
// grammar is documented in internal/chaos and DESIGN.md §11.
func addChaosFlag(fs *flag.FlagSet) func(ob *obs.Obs) (*chaos.Injector, error) {
	spec := fs.String("chaos", "", "seeded fault-injection spec, e.g. 'seed=7;drop.upload=0.15:max=4;crash@3=before-upload:2'")
	return func(ob *obs.Obs) (*chaos.Injector, error) {
		if *spec == "" {
			return nil, nil
		}
		parsed, err := chaos.Parse(*spec)
		if err != nil {
			return nil, err
		}
		return chaos.New(parsed, chaos.Options{Obs: ob}), nil
	}
}

// addPipelineFlags registers the round-engine knobs shared by serve and
// dist and returns an applier that copies them into a ServerConfig. The
// defaults keep the pipelined engine in its bit-identical-to-lock-step
// mode (unlimited wait-budget); see DESIGN.md §14.
func addPipelineFlags(fs *flag.FlagSet) func(*node.ServerConfig) {
	lockstep := fs.Bool("lockstep", false, "disable the pipelined round engine and run lock-step rounds")
	waitBudget := fs.Int("wait-budget", 0,
		"uploads beyond the recover threshold K to wait for before closing a round (-1 = close at K, 0 = wait for the whole fleet)")
	adaptiveBudget := fs.Bool("adaptive-budget", false,
		"adapt the wait-budget per round from the observed straggler distribution (overrides -wait-budget)")
	window := fs.Int("pipeline-window", 0,
		"rounds a budget-excluded vehicle may fall behind before its broadcasts are withheld (0 = default)")
	return func(cfg *node.ServerConfig) {
		cfg.DisablePipeline = *lockstep
		cfg.WaitBudget = *waitBudget
		cfg.AdaptiveBudget = *adaptiveBudget
		cfg.PipelineWindow = *window
	}
}

// chaosWrap applies the injector when one is configured.
func chaosWrap(inj *chaos.Injector, peer int, c transport.Conn) transport.Conn {
	if inj == nil {
		return c
	}
	return inj.Wrap(peer, c)
}

// chooseBatches picks M so the degree-1 recover threshold K = M fits the
// fleet with room for errors (eq. 6).
func chooseBatches(vehicles int) int {
	switch {
	case vehicles >= 32:
		return 16
	case vehicles >= 16:
		return 8
	default:
		return 4
	}
}

// distributedSetup derives the deterministic scenario both sides of the
// TCP deployment share.
func distributedSetup(vehicles int, seed int64) ([][]float64, *traffic.Dataset, [][]float64, []float64, error) {
	ds, err := traffic.Generate(traffic.GenConfig{Rows: 2000, Seed: seed})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	train, test, err := ds.Split(0.8, seed+1)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: chooseBatches(vehicles) * 8, Seed: seed + 2})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return refDS.Features(), train, test.Features(), test.Labels(), nil
}

func cmdServe(args []string) (retErr error) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":9444", "listen address")
	vehicles := fs.Int("vehicles", 20, "expected fleet size (per session in fleet mode)")
	rounds := fs.Int("rounds", 10, "global rounds")
	seed := fs.Int64("seed", 1, "shared scenario seed")
	checkpoint := fs.String("checkpoint", "", "write the final shared model as JSON")
	sessionsN := fs.Int("sessions", 1, "concurrent sessions behind this listener (fleet mode when > 1; session IDs s0..sN-1, vehicles join with -session)")
	maxConns := fs.Int("max-conns", 0, "fleet mode: global connection budget, reserved in session-sized chunks (0 = unlimited)")
	queueDepth := fs.Int("queue-depth", 0, "fleet mode: handshaked connections parked when the budget is exhausted (0 = reject with a retry hint)")
	pipeline := addPipelineFlags(fs)
	observe := addObsFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, dbg, closeObs, err := observe()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if *sessionsN > 1 {
		return serveFleet(*addr, *sessionsN, *vehicles, *rounds, *maxConns, *queueDepth, *seed, pipeline, ob, dbg)
	}
	refX, _, testX, testY, err := distributedSetup(*vehicles, *seed)
	if err != nil {
		return err
	}
	exact := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, 1)
	if err != nil {
		return err
	}
	scfg := node.ServerConfig{
		FL: fl.Config{
			InputSize: traffic.NumFeatures, LocalEpochs: 5, LocalRate: 0.2,
			DistillEpochs: 30, DistillRate: 0.2, ServerStep: 0.5, Seed: *seed + 4,
		},
		Scheme: core.SchemeConfig{
			NumVehicles: *vehicles, NumBatches: chooseBatches(*vehicles), Degree: 1, Seed: *seed + 5,
		},
		RefX:             refX,
		ActivationCoeffs: p,
		Rounds:           *rounds,
		Obs:              ob,
	}
	pipeline(&scfg)
	srv, err := node.NewServer(scfg)
	if err != nil {
		return err
	}
	// /roundz serves the engine's live snapshot once the session starts.
	dbg.SetRoundz(func() any { return srv.Status() })
	l, err := transport.ListenTCP(*addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("lcofl serve: listening on %s for %d vehicles\n", l.Addr(), *vehicles)
	conns := make([]transport.Conn, 0, *vehicles)
	for len(conns) < *vehicles {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		// Initial label by accept order; the server relabels to the
		// handshaken vehicle ID once hello arrives.
		conns = append(conns, transport.Instrument(c, ob, fmt.Sprintf("conn-%d", len(conns))))
		fmt.Printf("lcofl serve: %d/%d vehicles connected\n", len(conns), *vehicles)
	}
	// Keep accepting while the session runs: a vehicle that crashed (or
	// was faulted by -chaos on its side) redials, and Server.Rejoin
	// revives it mid-round. Rejoins after the session end are answered
	// with Finished, so retrying vehicles always terminate.
	var acceptLoop parallel.Group
	acceptLoop.Go(func() error {
		for n := 0; ; n++ {
			c, err := l.Accept()
			if err != nil {
				return nil // listener closed: session over
			}
			fmt.Printf("lcofl serve: rejoin connection %d accepted\n", n)
			srv.Rejoin(transport.Instrument(c, ob, fmt.Sprintf("rejoin-%d", n)))
		}
	})
	report, err := srv.Run(conns)
	_ = l.Close() // unblock the accept loop; the deferred Close becomes a no-op
	if werr := acceptLoop.Wait(); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return err
	}
	fmt.Printf("lcofl serve: completed %d rounds, flagged %v, stragglers %d\n",
		report.Rounds, report.SuspectedMalicious, report.Stragglers)
	if report.CorruptFrames+report.Retransmits+report.Rejoins+report.DegradedRounds+report.RecvErrors > 0 {
		fmt.Printf("lcofl serve: recovery: %d corrupt frames, %d retransmits, %d rejoins, %d degraded rounds, %d recv errors\n",
			report.CorruptFrames, report.Retransmits, report.Rejoins, report.DegradedRounds, report.RecvErrors)
	}
	correct := 0
	for i, x := range testX {
		pi, err := srv.Shared().EstimateClamped(x)
		if err != nil {
			return err
		}
		if (pi > 0.5) == (testY[i] == 1) {
			correct++
		}
	}
	fmt.Printf("lcofl serve: final shared-model test accuracy %.3f\n", float64(correct)/float64(len(testX)))
	if *checkpoint != "" {
		data, err := json.MarshalIndent(srv.Shared().Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*checkpoint, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("lcofl serve: wrote model checkpoint to %s\n", *checkpoint)
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "", "model checkpoint (JSON from serve -checkpoint)")
	csvPath := fs.String("csv", "", "dataset CSV (from trafficgen); default: fresh synthetic data")
	rows := fs.Int("rows", 200, "synthetic rows when no -csv is given")
	seed := fs.Int64("seed", 99, "synthetic data seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("predict: -model is required")
	}
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		return err
	}
	model, err := nn.UnmarshalNetworkJSON(data)
	if err != nil {
		return err
	}
	var ds *traffic.Dataset
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = traffic.ReadCSV(f)
		if err != nil {
			return err
		}
	} else {
		ds, err = traffic.Generate(traffic.GenConfig{Rows: *rows, Seed: *seed})
		if err != nil {
			return err
		}
	}
	correct := 0
	fmt.Println("row\testimate\tlabel")
	for i, s := range ds.Samples {
		pi, err := model.EstimateClamped(s.X)
		if err != nil {
			return err
		}
		if (pi > 0.5) == (s.Y == 1) {
			correct++
		}
		if i < 20 {
			fmt.Printf("%d\t%.3f\t%g\n", i, pi, s.Y)
		}
	}
	if ds.Len() > 20 {
		fmt.Printf("… (%d more rows)\n", ds.Len()-20)
	}
	fmt.Printf("accuracy: %.3f over %d rows\n", float64(correct)/float64(ds.Len()), ds.Len())
	return nil
}

func cmdVehicle(args []string) (retErr error) {
	fs := flag.NewFlagSet("vehicle", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9444", "fusion centre address")
	id := fs.Int("id", 0, "vehicle ID (0..V-1)")
	vehicles := fs.Int("vehicles", 20, "fleet size (must match the server; per session in fleet mode)")
	seed := fs.Int64("seed", 1, "shared scenario seed")
	session := fs.String("session", "", "fleet session to join (s0, s1, … as served by lcofl serve -sessions; empty = single-session)")
	malicious := fs.Bool("malicious", false, "lie on every upload")
	retries := fs.Int("retries", 5, "consecutive failed connection attempts before giving up")
	dialTimeout := fs.Duration("dial-timeout", transport.DefaultDialTimeout, "per-attempt connection timeout")
	buildChaos := addChaosFlag(fs)
	observe := addObsFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, _, closeObs, err := observe()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	inj, err := buildChaos(ob)
	if err != nil {
		return err
	}
	// In fleet mode both sides derive the session's scenario from the
	// master seed and the session index, so a vehicle only needs the
	// session ID to agree with the fusion centre.
	scenarioSeed := *seed
	if *session != "" {
		var j int
		if _, err := fmt.Sscanf(*session, "s%d", &j); err != nil || j < 0 {
			return fmt.Errorf("vehicle: -session must look like s0, s1, …; got %q", *session)
		}
		scenarioSeed = fleetSessionSeed(*seed, j)
	}
	_, train, _, _, err := distributedSetup(*vehicles, scenarioSeed)
	if err != nil {
		return err
	}
	parts, err := train.PartitionIID(*vehicles, scenarioSeed+3)
	if err != nil {
		return err
	}
	if *id < 0 || *id >= len(parts) {
		return fmt.Errorf("vehicle: id %d outside fleet of %d", *id, len(parts))
	}
	cc := node.ClientConfig{VehicleID: *id, SessionID: *session, Data: parts[*id], Seed: scenarioSeed + 100 + int64(*id)}
	if *malicious {
		cc.Corrupt = adversary.ConstantLie{Value: 5}
		fmt.Printf("lcofl vehicle %d: running MALICIOUSLY\n", *id)
	}
	if inj != nil {
		fmt.Printf("lcofl vehicle %d: chaos spec %q active\n", *id, inj.Spec().String())
	}
	// The session survives connection loss: RunVehicleRetry redials with
	// exponential backoff, and the fusion centre's rejoin path resends
	// whatever the vehicle still owes. The injector persists across
	// redials so a spec'd crash fires exactly once.
	dial := func() (transport.Conn, error) {
		raw, err := transport.DialTCPTimeout(*addr, *dialTimeout)
		if err != nil {
			return nil, err
		}
		return chaosWrap(inj, *id, transport.Instrument(raw, ob, "server")), nil
	}
	fmt.Printf("lcofl vehicle %d: dialing %s with %d local samples\n", *id, *addr, len(parts[*id]))
	if err := node.RunVehicleRetry(cc, node.RetryConfig{
		Dial:        dial,
		MaxAttempts: *retries,
		Obs:         ob,
	}); err != nil {
		return err
	}
	fmt.Printf("lcofl vehicle %d: session finished\n", *id)
	return nil
}

// cmdDist runs the whole distributed deployment — fusion centre plus
// fleet — inside one process over in-memory pipes, with every
// vehicle-side connection optionally wrapped by the -chaos injector and
// every vehicle running under bounded-reconnect retry. This is what the
// CI chaos-smoke gate drives: a seeded fault schedule, then
// cmd/tracereport cross-checks the recovery ledger.
func cmdDist(args []string) (retErr error) {
	fs := flag.NewFlagSet("dist", flag.ExitOnError)
	vehicles := fs.Int("vehicles", 12, "fleet size")
	rounds := fs.Int("rounds", 3, "global rounds")
	seed := fs.Int64("seed", 1, "shared scenario seed")
	malicious := fs.Float64("malicious", 0, "malicious fraction")
	workers := fs.Int("workers", 0, "worker-pool size for the decode hot paths (0 = all cores)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-round upload deadline (dropped uploads surface as stragglers after this)")
	retries := fs.Int("retries", 5, "per-vehicle consecutive failed connection attempts before giving up")
	shards := fs.Int("shards", 0, "edge relays between the fleet and the fusion centre; vehicles are striped across them (0 = direct pipes)")
	gatherWindow := fs.Duration("gather-window", 0, "relay gather window for partial shards (0 = default, negative = forward without gathering)")
	pipeline := addPipelineFlags(fs)
	buildChaos := addChaosFlag(fs)
	observe := addObsFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, dbg, closeObs, err := observe()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	inj, err := buildChaos(ob)
	if err != nil {
		return err
	}
	refX, train, testX, testY, err := distributedSetup(*vehicles, *seed)
	if err != nil {
		return err
	}
	parts, err := train.PartitionIID(*vehicles, *seed+3)
	if err != nil {
		return err
	}
	exact := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, 1)
	if err != nil {
		return err
	}
	scfg := node.ServerConfig{
		FL: fl.Config{
			InputSize: traffic.NumFeatures, LocalEpochs: 5, LocalRate: 0.2,
			DistillEpochs: 30, DistillRate: 0.2, ServerStep: 0.5, Seed: *seed + 4,
		},
		Scheme: core.SchemeConfig{
			NumVehicles: *vehicles, NumBatches: chooseBatches(*vehicles), Degree: 1, Seed: *seed + 5,
			Workers: *workers,
		},
		RefX:             refX,
		ActivationCoeffs: p,
		Rounds:           *rounds,
		RoundTimeout:     *timeout,
		Obs:              ob,
	}
	pipeline(&scfg)
	srv, err := node.NewServer(scfg)
	if err != nil {
		return err
	}
	dbg.SetRoundz(func() any { return srv.Status() })
	var plan *adversary.Plan
	if *malicious > 0 {
		plan, err = adversary.NewPlan(*vehicles, *malicious, adversary.ConstantLie{Value: 5}, *seed+6)
		if err != nil {
			return err
		}
		fmt.Printf("lcofl dist: %d malicious vehicles: %v\n", plan.Count(), plan.IDs())
	}
	if inj != nil {
		fmt.Printf("lcofl dist: chaos spec %q active on every vehicle-side connection\n", inj.Spec().String())
	}
	if *shards > 0 {
		fmt.Printf("lcofl dist: %d vehicles, %d rounds through %d edge relays over in-memory pipes\n",
			*vehicles, *rounds, *shards)
	} else {
		fmt.Printf("lcofl dist: %d vehicles, %d rounds over in-memory pipes\n", *vehicles, *rounds)
	}

	conns := make([]transport.Conn, *vehicles)
	var fleet parallel.Group
	clientFor := func(i int) node.ClientConfig {
		cc := node.ClientConfig{VehicleID: i, Data: parts[i], Seed: *seed + 100 + int64(i)}
		if plan != nil && plan.IsMalicious(i) {
			cc.Corrupt = adversary.ConstantLie{Value: 5}
		}
		return cc
	}
	var report *node.Report
	if *shards > 0 {
		// Aggregation tree: vehicles dial their stripe's relay, each relay
		// gathers its shard's uploads into combined frames and forwards
		// them over per-link upstream legs. The fusion centre accepts the
		// initial legs, then feeds later ones (crash redials) to Rejoin.
		ufab := transport.NewPipeFabric(2 * *vehicles)
		rfabs := make([]*transport.PipeFabric, *shards)
		relays := make([]*node.Relay, *shards)
		var relayGroup, acceptLoop parallel.Group
		defer func() {
			// Join every spawn on the early-error paths too: closing the
			// relays and the upstream fabric unblocks their loops, and a
			// vehicle whose fabric died exhausts its redial budget in
			// milliseconds. Everything here is idempotent, so the ordered
			// success-path teardown below stays authoritative.
			for _, r := range relays {
				if r != nil {
					_ = r.Close()
				}
			}
			_ = ufab.Close()
			if werr := relayGroup.Wait(); werr != nil && retErr == nil {
				retErr = werr
			}
			if werr := acceptLoop.Wait(); werr != nil && retErr == nil {
				retErr = werr
			}
			if werr := fleet.Wait(); werr != nil && retErr == nil {
				retErr = werr
			}
		}()
		for k := range rfabs {
			rfabs[k] = transport.NewPipeFabric(0)
			relay, err := node.NewRelayWith(node.RelayConfig{
				Listener:     rfabs[k],
				Dial:         ufab.Dial,
				GatherWindow: *gatherWindow,
				Obs:          ob,
			})
			if err != nil {
				return err
			}
			relays[k] = relay
			relayGroup.Go(relay.Serve)
		}
		for i := 0; i < *vehicles; i++ {
			i := i
			cc := clientFor(i)
			rfab := rfabs[i%*shards]
			dial := func() (transport.Conn, error) {
				c, err := rfab.Dial()
				if err != nil {
					return nil, err
				}
				return chaosWrap(inj, i, c), nil
			}
			fleet.Go(func() error {
				return node.RunVehicleRetry(cc, node.RetryConfig{
					Dial:        dial,
					MaxAttempts: *retries,
					BaseDelay:   time.Millisecond,
					Obs:         ob,
				})
			})
		}
		for i := 0; i < *vehicles; i++ {
			c, err := ufab.Accept()
			if err != nil {
				return err
			}
			conns[i] = transport.Instrument(c, ob, fmt.Sprintf("conn-%d", i))
		}
		acceptLoop.Go(func() error {
			for n := 0; ; n++ {
				c, err := ufab.Accept()
				if err != nil {
					return nil // fabric closed: session over
				}
				srv.Rejoin(transport.Instrument(c, ob, fmt.Sprintf("rejoin-%d", n)))
			}
		})
		report, err = srv.Run(conns)
		if werr := fleet.Wait(); werr != nil && err == nil {
			err = werr
		}
		for _, r := range relays {
			if cerr := r.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if werr := relayGroup.Wait(); werr != nil && err == nil {
			err = werr
		}
		_ = ufab.Close()
		if werr := acceptLoop.Wait(); werr != nil && err == nil {
			err = werr
		}
	} else {
		for i := 0; i < *vehicles; i++ {
			serverEnd, vehicleEnd := transport.Pipe()
			conns[i] = transport.Instrument(serverEnd, ob, fmt.Sprintf("conn-%d", i))
			cc := clientFor(i)
			first := vehicleEnd
			dial := func() (transport.Conn, error) {
				if first != nil {
					c := first
					first = nil
					return chaosWrap(inj, i, c), nil
				}
				// Crash recovery: open a fresh pipe and hand the
				// fusion-centre side to the running session.
				se, ve := transport.Pipe()
				srv.Rejoin(transport.Instrument(se, ob, fmt.Sprintf("conn-%d", i)))
				return chaosWrap(inj, i, ve), nil
			}
			fleet.Go(func() error {
				return node.RunVehicleRetry(cc, node.RetryConfig{
					Dial:        dial,
					MaxAttempts: *retries,
					// Redialing a pipe is instant; keep the backoff short so
					// a crashed vehicle rejoins within the session instead
					// of finding it already finished.
					BaseDelay: time.Millisecond,
					Obs:       ob,
				})
			})
		}
		report, err = srv.Run(conns)
		if werr := fleet.Wait(); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("lcofl dist: completed %d rounds, flagged %v, stragglers %d\n",
		report.Rounds, report.SuspectedMalicious, report.Stragglers)
	fmt.Printf("lcofl dist: recovery: %d corrupt frames, %d retransmits, %d rejoins, %d degraded rounds, %d recv errors\n",
		report.CorruptFrames, report.Retransmits, report.Rejoins, report.DegradedRounds, report.RecvErrors)
	correct := 0
	for i, x := range testX {
		pi, err := srv.Shared().EstimateClamped(x)
		if err != nil {
			return err
		}
		if (pi > 0.5) == (testY[i] == 1) {
			correct++
		}
	}
	fmt.Printf("lcofl dist: final shared-model test accuracy %.3f\n", float64(correct)/float64(len(testX)))
	return nil
}
