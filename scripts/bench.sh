#!/usr/bin/env bash
# bench.sh measures the performance-critical paths and writes two
# machine-readable reports:
#
#   BENCH_parallel.json    — the workers-sweep benchmarks (Fig. 3 end to
#                            end, Lagrange vector encode, Berlekamp–Welch
#                            decode racing) at workers 1/2/4, reduced to
#                            per-benchmark speedup ratios by cmd/benchreport.
#   BENCH_batchdecode.json — the batch-decoding suite (DESIGN.md §9):
#                            Aggregate batch vs per-slot, DecodeBatch vs
#                            Decode, cached-weights encode, lazy-reduction
#                            dot kernel. When a previous report exists it
#                            doubles as the regression baseline: benchreport
#                            -compare fails the run on >20% ns/op growth
#                            (tolerance widened in --quick mode, where 1x
#                            timings are noise).
#   BENCH_obs.json         — the observability-overhead suite (DESIGN.md
#                            §10): Aggregate with obs off / counters only /
#                            counters+tracer. The same -compare gate keeps
#                            the mode=off timing pinned to the baseline, so
#                            instrumentation cost cannot creep into the
#                            disabled path.
#
#   scripts/bench.sh            # full measurement (benchtime 3x)
#   scripts/bench.sh --quick    # CI smoke: 1 iteration, exercises the
#                               # whole pipeline without meaningful timings
#
# The reports record the host core count — interpret speedup ratios
# against it (a 1-core host cannot show wall-clock speedup by construction).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
max_regress="${MAX_REGRESS:-0.20}"
if [[ "${1:-}" == "--quick" ]]; then
    benchtime=1x
    # Single-iteration timings swing wildly; keep the compare step as a
    # pipeline/schema check that only catches order-of-magnitude blowups.
    max_regress=10
fi

out="${BENCH_OUT:-BENCH_parallel.json}"
batch_out="${BENCH_BATCH_OUT:-BENCH_batchdecode.json}"
obs_out="${BENCH_OBS_OUT:-BENCH_obs.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench Workers -benchtime $benchtime"
go test -run NONE -bench 'Workers' -benchtime "$benchtime" . | tee "$raw"

echo "== benchreport -> $out"
go run ./cmd/benchreport -out "$out" < "$raw"

echo "== go test -bench batch-decode suite -benchtime $benchtime"
go test -run NONE -bench 'AggregateBatch|DecodeBatch|EncodeVectorsCached|DotAcc' \
    -benchtime "$benchtime" ./... | tee "$raw"

compare_args=()
if [[ -f "$batch_out" ]]; then
    echo "== benchreport -> $batch_out (regression gate vs previous, max +${max_regress})"
    compare_args=(-compare "$batch_out" -max-regress "$max_regress")
else
    echo "== benchreport -> $batch_out (no baseline yet)"
fi
go run ./cmd/benchreport -out "$batch_out" "${compare_args[@]}" < "$raw"

echo "== go test -bench observability-overhead suite -benchtime $benchtime"
go test -run NONE -bench 'AggregateObs' -benchtime "$benchtime" . | tee "$raw"

obs_compare_args=()
if [[ -f "$obs_out" ]]; then
    echo "== benchreport -> $obs_out (regression gate vs previous, max +${max_regress})"
    obs_compare_args=(-compare "$obs_out" -max-regress "$max_regress")
else
    echo "== benchreport -> $obs_out (no baseline yet)"
fi
go run ./cmd/benchreport -out "$obs_out" "${obs_compare_args[@]}" < "$raw"
