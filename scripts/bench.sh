#!/usr/bin/env bash
# bench.sh measures the parallel execution engine and writes the speedup
# report BENCH_parallel.json: the workers-sweep benchmarks (Fig. 3 end to
# end, Lagrange vector encode, Berlekamp–Welch decode racing) at workers
# 1/2/4, reduced to per-benchmark speedup ratios by cmd/benchreport.
#
#   scripts/bench.sh            # full measurement (benchtime 3x)
#   scripts/bench.sh --quick    # CI smoke: 1 iteration, exercises the
#                               # whole pipeline without meaningful timings
#
# The report records the host core count — interpret the ratios against
# it (a 1-core host cannot show wall-clock speedup by construction).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
if [[ "${1:-}" == "--quick" ]]; then
    benchtime=1x
fi

out="${BENCH_OUT:-BENCH_parallel.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench Workers -benchtime $benchtime"
go test -run NONE -bench 'Workers' -benchtime "$benchtime" . | tee "$raw"

echo "== benchreport -> $out"
go run ./cmd/benchreport -out "$out" < "$raw"
