#!/usr/bin/env bash
# bench.sh measures the performance-critical paths and writes two
# machine-readable reports:
#
#   BENCH_parallel.json    — the workers-sweep benchmarks (Fig. 3 end to
#                            end, Lagrange vector encode, Berlekamp–Welch
#                            decode racing) at workers 1/2/4, reduced to
#                            per-benchmark speedup ratios by cmd/benchreport.
#   BENCH_batchdecode.json — the batch-decoding suite (DESIGN.md §9):
#                            Aggregate batch vs per-slot, DecodeBatch vs
#                            Decode, cached-weights encode, lazy-reduction
#                            dot kernel. When a previous report exists it
#                            doubles as the regression baseline: benchreport
#                            -compare fails the run on >20% ns/op growth
#                            (tolerance widened in --quick mode, where 1x
#                            timings are noise).
#   BENCH_obs.json         — the observability-overhead suite (DESIGN.md
#                            §10): Aggregate with obs off / counters only /
#                            counters+tracer. The same -compare gate keeps
#                            the mode=off timing pinned to the baseline, so
#                            instrumentation cost cannot creep into the
#                            disabled path.
#
#   BENCH_pipeline.json    — the round-engine suite (DESIGN.md §14):
#                            BenchmarkRoundPipelined vs
#                            BenchmarkRoundLockstep under a seeded
#                            straggler distribution (two vehicles sleep
#                            40ms before every upload). benchreport
#                            derives pipelined_vs_lockstep and enforces
#                            the >=1.5x round-latency floor; the floor is
#                            sleep-driven, so it holds on any core count.
#
#   BENCH_fleet.json       — the fleet fan-in suite (DESIGN.md §16):
#                            BenchmarkFleetFanIn session latency with
#                            direct legs (mode=flat), a relay tree that
#                            forwards frame-by-frame (mode=relay), and the
#                            same tree with upload gathering (mode=gather).
#                            benchreport derives fleet_gather_vs_relay and
#                            enforces that gathering stays within 30% of
#                            plain relaying (full runs only; 1x quick
#                            timings are too noisy for a latency-parity
#                            verdict).
#
#   BENCH_multicore.json   — (--matrix only) the speedup matrix: the
#                            workers sweeps, the batch-decode suite and the
#                            wire codec re-run at GOMAXPROCS 1/2/4 (capped
#                            at nproc), each setting kept as a /procs=N
#                            name segment. benchreport gates the result:
#                            the best workers speedup must reach the
#                            host-scaled target (skipped, loudly, below 2
#                            cores — never a silent target_met:false) and
#                            the derived batch_vs_perslot / binary_vs_json
#                            ratios must clear their floors on every host.
#
#   scripts/bench.sh            # full measurement (benchtime 3x)
#   scripts/bench.sh --quick    # CI smoke: 1 iteration, exercises the
#                               # whole pipeline without meaningful timings
#   scripts/bench.sh --matrix   # GOMAXPROCS sweep + gated speedup matrix
#
# The reports record the host core count — interpret speedup ratios
# against it (a 1-core host cannot show wall-clock speedup by construction).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
max_regress="${MAX_REGRESS:-0.20}"
quick=0
matrix=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    --matrix) matrix=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done
if [[ "$quick" == 1 ]]; then
    benchtime=1x
    # Single-iteration timings swing wildly; keep the compare step as a
    # pipeline/schema check that only catches order-of-magnitude blowups.
    max_regress=10
fi

out="${BENCH_OUT:-BENCH_parallel.json}"
batch_out="${BENCH_BATCH_OUT:-BENCH_batchdecode.json}"
obs_out="${BENCH_OBS_OUT:-BENCH_obs.json}"
pipe_out="${BENCH_PIPELINE_OUT:-BENCH_pipeline.json}"
fleet_out="${BENCH_FLEET_OUT:-BENCH_fleet.json}"
matrix_out="${BENCH_MATRIX_OUT:-BENCH_multicore.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [[ "$matrix" == 1 ]]; then
    cores="$(nproc)"
    : >"$raw"
    for p in 1 2 4; do
        if ((p > cores && p > 1)); then
            echo "== skipping GOMAXPROCS=$p (host has $cores core(s))"
            continue
        fi
        echo "== GOMAXPROCS=$p go test -bench matrix suite -benchtime $benchtime"
        GOMAXPROCS="$p" go test -run NONE \
            -bench 'Workers|AggregateBatch|DecodeBatch|WireCodec' \
            -benchtime "$benchtime" ./... | tee -a "$raw"
    done

    # The workers-speedup gate self-skips below 2 cores and scales its
    # target to the host inside benchreport; the derived-ratio gates are
    # core-count independent and always enforced. Measured headroom is
    # wide (batch ~20x vs the 1.5 floor, binary codec ~35x vs 3), so the
    # floors hold even under --quick's single-iteration noise — but quick
    # timings are too unstable for a wall-clock speedup verdict, so that
    # gate is disabled there.
    require_speedup="${REQUIRE_SPEEDUP:-2.0}"
    if [[ "$quick" == 1 ]]; then
        echo "== quick mode: workers-speedup gate disabled (1x timings are noise)"
        require_speedup=0
    fi
    matrix_compare_args=()
    if [[ -f "$matrix_out" ]]; then
        echo "== benchreport -> $matrix_out (regression gate vs previous, max +${max_regress})"
        matrix_compare_args=(-compare "$matrix_out" -max-regress "$max_regress")
    else
        echo "== benchreport -> $matrix_out (no baseline yet)"
    fi
    go run ./cmd/benchreport -procs -out "$matrix_out" \
        -require-speedup "$require_speedup" \
        -min-ratio batch_vs_perslot=1.5 \
        -min-ratio binary_vs_json=3 \
        "${matrix_compare_args[@]}" <"$raw"
    exit 0
fi

echo "== go test -bench Workers -benchtime $benchtime"
go test -run NONE -bench 'Workers' -benchtime "$benchtime" . | tee "$raw"

echo "== benchreport -> $out"
go run ./cmd/benchreport -out "$out" < "$raw"

echo "== go test -bench batch-decode suite -benchtime $benchtime"
go test -run NONE -bench 'AggregateBatch|DecodeBatch|EncodeVectorsCached|DotAcc' \
    -benchtime "$benchtime" ./... | tee "$raw"

compare_args=()
if [[ -f "$batch_out" ]]; then
    echo "== benchreport -> $batch_out (regression gate vs previous, max +${max_regress})"
    compare_args=(-compare "$batch_out" -max-regress "$max_regress")
else
    echo "== benchreport -> $batch_out (no baseline yet)"
fi
go run ./cmd/benchreport -out "$batch_out" "${compare_args[@]}" < "$raw"

echo "== go test -bench observability-overhead suite -benchtime $benchtime"
go test -run NONE -bench 'AggregateObs' -benchtime "$benchtime" . | tee "$raw"

obs_compare_args=()
if [[ -f "$obs_out" ]]; then
    echo "== benchreport -> $obs_out (regression gate vs previous, max +${max_regress})"
    obs_compare_args=(-compare "$obs_out" -max-regress "$max_regress")
else
    echo "== benchreport -> $obs_out (no baseline yet)"
fi
go run ./cmd/benchreport -out "$obs_out" "${obs_compare_args[@]}" < "$raw"

echo "== go test -bench pipeline suite -benchtime $benchtime"
go test -run NONE -bench 'RoundPipelined|RoundLockstep' \
    -benchtime "$benchtime" ./internal/node | tee "$raw"

# The pipelined-vs-lockstep floor is driven by injected 40ms straggler
# sleeps, not by parallel compute, so it is enforced even in --quick mode
# and on single-core hosts.
pipe_compare_args=()
if [[ -f "$pipe_out" ]]; then
    echo "== benchreport -> $pipe_out (regression gate vs previous, max +${max_regress})"
    pipe_compare_args=(-compare "$pipe_out" -max-regress "$max_regress")
else
    echo "== benchreport -> $pipe_out (no baseline yet)"
fi
go run ./cmd/benchreport -out "$pipe_out" \
    -min-ratio pipelined_vs_lockstep=1.5 \
    "${pipe_compare_args[@]}" < "$raw"

echo "== go test -bench fleet fan-in suite -benchtime $benchtime"
go test -run NONE -bench 'FleetFanIn' -benchtime "$benchtime" ./internal/node | tee "$raw"

# Gathering must stay within 30% of plain relaying (the window releases
# with the shard's last upload, so parity is the expectation). The floor
# is a wall-clock verdict, so --quick's single-iteration noise disables
# it, mirroring the matrix speedup gate.
fleet_ratio_args=(-min-ratio fleet_gather_vs_relay=0.7)
if [[ "$quick" == 1 ]]; then
    echo "== quick mode: fleet gather-parity gate disabled (1x timings are noise)"
    fleet_ratio_args=()
fi
fleet_compare_args=()
if [[ -f "$fleet_out" ]]; then
    echo "== benchreport -> $fleet_out (regression gate vs previous, max +${max_regress})"
    fleet_compare_args=(-compare "$fleet_out" -max-regress "$max_regress")
else
    echo "== benchreport -> $fleet_out (no baseline yet)"
fi
go run ./cmd/benchreport -out "$fleet_out" \
    "${fleet_ratio_args[@]}" "${fleet_compare_args[@]}" < "$raw"
