#!/usr/bin/env bash
# check.sh is the single verification gate: formatting, go vet, the
# repo-specific invariant linter (cmd/lcofl-lint), a full build, and the
# test suite under the race detector. CI runs exactly this script, so a
# clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== lcofl-lint"
go run ./cmd/lcofl-lint ./...

echo "== go build"
go build ./...

echo "== go test -race"
# This also replays every checked-in fuzz seed corpus
# (internal/*/testdata/fuzz) in regular test mode — the fuzz properties
# gate every run, not just the CI fuzz-smoke job.
go test -race ./...

echo "== go test -race -count=2 (scheduling-sensitive packages)"
# The node and chaos packages carry the lock-discipline and
# deterministic-fault invariants; a second run flushes out
# order-dependent state the first run happened to miss.
go test -race -count=2 ./internal/node ./internal/chaos

echo "== all checks passed"
