// Package chaos is the repository's deterministic fault-injection layer:
// a seeded transport.Conn wrapper that drops, corrupts, delays, and
// hard-closes protocol messages according to a schedule parsed from a
// compact fault-spec string, plus the process-fault vocabulary
// (crash-before-upload / crash-after-upload) the vehicle retry layer and
// the fusion centre's rejoin path are tested against.
//
// Determinism contract: every fault decision is drawn from a
// field.SeededSource derived from (Spec.Seed, peer index) and advanced
// once per matching rule per message. The protocol is lockstep per
// connection, so the message sequence a wrapped conn sees — and therefore
// the exact fault pattern — is a pure function of the spec, independent of
// goroutine scheduling and worker counts. Same seed + same spec ⇒ same
// faults, byte-identical aggregates (pinned in internal/node's chaos
// tests).
//
// The fault-spec grammar (DESIGN.md §11):
//
//	spec   := clause (';' clause)*
//	clause := 'seed=' INT
//	        | fault ['.' msgkind] ['@' peer] '=' args
//	fault  := 'drop' | 'corrupt' | 'delay' | 'crash'
//	args   := PROB [':max=' N]            (drop, corrupt)
//	        | PROB ':' DURATION [':max=' N]  (delay)
//	        | ('before-upload' | 'after-upload') ':' ROUND  (crash)
//
// Examples:
//
//	seed=7;drop.upload=0.15:max=4            drop up to 4 uploads, p=0.15
//	corrupt.upload=1:max=2                   corrupt the first two uploads
//	delay=0.2:2ms                            delay any message, p=0.2
//	crash@7=before-upload:2                  peer 7 crashes before its round-2 upload
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Message kinds a rule may scope to — the protocol.Message discriminators.
var msgKinds = map[string]bool{
	"hello": true, "setup": true, "broadcast": true,
	"upload": true, "finished": true, "error": true,
}

// Rule is one probabilistic per-message fault.
type Rule struct {
	// Fault is "drop", "corrupt" or "delay".
	Fault string
	// Kind filters by message kind; "" matches every message.
	Kind string
	// Peer filters by peer index; -1 matches every peer.
	Peer int
	// Prob is the per-message fault probability in [0, 1].
	Prob float64
	// Delay is the hold duration for delay faults.
	Delay time.Duration
	// Max caps how many times the rule fires per connection (0 = no cap).
	Max int
}

// Crash is one scheduled process fault, modelled at the connection: the
// wrapped conn hard-closes around the named round's upload. Each crash
// fires at most once per peer across the whole Injector, so a vehicle
// that reconnects and resends the same round's upload does not crash
// again — that is what lets restart-and-rejoin recover.
type Crash struct {
	// Peer filters by peer index; -1 matches every peer.
	Peer int
	// Point is "before-upload" or "after-upload".
	Point string
	// Round is the 1-based round whose upload triggers the crash.
	Round int
}

// Spec is a parsed fault specification.
type Spec struct {
	// Seed drives every per-peer fault schedule (default 1).
	Seed    int64
	Rules   []Rule
	Crashes []Crash
}

// Parse parses a fault-spec string (see the package comment for the
// grammar). An empty string yields an empty, fault-free spec.
func Parse(s string) (*Spec, error) {
	spec := &Spec{Seed: 1}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		eq := strings.Index(clause, "=")
		if eq < 0 {
			return nil, fmt.Errorf("chaos: clause %q has no '='", clause)
		}
		left, right := clause[:eq], clause[eq+1:]
		if left == "seed" {
			seed, err := strconv.ParseInt(right, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: seed %q: %w", right, err)
			}
			spec.Seed = seed
			continue
		}
		peer := -1
		if at := strings.Index(left, "@"); at >= 0 {
			p, err := strconv.Atoi(left[at+1:])
			if err != nil || p < 0 {
				return nil, fmt.Errorf("chaos: clause %q: bad peer %q", clause, left[at+1:])
			}
			peer, left = p, left[:at]
		}
		kind := ""
		if dot := strings.Index(left, "."); dot >= 0 {
			kind, left = left[dot+1:], left[:dot]
			if !msgKinds[kind] {
				return nil, fmt.Errorf("chaos: clause %q: unknown message kind %q", clause, kind)
			}
		}
		switch left {
		case "drop", "corrupt", "delay":
			rule, err := parseRule(left, kind, peer, right)
			if err != nil {
				return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			spec.Rules = append(spec.Rules, rule)
		case "crash":
			if kind != "" {
				return nil, fmt.Errorf("chaos: clause %q: crash takes no message kind", clause)
			}
			crash, err := parseCrash(peer, right)
			if err != nil {
				return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			spec.Crashes = append(spec.Crashes, crash)
		default:
			return nil, fmt.Errorf("chaos: clause %q: unknown fault %q", clause, left)
		}
	}
	return spec, nil
}

func parseRule(fault, kind string, peer int, args string) (Rule, error) {
	parts := strings.Split(args, ":")
	rule := Rule{Fault: fault, Kind: kind, Peer: peer}
	prob, err := strconv.ParseFloat(parts[0], 64)
	// The negated range test also rejects NaN, which compares false
	// against every bound and would otherwise slip through.
	if err != nil || !(prob >= 0 && prob <= 1) {
		return rule, fmt.Errorf("probability %q must be a float in [0, 1]", parts[0])
	}
	rule.Prob = prob
	rest := parts[1:]
	if fault == "delay" {
		if len(rest) == 0 {
			return rule, fmt.Errorf("delay needs a duration, e.g. delay=0.2:2ms")
		}
		d, err := time.ParseDuration(rest[0])
		if err != nil || d <= 0 {
			return rule, fmt.Errorf("bad delay duration %q", rest[0])
		}
		rule.Delay = d
		rest = rest[1:]
	}
	for _, p := range rest {
		v, ok := strings.CutPrefix(p, "max=")
		if !ok {
			return rule, fmt.Errorf("unknown argument %q", p)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return rule, fmt.Errorf("bad max %q", v)
		}
		rule.Max = n
	}
	return rule, nil
}

func parseCrash(peer int, args string) (Crash, error) {
	point, roundStr, ok := strings.Cut(args, ":")
	if !ok {
		return Crash{}, fmt.Errorf("crash needs point:round, e.g. crash=before-upload:2")
	}
	if point != "before-upload" && point != "after-upload" {
		return Crash{}, fmt.Errorf("unknown crash point %q (want before-upload or after-upload)", point)
	}
	round, err := strconv.Atoi(roundStr)
	if err != nil || round < 1 {
		return Crash{}, fmt.Errorf("bad crash round %q", roundStr)
	}
	return Crash{Peer: peer, Point: point, Round: round}, nil
}

// String renders the spec back into the grammar (canonical clause order:
// seed, rules in declaration order, crashes in declaration order).
func (s *Spec) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	for _, r := range s.Rules {
		left := r.Fault
		if r.Kind != "" {
			left += "." + r.Kind
		}
		if r.Peer >= 0 {
			left += "@" + strconv.Itoa(r.Peer)
		}
		args := trimFloat(r.Prob)
		if r.Fault == "delay" {
			args += ":" + r.Delay.String()
		}
		if r.Max > 0 {
			args += ":max=" + strconv.Itoa(r.Max)
		}
		parts = append(parts, left+"="+args)
	}
	for _, c := range s.Crashes {
		left := "crash"
		if c.Peer >= 0 {
			left += "@" + strconv.Itoa(c.Peer)
		}
		parts = append(parts, fmt.Sprintf("%s=%s:%d", left, c.Point, c.Round))
	}
	return strings.Join(parts, ";")
}

// trimFloat renders a probability without trailing zeros.
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Kinds returns the sorted message-kind vocabulary (for error messages
// and docs).
func Kinds() []string {
	out := make([]string, 0, len(msgKinds))
	for k := range msgKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
