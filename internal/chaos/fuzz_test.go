package chaos

import "testing"

// FuzzSpecRoundTrip checks the Parse↔String contract: any string Parse
// accepts must render to a canonical form that re-parses to the same
// canonical form (String is a fixed point after one round trip), and
// Parse must never panic on arbitrary input. The seed corpus covers
// every fault kind, kind/peer scoping, max caps, delays, crashes, and
// historically tricky probability spellings.
func FuzzSpecRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"seed=7",
		"seed=-3;drop=0.5",
		"drop.upload=0.15:max=4",
		"corrupt.upload=1:max=2",
		"corrupt.broadcast@2=0.25",
		"delay=0.2:2ms",
		"delay.hello@0=1:150ms:max=9",
		"crash@7=before-upload:2",
		"crash=after-upload:1;drop=0",
		"seed=42;drop.upload=0.1;corrupt=0.01:max=1;delay=0.5:1ms;crash@3=before-upload:5",
		"drop=0.30000000000000004",
		"drop=1e-7",
		"drop=NaN", // must be rejected, not round-tripped
		"drop=+0.5",
		"delay=1:2m30s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := Parse(s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if spec.Seed == 0 && s == "" {
			t.Fatalf("Parse(%q): empty spec must default Seed to 1", s)
		}
		for _, r := range spec.Rules {
			if !(r.Prob >= 0 && r.Prob <= 1) {
				t.Fatalf("Parse(%q) admitted probability %v outside [0, 1]", s, r.Prob)
			}
		}
		canon := spec.String()
		spec2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical form %q does not re-parse: %v", s, canon, err)
		}
		if canon2 := spec2.String(); canon2 != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", s, canon, canon2)
		}
	})
}
