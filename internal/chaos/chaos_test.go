package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func upload(round, id int) *protocol.Message {
	return &protocol.Message{Upload: &protocol.Upload{
		Round: round, VehicleID: id, Values: []float64{1},
	}}
}

func bcast(round int) *protocol.Message {
	return &protocol.Message{Broadcast: &protocol.Broadcast{Round: round, Params: []float64{0}}}
}

func mustSpec(t *testing.T, s string) *Spec {
	t.Helper()
	spec, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestDropRule pins that a p=1 drop rule silently discards matching
// messages while unmatched kinds pass through untouched.
func TestDropRule(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	in := New(mustSpec(t, "drop.upload=1"), Options{})
	c := in.Wrap(0, a)
	defer c.Close()
	if err := c.Send(upload(1, 0)); err != nil {
		t.Fatalf("drop surfaced an error: %v", err)
	}
	if err := c.Send(bcast(1)); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Broadcast == nil {
		t.Fatalf("dropped upload leaked through: %+v", got)
	}
}

// TestCorruptRule pins the full corruption path: the wrapped pipe's peer
// sees protocol.ErrCorruptFrame, then a clean stream.
func TestCorruptRule(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	in := New(mustSpec(t, "corrupt.upload=1:max=1"), Options{})
	c := in.Wrap(2, a)
	defer c.Close()
	if err := c.Send(upload(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(upload(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); !errors.Is(err, protocol.ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
	got, err := b.Recv()
	if err != nil || got.Upload == nil {
		t.Fatalf("stream broken after corrupt frame: %+v, %v", got, err)
	}
}

// plainConn strips the Faulter face so the fallback path is reachable.
type plainConn struct{ inner transport.Conn }

func (p plainConn) Send(m *protocol.Message) error   { return p.inner.Send(m) }
func (p plainConn) Recv() (*protocol.Message, error) { return p.inner.Recv() }
func (p plainConn) Close() error                     { return p.inner.Close() }

// TestCorruptFallsBackToDrop: on a fabric without Faulter the corrupt
// fault degrades to a drop instead of failing.
func TestCorruptFallsBackToDrop(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	in := New(mustSpec(t, "corrupt=1:max=1"), Options{})
	c := in.Wrap(0, plainConn{inner: a})
	defer c.Close()
	if err := c.Send(upload(1, 0)); err != nil {
		t.Fatalf("fallback drop surfaced an error: %v", err)
	}
	if err := c.Send(bcast(1)); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil || got.Broadcast == nil {
		t.Fatalf("got %+v, %v", got, err)
	}
}

// TestDelayRule pins that delays go through the injected Sleeper (tests
// never sleep) and the message still arrives.
func TestDelayRule(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	sleeper := &obs.ManualSleeper{}
	in := New(mustSpec(t, "delay=1:3ms:max=2"), Options{Sleeper: sleeper})
	c := in.Wrap(1, a)
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Send(upload(1, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	slept := sleeper.Slept()
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (max=2): %v", len(slept), slept)
	}
	for _, d := range slept {
		if d != 3*time.Millisecond {
			t.Errorf("slept %v, want 3ms", d)
		}
	}
}

// TestCrashBeforeUpload: the conn hard-closes instead of delivering the
// round's upload, and the same injector does not re-crash the rewrapped
// (reconnected) peer — that is what makes restart-and-rejoin converge.
func TestCrashBeforeUpload(t *testing.T) {
	a, b := transport.Pipe()
	in := New(mustSpec(t, "crash@3=before-upload:2"), Options{})
	c := in.Wrap(3, a)
	if err := c.Send(upload(1, 3)); err != nil {
		t.Fatalf("round 1 upload: %v", err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(upload(2, 3)); err == nil {
		t.Fatal("crash before upload delivered without error")
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("peer still readable after crash close")
	}
	b.Close()

	// Reconnect: fresh pipe, same peer index, same injector.
	a2, b2 := transport.Pipe()
	defer b2.Close()
	c2 := in.Wrap(3, a2)
	defer c2.Close()
	if err := c2.Send(upload(2, 3)); err != nil {
		t.Fatalf("re-sent upload crashed again: %v", err)
	}
	got, err := b2.Recv()
	if err != nil || got.Upload == nil || got.Upload.Round != 2 {
		t.Fatalf("got %+v, %v", got, err)
	}
}

// TestCrashAfterUpload: the upload is delivered, then the conn closes.
func TestCrashAfterUpload(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	in := New(mustSpec(t, "crash@0=after-upload:1"), Options{})
	c := in.Wrap(0, a)
	if err := c.Send(upload(1, 0)); err != nil {
		t.Fatalf("after-upload crash should deliver first: %v", err)
	}
	got, err := b.Recv()
	if err != nil || got.Upload == nil {
		t.Fatalf("got %+v, %v", got, err)
	}
	if err := c.Send(bcast(1)); err == nil {
		t.Fatal("send after crash close accepted")
	}
}

// TestCrashPeerScope: a crash scoped to peer 5 leaves other peers alone.
func TestCrashPeerScope(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	in := New(mustSpec(t, "crash@5=before-upload:1"), Options{})
	c := in.Wrap(4, a)
	defer c.Close()
	if err := c.Send(upload(1, 4)); err != nil {
		t.Fatalf("peer 4 hit a peer-5 crash: %v", err)
	}
}

// faultPattern drives n uploads through a wrapped sink and returns which
// were delivered — the schedule fingerprint.
func faultPattern(t *testing.T, in *Injector, peer, n int) []bool {
	t.Helper()
	a, b := transport.Pipe()
	defer b.Close()
	c := in.Wrap(peer, a)
	defer c.Close()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		if err := c.Send(upload(1, peer)); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(bcast(1)); err != nil { // sync marker
			t.Fatal(err)
		}
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Upload != nil {
			out[i] = true
			if m, err = b.Recv(); err != nil || m.Broadcast == nil {
				t.Fatalf("lost sync marker: %+v, %v", m, err)
			}
		}
	}
	return out
}

// TestScheduleDeterministic pins the layer's core contract: the fault
// pattern is a pure function of (seed, spec, peer, message sequence).
func TestScheduleDeterministic(t *testing.T) {
	const spec = "seed=11;drop.upload=0.4"
	p1 := faultPattern(t, New(mustSpec(t, spec), Options{}), 2, 64)
	p2 := faultPattern(t, New(mustSpec(t, spec), Options{}), 2, 64)
	drops := 0
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
		if !p1[i] {
			drops++
		}
	}
	if drops == 0 || drops == 64 {
		t.Fatalf("degenerate schedule: %d/64 drops", drops)
	}
	// Different peers (and different seeds) draw independent streams.
	other := faultPattern(t, New(mustSpec(t, spec), Options{}), 3, 64)
	same := 0
	for i := range p1 {
		if p1[i] == other[i] {
			same++
		}
	}
	if same == 64 {
		t.Error("peers 2 and 3 share an identical schedule")
	}
}

// TestObsCounters pins the chaos.* counter totals for a fixed schedule.
func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.New(reg, nil, nil)
	sleeper := &obs.ManualSleeper{}
	in := New(mustSpec(t, "drop.upload=1:max=2;delay.broadcast=1:1ms:max=1;crash@0=after-upload:3"), Options{Obs: o, Sleeper: sleeper})
	a, b := transport.Pipe()
	defer b.Close()
	c := in.Wrap(0, a)
	for i := 0; i < 3; i++ {
		if err := c.Send(upload(1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Send(bcast(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(upload(3, 0)); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"chaos.drops": 2, "chaos.delays": 1, "chaos.crashes": 1, "chaos.corrupts": 0,
	}
	for name, w := range want {
		if got := reg.Counter(name).Value(); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}

// TestNilSpecFaultFree: a nil spec wraps into a transparent conn.
func TestNilSpecFaultFree(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	in := New(nil, Options{})
	c := in.Wrap(0, a)
	defer c.Close()
	if err := c.Send(upload(1, 0)); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Recv(); err != nil || got.Upload == nil {
		t.Fatalf("got %+v, %v", got, err)
	}
}
