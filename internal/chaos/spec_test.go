package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	in := "seed=7;drop.upload=0.15:max=4;delay=0.2:2ms;corrupt.upload@3=1:max=2;crash@7=before-upload:2"
	spec, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 {
		t.Errorf("seed = %d, want 7", spec.Seed)
	}
	if len(spec.Rules) != 3 || len(spec.Crashes) != 1 {
		t.Fatalf("got %d rules, %d crashes", len(spec.Rules), len(spec.Crashes))
	}
	want := []Rule{
		{Fault: "drop", Kind: "upload", Peer: -1, Prob: 0.15, Max: 4},
		{Fault: "delay", Kind: "", Peer: -1, Prob: 0.2, Delay: 2 * time.Millisecond},
		{Fault: "corrupt", Kind: "upload", Peer: 3, Prob: 1, Max: 2},
	}
	for i, w := range want {
		if spec.Rules[i] != w {
			t.Errorf("rule %d = %+v, want %+v", i, spec.Rules[i], w)
		}
	}
	if c := spec.Crashes[0]; c != (Crash{Peer: 7, Point: "before-upload", Round: 2}) {
		t.Errorf("crash = %+v", c)
	}
}

func TestParseEmptyAndWhitespace(t *testing.T) {
	for _, in := range []string{"", " ", ";;", "seed=3;;"} {
		spec, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if len(spec.Rules) != 0 || len(spec.Crashes) != 0 {
			t.Errorf("Parse(%q) = %+v, want empty", in, spec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"bogus", "no '='"},
		{"explode=0.5", "unknown fault"},
		{"drop=1.5", "probability"},
		{"drop=-0.1", "probability"},
		{"drop=x", "probability"},
		{"seed=abc", "seed"},
		{"drop.warp=0.5", "unknown message kind"},
		{"drop@-2=0.5", "bad peer"},
		{"drop@x=0.5", "bad peer"},
		{"delay=0.5", "duration"},
		{"delay=0.5:nope", "duration"},
		{"delay=0.5:-2ms", "duration"},
		{"drop=0.5:max=0", "bad max"},
		{"drop=0.5:wat=3", "unknown argument"},
		{"crash=2", "point:round"},
		{"crash=sideways:2", "unknown crash point"},
		{"crash=before-upload:0", "bad crash round"},
		{"crash.upload=before-upload:2", "no message kind"},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); err == nil {
			t.Errorf("Parse(%q) accepted", c.in)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

// TestStringRoundTrip pins that the canonical rendering reparses to the
// same spec — the property cmd/lcofl relies on when echoing the active
// spec into traces and logs.
func TestStringRoundTrip(t *testing.T) {
	in := "seed=42;drop.upload=0.25:max=3;corrupt@1=0.5;delay.broadcast=1:5ms:max=2;crash=after-upload:3"
	spec, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	out := spec.String()
	spec2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if spec2.String() != out {
		t.Errorf("not canonical: %q -> %q", out, spec2.String())
	}
	if len(spec2.Rules) != len(spec.Rules) || len(spec2.Crashes) != len(spec.Crashes) {
		t.Errorf("round trip lost clauses: %q", out)
	}
}

func TestKinds(t *testing.T) {
	ks := Kinds()
	if len(ks) != 6 {
		t.Fatalf("got %d kinds: %v", len(ks), ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Errorf("kinds not sorted: %v", ks)
		}
	}
}
