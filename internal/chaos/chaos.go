package chaos

import (
	"fmt"
	"sync"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Options configures an Injector.
type Options struct {
	// Obs attaches fault counters (chaos.drops / corrupts / delays /
	// crashes) and per-fault trace events. Nil disables instrumentation.
	Obs *obs.Obs
	// Sleeper executes delay faults; nil selects obs.RealSleeper. Tests
	// inject obs.ManualSleeper so delay-heavy specs run without sleeping.
	Sleeper obs.Sleeper
}

// Injector owns one fault schedule and wraps connections with it. Crash
// faults fire at most once per peer across the Injector's lifetime, so a
// reconnecting vehicle wrapped again under the same peer index does not
// crash again on the retransmitted upload.
type Injector struct {
	spec  *Spec
	sleep obs.Sleeper
	o     *obs.Obs

	cDrops    *obs.Counter
	cCorrupts *obs.Counter
	cDelays   *obs.Counter
	cCrashes  *obs.Counter

	mu      sync.Mutex        // guards crashed
	crashed map[crashKey]bool // guarded by mu
}

type crashKey struct {
	peer, idx int
}

// New builds an Injector for the given spec (nil spec = fault-free).
func New(spec *Spec, opt Options) *Injector {
	if spec == nil {
		spec = &Spec{Seed: 1}
	}
	in := &Injector{
		spec:    spec,
		sleep:   opt.Sleeper,
		o:       opt.Obs,
		crashed: make(map[crashKey]bool),
	}
	if in.sleep == nil {
		in.sleep = obs.RealSleeper{}
	}
	if opt.Obs.Enabled() {
		in.cDrops = opt.Obs.Counter("chaos.drops")
		in.cCorrupts = opt.Obs.Counter("chaos.corrupts")
		in.cDelays = opt.Obs.Counter("chaos.delays")
		in.cCrashes = opt.Obs.Counter("chaos.crashes")
	}
	return in
}

// Spec returns the injector's fault specification.
func (in *Injector) Spec() *Spec { return in.spec }

// Wrap decorates c with the fault schedule for the given peer index. Each
// call derives an independent deterministic stream from (Spec.Seed, peer),
// so wrapping the same peer's reconnection replays a fresh but
// reproducible schedule. The wrapper preserves the fabric's concurrency
// contract: one concurrent sender, one concurrent receiver.
func (in *Injector) Wrap(peer int, c transport.Conn) transport.Conn {
	return &conn{
		in:    in,
		peer:  peer,
		inner: c,
		src:   field.NewSeededSource(peerSeed(in.spec.Seed, peer)),
		hits:  make([]int, len(in.spec.Rules)),
	}
}

// peerSeed mixes the master seed with the peer index (splitmix64 golden
// ratio) so every peer draws from an independent stream.
func peerSeed(seed int64, peer int) int64 {
	return int64(uint64(seed) + uint64(peer+1)*0x9e3779b97f4a7c15)
}

// conn applies the schedule on the send side; Recv and Close pass
// through (faults on inbound traffic are injected by the peer's wrapper).
// All mutable state (src, msg, hits) is touched only under the
// one-concurrent-sender contract, so no lock is needed here.
type conn struct {
	in    *Injector
	peer  int
	inner transport.Conn
	src   *field.SeededSource
	msg   int   // messages offered to Send so far
	hits  []int // per-rule fire counts on this connection
}

// Send implements transport.Conn, running the message through the fault
// schedule: a scheduled crash closes the connection around the round's
// upload; otherwise the first matching-and-firing rule decides the
// message's fate (drop, corrupt, or delay-then-deliver).
func (c *conn) Send(m *protocol.Message) error {
	idx := c.msg
	c.msg++
	kind := m.Kind()

	if m.Upload != nil {
		for ci, cr := range c.in.spec.Crashes {
			if cr.Peer >= 0 && cr.Peer != c.peer {
				continue
			}
			if cr.Round != m.Upload.Round || !c.in.claimCrash(c.peer, ci) {
				continue
			}
			c.in.event(c.in.cCrashes, "chaos.crash", c.peer, kind, idx,
				obs.F("point", cr.Point), obs.F("round", cr.Round))
			if cr.Point == "before-upload" {
				_ = c.inner.Close()
				return fmt.Errorf("chaos: injected crash before upload (peer %d round %d)", c.peer, cr.Round)
			}
			err := c.inner.Send(m)
			_ = c.inner.Close()
			return err
		}
	}

	for ri := range c.in.spec.Rules {
		r := &c.in.spec.Rules[ri]
		if r.Peer >= 0 && r.Peer != c.peer {
			continue
		}
		if r.Kind != "" && r.Kind != kind {
			continue
		}
		if r.Max > 0 && c.hits[ri] >= r.Max {
			continue
		}
		if c.uniform() >= r.Prob {
			continue
		}
		c.hits[ri]++
		switch r.Fault {
		case "drop":
			c.in.event(c.in.cDrops, "chaos.drop", c.peer, kind, idx)
			return nil // silently lost, like a radio shadow
		case "corrupt":
			c.in.event(c.in.cCorrupts, "chaos.corrupt", c.peer, kind, idx)
			if f, ok := c.inner.(transport.Faulter); ok {
				return f.SendCorrupt(m)
			}
			return nil // fabric cannot corrupt: degrade to a drop
		case "delay":
			c.in.event(c.in.cDelays, "chaos.delay", c.peer, kind, idx,
				obs.F("delay_ns", int64(r.Delay)))
			c.in.sleep.Sleep(r.Delay)
			return c.inner.Send(m)
		}
	}
	return c.inner.Send(m)
}

// Recv implements transport.Conn.
func (c *conn) Recv() (*protocol.Message, error) { return c.inner.Recv() }

// Close implements transport.Conn.
func (c *conn) Close() error { return c.inner.Close() }

// Flush, SetWireVersion and Pending forward the optional transport faces
// so a chaos wrapper is transparent to flush barriers, wire-version
// negotiation and relay coalescing.
func (c *conn) Flush() error         { return transport.Flush(c.inner) }
func (c *conn) SetWireVersion(v int) { transport.SetWireVersion(c.inner, v) }
func (c *conn) Pending() bool        { return transport.Pending(c.inner) }

// uniform draws a float64 in [0, 1) from the connection's stream.
func (c *conn) uniform() float64 {
	return float64(c.src.Uint64()>>11) / float64(1<<53)
}

// claimCrash marks crash idx fired for peer, returning whether this call
// claimed it (each crash fires once per peer per Injector).
func (in *Injector) claimCrash(peer, idx int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	k := crashKey{peer: peer, idx: idx}
	if in.crashed[k] {
		return false
	}
	in.crashed[k] = true
	return true
}

// event bumps the fault counter and emits the fault's trace event.
func (in *Injector) event(c *obs.Counter, name string, peer int, kind string, idx int, extra ...obs.Field) {
	c.Inc()
	if in.o.TraceEnabled() {
		fields := append([]obs.Field{
			obs.F("peer", peer), obs.F("kind", kind), obs.F("msg", idx),
		}, extra...)
		in.o.Emit(name, fields...)
	}
}
