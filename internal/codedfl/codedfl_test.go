package codedfl

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/channel"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/traffic"
)

func buildRef(t *testing.T, rows int) [][]float64 {
	t.Helper()
	ds, err := traffic.Generate(traffic.GenConfig{Rows: rows, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Features()
}

func TestNewSchemeValidation(t *testing.T) {
	ref := buildRef(t, 48)
	if _, err := NewScheme(nil, Config{}); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := NewScheme(ref, Config{NumVehicles: -1}); err == nil {
		t.Error("negative vehicles accepted")
	}
	if _, err := NewScheme(ref, Config{NumVehicles: 4, MeasurementsPerVehicle: 2}); err == nil {
		t.Error("under-determined configuration accepted")
	}
	s, err := NewScheme(ref, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.NumVehicles != DefaultVehicles {
		t.Errorf("default vehicles = %d", s.cfg.NumVehicles)
	}
	if total := s.cfg.NumVehicles * s.MeasurementsPerVehicle(); total < len(ref) {
		t.Errorf("default redundancy under-determined: %d < %d", total, len(ref))
	}
}

func TestRoundTripHonest(t *testing.T) {
	ref := buildRef(t, 48)
	s, err := NewScheme(ref, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := testModel(t)
	if err := s.BeginRound(model); err != nil {
		t.Fatal(err)
	}
	ups := make([][]float64, DefaultVehicles)
	for i := range ups {
		up, err := s.Upload(i, model)
		if err != nil {
			t.Fatal(err)
		}
		ups[i] = up
	}
	got, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	for j, x := range ref {
		want, err := model.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[j]-want) > 1e-4 {
			t.Fatalf("recovered[%d] = %g, want %g", j, got[j], want)
		}
	}
}

func TestStragglerTolerance(t *testing.T) {
	ref := buildRef(t, 48)
	s, err := NewScheme(ref, Config{Seed: 4, MeasurementsPerVehicle: 4}) // 96 measurements for 48 unknowns
	if err != nil {
		t.Fatal(err)
	}
	model := testModel(t)
	ups := make([][]float64, DefaultVehicles)
	for i := range ups {
		up, err := s.Upload(i, model)
		if err != nil {
			t.Fatal(err)
		}
		ups[i] = up
	}
	// Drop 8 of 24 vehicles: 64 ≥ 48 measurements survive.
	for i := 0; i < 8; i++ {
		ups[i] = nil
	}
	got, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	for j, x := range ref {
		want, _ := model.Estimate(x)
		if math.Abs(got[j]-want) > 5e-3 {
			t.Fatalf("straggler recovery[%d] = %g, want %g", j, got[j], want)
		}
	}
	// Beyond tolerance: 15 dropped → 36 < 48.
	for i := 0; i < 15; i++ {
		ups[i] = nil
	}
	if _, err := s.Aggregate(ups); err == nil {
		t.Error("over-straggled aggregation accepted")
	}
}

func TestNoMaliciousProtection(t *testing.T) {
	// The baseline's documented weakness: a single gross liar corrupts
	// the recovery. This is what Fig. 2/5 contrast against L-CoFL.
	ref := buildRef(t, 48)
	s, err := NewScheme(ref, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	model := testModel(t)
	ups := make([][]float64, DefaultVehicles)
	for i := range ups {
		up, _ := s.Upload(i, model)
		ups[i] = up
	}
	for j := range ups[0] {
		ups[0][j] = 100
	}
	got, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for j, x := range ref {
		want, _ := model.Estimate(x)
		if d := math.Abs(got[j] - want); d > worst {
			worst = d
		}
	}
	if worst < 0.05 {
		t.Errorf("malicious upload barely moved recovery (%g) — baseline should be vulnerable", worst)
	}
}

func TestInFullSystem(t *testing.T) {
	// Fig. 2 scenario: 24 faithful vehicles with channel erasures; the
	// baseline must still learn.
	ds, err := traffic.Generate(traffic.GenConfig{Rows: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	ref := buildRef(t, 48)
	parts, err := train.PartitionIID(DefaultVehicles, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{
		InputSize:     traffic.NumFeatures,
		LocalEpochs:   5,
		LocalRate:     0.2,
		DistillEpochs: 30,
		DistillRate:   0.2,
		ServerStep:    0.5,
		Seed:          9,
	}
	sys, err := fl.NewSystem(cfg, parts, ref, approx.SymmetricSigmoid())
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := NewScheme(ref, Config{Seed: 10, MeasurementsPerVehicle: 4})
	if err != nil {
		t.Fatal(err)
	}
	er, err := channel.NewErasure(0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	accBefore, err := sys.Accuracy(test.Samples)
	if err != nil {
		t.Fatal(err)
	}
	var tail float64
	const rounds = 15
	for r := 0; r < rounds; r++ {
		if _, err := sys.RunRound(scheme, nil, er); err != nil {
			t.Fatal(err)
		}
		if r >= rounds-5 {
			a, err := sys.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			tail += a / 5
		}
	}
	if tail < accBefore || tail < 0.7 {
		t.Errorf("coded-FL baseline accuracy %g (start %g) — not learning", tail, accBefore)
	}
}

// testModel builds a deterministic single-layer network with the exact
// activation — the baseline does not approximate its model.
func testModel(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.New(nn.Config{
		LayerSizes: []int{traffic.NumFeatures, 1},
		Activation: approx.SymmetricSigmoid(),
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}
