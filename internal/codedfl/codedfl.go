// Package codedfl implements the comparison baseline of the paper's
// Fig. 2: the "coded federated learning" scheme of Dhakal et al. [32]
// (GLOBECOM 2019), reimplemented inside this repository's round structure.
//
// The baseline differs from L-CoFL in exactly the ways the paper lists:
// it uses RANDOM LINEAR encoding rather than Lagrange encoding, a fixed
// fleet of 24 vehicles, mitigates stragglers only (all vehicles are
// assumed faithful — no Reed–Solomon decoding, no malicious protection),
// and does not approximate the ML model (vehicles keep their exact
// activation).
//
// Concretely, each vehicle i holds a private random coding block
// G_i ∈ R^{c×R} fixed at setup. After local training it computes its
// estimation vector e_i over the R reference samples and uploads the c
// coded measurements G_i·e_i. The fusion centre stacks every received
// measurement and recovers the aggregate estimation vector by ridge
// least squares; as long as the surviving measurement count stays ≥ R the
// reconstruction tolerates straggling vehicles, which is [32]'s goal.
// Malicious uploads corrupt the least-squares system directly — the
// baseline has no defence, as the paper notes.
package codedfl

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/fl"
	"repro/internal/linalg"
	"repro/internal/nn"
)

// DefaultVehicles is the fleet size used in [32] and in the paper's
// Fig. 2 comparison.
const DefaultVehicles = 24

// Config parameterises the baseline scheme.
type Config struct {
	// NumVehicles is the fleet size (defaults to DefaultVehicles when 0).
	NumVehicles int
	// MeasurementsPerVehicle is c, the coded upload size. The total
	// V·c must exceed the reference size R for the least-squares recovery
	// to be determined; zero selects ⌈1.5·R/V⌉ (50% redundancy).
	MeasurementsPerVehicle int
	// Seed drives the random coding blocks. A non-zero seed selects a
	// deterministic source for reproducible simulation (Fig. 2 runs);
	// zero draws the blocks from crypto/rand, matching [32]'s assumption
	// that G_i is private to vehicle i.
	Seed int64
}

// Scheme implements fl.Scheme with random-linear-coded aggregation.
type Scheme struct {
	cfg  Config
	refX [][]float64
	g    []*linalg.Matrix // per-vehicle coding block, c×R
}

// NewScheme draws the per-vehicle coding blocks over the reference set.
func NewScheme(refX [][]float64, cfg Config) (*Scheme, error) {
	if len(refX) == 0 {
		return nil, fmt.Errorf("codedfl: reference features required")
	}
	if cfg.NumVehicles == 0 {
		cfg.NumVehicles = DefaultVehicles
	}
	if cfg.NumVehicles < 1 {
		return nil, fmt.Errorf("codedfl: vehicle count %d must be positive", cfg.NumVehicles)
	}
	r := len(refX)
	if cfg.MeasurementsPerVehicle == 0 {
		cfg.MeasurementsPerVehicle = (3*r + 2*cfg.NumVehicles - 1) / (2 * cfg.NumVehicles)
	}
	if cfg.MeasurementsPerVehicle < 1 {
		return nil, fmt.Errorf("codedfl: measurements per vehicle %d must be positive", cfg.MeasurementsPerVehicle)
	}
	if cfg.NumVehicles*cfg.MeasurementsPerVehicle < r {
		return nil, fmt.Errorf("codedfl: %d total measurements cannot determine %d reference samples",
			cfg.NumVehicles*cfg.MeasurementsPerVehicle, r)
	}
	var src field.Source
	if cfg.Seed != 0 {
		src = field.NewSeededSource(cfg.Seed)
	} else {
		src = field.NewCryptoSource()
	}
	gauss := &gaussian{src: src}
	s := &Scheme{cfg: cfg, refX: cloneRows(refX)}
	norm := 1 / math.Sqrt(float64(r))
	for v := 0; v < cfg.NumVehicles; v++ {
		g := linalg.NewMatrix(cfg.MeasurementsPerVehicle, r)
		for i := 0; i < cfg.MeasurementsPerVehicle; i++ {
			for j := 0; j < r; j++ {
				g.Set(i, j, gauss.norm()*norm)
			}
		}
		s.g = append(s.g, g)
	}
	return s, nil
}

// gaussian draws standard normal variates from a field.Source by the
// Box–Muller transform, producing two per transform.
type gaussian struct {
	src      field.Source
	spare    float64
	hasSpare bool
}

func (g *gaussian) norm() float64 {
	if g.hasSpare {
		g.hasSpare = false
		return g.spare
	}
	// 53-bit uniforms; the +0.5 offset keeps u1 strictly positive so the
	// logarithm is finite.
	u1 := (float64(g.src.Uint64()>>11) + 0.5) / (1 << 53)
	u2 := float64(g.src.Uint64()>>11) / (1 << 53)
	r := math.Sqrt(-2 * math.Log(u1))
	g.spare = r * math.Sin(2*math.Pi*u2)
	g.hasSpare = true
	return r * math.Cos(2*math.Pi*u2)
}

func cloneRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// Name implements fl.Scheme.
func (s *Scheme) Name() string { return "coded-fl-dhakal" }

// BeginRound implements fl.Scheme; the baseline has no verification
// channel.
func (s *Scheme) BeginRound(*nn.Network) error { return nil }

// MeasurementsPerVehicle returns c.
func (s *Scheme) MeasurementsPerVehicle() int { return s.cfg.MeasurementsPerVehicle }

// Upload implements fl.Scheme: the coded measurements G_i·e_i of the
// vehicle's estimation vector.
func (s *Scheme) Upload(vehicleID int, model *nn.Network) ([]float64, error) {
	if vehicleID < 0 || vehicleID >= s.cfg.NumVehicles {
		return nil, fmt.Errorf("codedfl: vehicle ID %d outside [0, %d)", vehicleID, s.cfg.NumVehicles)
	}
	est := make([]float64, len(s.refX))
	for j, x := range s.refX {
		pi, err := model.EstimateClamped(x)
		if err != nil {
			return nil, fmt.Errorf("codedfl: vehicle %d sample %d: %w", vehicleID, j, err)
		}
		est[j] = pi
	}
	return s.g[vehicleID].MulVec(est)
}

// Aggregate implements fl.Scheme: stack all surviving measurements and
// recover the aggregate estimation vector by ridge least squares.
func (s *Scheme) Aggregate(uploads [][]float64) ([]float64, error) {
	if len(uploads) != s.cfg.NumVehicles {
		return nil, fmt.Errorf("codedfl: got %d uploads, want %d", len(uploads), s.cfg.NumVehicles)
	}
	r := len(s.refX)
	var rows [][]float64
	var rhs []float64
	for v, up := range uploads {
		if up == nil {
			continue // straggler: its measurements never arrived
		}
		if len(up) != s.cfg.MeasurementsPerVehicle {
			return nil, fmt.Errorf("codedfl: vehicle %d uploaded %d values, want %d", v, len(up), s.cfg.MeasurementsPerVehicle)
		}
		for i, y := range up {
			if fl.IsDropped(y) {
				continue
			}
			rows = append(rows, s.g[v].Row(i))
			rhs = append(rhs, y)
		}
	}
	if len(rows) < r {
		return nil, fmt.Errorf("codedfl: only %d measurements survived, need %d (straggler tolerance exceeded)", len(rows), r)
	}
	design, err := linalg.FromRows(rows)
	if err != nil {
		return nil, err
	}
	// Ridge keeps the recovery stable when surviving rows are barely
	// determined; λ scales with the row count like the normal equations.
	est, err := linalg.RidgeLeastSquares(design, rhs, 1e-9*float64(len(rows)))
	if err != nil {
		return nil, fmt.Errorf("codedfl: recovery failed: %w", err)
	}
	return est, nil
}

// verify interface compliance.
var _ fl.Scheme = (*Scheme)(nil)
