package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/approx"
	"repro/internal/nn"
)

func TestGenerateShapeAndRange(t *testing.T) {
	ds, err := Generate(GenConfig{Rows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 || len(ds.Slowness) != 500 {
		t.Fatalf("len = %d/%d", ds.Len(), len(ds.Slowness))
	}
	for i, s := range ds.Samples {
		if len(s.X) != NumFeatures {
			t.Fatalf("sample %d has %d features", i, len(s.X))
		}
		for j, v := range s.X {
			if v < -1 || v > 1 {
				t.Fatalf("sample %d feature %d = %g outside [-1,1]", i, j, v)
			}
		}
		if s.Y != 0 && s.Y != 1 {
			t.Fatalf("sample %d label %g not binary", i, s.Y)
		}
		if ds.Slowness[i] < 0 || ds.Slowness[i] > 100 {
			t.Fatalf("slowness %g outside [0,100]", ds.Slowness[i])
		}
		// Label must agree with the latent slowness threshold.
		if (ds.Slowness[i] > 50) != (s.Y == 1) {
			t.Fatalf("sample %d: slowness %g but label %g", i, ds.Slowness[i], s.Y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GenConfig{Rows: 50, Seed: 7})
	b, _ := Generate(GenConfig{Rows: 50, Seed: 7})
	for i := range a.Samples {
		for j := range a.Samples[i].X {
			if a.Samples[i].X[j] != b.Samples[i].X[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c, _ := Generate(GenConfig{Rows: 50, Seed: 8})
	same := true
	for i := range a.Samples {
		if a.Samples[i].Y != c.Samples[i].Y {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical labels (suspicious)")
	}
}

func TestGenerateClassBalance(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 2000, Seed: 2})
	var pos float64
	for _, s := range ds.Samples {
		pos += s.Y
	}
	frac := pos / float64(ds.Len())
	if frac < 0.15 || frac > 0.85 {
		t.Errorf("class balance %g too extreme for training", frac)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Rows: 0}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestTaskIsLearnable(t *testing.T) {
	// The substitution's core promise (DESIGN.md §2): a small NN must be
	// able to learn the feature→slowness relation.
	ds, err := Generate(GenConfig{Rows: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.New(nn.Config{
		LayerSizes: []int{NumFeatures, 8, 1},
		Activation: approx.SymmetricSigmoid(),
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := net.TrainSGD(train.Samples, 0.3, 30, rng); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test.Samples {
		pi, err := net.Estimate(s.X)
		if err != nil {
			t.Fatal(err)
		}
		if (pi > 0.5) == (s.Y == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.8 {
		t.Errorf("test accuracy %g, want >= 0.8 — task not learnable", acc)
	}
}

func TestSplit(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 100, Seed: 9})
	train, test, err := ds.Split(0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || test.Len() != 30 {
		t.Errorf("split sizes %d/%d", train.Len(), test.Len())
	}
	if len(train.Slowness) != 70 {
		t.Error("slowness not carried through split")
	}
	if _, _, err := ds.Split(0, 1); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, _, err := ds.Split(1, 1); err == nil {
		t.Error("fraction 1 accepted")
	}
}

func TestPartitionIID(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 103, Seed: 11})
	parts, err := ds.PartitionIID(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for i, p := range parts {
		if len(p) == 0 {
			t.Errorf("vehicle %d has no data", i)
		}
		total += len(p)
	}
	if total != 103 {
		t.Errorf("partition lost samples: %d", total)
	}
	if _, err := ds.PartitionIID(0, 1); err == nil {
		t.Error("zero vehicles accepted")
	}
	if _, err := ds.PartitionIID(500, 1); err == nil {
		t.Error("more vehicles than samples accepted")
	}
}

func TestFeaturesLabelsCopies(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 5, Seed: 13})
	f := ds.Features()
	f[0][0] = 99
	if ds.Samples[0].X[0] == 99 {
		t.Error("Features aliases dataset")
	}
	l := ds.Labels()
	l[0] = 42
	if ds.Samples[0].Y == 42 {
		t.Error("Labels aliases dataset")
	}
}

func TestCorruptLowQuality(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 200, Seed: 14})
	bad := CorruptLowQuality(ds.Samples, 0.3, 0.5, 15)
	if len(bad) != len(ds.Samples) {
		t.Fatal("length changed")
	}
	flips := 0
	var noise float64
	for i := range bad {
		if bad[i].Y != ds.Samples[i].Y {
			flips++
		}
		for j := range bad[i].X {
			if bad[i].X[j] < -1 || bad[i].X[j] > 1 {
				t.Fatalf("corrupted feature %g left [-1,1]", bad[i].X[j])
			}
			noise += math.Abs(bad[i].X[j] - ds.Samples[i].X[j])
		}
	}
	if flips < 50 || flips > 150 {
		t.Errorf("flips = %d, want ≈100", flips)
	}
	if noise == 0 {
		t.Error("no feature noise applied")
	}
	// The original must be untouched.
	ds2, _ := Generate(GenConfig{Rows: 200, Seed: 14})
	for i := range ds.Samples {
		for j := range ds.Samples[i].X {
			if ds.Samples[i].X[j] != ds2.Samples[i].X[j] {
				t.Fatal("CorruptLowQuality mutated its input")
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 25, Seed: 16})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), ds.Len())
	}
	for i := range ds.Samples {
		if got.Samples[i].Y != ds.Samples[i].Y || got.Slowness[i] != ds.Slowness[i] {
			t.Fatalf("row %d label/slowness mismatch", i)
		}
		for j := range ds.Samples[i].X {
			if got.Samples[i].X[j] != ds.Samples[i].X[j] {
				t.Fatalf("row %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Error("wrong column count accepted")
	}
	hdr := "h"
	for i := 1; i < NumFeatures+2; i++ {
		hdr += ",h"
	}
	bad := hdr + "\n"
	for i := 0; i < NumFeatures+1; i++ {
		bad += "0,"
	}
	bad += "oops\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestFeatureNameCount(t *testing.T) {
	if len(FeatureNames) != NumFeatures {
		t.Fatalf("FeatureNames has %d entries, want %d", len(FeatureNames), NumFeatures)
	}
	if len(eventRates) != NumFeatures-1 || len(eventSeverity) != NumFeatures-1 {
		t.Fatalf("event tables sized %d/%d, want %d", len(eventRates), len(eventSeverity), NumFeatures-1)
	}
}

func TestPartitionNonIID(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 400, Seed: 17})
	parts, err := ds.PartitionNonIID(8, 1.0, 18)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, p := range parts {
		if len(p) == 0 {
			t.Fatalf("vehicle %d empty", i)
		}
		total += len(p)
	}
	if total != 400 {
		t.Fatalf("partition lost samples: %d", total)
	}
	// Full skew: each vehicle's hour range must be narrow — the spread of
	// hours within a vehicle far below the global spread.
	within := 0.0
	for _, p := range parts {
		lo, hi := 2.0, -2.0
		for _, s := range p {
			h := s.X[0]
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		within += (hi - lo) / float64(len(parts))
	}
	if within > 0.7 { // global hour spread is 2.0
		t.Errorf("mean within-vehicle hour spread %g too wide for skew=1", within)
	}
	// Zero skew approximates IID: hour spread per vehicle near global.
	iid, err := ds.PartitionNonIID(8, 0, 18)
	if err != nil {
		t.Fatal(err)
	}
	wide := 0.0
	for _, p := range iid {
		lo, hi := 2.0, -2.0
		for _, s := range p {
			h := s.X[0]
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		wide += (hi - lo) / float64(len(iid))
	}
	if wide < 1.5 {
		t.Errorf("skew=0 spread %g too narrow — shuffle not applied", wide)
	}
}

func TestPartitionNonIIDValidation(t *testing.T) {
	ds, _ := Generate(GenConfig{Rows: 40, Seed: 19})
	if _, err := ds.PartitionNonIID(0, 0.5, 1); err == nil {
		t.Error("zero vehicles accepted")
	}
	if _, err := ds.PartitionNonIID(100, 0.5, 1); err == nil {
		t.Error("more vehicles than samples accepted")
	}
	if _, err := ds.PartitionNonIID(4, 1.5, 1); err == nil {
		t.Error("skew > 1 accepted")
	}
}
