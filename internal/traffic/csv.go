package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/nn"
)

// WriteCSV emits the dataset with a header row: the 16 feature columns,
// the binary label, and the latent slowness percentage.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), FeatureNames...), "label", "slowness_pct")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("traffic: write header: %w", err)
	}
	for i, s := range d.Samples {
		row := make([]string, 0, NumFeatures+2)
		for _, v := range s.X {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row, strconv.FormatFloat(s.Y, 'g', -1, 64))
		row = append(row, strconv.FormatFloat(d.Slowness[i], 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("traffic: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously produced by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traffic: read csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("traffic: csv has no data rows")
	}
	wantCols := NumFeatures + 2
	if len(records[0]) != wantCols {
		return nil, fmt.Errorf("traffic: csv has %d columns, want %d", len(records[0]), wantCols)
	}
	ds := &Dataset{}
	for rix, rec := range records[1:] {
		vals := make([]float64, wantCols)
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: row %d col %d: %w", rix+1, i, err)
			}
			vals[i] = v
		}
		ds.Samples = append(ds.Samples, nn.Sample{
			X: vals[:NumFeatures],
			Y: vals[NumFeatures],
		})
		ds.Slowness = append(ds.Slowness, vals[NumFeatures+1])
	}
	return ds, nil
}
