// Package traffic generates the synthetic stand-in for the São Paulo
// urban-traffic dataset the paper evaluates on (paper §VI, ref. [31]).
//
// The original dataset records, per half-hour slot of the working day, 16
// traffic-pattern features (hour plus event counts such as "immobilized
// bus", "broken truck", "point of flooding") and the resulting "slowness
// in traffic (%)". It is not redistributable here, so this package
// produces a calibrated synthetic equivalent (see DESIGN.md §2): event
// counts are sparse Poisson draws, and the latent slowness is a logistic
// mixture of event severities plus a diurnal rush-hour term and noise.
// What the substitution preserves is what the evaluation needs — feature
// count and ranges, event sparsity, and a monotone feature→slowness
// relationship that a small NN can learn.
//
// All features are normalised into [-1, 1], the precondition of the
// encoding-element selection rule (paper eq. 9).
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/nn"
)

// FeatureNames lists the 16 features in column order: the half-hour slot
// followed by 15 incident counts, named after the paper's enumeration.
var FeatureNames = []string{
	"hour",
	"immobilized_bus",
	"broken_truck",
	"vehicle_excess",
	"accident_victim",
	"running_over",
	"fire_vehicles",
	"freight_occurrence",
	"dangerous_freight_incident",
	"lack_of_electricity",
	"fire",
	"point_of_flooding",
	"manifestations",
	"trolleybus_network_defect",
	"tree_on_the_road",
	"semaphore_fault",
}

// NumFeatures is the paper's M = 16.
const NumFeatures = 16

// slots is the number of half-hour slots in the observed day
// (7:00–20:00 in the original dataset).
const slots = 27

// eventRates are the Poisson intensities per half-hour slot; ordered as
// FeatureNames[1:]. Common nuisances are more frequent than disasters,
// mirroring the sparsity of the original data.
var eventRates = []float64{
	0.35, // immobilized bus
	0.30, // broken truck
	0.25, // vehicle excess
	0.15, // accident victim
	0.08, // running over
	0.05, // fire vehicles
	0.12, // freight occurrence
	0.03, // dangerous freight incident
	0.10, // lack of electricity
	0.04, // fire
	0.10, // point of flooding
	0.06, // manifestations
	0.08, // trolleybus network defect
	0.05, // tree on the road
	0.20, // semaphore fault
}

// eventSeverity weights each incident's contribution to slowness;
// flooding, manifestations and semaphore faults dominate, as the original
// study reports.
var eventSeverity = []float64{
	0.5, 0.6, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7, 0.4, 1.2, 1.0, 0.5, 0.5, 0.9,
}

// maxCount caps event counts for normalisation.
const maxCount = 4.0

// Dataset is a labelled traffic-slowness dataset with features already
// normalised to [-1, 1].
type Dataset struct {
	// Samples holds the normalised feature vectors and binary labels
	// (1 = slow traffic).
	Samples []nn.Sample
	// Slowness carries the underlying slowness percentage per sample,
	// used by regression-style metrics.
	Slowness []float64
}

// GenConfig parameterises Generate.
type GenConfig struct {
	// Rows is the number of samples (must be positive).
	Rows int
	// Seed makes generation deterministic.
	Seed int64
	// NoiseStd perturbs the latent slowness (default 0.05 when zero).
	NoiseStd float64
}

// Generate produces a synthetic dataset.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("traffic: rows %d must be positive", cfg.Rows)
	}
	noise := cfg.NoiseStd
	if noise == 0 {
		noise = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Samples:  make([]nn.Sample, 0, cfg.Rows),
		Slowness: make([]float64, 0, cfg.Rows),
	}
	for r := 0; r < cfg.Rows; r++ {
		slot := rng.Intn(slots)
		x := make([]float64, NumFeatures)
		x[0] = 2*float64(slot)/float64(slots-1) - 1

		var eventLoad float64
		for e := 0; e < len(eventRates); e++ {
			c := poisson(rng, eventRates[e])
			if c > maxCount {
				c = maxCount
			}
			x[e+1] = 2*c/maxCount - 1
			eventLoad += eventSeverity[e] * c
		}

		// Diurnal term: morning (slot≈2) and evening (slot≈22) rush.
		// Event load dominates, matching the original study's finding
		// that incident features drive slowness; the diurnal term adds a
		// milder nonlinear component.
		hour := float64(slot)
		diurnal := 0.5*gauss(hour, 2, 3) + 0.7*gauss(hour, 22, 3)

		// The offset centres the latent at ≈0 (mean event load ≈ 1.23,
		// mean diurnal ≈ 0.34) so the slow/fast classes stay balanced.
		latent := 1.6*eventLoad + 1.0*diurnal - 2.3 + noise*rng.NormFloat64()
		slowness := 100 / (1 + math.Exp(-latent)) // slowness percentage
		label := 0.0
		if slowness > 50 {
			label = 1
		}
		ds.Samples = append(ds.Samples, nn.Sample{X: x, Y: label})
		ds.Slowness = append(ds.Slowness, slowness)
	}
	return ds, nil
}

// poisson draws a Poisson(λ) variate by Knuth's method (λ is small here).
func poisson(rng *rand.Rand, lambda float64) float64 {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-d * d / 2)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Split partitions the dataset into train and test parts with the given
// train fraction, shuffling deterministically with seed.
func (d *Dataset) Split(trainFraction float64, seed int64) (train, test *Dataset, err error) {
	if trainFraction <= 0 || trainFraction >= 1 {
		return nil, nil, fmt.Errorf("traffic: train fraction %g must be in (0,1)", trainFraction)
	}
	n := d.Len()
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * trainFraction)
	if cut == 0 || cut == n {
		return nil, nil, fmt.Errorf("traffic: split of %d rows at %g leaves an empty side", n, trainFraction)
	}
	pick := func(ids []int) *Dataset {
		out := &Dataset{}
		for _, i := range ids {
			out.Samples = append(out.Samples, d.Samples[i])
			out.Slowness = append(out.Slowness, d.Slowness[i])
		}
		return out
	}
	return pick(idx[:cut]), pick(idx[cut:]), nil
}

// PartitionIID deals the samples round-robin (after a seeded shuffle) into
// v local datasets — the vehicles' D_i. Every vehicle receives at least
// one sample or an error is returned.
func (d *Dataset) PartitionIID(v int, seed int64) ([][]nn.Sample, error) {
	if v <= 0 {
		return nil, fmt.Errorf("traffic: vehicle count %d must be positive", v)
	}
	if d.Len() < v {
		return nil, fmt.Errorf("traffic: %d samples cannot cover %d vehicles", d.Len(), v)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())
	out := make([][]nn.Sample, v)
	for j, i := range idx {
		out[j%v] = append(out[j%v], d.Samples[i])
	}
	return out, nil
}

// PartitionNonIID deals the samples into v local datasets with realistic
// vehicular skew: samples are ordered by the hour feature (vehicles
// observe the road at the times they drive) and dealt in contiguous
// blocks, so each vehicle sees a narrow time window. skew in [0, 1]
// interpolates between IID (0) and fully time-sorted (1) by shuffling a
// (1-skew) fraction of samples before the block split.
func (d *Dataset) PartitionNonIID(v int, skew float64, seed int64) ([][]nn.Sample, error) {
	if v <= 0 {
		return nil, fmt.Errorf("traffic: vehicle count %d must be positive", v)
	}
	if d.Len() < v {
		return nil, fmt.Errorf("traffic: %d samples cannot cover %d vehicles", d.Len(), v)
	}
	if skew < 0 || skew > 1 {
		return nil, fmt.Errorf("traffic: skew %g outside [0,1]", skew)
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	// Sort by the hour feature (column 0).
	sort.SliceStable(idx, func(a, b int) bool {
		return d.Samples[idx[a]].X[0] < d.Samples[idx[b]].X[0]
	})
	// Soften the ordering: move a (1-skew) fraction to random positions.
	rng := rand.New(rand.NewSource(seed))
	loose := int((1 - skew) * float64(len(idx)))
	for n := 0; n < loose; n++ {
		i, j := rng.Intn(len(idx)), rng.Intn(len(idx))
		idx[i], idx[j] = idx[j], idx[i]
	}
	// Contiguous blocks, remainder spread over the first vehicles.
	out := make([][]nn.Sample, v)
	base, rem := d.Len()/v, d.Len()%v
	pos := 0
	for i := 0; i < v; i++ {
		size := base
		if i < rem {
			size++
		}
		for k := 0; k < size; k++ {
			out[i] = append(out[i], d.Samples[idx[pos]])
			pos++
		}
	}
	return out, nil
}

// Features returns the feature matrix as row slices (copies).
func (d *Dataset) Features() [][]float64 {
	out := make([][]float64, d.Len())
	for i, s := range d.Samples {
		out[i] = append([]float64(nil), s.X...)
	}
	return out
}

// Labels returns the label vector (a copy).
func (d *Dataset) Labels() []float64 {
	out := make([]float64, d.Len())
	for i, s := range d.Samples {
		out[i] = s.Y
	}
	return out
}

// CorruptLowQuality returns a copy of the samples with feature noise of
// the given standard deviation added and a fraction of labels flipped —
// the paper's "low-quality training data" system noise, applied to a
// vehicle's local dataset.
func CorruptLowQuality(samples []nn.Sample, noiseStd, flipFraction float64, seed int64) []nn.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]nn.Sample, len(samples))
	for i, s := range samples {
		x := append([]float64(nil), s.X...)
		for j := range x {
			x[j] += noiseStd * rng.NormFloat64()
			// Keep within the approximation domain.
			x[j] = math.Max(-1, math.Min(1, x[j]))
		}
		y := s.Y
		if rng.Float64() < flipFraction {
			y = 1 - y
		}
		out[i] = nn.Sample{X: x, Y: y}
	}
	return out
}
