package latency

import "testing"

func paperScenario(v int) Scenario {
	return Scenario{
		Vehicles:      v,
		Batches:       16,
		Degree:        1,
		UploadScalars: 2*8 + 128,
		Errors:        v / 10,
	}
}

func TestLCoFLBreakdown(t *testing.T) {
	b, err := LCoFL(paperScenario(100), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Rounds != 1 {
		t.Errorf("rounds = %d", b.Rounds)
	}
	if b.Total <= 0 || b.Total != b.VehicleCompute+b.Uplink+b.FusionCompute {
		t.Errorf("inconsistent breakdown %+v", b)
	}
	// The whole coded round should be sub-second with default rates —
	// the paper's "lightweight" claim.
	if b.Total > 1 {
		t.Errorf("L-CoFL round %gs — not lightweight", b.Total)
	}
}

func TestBFTSlowerThanLCoFL(t *testing.T) {
	// The paper's §II argument: BFT verification needs multiple all-to-all
	// communication phases, so it must cost well above the coded round at
	// any realistic fleet size — and the gap must widen with V.
	prevRatio := 0.0
	for _, v := range []int{20, 50, 100} {
		s := paperScenario(v)
		coded, err := LCoFL(s, Params{})
		if err != nil {
			t.Fatal(err)
		}
		bft, err := BFT(s, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if bft.Rounds != 3 {
			t.Errorf("BFT rounds = %d", bft.Rounds)
		}
		ratio := bft.Total / coded.Total
		if ratio < 2 {
			t.Errorf("V=%d: BFT only %.1fx slower than L-CoFL", v, ratio)
		}
		if ratio <= prevRatio {
			t.Errorf("V=%d: BFT/L-CoFL ratio %.1f did not grow (prev %.1f)", v, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestParameterFL(t *testing.T) {
	b, err := ParameterFL(paperScenario(100), Params{}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 {
		t.Errorf("breakdown %+v", b)
	}
	if _, err := ParameterFL(paperScenario(100), Params{}, 0); err == nil {
		t.Error("zero params accepted")
	}
}

func TestLatencyGrowsWithErrors(t *testing.T) {
	s := paperScenario(100)
	s.Errors = 0
	lo, err := LCoFL(s, Params{})
	if err != nil {
		t.Fatal(err)
	}
	s.Errors = 40
	hi, err := LCoFL(s, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if hi.FusionCompute <= lo.FusionCompute {
		t.Errorf("decoding cost did not grow with errors: %g vs %g", hi.FusionCompute, lo.FusionCompute)
	}
}

func TestValidation(t *testing.T) {
	bad := Scenario{}
	if _, err := LCoFL(bad, Params{}); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := BFT(bad, Params{}); err == nil {
		t.Error("empty scenario accepted by BFT")
	}
	neg := paperScenario(10)
	neg.Errors = -1
	if _, err := LCoFL(neg, Params{}); err == nil {
		t.Error("negative errors accepted")
	}
}
