// Package latency models the per-round wall-clock cost of the aggregation
// alternatives the paper discusses in §II: L-CoFL's coded verification
// versus BFT-consensus-based verification of ML results (the paper's
// refs. [13], [15]–[20]), which it dismisses as "time-consuming [and
// requiring] multiple times of communication between the vehicles".
//
// The model is deliberately analytic — counts of operations and message
// bytes over simple rate parameters — so its outputs are reproducible and
// auditable rather than machine-dependent. Compute counts for L-CoFL come
// from the Proposition 1 accounting (package core); communication counts
// from the actual upload sizes.
package latency

import (
	"fmt"

	"repro/internal/core"
)

// Params fixes the radio and compute rates. Defaults (zero values are
// replaced) model a DSRC/LTE-V roadside link and embedded vehicle
// hardware.
type Params struct {
	// UplinkBytesPerSec is the per-vehicle uplink rate (default 1 MB/s).
	UplinkBytesPerSec float64
	// PerMessageLatencySec is the fixed per-message overhead, i.e. one
	// network traversal vehicle↔fusion centre (default 20 ms).
	PerMessageLatencySec float64
	// VehicleOpsPerSec is a vehicle's arithmetic throughput
	// (default 1e8 — an embedded-class core).
	VehicleOpsPerSec float64
	// FusionOpsPerSec is the fusion centre's throughput (default 1e9).
	FusionOpsPerSec float64
	// ScalarBytes is the wire size of one uploaded scalar (default 8).
	ScalarBytes float64
}

func (p Params) withDefaults() Params {
	if p.UplinkBytesPerSec == 0 {
		p.UplinkBytesPerSec = 1e6
	}
	if p.PerMessageLatencySec == 0 {
		p.PerMessageLatencySec = 0.02
	}
	if p.VehicleOpsPerSec == 0 {
		p.VehicleOpsPerSec = 1e8
	}
	if p.FusionOpsPerSec == 0 {
		p.FusionOpsPerSec = 1e9
	}
	if p.ScalarBytes == 0 {
		p.ScalarBytes = 8
	}
	return p
}

// Scenario describes one aggregation round to be costed.
type Scenario struct {
	// Vehicles is V.
	Vehicles int
	// Batches is M.
	Batches int
	// Degree is the activation degree.
	Degree int
	// UploadScalars is the per-vehicle upload size in scalars (L-CoFL:
	// 2·S verification halves + reference estimations).
	UploadScalars int
	// Errors is the erroneous-result count E charged to decoding.
	Errors int
}

func (s Scenario) validate() error {
	if s.Vehicles < 1 || s.Batches < 1 || s.Degree < 1 || s.UploadScalars < 1 {
		return fmt.Errorf("latency: invalid scenario %+v", s)
	}
	if s.Errors < 0 {
		return fmt.Errorf("latency: negative error count %d", s.Errors)
	}
	return nil
}

// Breakdown itemises one round's latency in seconds.
type Breakdown struct {
	// VehicleCompute is the slowest vehicle's local encode+evaluate time;
	// vehicles work in parallel, so the round waits for the max, which
	// for identical hardware is the common value.
	VehicleCompute float64
	// Uplink is the transmission time of one vehicle's upload plus the
	// per-message latency (uplinks are parallel across vehicles on
	// separate channel resources).
	Uplink float64
	// FusionCompute is the fusion centre's decode/aggregation time.
	FusionCompute float64
	// Rounds counts protocol communication phases (1 for L-CoFL's
	// upload; 3 per PBFT-style consensus instance).
	Rounds int
	// Total sums the phases.
	Total float64
}

// LCoFL costs one L-CoFL round: per-vehicle Lagrange encoding (O(M²) per
// Proposition 1) and model evaluation, one parallel uplink, and
// Reed–Solomon decoding O((K+2E)³) at the fusion centre.
func LCoFL(s Scenario, p Params) (*Breakdown, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	cost := core.Cost{
		V:            s.Vehicles,
		M:            s.Batches,
		Degree:       s.Degree,
		ApproxPoints: 21,
		Errors:       s.Errors,
	}
	vehicleOps := cost.EncodingPerVehicle() + cost.ApproximationPerVehicle() +
		float64(s.UploadScalars*s.Batches*s.Degree) // model evaluations
	fusionOps := cost.Decoding() + float64(s.Vehicles*s.UploadScalars) // decode + averaging
	b := &Breakdown{
		VehicleCompute: vehicleOps / p.VehicleOpsPerSec,
		Uplink:         float64(s.UploadScalars)*p.ScalarBytes/p.UplinkBytesPerSec + p.PerMessageLatencySec,
		FusionCompute:  fusionOps / p.FusionOpsPerSec,
		Rounds:         1,
	}
	b.Total = b.VehicleCompute + b.Uplink + b.FusionCompute
	return b, nil
}

// BFT costs one round of the blockchain/BFT alternative the paper
// contrasts (§II): every vehicle's ML result is verified by a PBFT-style
// committee of all V participants — pre-prepare, prepare and commit
// phases with O(V²) messages each — and every validator recomputes the
// uploaded result to verify it.
func BFT(s Scenario, p Params) (*Breakdown, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	v := float64(s.Vehicles)
	msgBytes := float64(s.UploadScalars) * p.ScalarBytes
	// Three phases; in each, every node sends to every other node over
	// its serial uplink: V−1 messages per node per phase.
	phaseUplink := (v-1)*msgBytes/p.UplinkBytesPerSec + p.PerMessageLatencySec
	// Verification compute: each validator re-evaluates every peer's
	// estimation result (V−1 evaluations of the model per validator).
	verifyOps := (v - 1) * float64(s.UploadScalars*s.Batches*s.Degree)
	b := &Breakdown{
		VehicleCompute: verifyOps / p.VehicleOpsPerSec,
		Uplink:         3 * phaseUplink,
		FusionCompute:  float64(s.Vehicles*s.UploadScalars) / p.FusionOpsPerSec,
		Rounds:         3,
	}
	b.Total = b.VehicleCompute + b.Uplink + b.FusionCompute
	return b, nil
}

// ParameterFL costs one round of traditional parameter-upload FedAvg for
// reference: no verification at all, one uplink of the parameter vector.
func ParameterFL(s Scenario, p Params, numParams int) (*Breakdown, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if numParams < 1 {
		return nil, fmt.Errorf("latency: parameter count %d must be positive", numParams)
	}
	p = p.withDefaults()
	b := &Breakdown{
		VehicleCompute: 0, // no coding work beyond training (common to all)
		Uplink:         float64(numParams)*p.ScalarBytes/p.UplinkBytesPerSec + p.PerMessageLatencySec,
		FusionCompute:  float64(s.Vehicles*numParams) / p.FusionOpsPerSec,
		Rounds:         1,
	}
	b.Total = b.VehicleCompute + b.Uplink + b.FusionCompute
	return b, nil
}
