package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 1000
			counts := make([]atomic.Int64, n)
			if err := ForEach(workers, n, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
			}
		})
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	if err := ForEach(4, 0, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Errorf("n=0: err=%v ran=%v", err, ran)
	}
	if err := ForEach(4, -5, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Errorf("n=-5: err=%v ran=%v", err, ran)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad map[int]bool) error {
		return ForEach(8, 100, func(i int) error {
			if bad[i] {
				return fmt.Errorf("failed at %d", i)
			}
			return nil
		})
	}
	// Run several times: scheduling varies, the reported error must not.
	for trial := 0; trial < 20; trial++ {
		err := errAt(map[int]bool{97: true, 13: true, 55: true})
		if err == nil || err.Error() != "failed at 13" {
			t.Fatalf("trial %d: got %v, want the lowest failing index 13", trial, err)
		}
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var started atomic.Int64
	sentinel := errors.New("boom")
	_ = ForEach(2, 1_000_000, func(i int) error {
		started.Add(1)
		return sentinel
	})
	// Both workers can start at most a handful of tasks before observing
	// the failure flag; nowhere near the full range.
	if s := started.Load(); s > 100 {
		t.Errorf("started %d tasks after an immediate error", s)
	}
}

func TestForEachRepanicsWithStack(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "task 7 panicked: kaboom") {
			t.Errorf("panic message %q lacks task and value", msg)
		}
		if !strings.Contains(msg, "parallel_test.go") {
			t.Errorf("panic message lacks the worker stack:\n%s", msg)
		}
	}()
	_ = ForEach(4, 16, func(i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNilOnError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("got out=%v err=%v, want nil slice and an error", out, err)
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	var g Group
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func() error {
			if i%2 == 1 {
				return fmt.Errorf("odd %d", i)
			}
			return nil
		})
	}
	if err := g.Wait(); err == nil || !strings.Contains(err.Error(), "odd") {
		t.Errorf("Wait() = %v, want an odd-task error", err)
	}
}

func TestGroupRepanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "panicked: group-boom") {
			t.Errorf("recover() = %v, want the group panic", r)
		}
	}()
	var g Group
	g.Go(func() error { panic("group-boom") })
	_ = g.Wait()
}

func TestSplitSeedsDeterministicAndDistinct(t *testing.T) {
	a := SplitSeeds(42, 256)
	b := SplitSeeds(42, 256)
	seen := make(map[int64]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SplitSeeds not deterministic at %d: %d != %d", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate derived seed %d at index %d", a[i], i)
		}
		seen[a[i]] = true
	}
	if c := SplitSeeds(43, 1); c[0] == a[0] {
		t.Error("different base seeds produced the same first derived seed")
	}
	// Prefix property: a longer derivation extends a shorter one, so a
	// sweep can grow without reshuffling earlier streams.
	long := SplitSeeds(42, 300)
	for i := range a {
		if long[i] != a[i] {
			t.Fatalf("SplitSeeds(42, 300)[%d] != SplitSeeds(42, 256)[%d]", i, i)
		}
	}
}
