// Package parallel is the repository's bounded worker-pool execution
// engine. Every concurrent hot path — Lagrange encoding across evaluation
// points, Berlekamp–Welch decode-attempt racing, the per-vehicle training
// fan-out, the multi-seed experiment sweep — runs through the primitives
// here rather than bare `go` statements, so errors and panics are never
// silently lost (cmd/lcofl-lint's rawgo analyzer enforces this).
//
// Determinism contract: ForEach and Map assign work by index into
// preallocated result slots, so the output of a parallel run is
// bit-identical to the sequential run at any worker count, provided the
// per-index function depends only on its index (no shared mutable state,
// no shared RNG stream). Callers that need randomness derive one
// independent stream per index with SplitSeeds and field.SeededSource /
// math/rand — never by sharing a generator across indices. When several
// indices fail, the error for the LOWEST index is returned, matching what
// a sequential loop would have surfaced first.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool-usage counters, maintained O(1) per pool entry (never per task in
// the claiming loop) so they cost nothing on the hot paths. Snapshot
// exposes them for the observability layer (internal/obs consumers
// publish them as gauges at report time).
var stats struct {
	poolRuns       atomic.Int64 // ForEach entries that spawned goroutines
	seqRuns        atomic.Int64 // ForEach entries that ran inline
	tasks          atomic.Int64 // total indices scheduled across all entries
	workersSpawned atomic.Int64 // goroutines started by ForEach (excl. caller)
	groupTasks     atomic.Int64 // goroutines started via Group.Go
}

// Stats is a point-in-time copy of the package's pool-usage counters.
type Stats struct {
	// PoolRuns counts ForEach/Map entries that fanned out across
	// goroutines; SeqRuns counts the entries that ran inline (workers<=1
	// or tiny n).
	PoolRuns, SeqRuns int64
	// Tasks is the total number of indices scheduled across all entries.
	Tasks int64
	// WorkersSpawned is the total goroutines ForEach started (the caller
	// participating as worker 0 is not counted). WorkersSpawned/PoolRuns
	// approximates the mean fan-out width per pooled entry.
	WorkersSpawned int64
	// GroupTasks is the total goroutines started through Group.Go.
	GroupTasks int64
}

// Snapshot returns the current pool-usage counters.
func Snapshot() Stats {
	return Stats{
		PoolRuns:       stats.poolRuns.Load(),
		SeqRuns:        stats.seqRuns.Load(),
		Tasks:          stats.tasks.Load(),
		WorkersSpawned: stats.workersSpawned.Load(),
		GroupTasks:     stats.groupTasks.Load(),
	}
}

// Workers resolves a worker-count knob: values < 1 select
// runtime.GOMAXPROCS(0) (the pool's default), everything else passes
// through. Callers plumb user-facing `-workers` flags through this so 0
// uniformly means "all cores".
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// panicError carries a recovered panic from a worker to the caller
// goroutine so it can be re-raised with the original value visible.
type panicError struct {
	index int
	value any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", p.index, p.value, p.stack)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (plus the caller, which also works). It returns the error of the
// lowest-failing index, or nil when every call succeeds. Once any call
// fails, no NEW indices are started; in-flight calls finish. A panic in
// fn is recovered and re-raised in the caller's goroutine with the
// worker's stack trace attached, so a crashing task never kills the
// process from an anonymous goroutine.
//
// workers <= 1 (after Workers resolution the caller performed, if any)
// runs the plain sequential loop inline — no goroutines, no atomics —
// so a parallelism knob of 1 costs nothing over the pre-pool code.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	stats.tasks.Add(int64(n))
	if workers <= 1 {
		stats.seqRuns.Add(1)
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	stats.poolRuns.Add(1)
	stats.workersSpawned.Add(int64(workers - 1))

	var (
		next     atomic.Int64 // next index to claim
		failed   atomic.Bool  // stop claiming new work
		mu       sync.Mutex   // guards firstIdx and firstErr
		firstIdx = n          // lowest failing index seen; guarded by mu
		firstErr error        // guarded by mu
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	work := func() {
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						buf := make([]byte, 64<<10)
						err = &panicError{index: i, value: r, stack: buf[:runtime.Stack(buf, false)]}
					}
				}()
				return fn(i)
			}()
			if err != nil {
				record(i, err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the caller is worker 0
	wg.Wait()

	// All workers have joined, so the lock is uncontended; taking it
	// anyway keeps the guarded-by discipline checkable.
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		if p, ok := firstErr.(*panicError); ok {
			panic(p.Error())
		}
		return firstErr
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// collects the results in index order. Error and panic semantics match
// ForEach; on error the returned slice is nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Group is an error-collecting goroutine group for concurrent servers and
// demos — the sanctioned replacement for bare `go` statements where the
// task set is not an indexed range (e.g. one goroutine per TCP peer). The
// zero value is ready to use. The first error wins; a panicking task is
// re-raised from Wait with its stack attached.
type Group struct {
	wg    sync.WaitGroup
	mu    sync.Mutex  // guards first, panic and count
	first error       // guarded by mu
	panic *panicError // guarded by mu
	count int         // guarded by mu
}

// Go starts fn on its own goroutine, tracked by the group.
func (g *Group) Go(fn func() error) {
	g.mu.Lock()
	idx := g.count
	g.count++
	g.mu.Unlock()
	stats.groupTasks.Add(1)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 64<<10)
					err = &panicError{index: idx, value: r, stack: buf[:runtime.Stack(buf, false)]}
				}
			}()
			return fn()
		}()
		if err != nil {
			g.mu.Lock()
			if p, ok := err.(*panicError); ok && g.panic == nil {
				g.panic = p
			} else if g.first == nil {
				g.first = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every started task returns, then re-raises the first
// recorded panic or returns the first recorded error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.panic != nil {
		panic(g.panic.Error())
	}
	return g.first
}

// splitmix64 is the SplitMix64 output function — the same generator
// field.SeededSource uses, duplicated here because parallel must not
// depend on the field package (it sits below everything).
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitSeeds derives n statistically independent seeds from one base seed
// by iterating SplitMix64 — the scheme for giving every goroutine (or
// every index of a parallel sweep) its own field.SeededSource or
// math/rand stream. Because each index's stream depends only on
// (seed, i), never on which worker ran it or in what order, parallel
// runs consume randomness identically to sequential runs.
func SplitSeeds(seed int64, n int) []int64 {
	out := make([]int64, n)
	state := uint64(seed)
	for i := range out {
		state = splitmix64(state)
		out[i] = int64(state)
	}
	return out
}
