package field

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDot is the per-term-reduced reference the lazy kernels must match.
func naiveDot(a, b []Element) Element {
	var s Element
	for i := range a {
		s = s.Add(a[i].Mul(b[i]))
	}
	return s
}

func TestReduce128(t *testing.T) {
	cases := []struct{ hi, lo uint64 }{
		{0, 0},
		{0, Modulus},
		{0, ^uint64(0)},
		{1, 0},
		{^uint64(0), ^uint64(0)},
		{Modulus, Modulus},
		{1 << 61, 1 << 61},
	}
	for _, c := range cases {
		// Reference: (hi·2^64 + lo) mod p via 2^64 ≡ 8 computed with
		// Element ops only (8·(hi mod p) + lo mod p).
		want := New(c.hi).Mul(New(8)).Add(New(c.lo))
		if got := reduce128(c.hi, c.lo); got != want {
			t.Errorf("reduce128(%d, %d) = %v, want %v", c.hi, c.lo, got, want)
		}
	}
}

func TestDotAccMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sweep lengths across the lazy-chunk boundary (63/64/65) and both
	// sides of the four-lane block boundary (4·lazyTerms = 256).
	for _, n := range []int{0, 1, 2, 31, 63, 64, 65, 127, 128, 129,
		dotBlock - 1, dotBlock, dotBlock + 1, 2*dotBlock - 1, 2 * dotBlock, 2*dotBlock + 65, 1000} {
		a := make([]Element, n)
		b := make([]Element, n)
		for i := range a {
			a[i] = Rand(rng)
			b[i] = Rand(rng)
		}
		if got, want := DotAcc(a, b), naiveDot(a, b); got != want {
			t.Fatalf("n=%d: DotAcc = %v, Dot = %v", n, got, want)
		}
	}
}

func TestDotAccWorstCaseMagnitudes(t *testing.T) {
	// Every product at its maximum (p-1)² stresses the 128-bit headroom
	// argument: 64 such products must not overflow the accumulator —
	// per lane of the unrolled main loop just as in the scalar tail.
	for _, n := range []int{64, 65, 128, 255, 256, 257, 511, 512, 513, 1024} {
		a := make([]Element, n)
		b := make([]Element, n)
		for i := range a {
			a[i] = Element(Modulus - 1)
			b[i] = Element(Modulus - 1)
		}
		if got, want := DotAcc(a, b), naiveDot(a, b); got != want {
			t.Fatalf("n=%d worst case: DotAcc = %v, want %v", n, got, want)
		}
	}
}

func TestDotAccQuick(t *testing.T) {
	f := func(raw []uint64) bool {
		a := make([]Element, len(raw))
		b := make([]Element, len(raw))
		for i, v := range raw {
			a[i] = New(v)
			b[i] = New(v ^ 0x9e3779b97f4a7c15)
		}
		return DotAcc(a, b) == naiveDot(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDotAccLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	DotAcc(make([]Element, 2), make([]Element, 3))
}

func TestAccumulatorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// terms sweeps across the spill boundary: 63 scaled adds trigger the
	// in-place fold, so 62..130 covers before/at/after plus a second fold.
	for _, terms := range []int{1, 2, 62, 63, 64, 65, 130, 200} {
		const width = 5
		acc := NewAccumulator(width)
		want := make([]Element, width)
		for t := 0; t < terms; t++ {
			c := Rand(rng)
			xs := make([]Element, width)
			for i := range xs {
				xs[i] = Rand(rng)
			}
			acc.VecMulAddScalar(c, xs)
			for i := range want {
				want[i] = want[i].Add(c.Mul(xs[i]))
			}
		}
		got := make([]Element, width)
		acc.Reduce(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("terms=%d lane %d: got %v, want %v", terms, i, got[i], want[i])
			}
		}
	}
}

func TestAccumulatorWorstCaseMagnitudes(t *testing.T) {
	const width = 3
	acc := NewAccumulator(width)
	want := make([]Element, width)
	c := Element(Modulus - 1)
	xs := []Element{Element(Modulus - 1), Element(Modulus - 1), Element(Modulus - 1)}
	for t := 0; t < 200; t++ {
		acc.VecMulAddScalar(c, xs)
		for i := range want {
			want[i] = want[i].Add(c.Mul(xs[i]))
		}
	}
	got := make([]Element, width)
	acc.Reduce(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAccumulatorUnrollWidths(t *testing.T) {
	// The four-wide elementwise unroll must agree with the scalar form at
	// widths on both sides of the unroll stride.
	rng := rand.New(rand.NewSource(4))
	for _, width := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 100} {
		acc := NewAccumulator(width)
		want := make([]Element, width)
		for t := 0; t < 70; t++ { // crosses one spill
			c := Rand(rng)
			xs := make([]Element, width)
			for i := range xs {
				xs[i] = Rand(rng)
			}
			acc.VecMulAddScalar(c, xs)
			for i := range want {
				want[i] = want[i].Add(c.Mul(xs[i]))
			}
		}
		got := make([]Element, width)
		acc.Reduce(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width=%d lane %d: got %v, want %v", width, i, got[i], want[i])
			}
		}
	}
}

func TestMulAddVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 100, 257} {
		dst := make([]Element, n)
		want := make([]Element, n)
		xs := make([]Element, n)
		for i := range dst {
			dst[i] = Rand(rng)
			want[i] = dst[i]
			xs[i] = Rand(rng)
		}
		c := Rand(rng)
		MulAddVec(dst, c, xs)
		for i := range want {
			want[i] = want[i].Add(c.Mul(xs[i]))
			if dst[i] != want[i] {
				t.Fatalf("n=%d lane %d: got %v, want %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestMulAddVecWorstCaseMagnitudes(t *testing.T) {
	// Maximum product plus maximum canonical destination per lane:
	// (p-1)² + (p-1) < 2^122 + 2^61 must stay inside the (hi, lo) pair.
	const n = 9
	worst := Element(Modulus - 1)
	dst := make([]Element, n)
	want := make([]Element, n)
	xs := make([]Element, n)
	for i := range dst {
		dst[i], want[i], xs[i] = worst, worst, worst
	}
	for rep := 0; rep < 100; rep++ {
		MulAddVec(dst, worst, xs)
		for i := range want {
			want[i] = want[i].Add(worst.Mul(worst))
		}
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("lane %d: got %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMulAddVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	MulAddVec(make([]Element, 2), One, make([]Element, 3))
}

func TestAccumulatorReduceResets(t *testing.T) {
	acc := NewAccumulator(2)
	acc.VecMulAddScalar(New(3), []Element{New(1), New(2)})
	out := make([]Element, 2)
	acc.Reduce(out)
	if out[0] != New(3) || out[1] != New(6) {
		t.Fatalf("first reduce = %v", out)
	}
	// A drained accumulator starts the next accumulation from zero.
	acc.VecMulAddScalar(New(5), []Element{New(1), New(1)})
	acc.Reduce(out)
	if out[0] != New(5) || out[1] != New(5) {
		t.Fatalf("second reduce = %v (accumulator not reset)", out)
	}
	if acc.Len() != 2 {
		t.Fatalf("Len = %d", acc.Len())
	}
}

func TestAccumulatorWidthMismatchPanics(t *testing.T) {
	acc := NewAccumulator(4)
	for name, fn := range map[string]func(){
		"VecMulAddScalar": func() { acc.VecMulAddScalar(One, make([]Element, 3)) },
		"Reduce":          func() { acc.Reduce(make([]Element, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on width mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// BenchmarkDotAcc compares the lazy-reduction inner product against the
// per-term-reduced Dot at the vector lengths the batch decoder uses
// (V ≈ 100 received symbols, and a long kernel-dominated case).
func BenchmarkDotAcc(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 1024} {
		a := make([]Element, n)
		c := make([]Element, n)
		for i := range a {
			a[i] = Rand(rng)
			c[i] = Rand(rng)
		}
		b.Run(fmt.Sprintf("n=%d/kernel=dotacc", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkElement = DotAcc(a, c)
			}
		})
		b.Run(fmt.Sprintf("n=%d/kernel=dot", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkElement = Dot(a, c)
			}
		})
	}
}

var sinkElement Element
