package field

// Source yields raw 64-bit randomness for the field samplers. Both
// *math/rand.Rand (simulation, tests) and the sources in source.go
// satisfy it; which one is sound depends on what the sampled element is
// for. Secret material — LCC privacy padding, share randomness — must
// come from NewCryptoSource: the privacy half of the LCC guarantee is
// information-theoretic only if the padding is unpredictable. Simulation
// noise and reproducible experiment draws may use any deterministic
// source.
type Source interface {
	Uint64() uint64
}

// Rand returns a uniformly random field element drawn from src.
// Rejection sampling over [0, 2^61) keeps the distribution exactly uniform.
func Rand(src Source) Element {
	for {
		v := src.Uint64() & mask61
		if v < Modulus {
			return Element(v)
		}
	}
}

// RandNonZero returns a uniformly random non-zero field element.
func RandNonZero(src Source) Element {
	for {
		if e := Rand(src); e != 0 {
			return e
		}
	}
}

// RandDistinct returns n pairwise-distinct random field elements, excluding
// every element of the exclude set. LCC requires the interpolation nodes
// {ℓ_m} and evaluation points {ρ_i} to be disjoint (paper eq. 3–4), which
// callers enforce by passing the nodes as the exclusion set.
func RandDistinct(src Source, n int, exclude []Element) []Element {
	used := make(map[Element]struct{}, n+len(exclude))
	for _, e := range exclude {
		used[e] = struct{}{}
	}
	out := make([]Element, 0, n)
	for len(out) < n {
		e := Rand(src)
		if _, dup := used[e]; dup {
			continue
		}
		used[e] = struct{}{}
		out = append(out, e)
	}
	return out
}
