package field

import "math/rand"

// Rand returns a uniformly random field element drawn from rng.
// Rejection sampling over [0, 2^61) keeps the distribution exactly uniform.
func Rand(rng *rand.Rand) Element {
	for {
		v := rng.Uint64() & mask61
		if v < Modulus {
			return Element(v)
		}
	}
}

// RandNonZero returns a uniformly random non-zero field element.
func RandNonZero(rng *rand.Rand) Element {
	for {
		if e := Rand(rng); e != 0 {
			return e
		}
	}
}

// RandDistinct returns n pairwise-distinct random field elements, excluding
// every element of the exclude set. LCC requires the interpolation nodes
// {ℓ_m} and evaluation points {ρ_i} to be disjoint (paper eq. 3–4), which
// callers enforce by passing the nodes as the exclusion set.
func RandDistinct(rng *rand.Rand, n int, exclude []Element) []Element {
	used := make(map[Element]struct{}, n+len(exclude))
	for _, e := range exclude {
		used[e] = struct{}{}
	}
	out := make([]Element, 0, n)
	for len(out) < n {
		e := Rand(rng)
		if _, dup := used[e]; dup {
			continue
		}
		used[e] = struct{}{}
		out = append(out, e)
	}
	return out
}
