package field

import (
	"fmt"
	"math/bits"
)

// Lazy-reduction kernels.
//
// Element.Mul reduces every 128-bit product immediately. The hot loops of
// Lagrange encoding and batch decoding are inner products and
// accumulate-scaled-vector updates, where reducing per term wastes most of
// the work: products can instead be summed in a raw 128-bit accumulator
// and reduced once per chunk. The chunk bound is arithmetic, not tuning:
// each product is at most (p-1)² < 2^122, so a sum of lazyTerms = 64
// products plus one carried reduced value (< p < 2^61) stays strictly
// below 64·2^122 + 2^61 < 2^128 and never overflows the (hi, lo) pair.
const lazyTerms = 64

// reduce128 returns hi·2^64 + lo mod p. Since 2^64 = 8·2^61 ≡ 8 (mod p),
// the value folds as 8·hi + lo; 8·hi is a 67-bit quantity that folds the
// same way once more: with 8·hi = h2·2^64 + l2 (h2 < 8), the total is
// congruent to 8·h2 + l2 + lo, three canonical additions.
func reduce128(hi, lo uint64) Element {
	h2, l2 := bits.Mul64(hi, 8)
	return New(lo).Add(New(l2)).Add(Element(h2 * 8))
}

// dotBlock is the span DotAcc consumes per unrolled iteration: four
// independent (hi, lo) lanes, each fed exactly lazyTerms products, so
// every lane starts from zero and meets the §9 chunk bound
// (lazyTerms·2^122 < 2^128) with room to spare — the carried reduced
// value of the single-lane loop never even appears.
const dotBlock = 4 * lazyTerms

// DotAcc returns the inner product of equal-length vectors a and b,
// bit-identical to Dot but with one modular reduction per lazyTerms
// products instead of one per term. The main loop runs four independent
// (hi, lo) accumulator pairs so the CPU can overlap the bits.Mul64
// dependency chains; the sub-block tail falls back to the single-lane
// lazy loop. It panics on length mismatch.
func DotAcc(a, b []Element) Element {
	if len(a) != len(b) {
		panic(fmt.Sprintf("field: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s Element
	i := 0
	for ; i+dotBlock <= len(a); i += dotBlock {
		var h0, l0, h1, l1, h2, l2, h3, l3 uint64
		for j := i; j < i+dotBlock; j += 4 {
			ph, pl := bits.Mul64(uint64(a[j]), uint64(b[j]))
			var c uint64
			l0, c = bits.Add64(l0, pl, 0)
			h0 += ph + c
			ph, pl = bits.Mul64(uint64(a[j+1]), uint64(b[j+1]))
			l1, c = bits.Add64(l1, pl, 0)
			h1 += ph + c
			ph, pl = bits.Mul64(uint64(a[j+2]), uint64(b[j+2]))
			l2, c = bits.Add64(l2, pl, 0)
			h2 += ph + c
			ph, pl = bits.Mul64(uint64(a[j+3]), uint64(b[j+3]))
			l3, c = bits.Add64(l3, pl, 0)
			h3 += ph + c
		}
		s = s.Add(reduce128(h0, l0)).Add(reduce128(h1, l1)).
			Add(reduce128(h2, l2)).Add(reduce128(h3, l3))
	}
	var hi, lo uint64
	terms := 0
	for ; i < len(a); i++ {
		ph, pl := bits.Mul64(uint64(a[i]), uint64(b[i]))
		var carry uint64
		lo, carry = bits.Add64(lo, pl, 0)
		hi += ph + carry
		if terms++; terms == lazyTerms {
			s = s.Add(reduce128(hi, lo))
			hi, lo, terms = 0, 0, 0
		}
	}
	return s.Add(reduce128(hi, lo))
}

// MulAddVec computes dst[i] = dst[i] + c·xs[i] mod p for every lane, the
// fused kernel under row-elimination updates (dst -= factor·row via the
// negated factor) where each destination is read once and written once.
// Per lane the sum fits one (hi, lo) pair — the product is < 2^122 and
// the canonical dst value < 2^61 — so a single reduce128 per element
// replaces the separate Mul-then-Add reductions of the scalar form. The
// loop is unrolled four wide to overlap the multiply chains. It panics
// on length mismatch.
func MulAddVec(dst []Element, c Element, xs []Element) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("field: muladd length mismatch %d != %d", len(dst), len(xs)))
	}
	cu := uint64(c)
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		h0, l0 := bits.Mul64(cu, uint64(xs[i]))
		h1, l1 := bits.Mul64(cu, uint64(xs[i+1]))
		h2, l2 := bits.Mul64(cu, uint64(xs[i+2]))
		h3, l3 := bits.Mul64(cu, uint64(xs[i+3]))
		var c0, c1, c2, c3 uint64
		l0, c0 = bits.Add64(l0, uint64(dst[i]), 0)
		l1, c1 = bits.Add64(l1, uint64(dst[i+1]), 0)
		l2, c2 = bits.Add64(l2, uint64(dst[i+2]), 0)
		l3, c3 = bits.Add64(l3, uint64(dst[i+3]), 0)
		dst[i] = reduce128(h0+c0, l0)
		dst[i+1] = reduce128(h1+c1, l1)
		dst[i+2] = reduce128(h2+c2, l2)
		dst[i+3] = reduce128(h3+c3, l3)
	}
	for ; i < len(dst); i++ {
		hi, lo := bits.Mul64(cu, uint64(xs[i]))
		var carry uint64
		lo, carry = bits.Add64(lo, uint64(dst[i]), 0)
		dst[i] = reduce128(hi+carry, lo)
	}
}

// Accumulator is a fixed-width vector of lazy 128-bit sums of field
// products, the kernel under accumulate-many-scaled-vectors loops:
//
//	acc.VecMulAddScalar(c_1, x_1); …; acc.VecMulAddScalar(c_n, x_n)
//	acc.Reduce(dst)   // dst[i] = Σ_j c_j·x_j[i]
//
// Each lane spills (reduces into itself) every lazyTerms scaled adds, so
// the amortised cost per term is one 128-bit add instead of a full
// Mersenne reduction. An Accumulator is not safe for concurrent use; give
// each worker its own.
type Accumulator struct {
	hi, lo  []uint64
	pending int // scaled-vector adds since the last spill
}

// NewAccumulator returns a zeroed accumulator of the given width.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{hi: make([]uint64, n), lo: make([]uint64, n)}
}

// Len returns the accumulator width.
func (a *Accumulator) Len() int { return len(a.lo) }

// VecMulAddScalar accumulates c·xs into the lanes: a[i] += c·xs[i].
// The lanes are independent by construction, so the loop is unrolled
// four wide to overlap the bits.Mul64 chains; the remainder runs the
// scalar form. It panics when len(xs) differs from the accumulator
// width.
func (a *Accumulator) VecMulAddScalar(c Element, xs []Element) {
	if len(xs) != len(a.lo) {
		panic(fmt.Sprintf("field: accumulator width %d, vector length %d", len(a.lo), len(xs)))
	}
	if a.pending == lazyTerms-1 {
		a.spill()
	}
	cu := uint64(c)
	hi, lo := a.hi, a.lo
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		h0, l0 := bits.Mul64(cu, uint64(xs[i]))
		h1, l1 := bits.Mul64(cu, uint64(xs[i+1]))
		h2, l2 := bits.Mul64(cu, uint64(xs[i+2]))
		h3, l3 := bits.Mul64(cu, uint64(xs[i+3]))
		var c0, c1, c2, c3 uint64
		lo[i], c0 = bits.Add64(lo[i], l0, 0)
		hi[i] += h0 + c0
		lo[i+1], c1 = bits.Add64(lo[i+1], l1, 0)
		hi[i+1] += h1 + c1
		lo[i+2], c2 = bits.Add64(lo[i+2], l2, 0)
		hi[i+2] += h2 + c2
		lo[i+3], c3 = bits.Add64(lo[i+3], l3, 0)
		hi[i+3] += h3 + c3
	}
	for ; i < len(xs); i++ {
		ph, pl := bits.Mul64(cu, uint64(xs[i]))
		var carry uint64
		lo[i], carry = bits.Add64(lo[i], pl, 0)
		hi[i] += ph + carry
	}
	a.pending++
}

// spill folds every lane to its canonical value so the lazy headroom
// resets; the folded value (< p) counts as less than one product toward
// the next chunk's bound.
func (a *Accumulator) spill() {
	for i := range a.lo {
		a.lo[i] = uint64(reduce128(a.hi[i], a.lo[i]))
		a.hi[i] = 0
	}
	a.pending = 0
}

// Reduce writes the canonical value of every lane into dst and resets the
// accumulator to zero, ready for the next accumulation. It panics when
// len(dst) differs from the accumulator width.
func (a *Accumulator) Reduce(dst []Element) {
	if len(dst) != len(a.lo) {
		panic(fmt.Sprintf("field: accumulator width %d, destination length %d", len(a.lo), len(dst)))
	}
	for i := range a.lo {
		dst[i] = reduce128(a.hi[i], a.lo[i])
		a.hi[i], a.lo[i] = 0, 0
	}
	a.pending = 0
}
