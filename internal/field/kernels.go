package field

import (
	"fmt"
	"math/bits"
)

// Lazy-reduction kernels.
//
// Element.Mul reduces every 128-bit product immediately. The hot loops of
// Lagrange encoding and batch decoding are inner products and
// accumulate-scaled-vector updates, where reducing per term wastes most of
// the work: products can instead be summed in a raw 128-bit accumulator
// and reduced once per chunk. The chunk bound is arithmetic, not tuning:
// each product is at most (p-1)² < 2^122, so a sum of lazyTerms = 64
// products plus one carried reduced value (< p < 2^61) stays strictly
// below 64·2^122 + 2^61 < 2^128 and never overflows the (hi, lo) pair.
const lazyTerms = 64

// reduce128 returns hi·2^64 + lo mod p. Since 2^64 = 8·2^61 ≡ 8 (mod p),
// the value folds as 8·hi + lo; 8·hi is a 67-bit quantity that folds the
// same way once more: with 8·hi = h2·2^64 + l2 (h2 < 8), the total is
// congruent to 8·h2 + l2 + lo, three canonical additions.
func reduce128(hi, lo uint64) Element {
	h2, l2 := bits.Mul64(hi, 8)
	return New(lo).Add(New(l2)).Add(Element(h2 * 8))
}

// DotAcc returns the inner product of equal-length vectors a and b,
// bit-identical to Dot but with one modular reduction per lazyTerms
// products instead of one per term. It panics on length mismatch.
func DotAcc(a, b []Element) Element {
	if len(a) != len(b) {
		panic(fmt.Sprintf("field: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s Element
	var hi, lo uint64
	terms := 0
	for i := range a {
		ph, pl := bits.Mul64(uint64(a[i]), uint64(b[i]))
		var carry uint64
		lo, carry = bits.Add64(lo, pl, 0)
		hi += ph + carry
		if terms++; terms == lazyTerms {
			s = s.Add(reduce128(hi, lo))
			hi, lo, terms = 0, 0, 0
		}
	}
	return s.Add(reduce128(hi, lo))
}

// Accumulator is a fixed-width vector of lazy 128-bit sums of field
// products, the kernel under accumulate-many-scaled-vectors loops:
//
//	acc.VecMulAddScalar(c_1, x_1); …; acc.VecMulAddScalar(c_n, x_n)
//	acc.Reduce(dst)   // dst[i] = Σ_j c_j·x_j[i]
//
// Each lane spills (reduces into itself) every lazyTerms scaled adds, so
// the amortised cost per term is one 128-bit add instead of a full
// Mersenne reduction. An Accumulator is not safe for concurrent use; give
// each worker its own.
type Accumulator struct {
	hi, lo  []uint64
	pending int // scaled-vector adds since the last spill
}

// NewAccumulator returns a zeroed accumulator of the given width.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{hi: make([]uint64, n), lo: make([]uint64, n)}
}

// Len returns the accumulator width.
func (a *Accumulator) Len() int { return len(a.lo) }

// VecMulAddScalar accumulates c·xs into the lanes: a[i] += c·xs[i].
// It panics when len(xs) differs from the accumulator width.
func (a *Accumulator) VecMulAddScalar(c Element, xs []Element) {
	if len(xs) != len(a.lo) {
		panic(fmt.Sprintf("field: accumulator width %d, vector length %d", len(a.lo), len(xs)))
	}
	if a.pending == lazyTerms-1 {
		a.spill()
	}
	cu := uint64(c)
	for i, x := range xs {
		ph, pl := bits.Mul64(cu, uint64(x))
		var carry uint64
		a.lo[i], carry = bits.Add64(a.lo[i], pl, 0)
		a.hi[i] += ph + carry
	}
	a.pending++
}

// spill folds every lane to its canonical value so the lazy headroom
// resets; the folded value (< p) counts as less than one product toward
// the next chunk's bound.
func (a *Accumulator) spill() {
	for i := range a.lo {
		a.lo[i] = uint64(reduce128(a.hi[i], a.lo[i]))
		a.hi[i] = 0
	}
	a.pending = 0
}

// Reduce writes the canonical value of every lane into dst and resets the
// accumulator to zero, ready for the next accumulation. It panics when
// len(dst) differs from the accumulator width.
func (a *Accumulator) Reduce(dst []Element) {
	if len(dst) != len(a.lo) {
		panic(fmt.Sprintf("field: accumulator width %d, destination length %d", len(a.lo), len(dst)))
	}
	for i := range a.lo {
		dst[i] = reduce128(a.hi[i], a.lo[i])
		a.hi[i], a.lo[i] = 0, 0
	}
	a.pending = 0
}
