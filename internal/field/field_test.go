package field

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// bigMod reduces a big.Int product modulo p for cross-checking.
func bigMod(op func(a, b *big.Int) *big.Int, x, y uint64) uint64 {
	p := new(big.Int).SetUint64(Modulus)
	r := op(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
	r.Mod(r, p)
	return r.Uint64()
}

func TestNewCanonical(t *testing.T) {
	tests := []struct {
		name string
		in   uint64
		want uint64
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"p-1", Modulus - 1, Modulus - 1},
		{"p wraps to zero", Modulus, 0},
		{"p+1 wraps to one", Modulus + 1, 1},
		{"2p wraps to zero", 2 * Modulus, 0},
		{"max uint64", ^uint64(0), (^uint64(0)) % Modulus},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := New(tt.in).Uint64(); got != tt.want {
				t.Errorf("New(%d) = %d, want %d", tt.in, got, tt.want)
			}
		})
	}
}

func TestNewInt64(t *testing.T) {
	if got := NewInt64(-1); got != New(Modulus-1) {
		t.Errorf("NewInt64(-1) = %v, want p-1", got)
	}
	if got := NewInt64(-5).Add(New(5)); got != Zero {
		t.Errorf("NewInt64(-5) + 5 = %v, want 0", got)
	}
	if got := NewInt64(42); got != New(42) {
		t.Errorf("NewInt64(42) = %v, want 42", got)
	}
}

func TestCentered(t *testing.T) {
	tests := []struct {
		in   Element
		want int64
	}{
		{New(0), 0},
		{New(7), 7},
		{NewInt64(-7), -7},
		{New(Modulus / 2), int64(Modulus / 2)},
		{New(Modulus/2 + 1), -int64(Modulus / 2)},
	}
	for _, tt := range tests {
		if got := tt.in.Centered(); got != tt.want {
			t.Errorf("Centered(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := Rand(rng), Rand(rng)
		want := bigMod(new(big.Int).Mul, a.Uint64(), b.Uint64())
		if got := a.Mul(b).Uint64(); got != want {
			t.Fatalf("Mul(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	pm1 := New(Modulus - 1) // = -1
	if got := pm1.Mul(pm1); got != One {
		t.Errorf("(-1)*(-1) = %v, want 1", got)
	}
	if got := pm1.Mul(Zero); got != Zero {
		t.Errorf("(-1)*0 = %v, want 0", got)
	}
	if got := pm1.Mul(One); got != pm1 {
		t.Errorf("(-1)*1 = %v, want p-1", got)
	}
}

func TestAddSubNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := Rand(rng), Rand(rng)
		if got := a.Add(b).Sub(b); got != a {
			t.Fatalf("(a+b)-b = %v, want %v", got, a)
		}
		if got := a.Sub(b).Add(b); got != a {
			t.Fatalf("(a-b)+b = %v, want %v", got, a)
		}
		if got := a.Add(a.Neg()); got != Zero {
			t.Fatalf("a + (-a) = %v, want 0", got)
		}
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := RandNonZero(rng)
		if got := a.Mul(a.Inv()); got != One {
			t.Fatalf("a * a^-1 = %v, want 1 (a=%v)", got, a)
		}
	}
	if One.Inv() != One {
		t.Error("1^-1 != 1")
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Zero.Inv()
}

func TestDiv(t *testing.T) {
	a, b := New(84), New(2)
	if got := a.Div(b); got != New(42) {
		t.Errorf("84/2 = %v, want 42", got)
	}
}

func TestExp(t *testing.T) {
	tests := []struct {
		base Element
		k    uint64
		want Element
	}{
		{New(2), 0, One},
		{New(2), 1, New(2)},
		{New(2), 10, New(1024)},
		{New(3), 4, New(81)},
		{Zero, 0, One}, // convention: 0^0 = 1
		{Zero, 5, Zero},
	}
	for _, tt := range tests {
		if got := tt.base.Exp(tt.k); got != tt.want {
			t.Errorf("%v^%d = %v, want %v", tt.base, tt.k, got, tt.want)
		}
	}
	// Fermat's little theorem: a^(p-1) = 1 for a != 0.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		a := RandNonZero(rng)
		if got := a.Exp(Modulus - 1); got != One {
			t.Fatalf("a^(p-1) = %v, want 1 (a=%v)", got, a)
		}
	}
}

func TestBatchInv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]Element, 100)
	want := make([]Element, 100)
	for i := range xs {
		xs[i] = RandNonZero(rng)
		want[i] = xs[i].Inv()
	}
	BatchInv(xs)
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("BatchInv[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestBatchInvEmpty(t *testing.T) {
	BatchInv(nil) // must not panic
}

func TestBatchInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BatchInv with zero did not panic")
		}
	}()
	BatchInv([]Element{One, Zero, New(3)})
}

func TestSumProductDot(t *testing.T) {
	xs := []Element{New(1), New(2), New(3), New(4)}
	if got := Sum(xs); got != New(10) {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := Product(xs); got != New(24) {
		t.Errorf("Product = %v, want 24", got)
	}
	if got := Dot(xs, xs); got != New(30) {
		t.Errorf("Dot = %v, want 30", got)
	}
	if got := Sum(nil); got != Zero {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
	if got := Product(nil); got != One {
		t.Errorf("Product(nil) = %v, want 1", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]Element{One}, []Element{One, One})
}

func TestDistinct(t *testing.T) {
	if !Distinct([]Element{New(1), New(2), New(3)}) {
		t.Error("distinct slice reported as duplicate")
	}
	if Distinct([]Element{New(1), New(2), New(1)}) {
		t.Error("duplicate slice reported as distinct")
	}
	if !Distinct(nil) {
		t.Error("empty slice should be distinct")
	}
}

func TestRandDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	exclude := []Element{New(1), New(2), New(3)}
	got := RandDistinct(rng, 50, exclude)
	if len(got) != 50 {
		t.Fatalf("len = %d, want 50", len(got))
	}
	if !Distinct(got) {
		t.Error("RandDistinct returned duplicates")
	}
	ex := map[Element]struct{}{}
	for _, e := range exclude {
		ex[e] = struct{}{}
	}
	for _, e := range got {
		if _, bad := ex[e]; bad {
			t.Errorf("RandDistinct returned excluded element %v", e)
		}
	}
}

// genElem adapts quick.Value generation to canonical field elements.
func genElem(v uint64) Element { return New(v) }

func TestPropertyFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}

	t.Run("add commutative", func(t *testing.T) {
		f := func(x, y uint64) bool {
			a, b := genElem(x), genElem(y)
			return a.Add(b) == b.Add(a)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul commutative", func(t *testing.T) {
		f := func(x, y uint64) bool {
			a, b := genElem(x), genElem(y)
			return a.Mul(b) == b.Mul(a)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("add associative", func(t *testing.T) {
		f := func(x, y, z uint64) bool {
			a, b, c := genElem(x), genElem(y), genElem(z)
			return a.Add(b).Add(c) == a.Add(b.Add(c))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul associative", func(t *testing.T) {
		f := func(x, y, z uint64) bool {
			a, b, c := genElem(x), genElem(y), genElem(z)
			return a.Mul(b).Mul(c) == a.Mul(b.Mul(c))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributive", func(t *testing.T) {
		f := func(x, y, z uint64) bool {
			a, b, c := genElem(x), genElem(y), genElem(z)
			return a.Mul(b.Add(c)) == a.Mul(b).Add(a.Mul(c))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("identities", func(t *testing.T) {
		f := func(x uint64) bool {
			a := genElem(x)
			return a.Add(Zero) == a && a.Mul(One) == a && a.Mul(Zero) == Zero
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("inverse", func(t *testing.T) {
		f := func(x uint64) bool {
			a := genElem(x)
			if a == Zero {
				return true
			}
			return a.Mul(a.Inv()) == One
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("centered roundtrip", func(t *testing.T) {
		f := func(x int64) bool {
			// Restrict to the symmetric representable range.
			x %= int64(Modulus / 2)
			return NewInt64(x).Centered() == x
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x, y := Rand(rng), Rand(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := RandNonZero(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Inv()
	}
}

func BenchmarkBatchInv1024(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]Element, 1024)
	for i := range xs {
		xs[i] = RandNonZero(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := make([]Element, len(xs))
		copy(tmp, xs)
		BatchInv(tmp)
	}
}
