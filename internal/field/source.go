package field

import (
	cryptorand "crypto/rand"
	"encoding/binary"
)

// CryptoSource is a Source backed by crypto/rand. It is the mandatory
// source for secret material: LCC's T-privacy (Yu et al., the paper's
// ref. [24]) is information-theoretic only when the padding batches are
// uniform and unpredictable, which a deterministic PRNG cannot provide.
//
// Reads are buffered, so drawing many elements costs one syscall per
// bufferful. A CryptoSource is not safe for concurrent use; give each
// goroutine its own.
const cryptoBufLen = 512

type CryptoSource struct {
	buf [cryptoBufLen]byte
	off int // next unread byte; cryptoBufLen means empty
}

// NewCryptoSource returns an empty source; the first draw fills the buffer.
func NewCryptoSource() *CryptoSource {
	return &CryptoSource{off: cryptoBufLen}
}

// Uint64 implements Source with cryptographically secure bytes.
func (s *CryptoSource) Uint64() uint64 {
	if s.off+8 > len(s.buf) {
		// crypto/rand.Read is documented to always succeed, filling b
		// entirely (it panics internally on an unrecoverable failure).
		_, _ = cryptorand.Read(s.buf[:])
		s.off = 0
	}
	v := binary.LittleEndian.Uint64(s.buf[s.off:])
	s.off += 8
	return v
}

// SeededSource is a tiny deterministic splitmix64 generator for
// simulation noise and reproducible tests. It is NOT cryptographically
// secure — its entire stream is recoverable from one output — and must
// never feed secret material; use NewCryptoSource for that. Its value
// over *math/rand.Rand is that privacy-sensitive packages can hold a
// reproducible source without importing math/rand, which the cryptorand
// analyzer forbids there.
type SeededSource struct {
	state uint64
}

// NewSeededSource returns a deterministic source for the given seed.
func NewSeededSource(seed int64) *SeededSource {
	return &SeededSource{state: uint64(seed)}
}

// Uint64 implements Source with the splitmix64 output function.
func (s *SeededSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
