package field

import "testing"

func TestSeededSourceDeterministic(t *testing.T) {
	a, b := NewSeededSource(42), NewSeededSource(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: same seed diverged: %d != %d", i, av, bv)
		}
	}
	c := NewSeededSource(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided on %d of 1000 draws", same)
	}
}

func TestSeededSourceFieldSampling(t *testing.T) {
	src := NewSeededSource(7)
	seen := make(map[Element]struct{})
	for i := 0; i < 2000; i++ {
		e := Rand(src)
		if uint64(e) >= Modulus {
			t.Fatalf("draw %d: %d outside [0, p)", i, e)
		}
		seen[e] = struct{}{}
	}
	if len(seen) < 1990 {
		t.Errorf("only %d distinct elements in 2000 draws from a 2^61 space", len(seen))
	}
}

func TestCryptoSourceBufferRefill(t *testing.T) {
	src := NewCryptoSource()
	// Draw well past one buffer (512 bytes = 64 words) to cross a refill.
	seen := make(map[uint64]struct{})
	for i := 0; i < 500; i++ {
		seen[src.Uint64()] = struct{}{}
	}
	if len(seen) < 499 {
		t.Errorf("crypto source repeated values: %d distinct of 500", len(seen))
	}
	if e := Rand(src); uint64(e) >= Modulus {
		t.Errorf("crypto-sampled element %d outside [0, p)", e)
	}
}

func TestCryptoSourcesIndependent(t *testing.T) {
	a, b := NewCryptoSource(), NewCryptoSource()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("two crypto sources agreed on %d of 64 draws", same)
	}
}

func TestRandDistinctWithSeededSource(t *testing.T) {
	src := NewSeededSource(11)
	exclude := RandDistinct(src, 8, nil)
	got := RandDistinct(src, 32, exclude)
	all := append(append([]Element(nil), exclude...), got...)
	if !Distinct(all) {
		t.Fatal("RandDistinct returned a duplicate or an excluded element")
	}
}
