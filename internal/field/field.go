// Package field implements arithmetic over the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime).
//
// The field is the exact-arithmetic substrate for Lagrange coded computing
// (LCC): Lagrange encoding, polynomial evaluation, and Reed–Solomon
// (Berlekamp–Welch) decoding all run over this field so that error
// correction is exact. The modulus is large enough that fixed-point
// quantised neural-network estimations (package fixedpoint) fit with
// comfortable headroom, yet small enough that a product of two elements
// fits in 128 bits and reduces with two shifts and an add.
//
// All operations are constant-allocation and safe for concurrent use;
// Element is an immutable value type.
package field

import (
	"fmt"
	"math/bits"
)

// Modulus is the field characteristic p = 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// mask61 extracts the low 61 bits of a word.
const mask61 uint64 = (1 << 61) - 1

// Element is a value in GF(p), always kept in canonical form [0, p).
type Element uint64

// New returns the canonical element congruent to v mod p.
func New(v uint64) Element {
	v = (v >> 61) + (v & mask61)
	if v >= Modulus {
		v -= Modulus
	}
	return Element(v)
}

// NewInt64 returns the canonical element congruent to v mod p,
// mapping negative integers to their additive inverse representative.
func NewInt64(v int64) Element {
	if v >= 0 {
		return New(uint64(v))
	}
	return New(uint64(-v)).Neg()
}

// Zero and One are the additive and multiplicative identities.
const (
	Zero Element = 0
	One  Element = 1
)

// Uint64 returns the canonical representative in [0, p).
func (e Element) Uint64() uint64 { return uint64(e) }

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e == 0 }

// Centered returns the symmetric representative of e in
// (-(p-1)/2, (p-1)/2], which is how fixed-point decoding recovers signed
// quantities.
func (e Element) Centered() int64 {
	if uint64(e) > Modulus/2 {
		return -int64(Modulus - uint64(e))
	}
	return int64(e)
}

// Add returns e + o mod p.
func (e Element) Add(o Element) Element {
	s := uint64(e) + uint64(o) // < 2^62, no overflow
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Sub returns e - o mod p.
func (e Element) Sub(o Element) Element {
	d := uint64(e) - uint64(o)
	if d > uint64(e) { // borrow occurred
		d += Modulus
	}
	return Element(d)
}

// Neg returns -e mod p.
func (e Element) Neg() Element {
	if e == 0 {
		return 0
	}
	return Element(Modulus - uint64(e))
}

// Mul returns e * o mod p using 128-bit multiplication and Mersenne
// reduction: with x = hi·2^64 + lo and 2^61 ≡ 1 (mod p), the product
// splits as x = A·2^61 + B with A = x>>61 and B = x&mask, so x ≡ A + B.
func (e Element) Mul(o Element) Element {
	hi, lo := bits.Mul64(uint64(e), uint64(o))
	a := hi<<3 | lo>>61 // x >> 61; fits: x < 2^122 so a < 2^61
	b := lo & mask61
	s := a + b // < 2^62
	s = (s >> 61) + (s & mask61)
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Square returns e² mod p.
func (e Element) Square() Element { return e.Mul(e) }

// Double returns 2e mod p.
func (e Element) Double() Element { return e.Add(e) }

// Exp returns e^k mod p by binary exponentiation. Exp(0, 0) = 1.
func (e Element) Exp(k uint64) Element {
	result := One
	base := e
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Square()
		k >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse e^(p-2) mod p.
// Inv of zero panics: it indicates a programming error upstream
// (division by zero in a decoder is always a bug, not an input condition).
func (e Element) Inv() Element {
	if e == 0 {
		panic("field: inverse of zero")
	}
	return e.Exp(Modulus - 2)
}

// Div returns e / o mod p. Division by zero panics, as Inv does.
func (e Element) Div(o Element) Element { return e.Mul(o.Inv()) }

// Equal reports whether two elements are the same field value.
func (e Element) Equal(o Element) bool { return e == o }

// String implements fmt.Stringer with the canonical representative.
func (e Element) String() string { return fmt.Sprintf("%d", uint64(e)) }

// BatchInv inverts every element of xs in place using Montgomery's trick
// (one inversion plus 3(n-1) multiplications). It panics if any element is
// zero, matching Inv.
func BatchInv(xs []Element) {
	n := len(xs)
	if n == 0 {
		return
	}
	prefix := make([]Element, n)
	acc := One
	for i, x := range xs {
		if x == 0 {
			panic("field: inverse of zero in batch")
		}
		prefix[i] = acc
		acc = acc.Mul(x)
	}
	inv := acc.Inv()
	for i := n - 1; i >= 0; i-- {
		xi := xs[i]
		xs[i] = inv.Mul(prefix[i])
		inv = inv.Mul(xi)
	}
}

// Sum returns the sum of xs, Zero for an empty slice.
func Sum(xs []Element) Element {
	var s Element
	for _, x := range xs {
		s = s.Add(x)
	}
	return s
}

// Product returns the product of xs, One for an empty slice.
func Product(xs []Element) Element {
	p := One
	for _, x := range xs {
		p = p.Mul(x)
	}
	return p
}

// Dot returns the inner product of equal-length vectors a and b.
// It panics on length mismatch.
func Dot(a, b []Element) Element {
	if len(a) != len(b) {
		panic(fmt.Sprintf("field: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s Element
	for i := range a {
		s = s.Add(a[i].Mul(b[i]))
	}
	return s
}

// Distinct reports whether all elements of xs are pairwise distinct.
// Lagrange interpolation nodes and LCC evaluation points must be distinct;
// callers validate inputs with this before encoding.
func Distinct(xs []Element) bool {
	seen := make(map[Element]struct{}, len(xs))
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			return false
		}
		seen[x] = struct{}{}
	}
	return true
}
