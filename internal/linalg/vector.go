package linalg

import (
	"fmt"
	"math"
)

// VecAdd returns a + b elementwise. It panics on length mismatch —
// vector shapes are programmer invariants, not input conditions.
func VecAdd(a, b []float64) []float64 {
	mustSameLen("VecAdd", a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// VecSub returns a − b elementwise.
func VecSub(a, b []float64) []float64 {
	mustSameLen("VecSub", a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// VecScale returns c·a.
func VecScale(c float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = c * a[i]
	}
	return out
}

// VecAddInPlace adds b into a.
func VecAddInPlace(a, b []float64) {
	mustSameLen("VecAddInPlace", a, b)
	for i := range a {
		a[i] += b[i]
	}
}

// AXPYInPlace computes a += c·b.
func AXPYInPlace(a []float64, c float64, b []float64) {
	mustSameLen("AXPYInPlace", a, b)
	for i := range a {
		a[i] += c * b[i]
	}
}

// Dot returns the inner product ⟨a, b⟩.
func Dot(a, b []float64) float64 {
	mustSameLen("Dot", a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the max-absolute-value norm of a.
func NormInf(a []float64) float64 {
	var worst float64
	for _, v := range a {
		if av := math.Abs(v); av > worst {
			worst = av
		}
	}
	return worst
}

// Mean returns the arithmetic mean of a (0 for empty input).
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// Clone returns an independent copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

func mustSameLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: %s length mismatch %d != %d", op, len(a), len(b)))
	}
}
