// Package linalg provides the dense float64 linear algebra the rest of the
// repository needs: matrix/vector arithmetic, Gaussian elimination with
// partial pivoting, Householder QR, and least-squares solving.
//
// Go has no numerical standard library, so this package is the
// MATLAB-substitute substrate (see DESIGN.md §2): the least-squares
// activation fits of package approx, the robust real-valued decoder of
// package reedsolomon, and the neural network of package nn all build on
// it. Sizes in this system are small (tens to low hundreds), so clarity
// and numerical hygiene win over blocking/tiling.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	rows, cols int
	data       []float64 // len rows*cols
}

// NewMatrix returns a zero matrix with the given shape.
// It panics on non-positive dimensions: shapes are programmer-controlled.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("linalg: empty rows")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows and Cols report the shape.
func (m *Matrix) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns m + o. Shapes must match.
func (m *Matrix) Add(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("linalg: add shape mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += o.data[i]
	}
	return out, nil
}

// Sub returns m - o. Shapes must match.
func (m *Matrix) Sub(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("linalg: sub shape mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= o.data[i]
	}
	return out, nil
}

// Scale returns c·m as a new matrix.
func (m *Matrix) Scale(c float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= c
	}
	return out
}

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("linalg: mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := NewMatrix(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			base := k * o.cols
			outBase := i * o.cols
			for j := 0; j < o.cols; j++ {
				out.data[outBase+j] += a * o.data[base+j]
			}
		}
	}
	return out, nil
}

// MulVec returns m·x for a vector x of length Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("linalg: mulvec length %d, want %d", len(x), m.cols)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Solve solves the square system A·x = b by Gaussian elimination with
// partial pivoting. It returns an error for singular (or numerically
// singular) systems.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: solve needs square matrix, got %dx%d", m.rows, m.cols)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m.rows)
	}
	n := m.rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in the column.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivot != col {
			a.swapRows(pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Inverse returns m⁻¹ by Gauss–Jordan elimination with partial pivoting,
// or an error for singular matrices.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: inverse needs square matrix, got %dx%d", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		p := 1 / a.At(col, col)
		for c := 0; c < n; c++ {
			a.Set(col, c, a.At(col, c)*p)
			inv.Set(col, c, inv.At(col, c)*p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
				inv.Set(r, c, inv.At(r, c)-f*inv.At(col, c))
			}
		}
	}
	return inv, nil
}

// QuadraticForm returns xᵀ·m·x for a square matrix m.
func (m *Matrix) QuadraticForm(x []float64) (float64, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("linalg: quadratic form needs square matrix, got %dx%d", m.rows, m.cols)
	}
	if len(x) != m.rows {
		return 0, fmt.Errorf("linalg: quadratic form length %d, want %d", len(x), m.rows)
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		var inner float64
		for j, v := range row {
			inner += v * x[j]
		}
		s += xi * inner
	}
	return s, nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}
