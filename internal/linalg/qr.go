package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorisation A = Q·R of an m×n matrix with
// m ≥ n. Q is represented implicitly by its Householder vectors; R is
// upper triangular.
type QR struct {
	qr   *Matrix   // packed: R above diagonal, Householder vectors below
	rdia []float64 // diagonal of R
}

// NewQR factorises a (it is not modified). It returns an error for
// under-determined shapes (rows < cols).
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR needs rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	// Rank-deficiency tolerance relative to the matrix scale: columns whose
	// remaining norm falls below this after elimination are numerically
	// dependent on earlier columns.
	tol := 1e-12 * (1 + a.FrobeniusNorm())
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm <= tol {
			return nil, fmt.Errorf("linalg: rank-deficient matrix (column %d)", k)
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply transform to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdia[k] = -norm
	}
	return &QR{qr: qr, rdia: rdia}, nil
}

// Solve returns the least-squares solution x minimising ‖A·x − b‖₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m)
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Qᵀ to y.
	for k := 0; k < n; k++ {
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		if f.rdia[i] == 0 {
			return nil, fmt.Errorf("linalg: zero pivot in R at %d", i)
		}
		x[i] = s / f.rdia[i]
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ via Householder QR — the workhorse of
// the least-square activation approximation (paper §V) and the robust
// real-valued decoder refit.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeLeastSquares solves min ‖A·x − b‖₂² + λ‖x‖₂² through the normal
// equations (AᵀA + λI)x = Aᵀb. The Tikhonov term keeps the system
// non-singular when columns of A are collinear (e.g. a constant feature
// duplicating the bias column), at the cost of a tiny bias toward small
// coefficients. λ must be positive.
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("linalg: ridge lambda %g must be positive", lambda)
	}
	if len(b) != a.Rows() {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), a.Rows())
	}
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ata.Rows(); i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return ata.Solve(atb)
}

// Vandermonde returns the len(xs)×(deg+1) Vandermonde matrix with rows
// [1, x, x², …, x^deg], the design matrix of polynomial least squares.
func Vandermonde(xs []float64, deg int) *Matrix {
	m := NewMatrix(len(xs), deg+1)
	for i, x := range xs {
		p := 1.0
		for j := 0; j <= deg; j++ {
			m.Set(i, j, p)
			p *= x
		}
	}
	return m
}
