package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Errorf("FromRows wrong layout: %v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty rows accepted")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0x0")
		}
	}()
	NewMatrix(0, 0)
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", mt.Rows(), mt.Cols())
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Errorf("T values wrong: %v", mt)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 4)
	got, err := a.Mul(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 5 || sum.At(1, 1) != 5 {
		t.Errorf("Add = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(1, 0) != 3 {
		t.Errorf("Sub = %v", diff)
	}
	if got := a.Scale(2).At(1, 1); got != 8 {
		t.Errorf("Scale = %g", got)
	}
	if _, err := a.Add(NewMatrix(3, 3)); err == nil {
		t.Error("Add shape mismatch accepted")
	}
	if _, err := a.Sub(NewMatrix(3, 3)); err == nil {
		t.Error("Sub shape mismatch accepted")
	}
}

func TestSolve(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := a.Solve([]float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=3, x+3y=5 → x=4/5, y=7/5
	if !near(x[0], 0.8, 1e-12) || !near(x[1], 1.4, 1e-12) {
		t.Errorf("Solve = %v", x)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randomMatrix(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Solve(b)
		if err != nil {
			continue // singular random draw, acceptable to skip
		}
		for i := range want {
			if !near(got[i], want[i], 1e-6*(1+math.Abs(want[i]))) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Solve([]float64{1, 2}); err == nil {
		t.Error("singular matrix solved")
	}
	if _, err := NewMatrix(2, 3).Solve([]float64{1, 2}); err == nil {
		t.Error("non-square solve accepted")
	}
	if _, err := Identity(2).Solve([]float64{1}); err == nil {
		t.Error("bad rhs length accepted")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := a.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("Solve = %v", x)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: recover exact polynomial coefficients.
	xs := []float64{-2, -1, 0, 1, 2, 3}
	a := Vandermonde(xs, 2)
	truth := []float64{1, -0.5, 0.25}
	b, err := a.MulVec(truth)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !near(got[i], truth[i], 1e-10) {
			t.Errorf("coef %d = %g, want %g", i, got[i], truth[i])
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The optimal residual must be orthogonal to the column space: Aᵀr = 0.
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 30, 5)
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	r := VecSub(b, ax)
	atr, _ := a.T().MulVec(r)
	if NormInf(atr) > 1e-9 {
		t.Errorf("Aᵀr = %v, want ~0", atr)
	}
}

func TestQRValidation(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Error("underdetermined QR accepted")
	}
	// Rank-deficient: duplicate columns.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := NewQR(a); err == nil {
		t.Error("rank-deficient QR accepted")
	}
	f, err := NewQR(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("bad rhs length accepted")
	}
}

func TestVandermonde(t *testing.T) {
	v := Vandermonde([]float64{2, 3}, 2)
	want := [][]float64{{1, 2, 4}, {1, 3, 9}}
	for i := range want {
		for j := range want[i] {
			if v.At(i, j) != want[i][j] {
				t.Errorf("V[%d][%d] = %g, want %g", i, j, v.At(i, j), want[i][j])
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := VecAdd(a, b); got[2] != 9 {
		t.Errorf("VecAdd = %v", got)
	}
	if got := VecSub(b, a); got[0] != 3 {
		t.Errorf("VecSub = %v", got)
	}
	if got := VecScale(2, a); got[1] != 4 {
		t.Errorf("VecScale = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g", got)
	}
	if got := NormInf([]float64{-7, 2}); got != 7 {
		t.Errorf("NormInf = %g", got)
	}
	if got := Mean(a); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases input")
	}
	ip := Clone(a)
	VecAddInPlace(ip, b)
	if ip[0] != 5 {
		t.Errorf("VecAddInPlace = %v", ip)
	}
	ax := Clone(a)
	AXPYInPlace(ax, 2, b)
	if ax[0] != 9 {
		t.Errorf("AXPYInPlace = %v", ax)
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestPropertyTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(_ uint8) bool {
		m := randomMatrix(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		tt := m.T().T()
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(_ uint8) bool {
		n := 1 + rng.Intn(5)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		c := randomMatrix(rng, n, n)
		bc, _ := b.Add(c)
		left, _ := a.Mul(bc)
		ab, _ := a.Mul(b)
		ac, _ := a.Mul(c)
		right, _ := ab.Add(ac)
		d, _ := left.Sub(right)
		return d.FrobeniusNorm() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); got != 5 {
		t.Errorf("FrobeniusNorm = %g", got)
	}
}

func BenchmarkSolve64(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 64, 64)
	rhs := make([]float64, 64)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquares100x8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 100, 8)
	rhs := make([]float64, 100)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInverse(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !near(prod.At(i, j), want, 1e-12) {
				t.Errorf("A·A⁻¹[%d][%d] = %g", i, j, prod.At(i, j))
			}
		}
	}
	if _, err := NewMatrix(2, 3).Inverse(); err == nil {
		t.Error("non-square inverse accepted")
	}
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := sing.Inverse(); err == nil {
		t.Error("singular inverse accepted")
	}
}

func TestInverseRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n, n)
		inv, err := a.Inverse()
		if err != nil {
			continue // singular draw
		}
		prod, err := a.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		d, err := prod.Sub(Identity(n))
		if err != nil {
			t.Fatal(err)
		}
		if d.FrobeniusNorm() > 1e-8 {
			t.Fatalf("trial %d: ‖A·A⁻¹ − I‖ = %g", trial, d.FrobeniusNorm())
		}
	}
}

func TestQuadraticForm(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	got, err := a.QuadraticForm([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// [1 2]·A·[1 2]ᵀ = 2 + 2 + 2 + 12 = 18
	if !near(got, 18, 1e-12) {
		t.Errorf("QuadraticForm = %g", got)
	}
	if _, err := NewMatrix(2, 3).QuadraticForm([]float64{1, 2}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := a.QuadraticForm([]float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRidgeLeastSquares(t *testing.T) {
	// Collinear columns: plain QR fails, ridge succeeds and keeps the
	// coefficients small.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Error("plain LS solved a rank-deficient system")
	}
	x, err := RidgeLeastSquares(a, []float64{1, 2, 3}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric problem → symmetric solution near [0.5, 0.5].
	if !near(x[0], x[1], 1e-9) || !near(x[0], 0.5, 1e-3) {
		t.Errorf("ridge solution = %v", x)
	}
	if _, err := RidgeLeastSquares(a, []float64{1, 2, 3}, 0); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := RidgeLeastSquares(a, []float64{1}, 1e-6); err == nil {
		t.Error("bad rhs length accepted")
	}
}

func TestRidgeMatchesLSWhenWellPosed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(rng, 20, 4)
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ls, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := RidgeLeastSquares(a, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ls {
		if !near(ls[i], ridge[i], 1e-6) {
			t.Errorf("coef %d: LS %g vs ridge %g", i, ls[i], ridge[i])
		}
	}
}

func TestRowColString(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Errorf("Row = %v", r)
	}
	r[0] = 99
	if m.At(1, 0) == 99 {
		t.Error("Row aliases matrix")
	}
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Errorf("Col = %v", c)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}
