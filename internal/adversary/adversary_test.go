package adversary

import (
	"math"
	"testing"
)

func TestConstantLie(t *testing.T) {
	b := ConstantLie{Value: 0.9}
	if got := b.Corrupt(3, -0.5); got != 0.9 {
		t.Errorf("Corrupt = %g", got)
	}
}

func TestRandomNoise(t *testing.T) {
	b, err := NewRandomNoise(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := b.Corrupt(0, 123)
		if math.Abs(v) > 2 {
			t.Fatalf("noise %g outside magnitude", v)
		}
	}
	if _, err := NewRandomNoise(0, 1); err == nil {
		t.Error("zero magnitude accepted")
	}
}

func TestSignFlipScale(t *testing.T) {
	b := SignFlipScale{Scale: 3}
	if got := b.Corrupt(0, 0.5); got != -1.5 {
		t.Errorf("Corrupt = %g", got)
	}
}

func TestCollusionOffset(t *testing.T) {
	b := CollusionOffset{Offset: 0.4}
	if got := b.Corrupt(0, 0.1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Corrupt = %g", got)
	}
}

func TestPlanSelection(t *testing.T) {
	p, err := NewPlan(100, 0.3, ConstantLie{Value: 1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 30 {
		t.Fatalf("Count = %d, want 30", p.Count())
	}
	if len(p.IDs()) != 30 {
		t.Fatalf("IDs = %d", len(p.IDs()))
	}
	seen := map[int]bool{}
	for _, id := range p.IDs() {
		if id < 0 || id >= 100 {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if !p.IsMalicious(id) {
			t.Fatalf("IDs/IsMalicious disagree for %d", id)
		}
	}
}

func TestPlanApply(t *testing.T) {
	p, err := NewPlan(10, 0.5, ConstantLie{Value: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 10; id++ {
		got := p.Apply(id, 0.25)
		if p.IsMalicious(id) && got != 9 {
			t.Errorf("malicious %d reported %g", id, got)
		}
		if !p.IsMalicious(id) && got != 0.25 {
			t.Errorf("honest %d reported %g", id, got)
		}
	}
}

func TestPlanHonest(t *testing.T) {
	p, err := NewPlan(10, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 0 {
		t.Errorf("Count = %d", p.Count())
	}
	if got := p.Apply(0, 0.7); got != 0.7 {
		t.Errorf("honest plan changed value to %g", got)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 0.5, ConstantLie{}, 1); err == nil {
		t.Error("zero vehicles accepted")
	}
	if _, err := NewPlan(10, -0.1, ConstantLie{}, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := NewPlan(10, 1.5, ConstantLie{}, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := NewPlan(10, 0.5, nil, 1); err == nil {
		t.Error("nil behaviour with positive fraction accepted")
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, _ := NewPlan(50, 0.4, ConstantLie{}, 9)
	b, _ := NewPlan(50, 0.4, ConstantLie{}, 9)
	ia, ib := a.IDs(), b.IDs()
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed selected different vehicles")
		}
	}
}

func TestBehaviorNames(t *testing.T) {
	rn, _ := NewRandomNoise(1, 0)
	for _, b := range []Behavior{ConstantLie{Value: 1}, rn, SignFlipScale{Scale: 2}, CollusionOffset{Offset: 0.1}} {
		if b.Name() == "" {
			t.Errorf("%T has empty name", b)
		}
	}
}
