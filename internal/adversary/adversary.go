// Package adversary models the malicious vehicles of the paper's threat
// model: participants that return erroneous estimation results to the
// fusion centre (paper §III-B, "dishonest computation").
//
// A Behavior rewrites the honest result a vehicle would have uploaded.
// The selection of which vehicles are malicious is seeded and reported, so
// experiments can verify that the decoder's identified error positions
// match the planted ones.
package adversary

import (
	"fmt"
	"math/rand"
)

// Behavior rewrites an honest uplink value into a malicious one.
type Behavior interface {
	// Name identifies the behaviour in experiment output.
	Name() string
	// Corrupt returns the value the malicious vehicle reports instead of
	// the honest value.
	Corrupt(vehicle int, honest float64) float64
}

// ConstantLie always reports a fixed value regardless of the computation —
// the cheapest attack: skip the work, upload garbage.
type ConstantLie struct {
	// Value is the reported constant.
	Value float64
}

// Name implements Behavior.
func (c ConstantLie) Name() string { return fmt.Sprintf("constant-lie(%g)", c.Value) }

// Corrupt implements Behavior.
func (c ConstantLie) Corrupt(_ int, _ float64) float64 { return c.Value }

// RandomNoise reports uniform garbage in [-Magnitude, Magnitude].
type RandomNoise struct {
	// Magnitude bounds the reported garbage.
	Magnitude float64
	// Seed drives the deterministic RNG.
	Seed int64

	rng *rand.Rand
}

// NewRandomNoise validates the magnitude and returns the behaviour.
func NewRandomNoise(magnitude float64, seed int64) (*RandomNoise, error) {
	if magnitude <= 0 {
		return nil, fmt.Errorf("adversary: magnitude %g must be positive", magnitude)
	}
	return &RandomNoise{Magnitude: magnitude, Seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Behavior.
func (r *RandomNoise) Name() string { return fmt.Sprintf("random-noise(%g)", r.Magnitude) }

// Corrupt implements Behavior.
func (r *RandomNoise) Corrupt(_ int, _ float64) float64 {
	return (2*r.rng.Float64() - 1) * r.Magnitude
}

// SignFlipScale reports -Scale times the honest value: a gradient/estimate
// inversion attack that actively steers the aggregate away from truth.
type SignFlipScale struct {
	// Scale multiplies the negated honest value (must be positive).
	Scale float64
}

// Name implements Behavior.
func (s SignFlipScale) Name() string { return fmt.Sprintf("sign-flip(x%g)", s.Scale) }

// Corrupt implements Behavior.
func (s SignFlipScale) Corrupt(_ int, honest float64) float64 { return -s.Scale * honest }

// CollusionOffset adds the same fixed offset at every colluding vehicle,
// the hardest case for averaging aggregators because the poison is
// coordinated and biased in one direction.
type CollusionOffset struct {
	// Offset is the shared additive poison.
	Offset float64
}

// Name implements Behavior.
func (c CollusionOffset) Name() string { return fmt.Sprintf("collusion-offset(%+g)", c.Offset) }

// Corrupt implements Behavior.
func (c CollusionOffset) Corrupt(_ int, honest float64) float64 { return honest + c.Offset }

// Plan fixes which vehicles are malicious and how they behave.
type Plan struct {
	behavior  Behavior
	malicious map[int]bool
	ids       []int
}

// NewPlan marks a deterministic random subset of ⌊fraction·numVehicles⌋
// vehicles as malicious with the given behaviour. A zero fraction yields
// an all-honest plan; fractions outside [0, 1] are rejected.
func NewPlan(numVehicles int, fraction float64, behavior Behavior, seed int64) (*Plan, error) {
	if numVehicles <= 0 {
		return nil, fmt.Errorf("adversary: vehicle count %d must be positive", numVehicles)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("adversary: malicious fraction %g outside [0,1]", fraction)
	}
	count := int(fraction * float64(numVehicles))
	if count > 0 && behavior == nil {
		return nil, fmt.Errorf("adversary: %d malicious vehicles need a behaviour", count)
	}
	p := &Plan{behavior: behavior, malicious: make(map[int]bool, count)}
	ids := rand.New(rand.NewSource(seed)).Perm(numVehicles)[:count]
	for _, id := range ids {
		p.malicious[id] = true
	}
	p.ids = append(p.ids, ids...)
	return p, nil
}

// IsMalicious reports whether vehicle id is in the malicious set.
func (p *Plan) IsMalicious(id int) bool { return p.malicious[id] }

// Count returns the number of malicious vehicles E.
func (p *Plan) Count() int { return len(p.malicious) }

// IDs returns a copy of the malicious vehicle identifiers.
func (p *Plan) IDs() []int { return append([]int(nil), p.ids...) }

// Apply returns what vehicle id actually uploads for an honest value.
func (p *Plan) Apply(id int, honest float64) float64 {
	if p.malicious[id] {
		return p.behavior.Corrupt(id, honest)
	}
	return honest
}
