package node

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// chaosRun executes a session with the vehicle side of every connection
// wrapped by the injector. Vehicles in retry run under RunVehicleRetry
// with a redial that rejoins the fusion centre over a fresh pipe — the
// restart-and-rejoin process fault, end to end.
func chaosRun(t *testing.T, s *session, inj *chaos.Injector, retry map[int]bool) *Report {
	t.Helper()
	var wg sync.WaitGroup
	for i := range s.clients {
		wg.Add(1)
		if retry[i] {
			first := true
			dial := func() (transport.Conn, error) {
				if first {
					first = false
					return inj.Wrap(i, s.vconns[i]), nil
				}
				serverEnd, vehicleEnd := transport.Pipe()
				s.server.Rejoin(serverEnd)
				return inj.Wrap(i, vehicleEnd), nil
			}
			go func(i int) {
				defer wg.Done()
				err := RunVehicleRetry(s.clients[i], RetryConfig{
					Dial:    dial,
					Sleeper: &obs.ManualSleeper{},
				})
				if err != nil {
					t.Errorf("retry vehicle %d: %v", i, err)
				}
			}(i)
			continue
		}
		go func(i int) {
			defer wg.Done()
			if err := RunVehicle(inj.Wrap(i, s.vconns[i]), s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i)
	}
	report, err := s.server.Run(s.conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return report
}

// sameBits reports bit-identity of two float64 vectors.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestChaosRecoveryBitIdentical pins the tentpole invariant: a fault
// pattern the recovery machinery tolerates — corrupted upload frames
// (detected by checksum, retransmitted from the vehicle's cache) plus a
// crash-and-rejoin — yields a final model bit-identical to the
// fault-free run, at every worker count, with identical recovery
// counters across worker counts.
func TestChaosRecoveryBitIdentical(t *testing.T) {
	const vehicles, rounds = 20, 3
	// before-upload crash: the upload is only ever delivered through the
	// rejoin resend, so every counter (not just the aggregate) is a pure
	// function of seed+spec. (after-upload crashes race the original
	// upload against the rejoin re-broadcast — covered, with the weaker
	// bit-identity-only guarantee, in TestChaosCrashAfterUpload.)
	const spec = "seed=9;corrupt.upload=0.3:max=1;crash@4=before-upload:2"

	baseline := buildSessionFull(t, vehicles, rounds, 0, nil, 1).run(t)

	var first *Report
	for _, workers := range []int{1, 2, 8} {
		s := buildSessionFull(t, vehicles, rounds, 0, nil, workers)
		inj := chaos.New(mustChaosSpec(t, spec), chaos.Options{Sleeper: &obs.ManualSleeper{}})
		report := chaosRun(t, s, inj, map[int]bool{4: true})

		if report.Rounds != rounds {
			t.Fatalf("workers=%d: rounds = %d", workers, report.Rounds)
		}
		if !sameBits(report.FinalParams, baseline.FinalParams) {
			t.Errorf("workers=%d: recovered run diverged from fault-free params", workers)
		}
		if report.CorruptFrames == 0 {
			t.Errorf("workers=%d: schedule injected no corrupt frames", workers)
		}
		if report.Retransmits != report.CorruptFrames {
			t.Errorf("workers=%d: retransmits %d != corrupt frames %d",
				workers, report.Retransmits, report.CorruptFrames)
		}
		if report.Rejoins != 1 {
			t.Errorf("workers=%d: rejoins = %d, want 1", workers, report.Rejoins)
		}
		if report.Stragglers != 0 || report.DegradedRounds != 0 {
			t.Errorf("workers=%d: stragglers=%d degraded=%d, want full recovery",
				workers, report.Stragglers, report.DegradedRounds)
		}
		if len(report.SuspectedMalicious) != 0 {
			t.Errorf("workers=%d: recovery flagged honest vehicles: %v",
				workers, report.SuspectedMalicious)
		}
		if first == nil {
			first = report
			continue
		}
		if report.CorruptFrames != first.CorruptFrames ||
			report.Retransmits != first.Retransmits ||
			report.Rejoins != first.Rejoins ||
			report.Stragglers != first.Stragglers ||
			report.DegradedRounds != first.DegradedRounds {
			t.Errorf("workers=%d: recovery counters diverged: %+v vs %+v",
				workers, report, first)
		}
	}
}

// TestChaosCrashAfterUpload: a vehicle that crashes right after its
// round-1 upload rejoins and completes the session; the aggregate stays
// bit-identical to the fault-free run even though the rejoin
// re-broadcast may race the already-delivered upload (the duplicate
// resend carries identical values).
func TestChaosCrashAfterUpload(t *testing.T) {
	const vehicles, rounds = 20, 3
	baseline := buildSessionFull(t, vehicles, rounds, 0, nil, 1).run(t)

	s := buildSessionFull(t, vehicles, rounds, 0, nil, 1)
	inj := chaos.New(mustChaosSpec(t, "seed=5;crash@7=after-upload:1"), chaos.Options{})
	report := chaosRun(t, s, inj, map[int]bool{7: true})

	if report.Rounds != rounds {
		t.Errorf("rounds = %d", report.Rounds)
	}
	if !sameBits(report.FinalParams, baseline.FinalParams) {
		t.Error("after-upload crash recovery diverged from fault-free params")
	}
	if report.Rejoins != 1 {
		t.Errorf("rejoins = %d, want 1", report.Rejoins)
	}
	if report.Stragglers != 0 {
		t.Errorf("stragglers = %d", report.Stragglers)
	}
}

func mustChaosSpec(t testing.TB, s string) *chaos.Spec {
	t.Helper()
	spec, err := chaos.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestChaosDegradedRound: when every upload is dropped, the fusion
// centre must not hang or fail — each round degrades (below the RS
// recover threshold K nothing can be verified), the model holds still,
// and the session completes. Counters mirror the report.
func TestChaosDegradedRound(t *testing.T) {
	const vehicles, rounds = 10, 2
	reg := obs.NewRegistry()
	o := obs.New(reg, nil, nil)
	s := buildSessionFull(t, vehicles, rounds, 0, o, 0)
	s.server.cfg.RoundTimeout = 500 * time.Millisecond
	initial := append([]float64(nil), s.server.Shared().Params()...)

	inj := chaos.New(mustChaosSpec(t, "seed=2;drop.upload=1"), chaos.Options{})
	report := chaosRun(t, s, inj, nil)

	if report.Rounds != rounds {
		t.Errorf("rounds = %d, want %d", report.Rounds, rounds)
	}
	if report.DegradedRounds != rounds {
		t.Errorf("degraded rounds = %d, want %d", report.DegradedRounds, rounds)
	}
	if report.Stragglers != vehicles*rounds {
		t.Errorf("stragglers = %d, want %d", report.Stragglers, vehicles*rounds)
	}
	if !sameBits(report.FinalParams, initial) {
		t.Error("degraded session moved the model")
	}
	if got := reg.Counter("node.degraded_rounds").Value(); got != int64(report.DegradedRounds) {
		t.Errorf("node.degraded_rounds counter = %d, report %d", got, report.DegradedRounds)
	}
	if got := reg.Counter("node.stragglers").Value(); got != int64(report.Stragglers) {
		t.Errorf("node.stragglers counter = %d, report %d", got, report.Stragglers)
	}
}

// staleConn defers the round-1 upload until the round-2 broadcast
// arrives, turning the vehicle into a straggler whose late upload lands
// mid-round-2 — the stale-upload path.
type staleConn struct {
	transport.Conn
	pending  *protocol.Message
	deferred bool
}

func (c *staleConn) Send(m *protocol.Message) error {
	if !c.deferred && m.Upload != nil && m.Upload.Round == 1 {
		c.deferred = true
		c.pending = m
		return nil
	}
	return c.Conn.Send(m)
}

func (c *staleConn) Recv() (*protocol.Message, error) {
	m, err := c.Conn.Recv()
	if err == nil && m.Broadcast != nil && m.Broadcast.Round == 2 && c.pending != nil {
		late := c.pending
		c.pending = nil
		if err := c.Conn.Send(late); err != nil {
			return nil, err
		}
	}
	return m, err
}

// TestStaleUploadCountedOnce pins the straggler-rejoin accounting: a
// vehicle that misses round 1's deadline and delivers that upload during
// round 2 is counted exactly once in Report.Stragglers, the stale upload
// is discarded, and its round-2 upload still counts.
func TestStaleUploadCountedOnce(t *testing.T) {
	s := buildSession(t, 20, 2, 0)
	// Long enough for 19 honest uploads under a loaded -race run, short
	// enough that the deferred vehicle misses round 1.
	s.server.cfg.RoundTimeout = time.Second

	var wg sync.WaitGroup
	for i := range s.clients {
		wg.Add(1)
		conn := s.vconns[i]
		if i == 3 {
			conn = &staleConn{Conn: conn}
		}
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			if err := RunVehicle(conn, s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i, conn)
	}
	report, err := s.server.Run(s.conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != 2 {
		t.Errorf("rounds = %d", report.Rounds)
	}
	if report.Stragglers != 1 {
		t.Errorf("stragglers = %d, want exactly 1 (late upload must not re-count)", report.Stragglers)
	}
	if report.DegradedRounds != 0 {
		t.Errorf("degraded rounds = %d", report.DegradedRounds)
	}
}

// TestVehicleFinishedBeforeSetup: a rejoin that lands after the session
// ended is answered with Finished instead of Setup — the vehicle must
// terminate cleanly, not report a protocol violation (otherwise a
// crashed vehicle whose backoff outlived the session would always exit
// nonzero).
func TestVehicleFinishedBeforeSetup(t *testing.T) {
	a, b := transport.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if m, err := b.Recv(); err != nil || m.Hello == nil {
			t.Errorf("expected hello: %+v, %v", m, err)
			return
		}
		if err := b.Send(&protocol.Message{Finished: &protocol.Finished{Rounds: 3}}); err != nil {
			t.Errorf("send finished: %v", err)
		}
		b.Close()
	}()
	err := RunVehicle(a, ClientConfig{VehicleID: 1, Data: []nn.Sample{{X: []float64{0}, Y: 0}}, Seed: 1})
	wg.Wait()
	if err != nil {
		t.Fatalf("finished-before-setup not a clean exit: %v", err)
	}
}

// TestRunVehicleRetryGivesUp: a dead fusion centre exhausts the bounded
// backoff schedule — delays grow exponentially, jittered, capped — and
// the vehicle reports the last error instead of hanging.
func TestRunVehicleRetryGivesUp(t *testing.T) {
	sleeper := &obs.ManualSleeper{}
	cfg := ClientConfig{VehicleID: 1, Data: []nn.Sample{{X: []float64{0}, Y: 0}}, Seed: 3}
	err := RunVehicleRetry(cfg, RetryConfig{
		Dial:        func() (transport.Conn, error) { return nil, fmt.Errorf("refused") },
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Sleeper:     sleeper,
	})
	if err == nil {
		t.Fatal("gave up silently")
	}
	slept := sleeper.Slept()
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want MaxAttempts-1 = 3: %v", len(slept), slept)
	}
	for i, d := range slept {
		lo := 10 * time.Millisecond << i
		if lo > 40*time.Millisecond {
			lo = 40 * time.Millisecond
		}
		if d < lo || d > lo+lo/2 {
			t.Errorf("backoff %d = %v, want in [%v, %v]", i, d, lo, lo+lo/2)
		}
	}
	// The schedule is deterministic: a second vehicle with the same seed
	// sleeps identically.
	sleeper2 := &obs.ManualSleeper{}
	_ = RunVehicleRetry(cfg, RetryConfig{
		Dial:        func() (transport.Conn, error) { return nil, fmt.Errorf("refused") },
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Sleeper:     sleeper2,
	})
	slept2 := sleeper2.Slept()
	for i := range slept {
		if slept[i] != slept2[i] {
			t.Errorf("jitter not deterministic: %v vs %v", slept, slept2)
		}
	}

	if RunVehicleRetry(cfg, RetryConfig{}) == nil {
		t.Error("missing dialer accepted")
	}
	if !IsTransient(transientf("x")) || IsTransient(fmt.Errorf("x")) {
		t.Error("IsTransient misclassifies")
	}
}
