package node

import "math/rand"

// newVehicleRNG builds the vehicle's deterministic shuffle source.
func newVehicleRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
