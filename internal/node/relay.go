package node

import (
	"fmt"
	"sync"

	"repro/internal/transport"
)

// Relay is the roadside-unit role of the paper's Fig. 1: edge servers
// that are not the fusion centre "act as the relay nodes between the
// fusion centre and vehicles". A relay accepts vehicle connections and
// pipes each one to its own upstream connection to the fusion centre, so
// vehicles out of the fusion centre's direct coverage still participate.
// Relays are protocol-transparent: they validate framing (transport does)
// but never inspect or alter payloads, so the security analysis is
// unchanged — a malicious relay is equivalent to a lossy/corrupting
// channel on every vehicle behind it, which the verification channel
// already covers.
type Relay struct {
	listener transport.Listener
	dial     func() (transport.Conn, error)

	mu     sync.Mutex       // guards closed and conns
	closed bool             // guarded by mu
	conns  []transport.Conn // guarded by mu
	wg     sync.WaitGroup
}

// NewRelay wires a listener for vehicle connections to a dialer for
// upstream fusion-centre connections.
func NewRelay(listener transport.Listener, dial func() (transport.Conn, error)) (*Relay, error) {
	if listener == nil {
		return nil, fmt.Errorf("node: relay listener required")
	}
	if dial == nil {
		return nil, fmt.Errorf("node: relay dialer required")
	}
	return &Relay{listener: listener, dial: dial}, nil
}

// Serve accepts and proxies vehicle connections until the listener
// closes. It returns the accept error that ended the loop (use Close for
// a clean shutdown).
func (r *Relay) Serve() error {
	for {
		down, err := r.listener.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("node: relay accept: %w", err)
		}
		up, err := r.dial()
		if err != nil {
			_ = down.Close()
			return fmt.Errorf("node: relay upstream dial: %w", err)
		}
		r.mu.Lock()
		if r.closed {
			// Close already snapshotted conns and may be in wg.Wait: adding
			// here would race it. Drop the late pair instead.
			r.mu.Unlock()
			_ = down.Close()
			_ = up.Close()
			return nil
		}
		r.conns = append(r.conns, down, up)
		r.wg.Add(2)
		r.mu.Unlock()
		go r.pipe(down, up)
		go r.pipe(up, down)
	}
}

// pipe forwards messages one way until either side closes.
func (r *Relay) pipe(from, to transport.Conn) {
	defer r.wg.Done()
	for {
		m, err := from.Recv()
		if err != nil {
			_ = to.Close()
			return
		}
		if m.Setup != nil {
			// The fusion centre just told this vehicle which revision its
			// connection speaks. Adopt it on both legs so forwarded bulk
			// frames re-encode exactly as negotiated end to end — without
			// this, a v3 vehicle's binary upload would be rejected by the
			// relay's own decoder, still at the revision-2 default.
			v := m.Setup.WireVersion
			if v < minWireVersion {
				v = minWireVersion
			}
			transport.SetWireVersion(from, v)
			transport.SetWireVersion(to, v)
		}
		if err := to.Send(m); err != nil {
			_ = from.Close()
			return
		}
		if !transport.Pending(from) {
			// Flush only once the inbound buffer drains: a round's upload
			// fan-in coalesces into as few upstream writes as the burst
			// allows instead of one syscall per forwarded frame.
			if err := transport.Flush(to); err != nil {
				_ = from.Close()
				return
			}
		}
	}
}

// Close stops accepting and tears down every proxied connection.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := append([]transport.Conn(nil), r.conns...)
	r.mu.Unlock()
	err := r.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	r.wg.Wait()
	return err
}
