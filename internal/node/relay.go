package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Relay is the roadside-unit role of the paper's Fig. 1: edge servers
// that are not the fusion centre "act as the relay nodes between the
// fusion centre and vehicles". A relay accepts vehicle connections and
// pipes each one to its own upstream connection to the fusion centre, so
// vehicles out of the fusion centre's direct coverage still participate.
//
// At protocol revision 5 the relay is an aggregation-tree node rather
// than a blind pipe: uploads from the vehicles behind it (its shard) are
// parked in a gatherer and forwarded upstream as combined Gather frames
// — one wire frame per shard burst instead of one per vehicle. Payloads
// are still never altered, only re-grouped, so the security analysis is
// unchanged: a malicious relay remains equivalent to a lossy/corrupting
// channel on its shard, which the verification channel already covers.
// On legs that negotiated an older revision the relay stays a
// transparent pipe.
//
// Failure degrades, never cascades: an upstream dial failure closes that
// one vehicle's connection (the vehicle's retry logic then dials the
// fusion centre directly), a corrupt frame is re-signalled rather than
// tearing the link down, and Close drains parked and buffered frames
// deterministically before any connection is torn down.
type Relay struct {
	listener transport.Listener
	dial     func() (transport.Conn, error)
	window   time.Duration

	mu     sync.Mutex   // guards closed, links, and live
	closed bool         // guarded by mu
	links  []*relayLink // guarded by mu
	live   int          // guarded by mu — links with both legs still up
	wg     sync.WaitGroup

	gather gatherer
	kick   chan struct{} // wakes the flusher (coalescing, capacity 1)
	done   chan struct{}

	// Observability handles, resolved once in NewRelayWith.
	obs        *obs.Obs
	cGathers   *obs.Counter
	cGathered  *obs.Counter
	cDialErrs  *obs.Counter
	cCorruptFw *obs.Counter
}

// relayLink is one vehicle's pair of legs through the relay.
type relayLink struct {
	down transport.Conn
	up   transport.Conn
	// wire is the revision negotiated by the fusion centre's Setup (0
	// until seen); the upstream pipe reads it to decide gather
	// eligibility.
	wire atomic.Int32
	// dead flips once when either pipe exits, so the live-link count
	// drops exactly once per link.
	dead atomic.Bool
}

// parkedUpload is one upload waiting in the gatherer, remembering its
// own upstream leg as the fallback carrier.
type parkedUpload struct {
	u  *protocol.Upload
	up transport.Conn
}

// gatherer accumulates the shard's uploads between flushes.
type gatherer struct {
	mu      sync.Mutex     // guards pending
	pending []parkedUpload // guarded by mu
}

// defaultGatherWindow bounds how long a parked upload may wait for the
// rest of its shard before being flushed anyway (stragglers behind the
// relay must not stall the uploads that did arrive).
const defaultGatherWindow = 2 * time.Millisecond

// RelayConfig parameterises an aggregation-tree relay.
type RelayConfig struct {
	// Listener accepts vehicle (downstream) connections.
	Listener transport.Listener
	// Dial opens one upstream connection to the fusion centre per
	// vehicle.
	Dial func() (transport.Conn, error)
	// GatherWindow bounds how long a parked upload waits for the rest of
	// the shard before flushing anyway (default 2 ms; a full shard
	// flushes immediately). Negative disables gathering entirely.
	GatherWindow time.Duration
	// Obs attaches relay.* counters and events; nil disables.
	Obs *obs.Obs
}

// NewRelay wires a listener for vehicle connections to a dialer for
// upstream fusion-centre connections with default gathering.
func NewRelay(listener transport.Listener, dial func() (transport.Conn, error)) (*Relay, error) {
	return NewRelayWith(RelayConfig{Listener: listener, Dial: dial})
}

// NewRelayWith builds a relay from the full configuration.
func NewRelayWith(cfg RelayConfig) (*Relay, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("node: relay listener required")
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("node: relay dialer required")
	}
	if cfg.GatherWindow == 0 {
		cfg.GatherWindow = defaultGatherWindow
	}
	r := &Relay{
		listener: cfg.Listener,
		dial:     cfg.Dial,
		window:   cfg.GatherWindow,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	if cfg.Obs.Enabled() {
		r.obs = cfg.Obs
		r.cGathers = cfg.Obs.Counter("relay.gathers")
		r.cGathered = cfg.Obs.Counter("relay.gathered_uploads")
		r.cDialErrs = cfg.Obs.Counter("relay.dial_errors")
		r.cCorruptFw = cfg.Obs.Counter("relay.corrupt_forwarded")
	}
	return r, nil
}

// Serve accepts and proxies vehicle connections until the listener
// closes. An upstream dial failure is not fatal: the affected vehicle's
// connection is closed (its retry path dials the fusion centre directly)
// and the relay keeps serving its remaining shard.
func (r *Relay) Serve() error {
	r.wg.Add(1)
	go r.flusher()
	for {
		down, err := r.listener.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("node: relay accept: %w", err)
		}
		up, err := r.dial()
		if err != nil {
			_ = down.Close()
			if r.obs != nil {
				r.cDialErrs.Inc()
				r.obs.Emit("relay.dial_error", obs.F("error", err.Error()))
			}
			continue
		}
		link := &relayLink{down: down, up: up}
		r.mu.Lock()
		if r.closed {
			// Close already snapshotted links and may be in wg.Wait: adding
			// here would race it. Drop the late pair instead.
			r.mu.Unlock()
			_ = down.Close()
			_ = up.Close()
			return nil
		}
		r.links = append(r.links, link)
		r.live++
		r.wg.Add(2)
		r.mu.Unlock()
		go r.pipe(link, down, up, true)
		go r.pipe(link, up, down, false)
	}
}

// retire marks a link dead (once) and nudges the flusher so uploads
// parked behind the vanished shard member do not wait for it.
func (r *Relay) retire(link *relayLink) {
	if link.dead.CompareAndSwap(false, true) {
		r.mu.Lock()
		r.live--
		r.mu.Unlock()
		r.nudge()
	}
}

// nudge wakes the flusher without blocking (the channel coalesces).
func (r *Relay) nudge() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// pipe forwards messages one way until either side closes. In the
// upstream direction, uploads on revision-5 legs are parked in the
// shared gatherer instead of being forwarded frame-for-frame.
func (r *Relay) pipe(link *relayLink, from, to transport.Conn, upstream bool) {
	defer r.wg.Done()
	defer r.retire(link)
	for {
		m, err := from.Recv()
		if err != nil {
			if errors.Is(err, protocol.ErrCorruptFrame) {
				// The stream survives a corrupt frame (transport resyncs on
				// the next length prefix). Re-signal the corruption instead
				// of swallowing it, so end-to-end retransmit semantics hold
				// across the relay; a fabric that cannot forge corruption
				// just drops the frame, which times out identically.
				if f, ok := to.(transport.Faulter); ok {
					if f.SendCorrupt(&protocol.Message{Error: &protocol.Error{Reason: "relayed corrupt frame"}}) == nil {
						_ = transport.Flush(to)
						if r.obs != nil {
							r.cCorruptFw.Inc()
							r.obs.Emit("relay.corrupt_forward", obs.F("upstream", upstream))
						}
					}
				}
				continue
			}
			_ = to.Close()
			return
		}
		if m.Setup != nil {
			// The fusion centre just told this vehicle which revision its
			// connection speaks. Adopt it on both legs so forwarded bulk
			// frames re-encode exactly as negotiated end to end — without
			// this, a v3 vehicle's binary upload would be rejected by the
			// relay's own decoder, still at the revision-2 default.
			v := m.Setup.WireVersion
			if v < minWireVersion {
				v = minWireVersion
			}
			transport.SetWireVersion(from, v)
			transport.SetWireVersion(to, v)
			link.wire.Store(int32(v))
		}
		if upstream && m.Upload != nil && r.window >= 0 &&
			int(link.wire.Load()) >= protocol.FleetVersion {
			r.park(m.Upload, link.up)
			if !transport.Pending(from) {
				r.maybeFlush(false)
			}
			continue
		}
		if err := to.Send(m); err != nil {
			_ = from.Close()
			return
		}
		if !transport.Pending(from) {
			// Flush only once the inbound buffer drains: a round's upload
			// fan-in coalesces into as few upstream writes as the burst
			// allows instead of one syscall per forwarded frame.
			if err := transport.Flush(to); err != nil {
				_ = from.Close()
				return
			}
		}
	}
}

// park adds one upload to the gatherer and wakes the flusher.
func (r *Relay) park(u *protocol.Upload, up transport.Conn) {
	r.gather.mu.Lock()
	r.gather.pending = append(r.gather.pending, parkedUpload{u: u, up: up})
	r.gather.mu.Unlock()
	r.nudge()
}

// flusher drives the gather window: a full shard flushes immediately
// (maybeFlush from the parking pipe already handled the common case);
// a partial one flushes when the window expires, so a straggling or
// vanished shard member never stalls the uploads that did arrive.
func (r *Relay) flusher() {
	defer r.wg.Done()
	var timer <-chan time.Time
	for {
		select {
		case <-r.done:
			return
		case <-r.kick:
			if r.maybeFlush(false) {
				timer = nil
			} else if r.pendingCount() > 0 && timer == nil {
				timer = time.After(r.window)
			}
		case <-timer:
			timer = nil
			r.maybeFlush(true)
		}
	}
}

// pendingCount reports how many uploads are parked.
func (r *Relay) pendingCount() int {
	r.gather.mu.Lock()
	defer r.gather.mu.Unlock()
	return len(r.gather.pending)
}

// maybeFlush sends the parked uploads upstream when the shard is
// complete (every live link contributed) or when forced (window expiry,
// shutdown). Reports whether the gatherer is now empty.
func (r *Relay) maybeFlush(force bool) bool {
	r.mu.Lock()
	target := r.live
	r.mu.Unlock()
	r.gather.mu.Lock()
	if len(r.gather.pending) == 0 {
		r.gather.mu.Unlock()
		return true
	}
	if !force && len(r.gather.pending) < target {
		r.gather.mu.Unlock()
		return false
	}
	batch := r.gather.pending
	r.gather.pending = nil
	r.gather.mu.Unlock()
	r.sendBatch(batch)
	return true
}

// sendBatch forwards one gathered batch: a single upload goes out as the
// plain frame it arrived as; several combine into one Gather frame on
// the first upload's upstream leg. If that leg is gone, each remaining
// upload falls back to its own leg — a vehicle whose leg also died is
// indistinguishable from a crashed vehicle, which the fusion centre's
// straggler handling already covers.
func (r *Relay) sendBatch(batch []parkedUpload) {
	if len(batch) == 1 {
		p := batch[0]
		if err := sendFlush(p.up, &protocol.Message{Upload: p.u}); err != nil {
			_ = p.up.Close()
		}
		return
	}
	uploads := make([]protocol.Upload, len(batch))
	for i, p := range batch {
		uploads[i] = *p.u
	}
	err := sendFlush(batch[0].up, &protocol.Message{Gather: &protocol.Gather{Uploads: uploads}})
	if err == nil {
		if r.obs != nil {
			r.cGathers.Inc()
			r.cGathered.Add(int64(len(batch)))
			r.obs.Emit("relay.gather", obs.F("uploads", len(batch)))
		}
		return
	}
	_ = batch[0].up.Close()
	for _, p := range batch[1:] {
		if err := sendFlush(p.up, &protocol.Message{Upload: p.u}); err != nil {
			_ = p.up.Close()
		}
	}
}

// Close stops accepting and tears down every proxied connection, first
// draining the gatherer and deterministically flushing every leg's send
// buffer — frames the relay accepted are on the wire before any
// connection is torn down, rather than best-effort lost in the close
// race.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	links := append([]*relayLink(nil), r.links...)
	r.mu.Unlock()
	err := r.listener.Close()
	// Drain parked uploads before any leg closes.
	r.maybeFlush(true)
	for _, link := range links {
		_ = transport.Flush(link.up)
		_ = transport.Flush(link.down)
	}
	close(r.done)
	for _, link := range links {
		_ = link.up.Close()
		_ = link.down.Close()
	}
	r.wg.Wait()
	return err
}
