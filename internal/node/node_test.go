package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// session builds a complete distributed scenario over the given fabric.
type session struct {
	server  *Server
	conns   []transport.Conn // fusion-centre side
	clients []ClientConfig
	vconns  []transport.Conn // vehicle side
	test    *traffic.Dataset
}

func buildSession(t *testing.T, vehicles, rounds int, maliciousFrac float64) *session {
	t.Helper()
	return buildSessionObs(t, vehicles, rounds, maliciousFrac, nil)
}

// buildSessionObs is buildSession with an observability handle attached
// to the server and every fusion-centre connection (nil = plain session).
func buildSessionObs(t *testing.T, vehicles, rounds int, maliciousFrac float64, o *obs.Obs) *session {
	t.Helper()
	return buildSessionFull(t, vehicles, rounds, maliciousFrac, o, 0)
}

// buildSessionFull additionally pins the scheme's worker count (0 =
// GOMAXPROCS) — the chaos determinism tests sweep it. It takes a
// testing.TB so the round-engine benchmarks can reuse it.
func buildSessionFull(t testing.TB, vehicles, rounds int, maliciousFrac float64, o *obs.Obs, workers int) *session {
	t.Helper()
	ds, err := traffic.Generate(traffic.GenConfig{Rows: 1200, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 22)
	if err != nil {
		t.Fatal(err)
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: 8 * 24, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	refX := refDS.Features()
	parts, err := train.PartitionIID(vehicles, 24)
	if err != nil {
		t.Fatal(err)
	}
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(ServerConfig{
		FL: fl.Config{
			InputSize:     traffic.NumFeatures,
			LocalEpochs:   5,
			LocalRate:     0.2,
			DistillEpochs: 20,
			DistillRate:   0.2,
			ServerStep:    0.5,
			Seed:          25,
		},
		Scheme: core.SchemeConfig{
			NumVehicles: vehicles, NumBatches: 8, Degree: 1, Seed: 26,
			Workers: workers,
		},
		RefX:             refX,
		ActivationCoeffs: p,
		Rounds:           rounds,
		RoundTimeout:     10 * time.Second,
		Obs:              o,
	})
	if err != nil {
		t.Fatal(err)
	}
	var plan *adversary.Plan
	if maliciousFrac > 0 {
		plan, err = adversary.NewPlan(vehicles, maliciousFrac, adversary.ConstantLie{Value: 5}, 27)
		if err != nil {
			t.Fatal(err)
		}
	}
	s := &session{server: server, test: test}
	for i := 0; i < vehicles; i++ {
		server_side, vehicle_side := transport.Pipe()
		s.conns = append(s.conns, transport.Instrument(server_side, o, fmt.Sprintf("conn-%d", i)))
		s.vconns = append(s.vconns, vehicle_side)
		cc := ClientConfig{VehicleID: i, Data: parts[i], Seed: int64(100 + i)}
		if plan != nil && plan.IsMalicious(i) {
			cc.Corrupt = adversary.ConstantLie{Value: 5}
		}
		s.clients = append(s.clients, cc)
	}
	return s
}

// run executes the whole session and returns the server report.
func (s *session) run(t *testing.T) *Report {
	t.Helper()
	var wg sync.WaitGroup
	for i := range s.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := RunVehicle(s.vconns[i], s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i)
	}
	report, err := s.server.Run(s.conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return report
}

func TestDistributedHonestSession(t *testing.T) {
	s := buildSession(t, 20, 10, 0)
	report := s.run(t)
	if report.Rounds != 10 {
		t.Errorf("rounds = %d", report.Rounds)
	}
	if len(report.SuspectedMalicious) != 0 {
		t.Errorf("honest session flagged %v", report.SuspectedMalicious)
	}
	if report.Stragglers != 0 {
		t.Errorf("stragglers = %d", report.Stragglers)
	}
	acc, err := fl.ModelAccuracy(s.server.Shared(), s.test.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("distributed session accuracy %g — not learning", acc)
	}
}

func TestDistributedMaliciousSession(t *testing.T) {
	s := buildSession(t, 20, 4, 0.25) // 5 malicious, budget (20-8)/2 = 6
	report := s.run(t)
	if report.Rounds != 4 {
		t.Errorf("rounds = %d", report.Rounds)
	}
	flagged := map[int]bool{}
	for _, id := range report.SuspectedMalicious {
		flagged[id] = true
	}
	want := 0
	for i := range s.clients {
		if s.clients[i].Corrupt != nil {
			want++
			if !flagged[i] {
				t.Errorf("malicious vehicle %d not flagged", i)
			}
		}
	}
	if len(flagged) != want {
		t.Errorf("flagged %d vehicles, want %d", len(flagged), want)
	}
}

func TestDistributedOverTCP(t *testing.T) {
	s := buildSession(t, 10, 3, 0)
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Replace the pipes with real TCP connections.
	serverConns := make([]transport.Conn, len(s.clients))
	accepted := make(chan transport.Conn, len(s.clients))
	go func() {
		for range s.clients {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	var wg sync.WaitGroup
	for i := range s.clients {
		conn, err := transport.DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			if err := RunVehicle(conn, s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i, conn)
	}
	for i := range serverConns {
		select {
		case serverConns[i] = <-accepted:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out accepting vehicles")
		}
	}
	report, err := s.server.Run(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != 3 {
		t.Errorf("rounds = %d", report.Rounds)
	}
}

func TestServerValidation(t *testing.T) {
	refX := make([][]float64, 8)
	for i := range refX {
		refX[i] = make([]float64, traffic.NumFeatures)
	}
	base := ServerConfig{
		FL:               fl.Config{InputSize: traffic.NumFeatures, LocalEpochs: 1, LocalRate: 0.1, DistillEpochs: 1, DistillRate: 0.1},
		Scheme:           core.SchemeConfig{NumVehicles: 10, NumBatches: 8, Degree: 1},
		RefX:             refX,
		ActivationCoeffs: []float64{0, 0.5},
		Rounds:           1,
	}
	cfg := base
	cfg.Rounds = 0
	if _, err := NewServer(cfg); err == nil {
		t.Error("zero rounds accepted")
	}
	cfg = base
	cfg.ActivationCoeffs = nil
	if _, err := NewServer(cfg); err == nil {
		t.Error("missing activation accepted")
	}
	srv, err := NewServer(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(nil); err == nil {
		t.Error("wrong connection count accepted")
	}
}

func TestRunVehicleValidation(t *testing.T) {
	a, _ := transport.Pipe()
	if err := RunVehicle(a, ClientConfig{VehicleID: 0}); err == nil {
		t.Error("vehicle with no data accepted")
	}
	_ = nn.Sample{}
}

// silentVehicle handshakes and then never uploads — a permanent straggler.
func silentVehicle(t *testing.T, conn transport.Conn, id int) {
	t.Helper()
	if err := conn.Send(&protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: id}}); err != nil {
		t.Errorf("silent vehicle hello: %v", err)
		return
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		if m.Finished != nil {
			return
		}
		// Swallow Setup and Broadcasts without ever answering.
	}
}

func TestDistributedStragglerTimeout(t *testing.T) {
	s := buildSession(t, 20, 3, 0)
	// Shorten the timeout so the silent vehicle doesn't stall the test —
	// but not below what a loaded 1-core -race run needs for the honest
	// uploads, or they'd be miscounted as stragglers too.
	s.server.cfg.RoundTimeout = time.Second

	var wg sync.WaitGroup
	for i := range s.clients {
		wg.Add(1)
		if i == 5 {
			go func(i int) {
				defer wg.Done()
				silentVehicle(t, s.vconns[i], i)
			}(i)
			continue
		}
		go func(i int) {
			defer wg.Done()
			if err := RunVehicle(s.vconns[i], s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i)
	}
	report, err := s.server.Run(s.conns)
	if err != nil {
		t.Fatal(err)
	}
	if report.Rounds != 3 {
		t.Errorf("rounds = %d", report.Rounds)
	}
	// The silent vehicle is a straggler every round; the coded
	// aggregation must not flag it as malicious (absence is not a lie).
	if report.Stragglers != 3 {
		t.Errorf("stragglers = %d, want 3", report.Stragglers)
	}
	if len(report.SuspectedMalicious) != 0 {
		t.Errorf("straggler flagged as malicious: %v", report.SuspectedMalicious)
	}
	// Unblock the silent vehicle's Recv loop.
	for i := range s.conns {
		s.conns[i].Close()
	}
	wg.Wait()
}

func TestDistributedVehicleCrashMidSession(t *testing.T) {
	s := buildSession(t, 20, 3, 0)
	s.server.cfg.RoundTimeout = 300 * time.Millisecond
	var wg sync.WaitGroup
	for i := range s.clients {
		wg.Add(1)
		if i == 7 {
			// Crashes after the handshake + first broadcast.
			go func(i int) {
				defer wg.Done()
				conn := s.vconns[i]
				if err := conn.Send(&protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: i}}); err != nil {
					t.Errorf("crasher hello: %v", err)
					return
				}
				if _, err := conn.Recv(); err != nil { // Setup
					return
				}
				if _, err := conn.Recv(); err != nil { // Broadcast round 1
					return
				}
				conn.Close()
			}(i)
			continue
		}
		go func(i int) {
			defer wg.Done()
			if err := RunVehicle(s.vconns[i], s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i)
	}
	report, err := s.server.Run(s.conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 despite the crashed vehicle", report.Rounds)
	}
}
