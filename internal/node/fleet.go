package node

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// FleetConfig parameterises a multi-session fusion centre (DESIGN §16).
type FleetConfig struct {
	// Sessions maps session ID to that session's fusion-centre config.
	// Every session runs its own Server — own scheme, own model, own
	// round engine — behind the one shared listener.
	Sessions map[string]ServerConfig
	// DefaultSession names the session joined by a hello without a
	// session ID (every v<=4 vehicle, plus v5 vehicles that omit it).
	// Empty means such hellos are rejected.
	DefaultSession string
	// MaxConns is the global connection budget. The fleet reserves it in
	// session-sized chunks: a session only begins gathering connections
	// once MaxConns has room for its full vehicle complement, so a
	// half-gathered session can never starve the sessions ahead of it
	// into a deadlock. 0 disables the budget.
	MaxConns int
	// QueueDepth bounds the admission queue: connections whose session
	// holds no budget reservation park here (answered with an explicit
	// Admission{Queued}) until a completing session frees its chunk.
	// 0 disables queueing — such connections are rejected with the
	// retry hint instead.
	QueueDepth int
	// HandshakeTimeout bounds how long an accepted connection may sit
	// silent before its hello arrives (default 10 s) — a dialer that
	// never speaks cannot pin an accept slot.
	HandshakeTimeout time.Duration
	// Obs attaches the observability layer: fleet.* counters, gauges and
	// events, inherited by every session whose ServerConfig.Obs is nil.
	Obs *obs.Obs
}

// SessionResult is one session's outcome after the fleet finishes.
type SessionResult struct {
	ID     string
	Report *Report
	Err    error
}

// sessionState is the lifecycle of one fleet session.
type sessionState int

const (
	// sessionGathering: waiting for the full vehicle complement.
	sessionGathering sessionState = iota
	// sessionRunning: Server.Run is live; new conns are rejoins.
	sessionRunning
	// sessionDone: finished (or failed); reconnects answered Finished.
	sessionDone
)

func (s sessionState) String() string {
	switch s {
	case sessionGathering:
		return "gathering"
	case sessionRunning:
		return "running"
	case sessionDone:
		return "done"
	}
	return "unknown"
}

// fleetSession is one session's mutable record. All fields below the
// config are guarded by the owning Fleet's mu.
type fleetSession struct {
	id     string
	srv    *Server
	expect int // vehicle complement (Scheme.NumVehicles)

	state    sessionState           // mutable only under the owning Fleet's mu
	reserved bool                   // holds a MaxConns chunk; owned by the Fleet's mu
	conns    map[int]transport.Conn // latest conn per vehicle; owned by the Fleet's mu
	report   *Report                // set at completion under the Fleet's mu
	err      error                  // set at completion under the Fleet's mu
}

// pendingConn is a handshaked connection parked in the admission queue.
type pendingConn struct {
	conn  transport.Conn
	hello *protocol.Hello
	ver   int
}

// Fleet runs many concurrent FL sessions behind one listener: session
// routing keyed off the Hello handshake, admission control with explicit
// queue/reject answers, and a global connection budget reserved in
// session-sized chunks so a slow session cannot starve its neighbours
// (DESIGN §16).
type Fleet struct {
	cfg FleetConfig
	ids []string // session IDs, sorted once for deterministic sweeps

	mu        sync.Mutex // guards sessions' mutable fields, listener, committed, live, queue, closed, remaining, and the ledger tallies
	sessions  map[string]*fleetSession
	listener  transport.Listener // guarded by mu; set by Serve
	committed int                // guarded by mu — budget slots reserved by sessions
	live      int                // guarded by mu — open admitted connections
	queue     []pendingConn      // guarded by mu — bounded admission queue
	closed    bool               // guarded by mu
	serving   bool               // guarded by mu — Serve is single-shot
	remaining int                // guarded by mu — sessions not yet done

	// Ledger tallies, guarded by mu; mirrored to the counters below so
	// Status works with observability disabled.
	admitted, rejected, queuedTotal int

	allDone chan struct{} // closed when the last session completes
	wg      sync.WaitGroup

	// Observability handles, resolved once in NewFleet.
	obs        *obs.Obs
	cAdmitted  *obs.Counter
	cRejected  *obs.Counter
	cQueued    *obs.Counter
	cStarted   *obs.Counter
	cDone      *obs.Counter
	cHandshake *obs.Counter
	gLive      *obs.Gauge
	gActive    *obs.Gauge
	gQueue     *obs.Gauge
}

// NewFleet validates the topology and builds every session's Server up
// front, so configuration errors surface before the listener opens.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Sessions) == 0 {
		return nil, fmt.Errorf("node: fleet needs at least one session")
	}
	if cfg.DefaultSession != "" {
		if _, ok := cfg.Sessions[cfg.DefaultSession]; !ok {
			return nil, fmt.Errorf("node: default session %q not configured", cfg.DefaultSession)
		}
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("node: queue depth %d must be >= 0", cfg.QueueDepth)
	}
	ids := make([]string, 0, len(cfg.Sessions))
	for id := range cfg.Sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	f := &Fleet{
		cfg:       cfg,
		ids:       ids,
		sessions:  make(map[string]*fleetSession, len(ids)),
		remaining: len(ids),
		allDone:   make(chan struct{}),
	}
	for _, id := range ids {
		scfg := cfg.Sessions[id]
		if scfg.Obs == nil {
			scfg.Obs = cfg.Obs
		}
		srv, err := NewServer(scfg)
		if err != nil {
			return nil, fmt.Errorf("node: session %q: %w", id, err)
		}
		expect := scfg.Scheme.NumVehicles
		if cfg.MaxConns > 0 && expect > cfg.MaxConns {
			return nil, fmt.Errorf("node: session %q needs %d connections, budget is %d", id, expect, cfg.MaxConns)
		}
		f.sessions[id] = &fleetSession{
			id:     id,
			srv:    srv,
			expect: expect,
			conns:  make(map[int]transport.Conn, expect),
		}
	}
	if cfg.Obs.Enabled() {
		f.obs = cfg.Obs
		f.cAdmitted = cfg.Obs.Counter("fleet.admitted")
		f.cRejected = cfg.Obs.Counter("fleet.rejected")
		f.cQueued = cfg.Obs.Counter("fleet.queued")
		f.cStarted = cfg.Obs.Counter("fleet.sessions_started")
		f.cDone = cfg.Obs.Counter("fleet.sessions_done")
		f.cHandshake = cfg.Obs.Counter("fleet.handshake_fails")
		f.gLive = cfg.Obs.Gauge("fleet.live_conns")
		f.gActive = cfg.Obs.Gauge("fleet.active_sessions")
		f.gQueue = cfg.Obs.Gauge("fleet.queue_depth")
	}
	return f, nil
}

// Serve accepts and routes connections until every session completes (it
// then closes the listener itself) or Close is called. Each accepted
// connection handshakes on its own goroutine under HandshakeTimeout, so
// a silent dialer never blocks the accept loop. Serve blocks until the
// fleet is fully drained; it is single-shot.
func (f *Fleet) Serve(l transport.Listener) error {
	f.mu.Lock()
	if f.serving {
		f.mu.Unlock()
		return fmt.Errorf("node: fleet already serving")
	}
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("node: fleet closed")
	}
	f.serving = true
	f.listener = l
	f.mu.Unlock()
	// When the last session completes the fleet shuts its own listener,
	// unblocking the accept loop below.
	go func() {
		<-f.allDone
		_ = f.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			break
		}
		f.wg.Add(1)
		go f.handshake(conn)
	}
	f.wg.Wait()
	f.drainQueue()
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if !closed {
		return fmt.Errorf("node: fleet listener failed")
	}
	return nil
}

// handshake reads one connection's hello under the timeout and admits it.
func (f *Fleet) handshake(conn transport.Conn) {
	defer f.wg.Done()
	type helloResult struct {
		h   *protocol.Hello
		ver int
		err error
	}
	ch := make(chan helloResult, 1)
	go func() {
		h, ver, err := recvHello(conn)
		ch <- helloResult{h, ver, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			f.noteHandshakeFail(r.err)
			_ = conn.Close()
			return
		}
		f.admit(conn, r.h, r.ver)
	case <-time.After(f.cfg.HandshakeTimeout):
		// Closing the conn unblocks the reader goroutine's Recv.
		f.noteHandshakeFail(fmt.Errorf("node: hello timeout"))
		_ = conn.Close()
	}
}

func (f *Fleet) noteHandshakeFail(err error) {
	if f.obs == nil {
		return
	}
	f.cHandshake.Inc()
	f.obs.Emit("fleet.handshake_fail", obs.F("error", err.Error()))
}

// admitDecision is what admit resolved to while holding the lock; the
// I/O that answers the peer happens after release so a slow connection
// never stalls the fleet.
type admitDecision int

const (
	decideDrop admitDecision = iota
	decideReject
	decideQueue
	decideFinished
	decideGather
	decideRejoin
)

// admit routes a handshaked connection: to its session (gathering or as
// a rejoin), into the admission queue, or to an explicit rejection. It
// re-runs for queued connections when a completing session frees budget.
func (f *Fleet) admit(conn transport.Conn, h *protocol.Hello, ver int) {
	f.mu.Lock()
	id := h.SessionID
	if id == "" {
		id = f.cfg.DefaultSession
	}
	sess := f.sessions[id]
	decision := decideDrop
	reason := ""
	retry := false
	finRounds := 0
	var start *fleetSession
	var rejoinConn, evicted transport.Conn
	switch {
	case f.closed:
		decision, reason = decideReject, "fleet shutting down"
	case sess == nil:
		decision, reason = decideReject, fmt.Sprintf("unknown session %q", id)
	case sess.state == sessionDone:
		decision = decideFinished
		if sess.report != nil {
			finRounds = sess.report.Rounds
		}
	case h.VehicleID < 0 || h.VehicleID >= sess.expect:
		decision, reason = decideReject, fmt.Sprintf("vehicle ID %d out of range for session %q", h.VehicleID, id)
	case sess.state == sessionRunning:
		decision = decideRejoin
	default: // gathering
		if _, dup := sess.conns[h.VehicleID]; dup {
			decision, reason = decideReject, fmt.Sprintf("vehicle %d already connected to session %q", h.VehicleID, id)
			break
		}
		// Commit the session's full connection complement against the
		// global budget in one chunk. Chunked reservation is what makes
		// admission deadlock-free: gathering sessions never hold partial
		// claims that starve each other, so every reserved session can
		// always fill and run to completion.
		if !sess.reserved && f.cfg.MaxConns > 0 && f.committed+sess.expect > f.cfg.MaxConns {
			if len(f.queue) < f.cfg.QueueDepth {
				f.queue = append(f.queue, pendingConn{conn: conn, hello: h, ver: ver})
				f.queuedTotal++
				decision = decideQueue
			} else {
				decision, reason, retry = decideReject, "fleet at connection budget", true
			}
			break
		}
		if !sess.reserved {
			sess.reserved = true
			f.committed += sess.expect
		}
		decision = decideGather
		f.live++
		f.admitted++
		wrapped := f.wrap(h, conn)
		sess.conns[h.VehicleID] = wrapped
		if len(sess.conns) == sess.expect {
			sess.state = sessionRunning
			start = sess
		}
	}
	if decision == decideRejoin {
		f.live++
		f.admitted++
		rejoinConn = f.wrap(h, conn)
		// Close the replaced conn ourselves: the engine's rejoin handler
		// also does, but a rejoin that races session completion is answered
		// Finished without ever reaching it, and the evicted conn would
		// otherwise hold a live slot forever.
		evicted = sess.conns[h.VehicleID]
		sess.conns[h.VehicleID] = rejoinConn
	}
	if decision == decideReject {
		f.rejected++
	}
	f.updateGauges(f.live, len(f.queue))
	f.mu.Unlock()

	switch decision {
	case decideReject:
		f.sendReject(conn, ver, reason, retry)
		if f.obs != nil {
			f.cRejected.Inc()
			f.obs.Emit("fleet.reject",
				obs.F("session", id),
				obs.F("vehicle", h.VehicleID),
				obs.F("reason", reason),
				obs.F("retry", retry))
		}
	case decideQueue:
		if f.obs != nil {
			f.cQueued.Inc()
			f.obs.Emit("fleet.queue", obs.F("session", id), obs.F("vehicle", h.VehicleID))
		}
		// Only v5 peers understand the explicit queue answer; older ones
		// simply wait silently for Setup, which is also correct.
		if ver >= protocol.FleetVersion {
			_ = sendFlush(conn, &protocol.Message{Admission: &protocol.Admission{
				Queued: true, Reason: "fleet at connection budget",
			}})
		}
	case decideFinished:
		_ = sendFlush(conn, &protocol.Message{Finished: &protocol.Finished{Rounds: finRounds}})
		_ = conn.Close()
	case decideGather, decideRejoin:
		if f.obs != nil {
			f.cAdmitted.Inc()
			f.obs.Emit("fleet.admit",
				obs.F("session", id),
				obs.F("vehicle", h.VehicleID),
				obs.F("version", ver),
				obs.F("rejoin", decision == decideRejoin))
		}
		if decision == decideRejoin {
			if evicted != nil {
				_ = evicted.Close()
			}
			sess.srv.Rejoin(rejoinConn)
		}
		if start != nil {
			f.startSession(start)
		}
	case decideDrop:
		_ = conn.Close()
	}
}

// wrap builds the connection the session engine sees: the consumed hello
// replayed ahead of the live stream, and the fleet's live-connection
// ledger decremented exactly once on close.
func (f *Fleet) wrap(h *protocol.Hello, conn transport.Conn) transport.Conn {
	return transport.Replay(&protocol.Message{Hello: h}, conn, func() {
		f.mu.Lock()
		f.live--
		f.updateGauges(f.live, len(f.queue))
		f.mu.Unlock()
	})
}

// sendReject answers a rejected handshake in the newest dialect the peer
// speaks: an Admission with the retry hint at v5, the Error message every
// older revision already handles otherwise.
func (f *Fleet) sendReject(conn transport.Conn, ver int, reason string, retry bool) {
	if ver >= protocol.FleetVersion {
		_ = sendFlush(conn, &protocol.Message{Admission: &protocol.Admission{Reason: reason, Retry: retry}})
	} else {
		_ = sendFlush(conn, &protocol.Message{Error: &protocol.Error{Reason: reason}})
	}
	_ = conn.Close()
}

// startSession launches a full session's Server.Run on its own
// goroutine and settles the fleet ledger when it returns.
func (f *Fleet) startSession(sess *fleetSession) {
	f.mu.Lock()
	conns := make([]transport.Conn, 0, sess.expect)
	for _, vid := range sortedVehicleIDs(sess.conns) {
		conns = append(conns, sess.conns[vid])
	}
	f.mu.Unlock()
	if f.obs != nil {
		f.cStarted.Inc()
		f.obs.Emit("fleet.session_start",
			obs.F("session", sess.id),
			obs.F("vehicles", sess.expect))
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		report, err := sess.srv.Run(conns)
		f.mu.Lock()
		sess.state = sessionDone
		sess.report, sess.err = report, err
		// Close every connection still tracked (rejoins included): slots
		// release via the wrap hooks, then the session's budget chunk.
		open := make([]transport.Conn, 0, len(sess.conns))
		for _, vid := range sortedVehicleIDs(sess.conns) {
			open = append(open, sess.conns[vid])
		}
		f.mu.Unlock()
		for _, c := range open {
			_ = c.Close()
		}
		f.mu.Lock()
		if sess.reserved {
			sess.reserved = false
			f.committed -= sess.expect
		}
		f.remaining--
		last := f.remaining == 0
		f.updateGauges(f.live, len(f.queue))
		f.mu.Unlock()
		if f.obs != nil {
			f.cDone.Inc()
			fields := []obs.Field{obs.F("session", sess.id)}
			if err != nil {
				fields = append(fields, obs.F("error", err.Error()))
			} else {
				fields = append(fields, obs.F("rounds", report.Rounds))
			}
			f.obs.Emit("fleet.session_done", fields...)
		}
		// Freed budget: give parked connections another pass.
		f.drainQueue()
		if last {
			close(f.allDone)
		}
	}()
}

// drainQueue re-admits every parked connection once. Connections whose
// session still holds no reservation simply park again (the queue is
// bounded, so this converges), and connections for completed sessions
// are answered with Finished.
func (f *Fleet) drainQueue() {
	f.mu.Lock()
	parked := f.queue
	f.queue = nil
	f.updateGauges(f.live, 0)
	f.mu.Unlock()
	for _, p := range parked {
		f.admit(p.conn, p.hello, p.ver)
	}
}

// updateGauges refreshes the fleet gauges from a snapshot the caller
// took under mu (it also sweeps session states, so callers hold mu).
func (f *Fleet) updateGauges(live, queued int) {
	if f.obs == nil {
		return
	}
	f.gLive.Set(int64(live))
	f.gQueue.Set(int64(queued))
	active := 0
	for _, id := range f.ids {
		if f.sessions[id].state == sessionRunning {
			active++
		}
	}
	f.gActive.Set(int64(active))
}

// Close shuts the listener and rejects every parked connection; running
// sessions finish on their own (their connections are already admitted).
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	l := f.listener
	parked := f.queue
	f.queue = nil
	f.updateGauges(f.live, 0)
	f.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, p := range parked {
		f.sendReject(p.conn, p.ver, "fleet shutting down", true)
	}
	return err
}

// Results returns every session's outcome; sessions still gathering or
// running report a nil Report and nil Err. Keyed by session ID.
func (f *Fleet) Results() map[string]SessionResult {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]SessionResult, len(f.ids))
	for _, id := range f.ids {
		sess := f.sessions[id]
		out[id] = SessionResult{ID: id, Report: sess.report, Err: sess.err}
	}
	return out
}

// FleetSessionStatus is one session's row in the fleet snapshot.
type FleetSessionStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Vehicles  int    `json:"vehicles"`
	Connected int    `json:"connected"`
	Reserved  bool   `json:"reserved"`
	// Engine is the session's live round-engine snapshot (meaningful
	// once the session is running).
	Engine Status `json:"engine"`
}

// FleetStatus is a point-in-time snapshot of the whole fleet, served by
// the debugz introspection plane (/sessionz).
type FleetStatus struct {
	// Live and Committed count open admitted connections and
	// budget-reserved slots; MaxConns echoes the configured budget.
	Live      int `json:"live_conns"`
	Committed int `json:"committed_conns"`
	MaxConns  int `json:"max_conns"`
	// Queued is the current admission-queue depth; the ledger tallies
	// below are cumulative.
	Queued      int `json:"queued"`
	Admitted    int `json:"admitted_total"`
	Rejected    int `json:"rejected_total"`
	QueuedTotal int `json:"queued_total"`
	// Sessions lists every session sorted by ID.
	Sessions []FleetSessionStatus `json:"sessions"`
}

// Status returns the fleet snapshot. Safe from any goroutine while the
// fleet serves — the debugz /sessionz handler calls it on HTTP
// goroutines.
func (f *Fleet) Status() FleetStatus {
	f.mu.Lock()
	st := FleetStatus{
		Live:        f.live,
		Committed:   f.committed,
		MaxConns:    f.cfg.MaxConns,
		Queued:      len(f.queue),
		Admitted:    f.admitted,
		Rejected:    f.rejected,
		QueuedTotal: f.queuedTotal,
	}
	type row struct {
		sess      *fleetSession
		connected int
		state     sessionState
		reserved  bool
	}
	rows := make([]row, 0, len(f.ids))
	for _, id := range f.ids {
		sess := f.sessions[id]
		rows = append(rows, row{sess: sess, connected: len(sess.conns), state: sess.state, reserved: sess.reserved})
	}
	f.mu.Unlock()
	// Engine snapshots take each Server's own status lock; resolved
	// outside the fleet lock to keep lock ordering trivial.
	for _, r := range rows {
		st.Sessions = append(st.Sessions, FleetSessionStatus{
			ID:        r.sess.id,
			State:     r.state.String(),
			Vehicles:  r.sess.expect,
			Connected: r.connected,
			Reserved:  r.reserved,
			Engine:    r.sess.srv.Status(),
		})
	}
	return st
}

// Session exposes one session's Server (for evaluation after the fleet
// finishes); nil when the ID is unknown.
func (f *Fleet) Session(id string) *Server {
	sess := f.sessions[id]
	if sess == nil {
		return nil
	}
	return sess.srv
}
