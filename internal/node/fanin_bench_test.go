package node

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// The fleet fan-in benchmark trio measures end-to-end session latency
// for one 16-vehicle session under three upload topologies:
//
//	mode=flat   — every vehicle holds its own direct leg to the fusion
//	              centre (the pre-relay deployment).
//	mode=relay  — vehicles dial two edge relays that forward every frame
//	              as-is (gathering disabled), paying the extra hop.
//	mode=gather — the same tree, but each relay combines its shard's
//	              uploads into one Gather frame per round burst.
//
// Gathering trades per-frame upstream overhead for a parked-upload
// window, and because the engine waits for the full fleet each round the
// window should cost ~nothing: the shard's last upload releases the
// batch exactly when the round needed it. scripts/bench.sh runs the trio
// as the "fleet" suite and benchreport derives fleet_gather_vs_relay
// (relay ns / gather ns) from the matched pair, gating that gathering
// never collapses fan-in latency.
const (
	fanInVehicles = 16
	fanInRounds   = 2
	fanInShards   = 2
)

func benchFanIn(b *testing.B, shards int, window time.Duration) {
	cfgs, clients := soakScenario(b, []string{"s0"}, fanInVehicles, fanInRounds, 1)
	cfg, cc := cfgs["s0"], clients["s0"]
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := NewServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ufab := transport.NewPipeFabric(fanInVehicles)
		var relays []*Relay
		var dials []func() (transport.Conn, error)
		serveErr := make(chan error, shards)
		for k := 0; k < shards; k++ {
			rfab := transport.NewPipeFabric(0)
			relay, err := NewRelayWith(RelayConfig{Listener: rfab, Dial: ufab.Dial, GatherWindow: window})
			if err != nil {
				b.Fatal(err)
			}
			relays = append(relays, relay)
			go func() { serveErr <- relay.Serve() }()
			dials = append(dials, rfab.Dial)
		}
		b.StartTimer()

		var wg sync.WaitGroup
		for v := range cc {
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				dial := ufab.Dial
				if shards > 0 {
					dial = dials[v%shards]
				}
				conn, err := dial()
				if err != nil {
					b.Errorf("vehicle %d dial: %v", v, err)
					return
				}
				defer conn.Close()
				if err := RunVehicle(conn, cc[v]); err != nil {
					b.Errorf("vehicle %d: %v", v, err)
				}
			}(v)
		}
		conns := make([]transport.Conn, fanInVehicles)
		for v := range conns {
			c, err := ufab.Accept()
			if err != nil {
				b.Fatal(err)
			}
			conns[v] = c
		}
		report, err := srv.Run(conns)
		if err != nil {
			b.Fatal(err)
		}
		wg.Wait()

		b.StopTimer()
		for _, r := range relays {
			_ = r.Close()
		}
		for range relays {
			if err := <-serveErr; err != nil {
				b.Fatal(err)
			}
		}
		_ = ufab.Close()
		if report.Rounds != fanInRounds {
			b.Fatalf("rounds = %d, want %d", report.Rounds, fanInRounds)
		}
		b.StartTimer()
	}
}

func BenchmarkFleetFanIn(b *testing.B) {
	b.Run("mode=flat", func(b *testing.B) { benchFanIn(b, 0, 0) })
	b.Run("mode=relay", func(b *testing.B) { benchFanIn(b, fanInShards, -1) })
	b.Run("mode=gather", func(b *testing.B) { benchFanIn(b, fanInShards, 0) })
}
