// Package node runs L-CoFL as an actual distributed system: a fusion
// centre process and vehicle processes exchanging protocol messages over
// a transport fabric (in-memory or TCP).
//
// The round structure mirrors package fl exactly — broadcast, local
// training (eq. 1), scheme upload, verified aggregation, distillation —
// but each vehicle holds only its own state and the fusion centre only
// the shared model, so the deployment is faithful to Fig. 1: vehicles
// never exchange raw data, and the fusion centre never sees local
// datasets. Vehicles rebuild the deterministic L-CoFL scheme from the
// Setup message, so their Lagrange-encoded shares match the fusion
// centre's without shipping any encoding matrices.
//
// The layer is chaos-hardened (DESIGN.md §11): a vehicle that misses a
// round deadline is a straggler, which the coded aggregation already
// tolerates; a corrupted upload frame (protocol.ErrCorruptFrame) prompts
// a bounded re-broadcast and the vehicle resends its cached upload
// without retraining, so recovery is bit-identical to the fault-free
// run; a crashed vehicle may reconnect through Server.Rejoin and resume
// the session; and a round left with fewer uploads than the RS recover
// threshold K degrades gracefully — the model holds still and the round
// is counted in Report.DegradedRounds — instead of failing the session.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fl"
	"repro/internal/latency"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/poly"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// ServerConfig parameterises the fusion centre.
type ServerConfig struct {
	// FL carries the learning hyperparameters (InputSize, rates, epochs).
	FL fl.Config
	// Scheme carries the L-CoFL coding parameters.
	Scheme core.SchemeConfig
	// RefX is the reference feature set (length a multiple of
	// Scheme.NumBatches).
	RefX [][]float64
	// ActivationCoeffs is the polynomial activation every participant
	// installs (paper §IV Step 2).
	ActivationCoeffs []float64
	// Rounds is the number of global rounds to run.
	Rounds int
	// RoundTimeout bounds how long the fusion centre waits for uploads
	// each round before treating missing vehicles as stragglers
	// (default 30 s).
	RoundTimeout time.Duration
	// MaxRetransmits bounds how many times per round a vehicle whose
	// upload frame arrived corrupted is prompted (by re-broadcast) to
	// resend it. 0 selects the default of 3; negative disables
	// retransmission, turning corrupted uploads into stragglers.
	MaxRetransmits int
	// DisablePipeline forces the legacy lock-step engine: no streaming
	// ingest into the incremental decoder, no early round closes, no
	// broadcast withholding. The pipelined engine produces bit-identical
	// FinalParams for any schedule, worker count and wire-version mix
	// (DESIGN.md §14, pinned by TestPipelineBitIdentical); the knob exists
	// for A/B benchmarks and as an escape hatch.
	DisablePipeline bool
	// WaitBudget sets how many uploads beyond the recover threshold K the
	// pipelined engine waits for before closing a round's collection
	// window. 0 (the default) waits for every live vehicle — close
	// conditions identical to lock-step; -1 closes at exactly K; n > 0
	// closes at K+n. Ignored under DisablePipeline.
	WaitBudget int
	// AdaptiveBudget derives the effective wait-budget per round from the
	// observed straggler distribution and flagged-vehicle count
	// (AdaptiveRedundancy), overriding WaitBudget. Ignored under
	// DisablePipeline.
	AdaptiveBudget bool
	// PipelineWindow bounds in-flight rounds for vehicles that fell
	// behind a budget-based early close: once a behind vehicle is more
	// than PipelineWindow rounds stale, its broadcasts are withheld
	// (latest only) until any upload proves it alive, keeping per-vehicle
	// buffered state flat. 0 selects the default of 2.
	PipelineWindow int
	// Obs attaches the observability layer to the fusion centre and (via
	// Scheme.Obs, unless the caller already set one) to its coding scheme.
	// Nil disables all instrumentation.
	Obs *obs.Obs
}

// defaultMaxRetransmits bounds corrupt-upload recovery per vehicle per
// round.
const defaultMaxRetransmits = 3

// defaultPipelineWindow bounds how many rounds a behind vehicle may lag
// before its broadcasts are withheld.
const defaultPipelineWindow = 2

// Report summarises a completed distributed session.
type Report struct {
	// Rounds is the number of completed rounds (degraded ones included).
	Rounds int
	// FinalParams is the shared model's final parameter vector.
	FinalParams []float64
	// SuspectedMalicious accumulates every vehicle flagged by the
	// verification channel in any round.
	SuspectedMalicious []int
	// Stragglers counts upload timeouts across all rounds.
	Stragglers int
	// RecvErrors counts per-connection receive failures across all
	// rounds — a vehicle whose connection broke mid-session shows up here
	// (and is treated as dead until it rejoins), not silently as a
	// straggler.
	RecvErrors int
	// CorruptFrames counts frames that failed their checksum
	// (protocol.ErrCorruptFrame) across all connections and rounds.
	CorruptFrames int
	// Retransmits counts corrupt-upload re-broadcast prompts.
	Retransmits int
	// Rejoins counts crashed vehicles revived through Server.Rejoin.
	Rejoins int
	// DegradedRounds counts rounds that ran with fewer than K uploads and
	// therefore skipped aggregation (the model held still).
	DegradedRounds int
}

// Server is the fusion centre.
type Server struct {
	cfg    ServerConfig
	shared *nn.Network
	scheme *core.Scheme

	// rejoin carries handshaked reconnections into Run's collect loop.
	rejoin chan rejoinReq

	mu        sync.Mutex // guards done and finRounds
	done      bool       // guarded by mu
	finRounds int        // guarded by mu

	// trace is the session trace ID every process joins
	// (obs.TraceIDFromSeed(Scheme.Seed)); zero with tracing off. Set
	// once at the top of Run, read only by the run goroutine.
	trace uint64

	statusMu sync.Mutex // guards status
	status   Status     // guarded by statusMu

	// Observability handles, resolved once in NewServer.
	obs         *obs.Obs
	cRecvErrors *obs.Counter
	cStragglers *obs.Counter
	cRoundsDone *obs.Counter
	cCorrupt    *obs.Counter
	cRetransmit *obs.Counter
	cRejoins    *obs.Counter
	cDegraded   *obs.Counter
	cEarlyClose *obs.Counter
}

// rejoinReq is a reconnected, handshaked vehicle awaiting revival.
type rejoinReq struct {
	id      int
	ver     int // negotiated wire version for this connection
	conn    transport.Conn
	helloNs int64 // server clock when the hello arrived (0 untraced)
}

// Status is a point-in-time snapshot of the round engine, served live by
// the debugz introspection plane (/roundz). All fields describe the
// moment of the call; Behind lists the vehicles currently outpaced by a
// budget close, sorted.
type Status struct {
	// Phase is handshake, collect, aggregate, or done.
	Phase string `json:"phase"`
	// Round is the current (1-based) round; Rounds the configured total.
	Round  int `json:"round"`
	Rounds int `json:"rounds"`
	// RecoverK is the scheme's RS decode threshold K; BudgetTarget is
	// K + D for the round's effective wait budget D (0 = wait for all);
	// WaitBudget is that effective D (-1 = wait for all).
	RecoverK     int `json:"recover_k"`
	WaitBudget   int `json:"wait_budget"`
	BudgetTarget int `json:"budget_target"`
	// Arrived and Outstanding count this round's uploads landed and
	// still owed.
	Arrived     int `json:"arrived"`
	Outstanding int `json:"outstanding"`
	// PipelineWindow and AdaptiveBudget echo the engine config; Behind
	// lists vehicles outpaced by a budget close.
	PipelineWindow int   `json:"pipeline_window"`
	AdaptiveBudget bool  `json:"adaptive_budget"`
	Behind         []int `json:"behind,omitempty"`
	// Cumulative recovery tallies, mirroring the Report fields.
	Stragglers     int `json:"stragglers"`
	Rejoins        int `json:"rejoins"`
	DegradedRounds int `json:"degraded_rounds"`
	// TraceID is the session trace (empty with tracing off).
	TraceID string `json:"trace_id,omitempty"`
}

// Status returns the engine snapshot. Safe from any goroutine while Run
// executes — the debugz /roundz handler calls it on HTTP goroutines.
func (s *Server) Status() Status {
	s.statusMu.Lock()
	defer s.statusMu.Unlock()
	st := s.status
	st.Behind = append([]int(nil), s.status.Behind...)
	return st
}

// setStatus applies one mutation to the live status snapshot. The
// closure runs with statusMu held and must stay cheap.
func (s *Server) setStatus(mutate func(*Status)) {
	s.statusMu.Lock()
	mutate(&s.status)
	s.statusMu.Unlock()
}

// NewServer builds the shared model and the coding scheme.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("node: rounds %d must be >= 1", cfg.Rounds)
	}
	if len(cfg.ActivationCoeffs) < 2 {
		return nil, fmt.Errorf("node: polynomial activation coefficients required")
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	if cfg.MaxRetransmits == 0 {
		cfg.MaxRetransmits = defaultMaxRetransmits
	}
	if cfg.PipelineWindow == 0 {
		cfg.PipelineWindow = defaultPipelineWindow
	}
	if cfg.PipelineWindow < 0 {
		return nil, fmt.Errorf("node: pipeline window %d must be positive", cfg.PipelineWindow)
	}
	if cfg.WaitBudget < -1 {
		return nil, fmt.Errorf("node: wait budget %d outside {-1, 0, 1, ...}", cfg.WaitBudget)
	}
	act := approx.FromPolynomial("wire-poly", poly.NewReal(cfg.ActivationCoeffs...))
	sizes := append([]int{cfg.FL.InputSize}, cfg.FL.Hidden...)
	sizes = append(sizes, 1)
	shared, err := nn.New(nn.Config{LayerSizes: sizes, Activation: act, Seed: cfg.FL.Seed})
	if err != nil {
		return nil, fmt.Errorf("node: shared model: %w", err)
	}
	if cfg.Obs.Enabled() && cfg.Scheme.Obs == nil {
		cfg.Scheme.Obs = cfg.Obs
	}
	scheme, err := core.NewScheme(cfg.RefX, cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("node: scheme: %w", err)
	}
	srv := &Server{
		cfg:    cfg,
		shared: shared,
		scheme: scheme,
		rejoin: make(chan rejoinReq, 64),
	}
	if cfg.Obs.Enabled() {
		srv.obs = cfg.Obs
		srv.cRecvErrors = cfg.Obs.Counter("node.recv_errors")
		srv.cStragglers = cfg.Obs.Counter("node.stragglers")
		srv.cRoundsDone = cfg.Obs.Counter("node.rounds")
		srv.cCorrupt = cfg.Obs.Counter("node.corrupt_frames")
		srv.cRetransmit = cfg.Obs.Counter("node.retransmits")
		srv.cRejoins = cfg.Obs.Counter("node.rejoins")
		srv.cDegraded = cfg.Obs.Counter("node.degraded_rounds")
		srv.cEarlyClose = cfg.Obs.Counter("node.early_closes")
	}
	return srv, nil
}

// Shared exposes the fusion centre's model (for evaluation after Run).
func (s *Server) Shared() *nn.Network { return s.shared }

// Rejoin hands a reconnected vehicle's fusion-centre-side connection to
// the running session. It returns immediately; the handshake (hello)
// happens on a background goroutine and the revival — Setup resent, the
// current round's broadcast resent if an upload is owed — in Run's
// collect loop. A rejoin arriving after the session finished is answered
// with Finished and closed, so a retrying vehicle terminates cleanly.
func (s *Server) Rejoin(conn transport.Conn) {
	go func() {
		h, ver, err := readHello(conn, s.cfg.Scheme.NumVehicles)
		if err != nil {
			_ = conn.Close()
			return
		}
		var helloNs int64
		if s.obs.TraceEnabled() {
			helloNs = int64(s.obs.Now())
		}
		transport.SetWireVersion(conn, ver)
		s.mu.Lock()
		if !s.done {
			select {
			case s.rejoin <- rejoinReq{id: h.VehicleID, ver: ver, conn: conn, helloNs: helloNs}:
				s.mu.Unlock()
				return
			default: // queue full: treat as too-late
			}
		}
		fin := s.finRounds
		s.mu.Unlock()
		_ = conn.Send(&protocol.Message{Finished: &protocol.Finished{Rounds: fin}})
		_ = transport.Flush(conn)
		_ = conn.Close()
	}()
}

// finish marks the session over and answers any queued rejoins with
// Finished so late reconnectors terminate instead of hanging.
func (s *Server) finish(rounds int) {
	s.mu.Lock()
	s.done = true
	s.finRounds = rounds
	s.mu.Unlock()
	for {
		select {
		case req := <-s.rejoin:
			_ = req.conn.Send(&protocol.Message{Finished: &protocol.Finished{Rounds: rounds}})
			_ = transport.Flush(req.conn)
			_ = req.conn.Close()
		default:
			return
		}
	}
}

// minWireVersion is the oldest protocol revision the fusion centre still
// speaks: revision 2, the JSON-only encoding that predates the v3 binary
// bulk bodies.
const minWireVersion = 2

// recvHello consumes and version-validates a peer's opening hello,
// returning the hello itself and the negotiated wire version for the
// connection: min(our protocol.Version, the peer's announced revision).
// A peer older than revision 2 is rejected; a newer one is clamped down
// to ours. The vehicle-ID range is NOT checked here — a fleet routes the
// hello to a session first and validates the ID against that session's
// scheme (see readHello).
func recvHello(conn transport.Conn) (*protocol.Hello, int, error) {
	m, err := conn.Recv()
	if err != nil {
		return nil, 0, fmt.Errorf("node: hello: %w", err)
	}
	if m.Hello == nil {
		return nil, 0, fmt.Errorf("node: connection opened with %s, want hello", m.Kind())
	}
	if m.Hello.Version < minWireVersion {
		return nil, 0, fmt.Errorf("node: peer speaks version %d, want >= %d", m.Hello.Version, minWireVersion)
	}
	ver := m.Hello.Version
	if ver > protocol.Version {
		ver = protocol.Version
	}
	return m.Hello, ver, nil
}

// readHello is recvHello plus the single-session vehicle-ID range check.
func readHello(conn transport.Conn, vehicles int) (*protocol.Hello, int, error) {
	h, ver, err := recvHello(conn)
	if err != nil {
		return nil, 0, err
	}
	if id := h.VehicleID; id < 0 || id >= vehicles {
		return nil, 0, fmt.Errorf("node: vehicle ID %d out of range", id)
	}
	return h, ver, nil
}

// result is one event from a connection's receiver goroutine: an upload,
// a detected corrupt frame, or a terminal receive error. conn identifies
// the connection it came from, so errors from a connection that has
// already been replaced by a rejoin are discarded. gathered marks an
// upload unpacked from a relay's combined Gather frame — such uploads
// arrive on whichever shard connection the relay flushed, so the
// conn-identity staleness check does not apply to them.
type result struct {
	vehicleID int
	conn      transport.Conn
	round     int
	values    []float64
	span      string // propagated upload span ID ("" when absent)
	gathered  bool
	corrupt   bool
	err       error
}

// Run drives the session over the given connections (one per vehicle).
// It handshakes, configures every vehicle, executes the rounds, and sends
// Finished. Run blocks until the session completes.
func (s *Server) Run(conns []transport.Conn) (*Report, error) {
	v := s.cfg.Scheme.NumVehicles
	if len(conns) != v {
		return nil, fmt.Errorf("node: got %d connections, scheme expects %d vehicles", len(conns), v)
	}
	// The session trace every process joins is derived deterministically
	// from the scheme seed (DESIGN §15), so fusion centre and vehicles
	// agree on it even before the Setup message announces it.
	traced := s.obs.TraceEnabled()
	var traceHex string
	if traced {
		s.trace = obs.TraceIDFromSeed(s.cfg.Scheme.Seed)
		traceHex = obs.FormatID(s.trace)
	}
	s.setStatus(func(st *Status) {
		*st = Status{
			Phase:          "handshake",
			Rounds:         s.cfg.Rounds,
			RecoverK:       s.scheme.RecoverThreshold(),
			PipelineWindow: s.cfg.PipelineWindow,
			AdaptiveBudget: s.cfg.AdaptiveBudget,
			TraceID:        traceHex,
		}
	})
	// Handshake: map connections to vehicle IDs and negotiate each
	// connection's wire version from the peer's announced revision.
	byID := make(map[int]transport.Conn, v)
	vers := make(map[int]int, v)
	helloNs := make(map[int]int64, v)
	for i, conn := range conns {
		h, ver, err := readHello(conn, v)
		if err != nil {
			return nil, fmt.Errorf("node: conn %d: %w", i, err)
		}
		id := h.VehicleID
		if _, dup := byID[id]; dup {
			return nil, fmt.Errorf("node: duplicate vehicle ID %d", id)
		}
		byID[id] = conn
		vers[id] = ver
		transport.SetWireVersion(conn, ver)
		// Relabel the instrumented connection now that the peer has
		// identified itself: its transport events carry "vehicle-<id>"
		// instead of the accept-order placeholder.
		if sp, ok := conn.(interface{ SetPeer(string) }); ok {
			sp.SetPeer(fmt.Sprintf("vehicle-%d", id))
		}
		if traced {
			// The hello receive timestamp anchors this connection's
			// clock-offset estimate: Setup echoes it back alongside the
			// send timestamp, and the vehicle brackets the pair with its
			// own clock (RTT midpoint, DESIGN §15).
			helloNs[id] = int64(s.obs.Now())
			fields := []obs.Field{
				obs.F("vehicle", id),
				obs.F("version", ver),
				obs.F("trace", traceHex),
			}
			if h.TraceID != "" {
				fields = append(fields, obs.F("peer_trace", h.TraceID))
			}
			s.obs.Emit("node.hello", fields...)
		}
	}
	setup := &protocol.Setup{
		InputSize:        s.cfg.FL.InputSize,
		LocalEpochs:      s.cfg.FL.LocalEpochs,
		LocalRate:        s.cfg.FL.LocalRate,
		ActivationCoeffs: s.cfg.ActivationCoeffs,
		RefX:             s.cfg.RefX,
		SchemeVehicles:   s.cfg.Scheme.NumVehicles,
		SchemeBatches:    s.cfg.Scheme.NumBatches,
		SchemeDegree:     s.cfg.Scheme.Degree,
		SchemeSeed:       s.cfg.Scheme.Seed,
	}
	// Every per-vehicle sweep below walks this sorted ID list rather
	// than ranging byID directly: map iteration order is randomized, and
	// send order shapes the wire trace and straggler telemetry, which
	// must be identical across runs (DESIGN §8).
	ids := sortedVehicleIDs(byID)
	for _, id := range ids {
		// Each vehicle gets its own Setup copy carrying the version
		// negotiated for its connection. Deliberately not flushed here: on
		// a buffered fabric the Setup coalesces with round 1's broadcast
		// into a single write.
		su := *setup
		su.WireVersion = vers[id]
		if traced {
			su.TraceID = traceHex
			su.HelloNs = helloNs[id]
			su.ClockNs = int64(s.obs.Now())
		}
		if err := byID[id].Send(&protocol.Message{Setup: &su}); err != nil {
			return nil, fmt.Errorf("node: setup to vehicle %d: %w", id, err)
		}
	}

	// One receiver goroutine per connection feeds the round loop. Corrupt
	// frames are frame-local (the stream stays in sync), so the receiver
	// reports them and keeps reading; any other error is terminal for the
	// connection.
	//
	// The buffer is sized so a receiver goroutine can never block while
	// the round loop is busy elsewhere (broadcasting, aggregating,
	// distilling): with PipelineWindow+1 rounds in flight per vehicle (the
	// current round plus up to window stale rounds a behind vehicle may
	// still answer), each round can produce at most one upload, up to
	// MaxRetransmits corrupt-frame reports answered by re-prompts plus the
	// original corrupt frame — maxRe+2 frames — and the connection's one
	// terminal error is covered by the final slot of its last round.
	maxRe := s.cfg.MaxRetransmits
	if maxRe < 0 {
		maxRe = 0
	}
	results := make(chan result, v*(s.cfg.PipelineWindow+1)*(maxRe+2))
	startReceiver := func(id int, conn transport.Conn) {
		go func() {
			for {
				m, err := conn.Recv()
				if err != nil {
					if errors.Is(err, protocol.ErrCorruptFrame) {
						results <- result{vehicleID: id, conn: conn, corrupt: true}
						continue
					}
					results <- result{vehicleID: id, conn: conn, err: err}
					return
				}
				if m.Gather != nil {
					// A relay combined its shard's uploads into one frame
					// (DESIGN §16). Unpack each into the same result stream a
					// direct upload feeds; the channel capacity argument above
					// is unchanged because gathering redistributes uploads
					// across connections without increasing their total.
					for i := range m.Gather.Uploads {
						up := &m.Gather.Uploads[i]
						if up.VehicleID < 0 || up.VehicleID >= v {
							results <- result{vehicleID: id, conn: conn, err: fmt.Errorf("gathered upload for out-of-range vehicle %d", up.VehicleID)}
							return
						}
						results <- result{vehicleID: up.VehicleID, conn: conn, round: up.Round, values: up.Values, span: up.SpanID, gathered: true}
					}
					continue
				}
				if m.Upload == nil {
					results <- result{vehicleID: id, conn: conn, err: fmt.Errorf("unexpected %s", m.Kind())}
					return
				}
				results <- result{vehicleID: id, conn: conn, round: m.Upload.Round, values: m.Upload.Values, span: m.Upload.SpanID}
			}
		}()
	}
	for _, id := range ids {
		startReceiver(id, byID[id])
	}

	report := &Report{}
	flagged := map[int]bool{}
	dead := map[int]bool{}

	// Pipeline state (DESIGN.md §14), confined to this goroutine like the
	// maps above. streamer absorbs uploads into the incremental decoder as
	// they arrive; lastSeen/behind/pendingBc implement the bounded
	// in-flight-rounds window for vehicles outpaced by a budget close.
	pipeline := !s.cfg.DisablePipeline
	var streamer fl.StreamingAggregator
	if pipeline {
		var sch fl.Scheme = s.scheme
		streamer, _ = sch.(fl.StreamingAggregator)
	}
	var adaptive *AdaptiveRedundancy
	if pipeline && s.cfg.AdaptiveBudget {
		ctrl, err := NewAdaptiveRedundancy(latency.Scenario{
			Vehicles:      v,
			Batches:       s.cfg.Scheme.NumBatches,
			Degree:        s.cfg.Scheme.Degree,
			UploadScalars: s.scheme.UploadLen(),
		})
		if err != nil {
			return nil, err
		}
		adaptive = ctrl
	}
	lastSeen := make(map[int]int, v)             // latest round each vehicle uploaded for
	behind := make(map[int]bool)                 // vehicles outpaced by a budget close
	pendingBc := make(map[int]*protocol.Message) // withheld broadcasts, latest only

	// Per-round state, hoisted so the rejoin handler (a closure shared by
	// every round's collect loop) sees the current round's values.
	var (
		round       int
		bc          *protocol.Message
		uploads     [][]float64
		outstanding map[int]bool
	)

	// noteUpload records an upload's arrival — current round or stale —
	// as proof of life: the in-flight window tracks the vehicle's latest
	// round, it is no longer behind, and a withheld broadcast (always the
	// current round's) is released, putting the vehicle back in play.
	noteUpload := func(id, r int) {
		if r > lastSeen[id] {
			lastSeen[id] = r
		}
		delete(behind, id)
		if wb, ok := pendingBc[id]; ok {
			delete(pendingBc, id)
			if err := sendFlush(byID[id], wb); err != nil {
				dead[id] = true
				return
			}
			outstanding[id] = true
		}
	}

	// handleRejoin revives a reconnected vehicle mid-round: the
	// connection is swapped in (the stale one closed), Setup is resent so
	// a restarted process can rebuild its scheme, and if the vehicle
	// still owes this round's upload the broadcast is resent too.
	handleRejoin := func(req rejoinReq) {
		id := req.id
		if old, ok := byID[id]; ok && old != req.conn {
			_ = old.Close()
		}
		byID[id] = req.conn
		dead[id] = false
		// The revival below resends the broadcast directly; a withheld one
		// is obsolete, and the rejoined vehicle is current again.
		delete(behind, id)
		delete(pendingBc, id)
		if sp, ok := req.conn.(interface{ SetPeer(string) }); ok {
			sp.SetPeer(fmt.Sprintf("vehicle-%d", id))
		}
		report.Rejoins++
		s.cRejoins.Inc()
		s.setStatus(func(st *Status) { st.Rejoins++ })
		s.obs.Emit("node.rejoin", obs.F("round", round), obs.F("vehicle", id))
		fail := func() {
			dead[id] = true
			delete(outstanding, id)
			_ = req.conn.Close()
		}
		su := *setup
		su.WireVersion = req.ver
		if traced {
			su.TraceID = traceHex
			su.HelloNs = req.helloNs
			su.ClockNs = int64(s.obs.Now())
		}
		if err := req.conn.Send(&protocol.Message{Setup: &su}); err != nil {
			fail()
			return
		}
		if uploads[id] == nil {
			if err := req.conn.Send(bc); err != nil {
				fail()
				return
			}
			outstanding[id] = true
		}
		if err := transport.Flush(req.conn); err != nil {
			fail()
			return
		}
		startReceiver(id, req.conn)
	}

	for round = 1; round <= s.cfg.Rounds; round++ {
		s.obs.Emit("node.round_start", obs.F("round", round))
		// The round span's ID is derived, not random, so every process
		// computes the same value and the merged timeline can nest
		// vehicle-side spans under it even across JSON-only (v2) hops.
		var roundCtx obs.SpanContext
		roundFields := []obs.Field{obs.F("round", round)}
		if traced {
			roundCtx = obs.SpanContext{Trace: s.trace, Span: obs.DeriveSpan(s.trace, "node.round", uint64(round))}
			roundFields = append(roundFields, obs.CtxFields(roundCtx, 0)...)
		}
		roundSpan := s.obs.Start("node.round", roundFields...)
		if err := s.scheme.BeginRound(s.shared.Clone()); err != nil {
			return nil, fmt.Errorf("node: round %d: %w", round, err)
		}
		bc = &protocol.Message{Broadcast: &protocol.Broadcast{Round: round, Params: s.shared.Params()}}
		if traced {
			bc.Broadcast.TraceID = traceHex
			bc.Broadcast.SpanID = obs.FormatID(roundCtx.Span)
		}
		for _, id := range ids {
			if dead[id] {
				continue
			}
			// In-flight window: a vehicle outpaced by a budget close more
			// than PipelineWindow rounds ago gets its broadcast withheld
			// (latest only — stashing overwrites) until any upload proves
			// it alive, so a vanished straggler never accumulates frames.
			if behind[id] && round-lastSeen[id] > s.cfg.PipelineWindow {
				pendingBc[id] = bc
				continue
			}
			// The flush barrier after each broadcast is where a buffered
			// fabric pays its one write syscall; in round 1 the frame
			// coalesces with the still-unflushed Setup. A flush failure is
			// a send failure: the frame never reached the wire.
			if err := sendFlush(byID[id], bc); err != nil {
				dead[id] = true
			}
		}

		uploads = make([][]float64, v)
		outstanding = make(map[int]bool, v)
		for id := range byID {
			if !dead[id] && pendingBc[id] == nil {
				outstanding[id] = true
			}
		}
		retrans := make(map[int]int)

		// Streaming ingest: each accepted upload flows into the scheme's
		// incremental decoder immediately, so most of the decode work is
		// already done when the collection window closes. The effective
		// wait-budget decides that close: -1 waits for every live vehicle
		// (lock-step-identical), otherwise the window closes once
		// K + effBudget uploads have landed.
		var sink fl.UploadSink
		if streamer != nil {
			sink = streamer.BeginIngest()
		}
		effBudget := -1
		switch {
		case !pipeline:
		case adaptive != nil:
			adaptive.SetErrors(len(flagged))
			effBudget = adaptive.Budget()
		case s.cfg.WaitBudget == -1:
			effBudget = 0
		case s.cfg.WaitBudget > 0:
			effBudget = s.cfg.WaitBudget
		}
		budgetTarget := 0
		if effBudget >= 0 {
			budgetTarget = s.scheme.RecoverThreshold() + effBudget
		}
		arrived := 0
		closedBy := "all"
		var overlapNs int64
		s.setStatus(func(st *Status) {
			st.Phase = "collect"
			st.Round = round
			st.WaitBudget = effBudget
			st.BudgetTarget = budgetTarget
			st.Arrived = 0
			st.Outstanding = len(outstanding)
			st.Behind = sortedFlagged(behind)
		})
		deadline := time.After(s.cfg.RoundTimeout)
		// The round closes when every outstanding upload has arrived —
		// but if connection loss empties the outstanding set while the
		// round is still below the decode threshold K, the window stays
		// open until the deadline: degradation is a timeout outcome, and
		// crashed vehicles get the full round window to rejoin (the
		// rejoin handler re-arms outstanding) before the model is held
		// still. Without this, a shard-wide failure — a crashed relay —
		// would burn through every remaining round degraded in
		// microseconds, faster than any vehicle can reconnect.
		kThreshold := s.scheme.RecoverThreshold()
	collect:
		for len(outstanding) > 0 || arrived < kThreshold {
			select {
			case u := <-results:
				switch {
				case u.corrupt:
					report.CorruptFrames++
					s.cCorrupt.Inc()
					s.obs.Emit("node.corrupt_frame", obs.F("round", round), obs.F("vehicle", u.vehicleID))
					// Prompt the vehicle to resend its cached upload by
					// re-broadcasting the round, within budget.
					if byID[u.vehicleID] != u.conn || dead[u.vehicleID] || !outstanding[u.vehicleID] {
						break
					}
					if retrans[u.vehicleID] >= s.cfg.MaxRetransmits {
						break
					}
					retrans[u.vehicleID]++
					report.Retransmits++
					s.cRetransmit.Inc()
					s.obs.Emit("node.retransmit",
						obs.F("round", round),
						obs.F("vehicle", u.vehicleID),
						obs.F("attempt", retrans[u.vehicleID]))
					if err := sendFlush(u.conn, bc); err != nil {
						dead[u.vehicleID] = true
						delete(outstanding, u.vehicleID)
					}
				case u.err != nil:
					if byID[u.vehicleID] != u.conn {
						break // stale error from a replaced connection
					}
					dead[u.vehicleID] = true
					delete(outstanding, u.vehicleID)
					report.RecvErrors++
					s.cRecvErrors.Inc()
					s.obs.Emit("node.recv_error",
						obs.F("round", round),
						obs.F("vehicle", u.vehicleID),
						obs.F("error", u.err.Error()))
				case u.round != round:
					// Stale upload from a previous round's straggler:
					// discard; the vehicle still owes the current round,
					// but the arrival is proof of life for the window. A
					// gathered upload skips the conn-identity check — the
					// relay flushes its shard's uploads on whichever leg
					// absorbed the burst's last frame.
					if !dead[u.vehicleID] && (u.gathered || byID[u.vehicleID] == u.conn) {
						noteUpload(u.vehicleID, u.round)
					}
				case outstanding[u.vehicleID]:
					noteUpload(u.vehicleID, u.round)
					uploads[u.vehicleID] = u.values
					delete(outstanding, u.vehicleID)
					arrived++
					s.setStatus(func(st *Status) {
						st.Arrived = arrived
						st.Outstanding = len(outstanding)
					})
					if traced {
						// The ingest event parents under the upload span the
						// vehicle propagated (network vs. compute attribution
						// in the merged waterfall); an upload without context
						// — an old-build vehicle — parents under the round.
						ingest := obs.SpanContext{
							Trace: s.trace,
							Span:  obs.DeriveSpan(s.trace, "node.ingest", uint64(round), uint64(u.vehicleID)),
						}
						parent := roundCtx.Span
						if p := obs.ParseID(u.span); p != 0 {
							parent = p
						}
						s.obs.Emit("node.ingest", append([]obs.Field{
							obs.F("round", round),
							obs.F("vehicle", u.vehicleID),
						}, obs.CtxFields(ingest, parent)...)...)
					}
					if sink != nil {
						t0 := s.obs.Now()
						if err := sink.Add(u.vehicleID, u.values); err != nil {
							// Defensive: a rejected ingest only forfeits the
							// streamed state; Aggregate redoes the work.
							sink = nil
						}
						overlapNs += int64(s.obs.Now() - t0)
					}
					if budgetTarget > 0 && arrived >= budgetTarget && len(outstanding) > 0 {
						// Enough redundancy: close early and mark the rest
						// behind — candidates for broadcast withholding once
						// they trail by more than the in-flight window.
						for id := range outstanding {
							behind[id] = true
						}
						closedBy = "budget"
						s.setStatus(func(st *Status) { st.Behind = sortedFlagged(behind) })
						break collect
					}
				}
			case req := <-s.rejoin:
				handleRejoin(req)
			case <-deadline:
				closedBy = "timeout"
				break collect // stragglers: leave their uploads nil
			}
		}
		if pipeline {
			if closedBy == "budget" {
				s.cEarlyClose.Inc()
			}
			s.obs.Emit("node.pipeline",
				obs.F("round", round),
				obs.F("wait_budget", effBudget),
				obs.F("arrived", arrived),
				obs.F("closed_by", closedBy),
				obs.F("overlap_ns", overlapNs))
		}
		roundStragglers := 0
		for _, id := range ids {
			if !dead[id] && uploads[id] == nil {
				report.Stragglers++
				roundStragglers++
				s.cStragglers.Inc()
				s.obs.Emit("node.straggler", obs.F("round", round), obs.F("vehicle", id))
			}
		}
		s.setStatus(func(st *Status) {
			st.Phase = "aggregate"
			st.Stragglers += roundStragglers
		})
		if adaptive != nil {
			adaptive.ObserveStragglers(roundStragglers)
		}

		present := 0
		for _, up := range uploads {
			if up != nil {
				present++
			}
		}
		if k := s.scheme.RecoverThreshold(); present < k {
			// Below the RS decode threshold nothing can be verified or
			// aggregated: hold the model still rather than fail the
			// session (DESIGN.md §11).
			report.DegradedRounds++
			s.cDegraded.Inc()
			s.setStatus(func(st *Status) { st.DegradedRounds++ })
			s.obs.Emit("node.degraded",
				obs.F("round", round),
				obs.F("present", present),
				obs.F("need", k))
			report.Rounds = round
			s.cRoundsDone.Inc()
			roundSpan.End(obs.F("stragglers", roundStragglers), obs.F("degraded", true))
			continue
		}

		// Aggregate, consuming the streamed decode state where it applies
		// (bit-identical to the plain Aggregate, core/stream.go). The
		// scheme's core.aggregate span nests under this round's span; the
		// zero context with tracing off keeps it detached.
		s.scheme.SetSpanParent(roundCtx)
		var targets []float64
		var err error
		if sink != nil {
			targets, err = streamer.AggregateStreamed(sink, uploads)
		} else {
			targets, err = s.scheme.Aggregate(uploads)
		}
		if err != nil {
			return nil, fmt.Errorf("node: round %d aggregate: %w", round, err)
		}
		for _, id := range s.scheme.SuspectedMalicious() {
			flagged[id] = true
		}
		distill := make([]nn.Sample, 0, len(targets))
		for j, target := range targets {
			if fl.IsDropped(target) {
				continue
			}
			distill = append(distill, nn.Sample{X: s.cfg.RefX[j], Y: clamp01(target)})
		}
		if len(distill) > 0 {
			if _, err := fl.Distill(s.shared, s.cfg.FL, distill); err != nil {
				return nil, fmt.Errorf("node: round %d distill: %w", round, err)
			}
		}
		report.Rounds = round
		s.cRoundsDone.Inc()
		roundSpan.End(
			obs.F("stragglers", roundStragglers),
			obs.F("decode_failures", s.scheme.DecodeFailures),
			obs.F("flagged", len(s.scheme.SuspectedMalicious())))
	}

	fin := &protocol.Message{Finished: &protocol.Finished{Rounds: report.Rounds}}
	for _, id := range ids {
		if !dead[id] {
			_ = sendFlush(byID[id], fin) // best effort; the session is over
		}
	}
	s.finish(report.Rounds)
	s.setStatus(func(st *Status) {
		st.Phase = "done"
		st.Round = report.Rounds
		st.Arrived = 0
		st.Outstanding = 0
	})
	for id := range flagged {
		report.SuspectedMalicious = append(report.SuspectedMalicious, id)
	}
	sort.Ints(report.SuspectedMalicious)
	report.FinalParams = s.shared.Params()
	return report, nil
}

// sendFlush sends m and pushes it onto the wire; on a buffered fabric an
// unflushed frame was never delivered, so a flush error is a send error.
func sendFlush(conn transport.Conn, m *protocol.Message) error {
	if err := conn.Send(m); err != nil {
		return err
	}
	return transport.Flush(conn)
}

// sortedFlagged returns the set's members in ascending order (nil when
// empty), for deterministic Status snapshots.
func sortedFlagged(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// sortedVehicleIDs returns byID's keys in ascending order, giving every
// per-vehicle sweep in Run a deterministic schedule.
func sortedVehicleIDs(byID map[int]transport.Conn) []int {
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ClientConfig parameterises one vehicle process.
type ClientConfig struct {
	// VehicleID is the vehicle's identity (0..V-1).
	VehicleID int
	// SessionID names the FL session to join on a multi-session fleet
	// (protocol revision 5). Empty joins the fleet's default session; a
	// single-session fusion centre ignores it either way.
	SessionID string
	// Data is the private local dataset.
	Data []nn.Sample
	// Seed drives local SGD shuffling.
	Seed int64
	// Corrupt optionally turns the vehicle malicious: every uploaded
	// scalar is rewritten by the behaviour before sending.
	Corrupt adversary.Behavior
	// ForceVersion caps the protocol revision the vehicle announces in
	// its hello (0 means protocol.Version). Mixed-version tests pin it to
	// 2 to stand in for a fleet member running the JSON-only build.
	ForceVersion int
}

// transientError marks connection-level failures that RunVehicleRetry
// recovers from by reconnecting; protocol violations and training
// failures stay permanent.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// transientf builds a transient (reconnectable) error.
func transientf(format string, args ...any) error {
	return &transientError{err: fmt.Errorf(format, args...)}
}

// IsTransient reports whether err is a connection failure a reconnect
// could recover from.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// vehicleSession is a vehicle's state across connections: the local
// model, the rebuilt scheme, the SGD shuffle stream, and the last upload.
// Keeping it outside the per-connection loop is what makes reconnection
// exact — a resumed session resends the cached upload instead of
// retraining, so its randomness stream (and therefore every subsequent
// round) is bit-identical to a fault-free run.
type vehicleSession struct {
	cfg ClientConfig
	o   *obs.Obs
	// cCorrupt counts detected corrupt frames, resolved once here so
	// the per-frame noteCorrupt path never touches the registry.
	cCorrupt *obs.Counter
	// Stage histograms mirror the per-round vehicle spans with the exact
	// same elapsed values, so cmd/tracereport -check-metrics can
	// cross-check trace span sums against the metrics snapshot.
	hTrain  *obs.Histogram
	hEncode *obs.Histogram
	hUpload *obs.Histogram

	local  *nn.Network
	scheme *core.Scheme
	rng    *rand.Rand

	lastRound  int
	lastUpload []float64

	// trace is the session trace adopted from Setup.TraceID (or derived
	// from the scheme seed when the fusion centre predates propagation);
	// parentSpan is the current round's fusion-side span, the propagated
	// parent of this round's train/encode/upload spans. Both zero with
	// tracing off; single-goroutine like lastRound.
	trace      uint64
	parentSpan uint64
}

// newVehicleSession validates the config; the model and scheme are built
// lazily from the first Setup message.
func newVehicleSession(cfg ClientConfig, o *obs.Obs) (*vehicleSession, error) {
	if len(cfg.Data) == 0 {
		return nil, fmt.Errorf("node: vehicle %d has no local data", cfg.VehicleID)
	}
	return &vehicleSession{
		cfg:      cfg,
		o:        o,
		cCorrupt: o.Counter("node.client_corrupt_frames"),
		hTrain:   o.Histogram("node.train_ns", obs.LatencyBuckets()),
		hEncode:  o.Histogram("node.encode_ns", obs.LatencyBuckets()),
		hUpload:  o.Histogram("node.upload_ns", obs.LatencyBuckets()),
	}, nil
}

// emitStage records one vehicle round stage as a histogram observation
// plus — with tracing on — a span carrying this vehicle's derived stage
// span under the propagated round parent. Span and histogram share the
// exact elapsed value; the -check-metrics cross-check depends on that.
func (s *vehicleSession) emitStage(stage string, hist *obs.Histogram, round int, start, elapsed time.Duration) {
	hist.Observe(int64(elapsed))
	if !s.o.TraceEnabled() || s.trace == 0 {
		return
	}
	ctx := obs.SpanContext{
		Trace: s.trace,
		Span:  obs.DeriveSpan(s.trace, stage, uint64(round), uint64(s.cfg.VehicleID)),
	}
	s.o.EmitSpan(stage, start, elapsed, append([]obs.Field{
		obs.F("round", round),
		obs.F("vehicle", s.cfg.VehicleID),
	}, obs.CtxFields(ctx, s.parentSpan)...)...)
}

// install builds the local model and scheme from Setup. On a rejoin the
// server resends Setup; an already-installed session keeps its trained
// model and advanced randomness stream and ignores the repeat.
func (s *vehicleSession) install(setup *protocol.Setup) error {
	if s.local != nil {
		return nil
	}
	var act approx.Activation
	if len(setup.ActivationCoeffs) > 0 {
		act = approx.FromPolynomial("wire-poly", poly.NewReal(setup.ActivationCoeffs...))
	} else {
		act = approx.SymmetricSigmoid()
	}
	local, err := nn.New(nn.Config{
		LayerSizes: []int{setup.InputSize, 1},
		Activation: act,
		Seed:       s.cfg.Seed,
	})
	if err != nil {
		return fmt.Errorf("node: local model: %w", err)
	}
	scheme, err := core.NewScheme(setup.RefX, core.SchemeConfig{
		NumVehicles: setup.SchemeVehicles,
		NumBatches:  setup.SchemeBatches,
		Degree:      setup.SchemeDegree,
		Seed:        setup.SchemeSeed,
	})
	if err != nil {
		return fmt.Errorf("node: rebuilding scheme: %w", err)
	}
	s.local = local
	s.scheme = scheme
	s.rng = newVehicleRNG(s.cfg.Seed)
	return nil
}

// run speaks the vehicle protocol on one connection until Finished (nil)
// or an error; transient (connection-level) errors satisfy IsTransient
// and may be retried on a fresh connection with the same session.
func (s *vehicleSession) run(conn transport.Conn) error {
	id := s.cfg.VehicleID
	announce := protocol.Version
	if s.cfg.ForceVersion > 0 {
		announce = s.cfg.ForceVersion
	}
	traced := s.o.TraceEnabled()
	hello := &protocol.Hello{Version: announce, VehicleID: id, SessionID: s.cfg.SessionID}
	if traced && s.trace != 0 {
		// Reconnecting mid-session: announce the already-adopted session
		// trace so the fusion centre can tie the rejoin to it.
		hello.TraceID = obs.FormatID(s.trace)
	}
	t0 := s.o.Now() // local clock when the hello left
	if err := sendFlush(conn, &protocol.Message{Hello: hello}); err != nil {
		return transientf("node: hello: %w", err)
	}
	var setup *protocol.Setup
	var t1 time.Duration // local clock when Setup arrived
	for setup == nil {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, protocol.ErrCorruptFrame) {
				s.noteCorrupt()
				continue
			}
			return transientf("node: awaiting setup: %w", err)
		}
		if m.Finished != nil {
			// A rejoin that arrived after the session ended: the fusion
			// centre answers the handshake with Finished instead of
			// Setup. The session is over; terminate cleanly.
			return nil
		}
		if m.Admission != nil {
			// A fleet answered the handshake before Setup could follow
			// (DESIGN §16). Queued: the connection budget is exhausted but
			// we hold our place — keep waiting for Setup. Rejected with
			// the retry hint: transient, so RunVehicleRetry backs off and
			// redials. Rejected outright: permanent.
			ad := m.Admission
			switch {
			case ad.Queued:
				s.o.Emit("node.admission_queued", obs.F("vehicle", id))
				continue
			case ad.Retry:
				return transientf("node: vehicle %d admission deferred: %s", id, ad.Reason)
			default:
				return fmt.Errorf("node: vehicle %d admission rejected: %s", id, ad.Reason)
			}
		}
		if m.Setup == nil {
			return fmt.Errorf("node: expected setup, got %s", m.Kind())
		}
		setup = m.Setup
		t1 = s.o.Now()
	}
	// Adopt the version the fusion centre negotiated for this connection.
	// Absent (0) means a revision-2 fusion centre that predates the
	// field; never rise above what we announced.
	wire := setup.WireVersion
	if wire < minWireVersion {
		wire = minWireVersion
	}
	if wire > announce {
		wire = announce
	}
	transport.SetWireVersion(conn, wire)
	if err := s.install(setup); err != nil {
		return err
	}
	if traced {
		// Adopt the session trace: from Setup when the fusion centre
		// propagates one, else derived from the scheme seed — both sides
		// compute the same ID, so pre-propagation peers still converge.
		if tr := obs.ParseID(setup.TraceID); tr != 0 {
			s.trace = tr
		} else if s.trace == 0 {
			s.trace = obs.TraceIDFromSeed(setup.SchemeSeed)
		}
		if setup.HelloNs != 0 || setup.ClockNs != 0 {
			// Clock-offset estimation (DESIGN §15): the server clock at
			// the RTT midpoint is (HelloNs+ClockNs)/2, our own is
			// (t0+t1)/2; the difference maps this process's timestamps
			// onto the fusion centre's timeline in -merge. The server-side
			// processing gap (ClockNs−HelloNs) is excluded from the RTT.
			offset := (setup.HelloNs+setup.ClockNs)/2 - (int64(t0)+int64(t1))/2
			rtt := int64(t1-t0) - (setup.ClockNs - setup.HelloNs)
			s.o.Emit("node.clock_offset",
				obs.F("vehicle", id),
				obs.F("offset_ns", offset),
				obs.F("rtt_ns", rtt),
				obs.F("trace", obs.FormatID(s.trace)))
		}
	}

	for {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, protocol.ErrCorruptFrame) {
				// Frame-local: count it and keep reading. A corrupted
				// broadcast costs this round (straggler at the fusion
				// centre), not the connection.
				s.noteCorrupt()
				continue
			}
			return transientf("node: vehicle %d recv: %w", id, err)
		}
		switch {
		case m.Finished != nil:
			return nil
		case m.Error != nil:
			return fmt.Errorf("node: fusion centre error: %s", m.Error.Reason)
		case m.Broadcast == nil:
			return fmt.Errorf("node: vehicle %d: unexpected message %s", id, m.Kind())
		}
		bc := m.Broadcast
		if traced && s.trace != 0 {
			// The broadcast carries the fusion round span — the parent for
			// this round's train/encode/upload spans. A context-free
			// broadcast (old fusion centre) falls back to the derived
			// round span, which is the same value the server computes.
			if p := obs.ParseID(bc.SpanID); p != 0 {
				s.parentSpan = p
			} else {
				s.parentSpan = obs.DeriveSpan(s.trace, "node.round", uint64(bc.Round))
			}
		}
		if bc.Round == s.lastRound && s.lastUpload != nil {
			// Re-broadcast of a round already trained: a retransmit
			// prompt (our upload frame arrived corrupted) or a
			// rejoin resume. Resend the cached upload without
			// retraining, so the randomness stream — and every later
			// round — matches the fault-free run exactly.
			s.o.Emit("node.resend", obs.F("vehicle", id), obs.F("round", bc.Round))
			if err := s.sendUpload(conn, bc.Round); err != nil {
				return err
			}
			continue
		}
		if err := s.local.SetParams(bc.Params); err != nil {
			return fmt.Errorf("node: vehicle %d: %w", id, err)
		}
		// The verification channel needs the broadcast model as received.
		sharedCopy := s.local.Clone()
		if err := s.scheme.BeginRound(sharedCopy); err != nil {
			return fmt.Errorf("node: vehicle %d: %w", id, err)
		}
		tTrain := s.o.Now()
		if _, err := s.local.TrainSGD(s.cfg.Data, setup.LocalRate, setup.LocalEpochs, s.rng); err != nil {
			return fmt.Errorf("node: vehicle %d training: %w", id, err)
		}
		s.emitStage("node.train", s.hTrain, bc.Round, tTrain, s.o.Now()-tTrain)
		tEncode := s.o.Now()
		values, err := s.scheme.Upload(id, s.local)
		if err != nil {
			return fmt.Errorf("node: vehicle %d upload: %w", id, err)
		}
		s.emitStage("node.encode", s.hEncode, bc.Round, tEncode, s.o.Now()-tEncode)
		if s.cfg.Corrupt != nil {
			for i := range values {
				values[i] = s.cfg.Corrupt.Corrupt(id, values[i])
			}
		}
		s.lastRound, s.lastUpload = bc.Round, values
		if err := s.sendUpload(conn, bc.Round); err != nil {
			return err
		}
	}
}

// sendUpload ships the cached upload for the given round, flushed so the
// fusion centre's round collector sees it immediately. With tracing on
// the frame carries the session trace and the derived upload span — the
// same ID on a retransmit resend, so the fusion-side ingest parents
// consistently across attempts.
func (s *vehicleSession) sendUpload(conn transport.Conn, round int) error {
	up := &protocol.Upload{
		Round:     round,
		VehicleID: s.cfg.VehicleID,
		Values:    s.lastUpload,
	}
	if s.o.TraceEnabled() && s.trace != 0 {
		up.TraceID = obs.FormatID(s.trace)
		up.SpanID = obs.FormatID(obs.DeriveSpan(s.trace, "node.upload", uint64(round), uint64(s.cfg.VehicleID)))
	}
	tSend := s.o.Now()
	if err := sendFlush(conn, &protocol.Message{Upload: up}); err != nil {
		return transientf("node: vehicle %d send: %w", s.cfg.VehicleID, err)
	}
	s.emitStage("node.upload", s.hUpload, round, tSend, s.o.Now()-tSend)
	return nil
}

// noteCorrupt records a detected corrupt frame on the vehicle side.
func (s *vehicleSession) noteCorrupt() {
	if s.o.Enabled() {
		s.cCorrupt.Inc()
		s.o.Emit("node.client_corrupt_frame", obs.F("vehicle", s.cfg.VehicleID))
	}
}

// RunVehicle speaks the vehicle side of the protocol on one connection
// until Finished. It is single-shot: any failure, including transient
// connection loss, ends the session (use RunVehicleRetry for bounded
// reconnection).
func RunVehicle(conn transport.Conn, cfg ClientConfig) error {
	sess, err := newVehicleSession(cfg, nil)
	if err != nil {
		return err
	}
	return sess.run(conn)
}

// RetryConfig parameterises RunVehicleRetry's reconnection policy.
type RetryConfig struct {
	// Dial opens a fresh connection to the fusion centre (required).
	Dial func() (transport.Conn, error)
	// MaxAttempts bounds consecutive failed connection attempts; the
	// count resets whenever a connection makes round progress
	// (default 5).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100 ms); the
	// delay doubles per consecutive failure up to MaxDelay (default 5 s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterSeed drives the deterministic backoff jitter stream
	// (0 derives one from the vehicle's seed).
	JitterSeed int64
	// Sleeper executes the backoff waits; nil selects obs.RealSleeper.
	// Tests inject obs.ManualSleeper so retry schedules never sleep.
	Sleeper obs.Sleeper
	// Obs attaches node.reconnects counting and reconnect events.
	Obs *obs.Obs
}

// RunVehicleRetry runs a vehicle session with bounded reconnection:
// exponential backoff with deterministic jitter between attempts, session
// state (trained model, randomness stream, cached upload) preserved
// across connections so a crash-and-rejoin recovery is bit-identical to
// the fault-free run. Permanent errors (protocol violations, training
// failures) abort immediately; only transient connection failures retry.
func RunVehicleRetry(cfg ClientConfig, rc RetryConfig) error {
	if rc.Dial == nil {
		return fmt.Errorf("node: vehicle %d: retry dialer required", cfg.VehicleID)
	}
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 5
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 100 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 5 * time.Second
	}
	if rc.Sleeper == nil {
		rc.Sleeper = obs.RealSleeper{}
	}
	seed := rc.JitterSeed
	if seed == 0 {
		seed = cfg.Seed ^ 0x5ca1ab1e
	}
	jitter := field.NewSeededSource(seed)
	sess, err := newVehicleSession(cfg, rc.Obs)
	if err != nil {
		return err
	}
	cReconnects := rc.Obs.Counter("node.reconnects")

	failures := 0
	var lastErr error
	for {
		progress := sess.lastRound
		conn, err := rc.Dial()
		if err != nil {
			lastErr = err
		} else {
			err = sess.run(conn)
			_ = conn.Close()
			if err == nil {
				return nil
			}
			if !IsTransient(err) {
				return err
			}
			lastErr = err
		}
		if sess.lastRound > progress {
			failures = 0 // the connection advanced the session: fresh budget
		}
		failures++
		if failures >= rc.MaxAttempts {
			return fmt.Errorf("node: vehicle %d gave up after %d attempts: %w",
				cfg.VehicleID, failures, lastErr)
		}
		delay := backoffDelay(rc.BaseDelay, rc.MaxDelay, failures, jitter)
		cReconnects.Inc()
		rc.Obs.Emit("node.reconnect",
			obs.F("vehicle", cfg.VehicleID),
			obs.F("failures", failures),
			obs.F("delay_ns", int64(delay)),
			obs.F("error", lastErr.Error()))
		rc.Sleeper.Sleep(delay)
	}
}

// backoffDelay is exponential backoff with deterministic jitter: the
// base delay doubled per consecutive failure, capped, plus up to 50%
// drawn from the seeded jitter stream (decorrelates vehicles that failed
// together without breaking reproducibility).
func backoffDelay(base, max time.Duration, failures int, jitter *field.SeededSource) time.Duration {
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	span := uint64(d / 2)
	if span > 0 {
		d += time.Duration(jitter.Uint64() % (span + 1))
	}
	return d
}
