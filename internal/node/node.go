// Package node runs L-CoFL as an actual distributed system: a fusion
// centre process and vehicle processes exchanging protocol messages over
// a transport fabric (in-memory or TCP).
//
// The round structure mirrors package fl exactly — broadcast, local
// training (eq. 1), scheme upload, verified aggregation, distillation —
// but each vehicle holds only its own state and the fusion centre only
// the shared model, so the deployment is faithful to Fig. 1: vehicles
// never exchange raw data, and the fusion centre never sees local
// datasets. Vehicles rebuild the deterministic L-CoFL scheme from the
// Setup message, so their Lagrange-encoded shares match the fusion
// centre's without shipping any encoding matrices.
//
// A vehicle that misses a round deadline is treated as a straggler (its
// upload is absent), which the coded aggregation already tolerates.
package node

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/poly"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// ServerConfig parameterises the fusion centre.
type ServerConfig struct {
	// FL carries the learning hyperparameters (InputSize, rates, epochs).
	FL fl.Config
	// Scheme carries the L-CoFL coding parameters.
	Scheme core.SchemeConfig
	// RefX is the reference feature set (length a multiple of
	// Scheme.NumBatches).
	RefX [][]float64
	// ActivationCoeffs is the polynomial activation every participant
	// installs (paper §IV Step 2).
	ActivationCoeffs []float64
	// Rounds is the number of global rounds to run.
	Rounds int
	// RoundTimeout bounds how long the fusion centre waits for uploads
	// each round before treating missing vehicles as stragglers
	// (default 30 s).
	RoundTimeout time.Duration
	// Obs attaches the observability layer to the fusion centre and (via
	// Scheme.Obs, unless the caller already set one) to its coding scheme.
	// Nil disables all instrumentation.
	Obs *obs.Obs
}

// Report summarises a completed distributed session.
type Report struct {
	// Rounds is the number of completed rounds.
	Rounds int
	// FinalParams is the shared model's final parameter vector.
	FinalParams []float64
	// SuspectedMalicious accumulates every vehicle flagged by the
	// verification channel in any round.
	SuspectedMalicious []int
	// Stragglers counts upload timeouts across all rounds.
	Stragglers int
	// RecvErrors counts per-connection receive failures across all
	// rounds — a vehicle whose connection broke mid-session shows up here
	// (and is treated as dead thereafter), not silently as a straggler.
	RecvErrors int
}

// Server is the fusion centre.
type Server struct {
	cfg    ServerConfig
	shared *nn.Network
	scheme *core.Scheme

	// Observability handles, resolved once in NewServer.
	obs         *obs.Obs
	cRecvErrors *obs.Counter
	cStragglers *obs.Counter
	cRoundsDone *obs.Counter
}

// NewServer builds the shared model and the coding scheme.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("node: rounds %d must be >= 1", cfg.Rounds)
	}
	if len(cfg.ActivationCoeffs) < 2 {
		return nil, fmt.Errorf("node: polynomial activation coefficients required")
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	act := approx.FromPolynomial("wire-poly", poly.NewReal(cfg.ActivationCoeffs...))
	sizes := append([]int{cfg.FL.InputSize}, cfg.FL.Hidden...)
	sizes = append(sizes, 1)
	shared, err := nn.New(nn.Config{LayerSizes: sizes, Activation: act, Seed: cfg.FL.Seed})
	if err != nil {
		return nil, fmt.Errorf("node: shared model: %w", err)
	}
	if cfg.Obs.Enabled() && cfg.Scheme.Obs == nil {
		cfg.Scheme.Obs = cfg.Obs
	}
	scheme, err := core.NewScheme(cfg.RefX, cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("node: scheme: %w", err)
	}
	srv := &Server{cfg: cfg, shared: shared, scheme: scheme}
	if cfg.Obs.Enabled() {
		srv.obs = cfg.Obs
		srv.cRecvErrors = cfg.Obs.Counter("node.recv_errors")
		srv.cStragglers = cfg.Obs.Counter("node.stragglers")
		srv.cRoundsDone = cfg.Obs.Counter("node.rounds")
	}
	return srv, nil
}

// Shared exposes the fusion centre's model (for evaluation after Run).
func (s *Server) Shared() *nn.Network { return s.shared }

// upload pairs a received contribution with its sender.
type upload struct {
	vehicleID int
	round     int
	values    []float64
	err       error
}

// Run drives the session over the given connections (one per vehicle).
// It handshakes, configures every vehicle, executes the rounds, and sends
// Finished. Run blocks until the session completes.
func (s *Server) Run(conns []transport.Conn) (*Report, error) {
	v := s.cfg.Scheme.NumVehicles
	if len(conns) != v {
		return nil, fmt.Errorf("node: got %d connections, scheme expects %d vehicles", len(conns), v)
	}
	// Handshake: map connections to vehicle IDs.
	byID := make(map[int]transport.Conn, v)
	for i, conn := range conns {
		m, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("node: hello from conn %d: %w", i, err)
		}
		if m.Hello == nil {
			return nil, fmt.Errorf("node: conn %d opened with %+v, want hello", i, m)
		}
		if m.Hello.Version != protocol.Version {
			return nil, fmt.Errorf("node: conn %d speaks version %d, want %d", i, m.Hello.Version, protocol.Version)
		}
		id := m.Hello.VehicleID
		if id < 0 || id >= v {
			return nil, fmt.Errorf("node: vehicle ID %d out of range", id)
		}
		if _, dup := byID[id]; dup {
			return nil, fmt.Errorf("node: duplicate vehicle ID %d", id)
		}
		byID[id] = conn
		// Relabel the instrumented connection now that the peer has
		// identified itself: its transport events carry "vehicle-<id>"
		// instead of the accept-order placeholder.
		if sp, ok := conn.(interface{ SetPeer(string) }); ok {
			sp.SetPeer(fmt.Sprintf("vehicle-%d", id))
		}
	}
	setup := &protocol.Setup{
		InputSize:        s.cfg.FL.InputSize,
		LocalEpochs:      s.cfg.FL.LocalEpochs,
		LocalRate:        s.cfg.FL.LocalRate,
		ActivationCoeffs: s.cfg.ActivationCoeffs,
		RefX:             s.cfg.RefX,
		SchemeVehicles:   s.cfg.Scheme.NumVehicles,
		SchemeBatches:    s.cfg.Scheme.NumBatches,
		SchemeDegree:     s.cfg.Scheme.Degree,
		SchemeSeed:       s.cfg.Scheme.Seed,
	}
	for id, conn := range byID {
		if err := conn.Send(&protocol.Message{Setup: setup}); err != nil {
			return nil, fmt.Errorf("node: setup to vehicle %d: %w", id, err)
		}
	}

	// One receiver goroutine per vehicle feeds the round loop.
	results := make(chan upload, v)
	for id, conn := range byID {
		go func(id int, conn transport.Conn) {
			for {
				m, err := conn.Recv()
				if err != nil {
					results <- upload{vehicleID: id, err: err}
					return
				}
				if m.Upload == nil {
					results <- upload{vehicleID: id, err: fmt.Errorf("unexpected %+v", m)}
					return
				}
				results <- upload{vehicleID: id, round: m.Upload.Round, values: m.Upload.Values}
			}
		}(id, conn)
	}

	report := &Report{}
	flagged := map[int]bool{}
	dead := map[int]bool{}
	for round := 1; round <= s.cfg.Rounds; round++ {
		s.obs.Emit("node.round_start", obs.F("round", round))
		roundSpan := s.obs.Start("node.round", obs.F("round", round))
		if err := s.scheme.BeginRound(s.shared.Clone()); err != nil {
			return nil, fmt.Errorf("node: round %d: %w", round, err)
		}
		bc := &protocol.Message{Broadcast: &protocol.Broadcast{Round: round, Params: s.shared.Params()}}
		for id, conn := range byID {
			if dead[id] {
				continue
			}
			if err := conn.Send(bc); err != nil {
				dead[id] = true
			}
		}

		uploads := make([][]float64, v)
		pending := 0
		for id := range byID {
			if !dead[id] {
				pending++
			}
		}
		deadline := time.After(s.cfg.RoundTimeout)
	collect:
		for pending > 0 {
			select {
			case u := <-results:
				pending--
				switch {
				case u.err != nil:
					dead[u.vehicleID] = true
					report.RecvErrors++
					s.cRecvErrors.Inc()
					s.obs.Emit("node.recv_error",
						obs.F("round", round),
						obs.F("vehicle", u.vehicleID),
						obs.F("error", u.err.Error()))
				case u.round != round:
					// Stale upload from a previous round's straggler.
					pending++ // that vehicle still owes this round
				default:
					uploads[u.vehicleID] = u.values
				}
			case <-deadline:
				break collect // stragglers: leave their uploads nil
			}
		}
		roundStragglers := 0
		for id := range byID {
			if !dead[id] && uploads[id] == nil {
				report.Stragglers++
				roundStragglers++
				s.cStragglers.Inc()
				s.obs.Emit("node.straggler", obs.F("round", round), obs.F("vehicle", id))
			}
		}

		targets, err := s.scheme.Aggregate(uploads)
		if err != nil {
			return nil, fmt.Errorf("node: round %d aggregate: %w", round, err)
		}
		for _, id := range s.scheme.SuspectedMalicious() {
			flagged[id] = true
		}
		distill := make([]nn.Sample, 0, len(targets))
		for j, target := range targets {
			if fl.IsDropped(target) {
				continue
			}
			distill = append(distill, nn.Sample{X: s.cfg.RefX[j], Y: clamp01(target)})
		}
		if len(distill) > 0 {
			if _, err := fl.Distill(s.shared, s.cfg.FL, distill); err != nil {
				return nil, fmt.Errorf("node: round %d distill: %w", round, err)
			}
		}
		report.Rounds = round
		s.cRoundsDone.Inc()
		roundSpan.End(
			obs.F("stragglers", roundStragglers),
			obs.F("decode_failures", s.scheme.DecodeFailures),
			obs.F("flagged", len(s.scheme.SuspectedMalicious())))
	}

	fin := &protocol.Message{Finished: &protocol.Finished{Rounds: report.Rounds}}
	for id, conn := range byID {
		if !dead[id] {
			_ = conn.Send(fin) // best effort; the session is over
		}
		_ = id
	}
	for id := range flagged {
		report.SuspectedMalicious = append(report.SuspectedMalicious, id)
	}
	report.FinalParams = s.shared.Params()
	return report, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ClientConfig parameterises one vehicle process.
type ClientConfig struct {
	// VehicleID is the vehicle's identity (0..V-1).
	VehicleID int
	// Data is the private local dataset.
	Data []nn.Sample
	// Seed drives local SGD shuffling.
	Seed int64
	// Corrupt optionally turns the vehicle malicious: every uploaded
	// scalar is rewritten by the behaviour before sending.
	Corrupt adversary.Behavior
}

// RunVehicle speaks the vehicle side of the protocol until Finished.
func RunVehicle(conn transport.Conn, cfg ClientConfig) error {
	if len(cfg.Data) == 0 {
		return fmt.Errorf("node: vehicle %d has no local data", cfg.VehicleID)
	}
	if err := conn.Send(&protocol.Message{Hello: &protocol.Hello{
		Version:   protocol.Version,
		VehicleID: cfg.VehicleID,
	}}); err != nil {
		return fmt.Errorf("node: hello: %w", err)
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("node: awaiting setup: %w", err)
	}
	if m.Setup == nil {
		return fmt.Errorf("node: expected setup, got %+v", m)
	}
	setup := m.Setup
	var act approx.Activation
	if len(setup.ActivationCoeffs) > 0 {
		act = approx.FromPolynomial("wire-poly", poly.NewReal(setup.ActivationCoeffs...))
	} else {
		act = approx.SymmetricSigmoid()
	}
	local, err := nn.New(nn.Config{
		LayerSizes: []int{setup.InputSize, 1},
		Activation: act,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return fmt.Errorf("node: local model: %w", err)
	}
	scheme, err := core.NewScheme(setup.RefX, core.SchemeConfig{
		NumVehicles: setup.SchemeVehicles,
		NumBatches:  setup.SchemeBatches,
		Degree:      setup.SchemeDegree,
		Seed:        setup.SchemeSeed,
	})
	if err != nil {
		return fmt.Errorf("node: rebuilding scheme: %w", err)
	}
	rng := newVehicleRNG(cfg.Seed)

	for {
		m, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("node: vehicle %d recv: %w", cfg.VehicleID, err)
		}
		switch {
		case m.Finished != nil:
			return nil
		case m.Error != nil:
			return fmt.Errorf("node: fusion centre error: %s", m.Error.Reason)
		case m.Broadcast == nil:
			return fmt.Errorf("node: vehicle %d: unexpected message %+v", cfg.VehicleID, m)
		}
		bc := m.Broadcast
		if err := local.SetParams(bc.Params); err != nil {
			return fmt.Errorf("node: vehicle %d: %w", cfg.VehicleID, err)
		}
		// The verification channel needs the broadcast model as received.
		sharedCopy := local.Clone()
		if err := scheme.BeginRound(sharedCopy); err != nil {
			return fmt.Errorf("node: vehicle %d: %w", cfg.VehicleID, err)
		}
		if _, err := local.TrainSGD(cfg.Data, setup.LocalRate, setup.LocalEpochs, rng); err != nil {
			return fmt.Errorf("node: vehicle %d training: %w", cfg.VehicleID, err)
		}
		values, err := scheme.Upload(cfg.VehicleID, local)
		if err != nil {
			return fmt.Errorf("node: vehicle %d upload: %w", cfg.VehicleID, err)
		}
		if cfg.Corrupt != nil {
			for i := range values {
				values[i] = cfg.Corrupt.Corrupt(cfg.VehicleID, values[i])
			}
		}
		if err := conn.Send(&protocol.Message{Upload: &protocol.Upload{
			Round:     bc.Round,
			VehicleID: cfg.VehicleID,
			Values:    values,
		}}); err != nil {
			return fmt.Errorf("node: vehicle %d send: %w", cfg.VehicleID, err)
		}
	}
}
