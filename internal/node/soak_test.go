package node

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/obs"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// soakInt reads a positive integer knob from the environment, so CI can
// scale the soak tests (SOAK_SESSIONS=3 SOAK_VEHICLES=100) without a
// separate binary.
func soakInt(t testing.TB, name string, def int) int {
	t.Helper()
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("%s=%q: want a positive integer", name, v)
	}
	return n
}

// soakScenario is fleetScenario shaped for scale: NumBatches is pinned
// to 2 so the recover threshold K stays 2 for any vehicle count (the
// fleet size no longer has to divide the reference rows), the round
// timeout is generous enough for hundreds of connections under the race
// detector, and the worker knob is pinned on both the scheme and the
// training pools for the determinism sweep.
func soakScenario(t testing.TB, ids []string, vehicles, rounds, workers int) (map[string]ServerConfig, map[string][]ClientConfig) {
	t.Helper()
	if vehicles < 2 {
		t.Fatalf("soak scenario needs >= 2 vehicles, got %d", vehicles)
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: 8 * 24, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	refX := refDS.Features()
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := 600
	if rows < 6*vehicles {
		rows = 6 * vehicles
	}
	cfgs := make(map[string]ServerConfig, len(ids))
	clients := make(map[string][]ClientConfig, len(ids))
	for j, id := range ids {
		seed := int64(700 + 10*j)
		ds, err := traffic.Generate(traffic.GenConfig{Rows: rows, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		parts, err := ds.PartitionIID(vehicles, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		cfgs[id] = ServerConfig{
			FL: fl.Config{
				InputSize:     traffic.NumFeatures,
				LocalEpochs:   2,
				LocalRate:     0.2,
				DistillEpochs: 8,
				DistillRate:   0.2,
				ServerStep:    0.5,
				Seed:          seed + 2,
				Workers:       workers,
			},
			Scheme: core.SchemeConfig{
				NumVehicles: vehicles, NumBatches: 2, Degree: 1, Seed: seed + 3,
				Workers: workers,
			},
			RefX:             refX,
			ActivationCoeffs: p,
			Rounds:           rounds,
			RoundTimeout:     60 * time.Second,
		}
		cc := make([]ClientConfig, vehicles)
		for i := 0; i < vehicles; i++ {
			cc[i] = ClientConfig{VehicleID: i, SessionID: id, Data: parts[i], Seed: seed + int64(50+i)}
		}
		clients[id] = cc
	}
	return cfgs, clients
}

// soloRun executes one session lock-step on a dedicated server over
// plain pipes — the single-session baseline the fleet runs are compared
// against bit-for-bit.
func soloRun(t testing.TB, cfg ServerConfig, clients []ClientConfig) *Report {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var conns []transport.Conn
	var wg sync.WaitGroup
	for i := range clients {
		serverEnd, vehicleEnd := transport.Pipe()
		conns = append(conns, serverEnd)
		cc := clients[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer vehicleEnd.Close()
			if err := RunVehicle(vehicleEnd, cc); err != nil {
				t.Errorf("solo vehicle %d: %v", cc.VehicleID, err)
			}
		}()
	}
	report, err := srv.Run(conns)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// soakDrive runs every session's vehicles against a dial function.
// Session chaosID is the chaos shard: its vehicles send through the
// injector, and vehicle 1 runs under RunVehicleRetry so a scheduled
// crash recovers through the fleet's rejoin path.
func soakDrive(t testing.TB, dial func() (transport.Conn, error), clients map[string][]ClientConfig, ids []string, chaosID string, inj *chaos.Injector) error {
	t.Helper()
	errCh := make(chan error, 1024)
	var wg sync.WaitGroup
	for _, id := range ids {
		for _, cc := range clients[id] {
			wg.Add(1)
			go func(id string, cc ClientConfig) {
				defer wg.Done()
				if id == chaosID && inj != nil && cc.VehicleID == 1 {
					err := RunVehicleRetry(cc, RetryConfig{
						Dial: func() (transport.Conn, error) {
							conn, err := dial()
							if err != nil {
								return nil, err
							}
							return inj.Wrap(cc.VehicleID, conn), nil
						},
						MaxAttempts: 10,
						Sleeper:     &obs.ManualSleeper{},
					})
					if err != nil {
						errCh <- fmt.Errorf("retry vehicle %s/%d: %w", id, cc.VehicleID, err)
					}
					return
				}
				conn, err := dial()
				if err != nil {
					errCh <- fmt.Errorf("vehicle %s/%d dial: %w", id, cc.VehicleID, err)
					return
				}
				defer conn.Close()
				if id == chaosID && inj != nil {
					conn = inj.Wrap(cc.VehicleID, conn)
				}
				if err := RunVehicle(conn, cc); err != nil {
					errCh <- fmt.Errorf("vehicle %s/%d: %w", id, cc.VehicleID, err)
				}
			}(id, cc)
		}
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// TestFleetSoakWorkersSweep pins the fleet-scale determinism claim: a
// multi-session fleet under chaos churn — delayed uploads on one shard
// plus a crash-and-rejoin through the fleet's admission path — produces
// per-session aggregates bit-identical to the single-session lock-step
// baseline, at every worker count in {1, 2, 8}.
func TestFleetSoakWorkersSweep(t *testing.T) {
	ids := []string{"s0", "s1", "s2"}
	const vehicles, rounds = 6, 2

	baseCfgs, baseClients := soakScenario(t, ids, vehicles, rounds, 1)
	baseline := make(map[string]*Report, len(ids))
	for _, id := range ids {
		baseline[id] = soloRun(t, baseCfgs[id], baseClients[id])
	}

	for _, workers := range []int{1, 2, 8} {
		cfgs, clients := soakScenario(t, ids, vehicles, rounds, workers)
		fleet, err := NewFleet(FleetConfig{Sessions: cfgs})
		if err != nil {
			t.Fatal(err)
		}
		fab := transport.NewPipeFabric(0)
		serveErr := make(chan error, 1)
		go func() { serveErr <- fleet.Serve(fab) }()

		// Shard s0 is the chaos shard: vehicle 1 crashes before its round-2
		// upload, so that upload is only ever delivered through the rejoin
		// resend; vehicle 2's uploads are held 60ms (first matching rule
		// wins) so the round provably cannot close before the rejoin lands,
		// keeping the recovery — and therefore the aggregate —
		// deterministic. The rest of the shard rides probabilistic 1ms
		// delays.
		inj := chaos.New(mustChaosSpec(t, "seed=11;delay.upload@2=1:60ms;delay.upload=0.2:1ms;crash@1=before-upload:2"),
			chaos.Options{})
		if err := soakDrive(t, fab.Dial, clients, ids, ids[0], inj); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := <-serveErr; err != nil {
			t.Fatalf("workers=%d: fleet serve: %v", workers, err)
		}

		results := fleet.Results()
		for _, id := range ids {
			r := results[id]
			if r.Err != nil || r.Report == nil || r.Report.Rounds != rounds {
				t.Fatalf("workers=%d session %s: report=%+v err=%v", workers, id, r.Report, r.Err)
			}
			if !sameBits(r.Report.FinalParams, baseline[id].FinalParams) {
				t.Errorf("workers=%d session %s: fleet aggregate diverged from lock-step baseline", workers, id)
			}
		}
		if rj := results[ids[0]].Report.Rejoins; rj < 1 {
			t.Errorf("workers=%d: chaos shard rejoins = %d, want >= 1", workers, rj)
		}
		if st := fleet.Status(); st.Live != 0 || st.Committed != 0 {
			t.Errorf("workers=%d: drained status live=%d committed=%d", workers, st.Live, st.Committed)
		}
	}
}

// TestFleetSoakTCP is the scale soak: SOAK_SESSIONS concurrent sessions
// of SOAK_VEHICLES vehicles each, over real TCP sockets, with one
// chaos-delayed shard and the connection budget squeezed so the last
// session rides through the admission queue. Each session must complete
// every round, the chaos shard's aggregate must stay bit-identical to
// its single-session pipe baseline, and the fleet must drain to zero.
// CI runs this at 3x100 under -race; the checked-in default stays small
// enough for the ordinary test suite.
func TestFleetSoakTCP(t *testing.T) {
	sessions := soakInt(t, "SOAK_SESSIONS", 3)
	vehicles := soakInt(t, "SOAK_VEHICLES", 8)
	rounds := soakInt(t, "SOAK_ROUNDS", 2)
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
	}
	cfgs, clients := soakScenario(t, ids, vehicles, rounds, 0)

	fcfg := FleetConfig{Sessions: cfgs, HandshakeTimeout: 30 * time.Second}
	if sessions > 1 {
		// Budget for all but one session: the last complement to arrive
		// parks in the queue and is admitted when a session completes.
		fcfg.MaxConns = (sessions - 1) * vehicles
		fcfg.QueueDepth = sessions * vehicles
	}
	fleet, err := NewFleet(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	serveErr := make(chan error, 1)
	go func() { serveErr <- fleet.Serve(ln) }()

	// Shard s0 rides through real scheduled delays (the injector's default
	// wall-clock sleeper): every vehicle's uploads are held 1ms with
	// probability 0.3, so frames from the delayed shard interleave with
	// the healthy shards' traffic in every round.
	inj := chaos.New(mustChaosSpec(t, "seed=17;delay.upload=0.3:1ms"), chaos.Options{})
	dial := func() (transport.Conn, error) { return transport.DialTCP(addr) }
	if err := soakDrive(t, dial, clients, ids, ids[0], inj); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("fleet serve: %v", err)
	}
	results := fleet.Results()
	for _, id := range ids {
		r := results[id]
		if r.Err != nil || r.Report == nil || r.Report.Rounds != rounds {
			t.Fatalf("session %s: report=%+v err=%v", id, r.Report, r.Err)
		}
	}
	baseline := soloRun(t, cfgs[ids[0]], clients[ids[0]])
	if !sameBits(results[ids[0]].Report.FinalParams, baseline.FinalParams) {
		t.Error("chaos-delayed shard diverged from its lock-step pipe baseline")
	}

	st := fleet.Status()
	if st.Live != 0 || st.Committed != 0 {
		t.Errorf("drained status live=%d committed=%d", st.Live, st.Committed)
	}
	if st.Admitted < sessions*vehicles {
		t.Errorf("admitted %d, want >= %d", st.Admitted, sessions*vehicles)
	}
	if sessions > 1 && st.QueuedTotal < 1 {
		t.Errorf("queued total %d — the budget squeeze never queued a session", st.QueuedTotal)
	}
}
