package node

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// runOverTCP executes the session over a buffered TCP fabric, returning
// the server report. Vehicles dial with the same buffering options the
// listener hands out.
func runOverTCP(t *testing.T, s *session, opts transport.Options) *Report {
	t.Helper()
	return runOverTCPObs(t, s, opts, nil)
}

// runOverTCPObs is runOverTCP with an observability handle attached to
// every vehicle session (nil = plain vehicles), so propagation-enabled
// interop can be exercised end to end.
func runOverTCPObs(t *testing.T, s *session, opts transport.Options, vo *obs.Obs) *Report {
	t.Helper()
	l, err := transport.ListenTCPOptions("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serverConns := make([]transport.Conn, len(s.clients))
	accepted := make(chan transport.Conn, len(s.clients))
	go func() {
		for range s.clients {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	var wg sync.WaitGroup
	for i := range s.clients {
		conn, err := transport.DialTCPOptions(l.Addr(), 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			sess, err := newVehicleSession(s.clients[i], vo)
			if err != nil {
				t.Errorf("vehicle %d: %v", i, err)
				return
			}
			if err := sess.run(conn); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i, conn)
	}
	for i := range serverConns {
		select {
		case serverConns[i] = <-accepted:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out accepting vehicles")
		}
	}
	report, err := s.server.Run(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return report
}

// TestMixedVersionSession is the ISSUE 7 interop criterion: a session
// where half the fleet is pinned to the JSON-only protocol revision 2
// (standing in for vehicles running the old build) must produce exactly
// the model an all-v3 session produces. The fusion centre negotiates per
// connection, so v3 binary Broadcast/Upload frames and v2 JSON frames
// carry the same rounds side by side; Go's JSON encoding of float64 is
// round-trip exact, so "bit-identical" is achievable and required.
func TestMixedVersionSession(t *testing.T) {
	opts := transport.Options{WriteBuffer: 64 << 10, ReadBuffer: 64 << 10}

	pure := buildSession(t, 10, 3, 0)
	pureReport := runOverTCP(t, pure, opts)

	mixed := buildSession(t, 10, 3, 0)
	for i := range mixed.clients {
		if i%2 == 0 {
			mixed.clients[i].ForceVersion = 2
		}
	}
	mixedReport := runOverTCP(t, mixed, opts)

	if pureReport.Rounds != 3 || mixedReport.Rounds != 3 {
		t.Fatalf("rounds: pure %d, mixed %d, want 3", pureReport.Rounds, mixedReport.Rounds)
	}
	if mixedReport.Stragglers != 0 || mixedReport.RecvErrors != 0 {
		t.Fatalf("mixed session not clean: %+v", mixedReport)
	}
	if len(pureReport.FinalParams) != len(mixedReport.FinalParams) {
		t.Fatalf("param lengths differ: %d vs %d", len(pureReport.FinalParams), len(mixedReport.FinalParams))
	}
	for i := range pureReport.FinalParams {
		if pureReport.FinalParams[i] != mixedReport.FinalParams[i] {
			t.Fatalf("param %d differs: %v (all-v3) vs %v (mixed)", i,
				pureReport.FinalParams[i], mixedReport.FinalParams[i])
		}
	}

	// ISSUE 9 extension: the same mixed fleet with trace propagation on —
	// both sides tracing, so Setup/Broadcast/Upload frames carry the
	// session trace context (JSON fallback on the v2 and v3 connections,
	// binary ctx kinds at v4) — must still produce the identical model.
	reg := obs.NewRegistry()
	var trace bytes.Buffer
	clk := &obs.ManualClock{}
	o := obs.New(reg, obs.NewTracer(&trace, clk), clk)
	prop := buildSessionObs(t, 10, 3, 0, o)
	for i := range prop.clients {
		switch i % 3 {
		case 0:
			prop.clients[i].ForceVersion = 2
		case 1:
			prop.clients[i].ForceVersion = 3
		}
	}
	propReport := runOverTCPObs(t, prop, opts, o)
	if propReport.Rounds != 3 || propReport.Stragglers != 0 || propReport.RecvErrors != 0 {
		t.Fatalf("propagated session not clean: %+v", propReport)
	}
	for i := range pureReport.FinalParams {
		if pureReport.FinalParams[i] != propReport.FinalParams[i] {
			t.Fatalf("param %d differs: %v (plain) vs %v (propagation on)", i,
				pureReport.FinalParams[i], propReport.FinalParams[i])
		}
	}
	// The propagation must actually have happened: vehicle-side stage
	// spans carry the fusion round span as their parent.
	for _, key := range []string{`"ev":"node.ingest"`, `"ev":"node.train"`, `"parent":`} {
		if !bytes.Contains(trace.Bytes(), []byte(key)) {
			t.Fatalf("propagated session trace missing %s", key)
		}
	}
}
