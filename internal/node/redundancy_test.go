package node

import (
	"math"
	"testing"

	"repro/internal/latency"
)

func adaptive(t *testing.T, scen latency.Scenario) *AdaptiveRedundancy {
	t.Helper()
	a, err := NewAdaptiveRedundancy(scen)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// scen20 is V=20, M=8, Degree=1 → K=8, max budget 12.
func scen20() latency.Scenario {
	return latency.Scenario{Vehicles: 20, Batches: 8, Degree: 1, UploadScalars: 16}
}

func TestAdaptiveBudgetTracksStragglers(t *testing.T) {
	a := adaptive(t, scen20())
	// Before any observation: wait for the whole fleet.
	if got := a.Budget(); got != 12 {
		t.Fatalf("initial budget = %d, want 12", got)
	}
	// A stable straggler population of 3 → P90 = 3 → budget 9.
	for i := 0; i < redundancyWindow; i++ {
		a.ObserveStragglers(3)
	}
	if got := a.Budget(); got != 9 {
		t.Fatalf("budget after steady 3 stragglers = %d, want 9", got)
	}
	// One quiet round does not whipsaw the P90 back up.
	a.ObserveStragglers(0)
	if got := a.Budget(); got != 9 {
		t.Fatalf("budget after one quiet round = %d, want 9", got)
	}
	// The window slides: enough quiet rounds and the budget relaxes.
	for i := 0; i < redundancyWindow; i++ {
		a.ObserveStragglers(0)
	}
	if got := a.Budget(); got != 12 {
		t.Fatalf("budget after quiet window = %d, want 12", got)
	}
}

func TestAdaptiveBudgetErrorFloor(t *testing.T) {
	a := adaptive(t, scen20())
	for i := 0; i < redundancyWindow; i++ {
		a.ObserveStragglers(11) // would push the budget to 1...
	}
	a.SetErrors(3) // ...but identifying 3 errors needs K+6 arrivals.
	if got := a.Budget(); got != 6 {
		t.Fatalf("budget = %d, want eq. 6 floor of 6", got)
	}
	// The floor itself clamps to the fleet size.
	a.SetErrors(100)
	if got := a.Budget(); got != 12 {
		t.Fatalf("budget = %d, want max 12", got)
	}
	a.SetErrors(-1) // defensive: never negative
	if got := a.Budget(); got != 1 {
		t.Fatalf("budget = %d, want 1 (pure P90)", got)
	}
}

func TestAdaptiveScenarioErrorsSeedFloor(t *testing.T) {
	scen := scen20()
	scen.Errors = 2
	a := adaptive(t, scen)
	for i := 0; i < redundancyWindow; i++ {
		a.ObserveStragglers(12)
	}
	if got := a.Budget(); got != 4 {
		t.Fatalf("budget = %d, want scenario-seeded floor 4", got)
	}
}

func TestAdaptiveRejectsUndersizedFleet(t *testing.T) {
	if _, err := NewAdaptiveRedundancy(latency.Scenario{Vehicles: 7, Batches: 8, Degree: 1}); err == nil {
		t.Fatal("V < K accepted")
	}
}

func TestPercentileInt(t *testing.T) {
	xs := []int{5, 1, 4, 2, 3}
	if got := percentileInt(xs, 0.9); got != 5 {
		t.Fatalf("P90 = %d, want 5", got)
	}
	if got := percentileInt(xs, 0.5); got != 3 {
		t.Fatalf("P50 = %d, want 3", got)
	}
	if got := percentileInt([]int{7}, 0.9); got != 7 {
		t.Fatalf("single-sample P90 = %d, want 7", got)
	}
	// The input must not be reordered in place.
	if xs[0] != 5 || xs[1] != 1 {
		t.Fatal("percentileInt mutated its input")
	}
}

// TestRoundLatencyOrderStatistic pins the model the EXPERIMENTS
// straggler-latency recipe sweeps: shrinking the budget below the
// straggler count removes the straggler delay from the round, and the
// budget clamps to [K, V].
func TestRoundLatencyOrderStatistic(t *testing.T) {
	scen := scen20()
	p := latency.Params{}
	delays := make([]float64, scen.Vehicles)
	delays[18], delays[19] = 2.0, 3.0              // two stragglers
	full, err := RoundLatency(scen, p, 12, delays) // wait for everyone
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RoundLatency(scen, p, 10, delays) // close at K+10 = 18
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-tight-3.0) > 1e-9 {
		t.Fatalf("full %g vs tight %g: closing before the stragglers should save their 3s delay", full, tight)
	}
	over, err := RoundLatency(scen, p, 99, delays) // clamps to V
	if err != nil {
		t.Fatal(err)
	}
	if over != full {
		t.Fatalf("over-budget %g != full-fleet %g", over, full)
	}
	under, err := RoundLatency(scen, p, -5, delays) // clamps to K
	if err != nil {
		t.Fatal(err)
	}
	zero, err := RoundLatency(scen, p, 0, delays)
	if err != nil {
		t.Fatal(err)
	}
	if under != zero {
		t.Fatalf("negative budget %g != K-close %g", under, zero)
	}
	if _, err := RoundLatency(scen, p, 0, delays[:3]); err == nil {
		t.Fatal("mismatched delay count accepted")
	}
}
