package node

import (
	"sync"
	"testing"

	"repro/internal/chaos"
)

// The pipeline benchmark pair measures end-to-end session latency under
// a seeded straggler distribution: a 10-vehicle fleet (K = 8) where the
// last two vehicles sleep 40 ms before every upload (chaos delay faults
// on a real sleeper). The lock-step engine waits for the full fleet each
// round, so every round pays the straggler tail; the pipelined engine
// with WaitBudget=-1 closes collection at the recover threshold and the
// tail overlaps the next round. scripts/bench.sh runs the pair as the
// "pipeline" suite and benchreport gates the pipelined_vs_lockstep
// ratio against BENCH_pipeline.json.

const (
	benchVehicles  = 10 // K = 8, so the budget excludes exactly the 2 stragglers
	benchRounds    = 6
	benchDelaySpec = "seed=1;delay.upload@8=1:40ms;delay.upload@9=1:40ms"
)

func benchSession(b *testing.B, lockstep bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := buildSessionFull(b, benchVehicles, benchRounds, 0, nil, 0)
		s.server.cfg.DisablePipeline = lockstep
		s.server.cfg.WaitBudget = -1 // ignored by the lock-step engine
		// Default Options: chaos delays run on the real sleeper.
		inj := chaos.New(mustChaosSpec(b, benchDelaySpec), chaos.Options{})
		b.StartTimer()

		var wg sync.WaitGroup
		for v := range s.clients {
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				if err := RunVehicle(inj.Wrap(v, s.vconns[v]), s.clients[v]); err != nil {
					b.Errorf("vehicle %d: %v", v, err)
				}
			}(v)
		}
		report, err := s.server.Run(s.conns)
		if err != nil {
			b.Fatal(err)
		}
		wg.Wait()
		if report.Rounds != benchRounds {
			b.Fatalf("rounds = %d, want %d", report.Rounds, benchRounds)
		}
	}
}

func BenchmarkRoundPipelined(b *testing.B) { benchSession(b, false) }

func BenchmarkRoundLockstep(b *testing.B) { benchSession(b, true) }
