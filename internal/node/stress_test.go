package node

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// TestRelayManyConcurrentVehicles pushes many concurrent vehicle
// connections through one relay at message level: every client dials the
// relay, which opens its own upstream connection to a backend that echoes
// frames. Run under -race (scripts/check.sh does) this exercises the
// relay's connection-list locking, the per-connection pipe goroutines,
// and teardown while traffic is in flight.
func TestRelayManyConcurrentVehicles(t *testing.T) {
	const vehicles = 40
	const msgs = 25

	backend, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	var backendWG sync.WaitGroup
	go func() {
		for {
			c, err := backend.Accept()
			if err != nil {
				return
			}
			backendWG.Add(1)
			go func(c transport.Conn) {
				defer backendWG.Done()
				defer c.Close()
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(m); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	relayListener, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relay, err := NewRelay(relayListener, func() (transport.Conn, error) {
		return transport.DialTCP(backend.Addr())
	})
	if err != nil {
		t.Fatal(err)
	}
	relayDone := make(chan struct{})
	go func() {
		defer close(relayDone)
		if err := relay.Serve(); err != nil {
			t.Errorf("relay serve: %v", err)
		}
	}()

	var clientWG sync.WaitGroup
	var echoed atomic.Int64
	for i := 0; i < vehicles; i++ {
		clientWG.Add(1)
		go func(id int) {
			defer clientWG.Done()
			c, err := transport.DialTCP(relayListener.Addr())
			if err != nil {
				t.Errorf("vehicle %d dial: %v", id, err)
				return
			}
			defer c.Close()
			for j := 0; j < msgs; j++ {
				m := &protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: id}}
				if err := c.Send(m); err != nil {
					t.Errorf("vehicle %d send: %v", id, err)
					return
				}
				got, err := c.Recv()
				if err != nil {
					t.Errorf("vehicle %d recv: %v", id, err)
					return
				}
				if got.Hello == nil || got.Hello.VehicleID != id {
					t.Errorf("vehicle %d got foreign frame %+v", id, got)
					return
				}
				echoed.Add(1)
			}
		}(i)
	}
	clientWG.Wait()
	if got, want := echoed.Load(), int64(vehicles*msgs); got != want {
		t.Errorf("relayed %d echoes, want %d", got, want)
	}
	if err := relay.Close(); err != nil {
		t.Errorf("relay close: %v", err)
	}
	<-relayDone
	_ = backend.Close()
	backendWG.Wait()
}

// TestRelayCloseWhileTrafficInFlight tears the relay down while vehicles
// are still sending: no deadlock, no race, and Close remains idempotent.
func TestRelayCloseWhileTrafficInFlight(t *testing.T) {
	backend, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	go func() {
		for {
			c, err := backend.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				defer c.Close()
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	relayListener, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relay, err := NewRelay(relayListener, func() (transport.Conn, error) {
		return transport.DialTCP(backend.Addr())
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = relay.Serve() }()

	const vehicles = 16
	var wg sync.WaitGroup
	started := make(chan struct{}, vehicles)
	for i := 0; i < vehicles; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := transport.DialTCP(relayListener.Addr())
			if err != nil {
				return // relay may already be closing
			}
			defer c.Close()
			started <- struct{}{}
			for j := 0; j < 1000; j++ {
				m := &protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: id}}
				if err := c.Send(m); err != nil {
					return // teardown mid-flight is the point
				}
			}
		}(i)
	}
	// Wait until at least half the vehicles are streaming, then yank.
	for i := 0; i < vehicles/2; i++ {
		<-started
	}
	if err := relay.Close(); err != nil {
		t.Errorf("relay close: %v", err)
	}
	if err := relay.Close(); err != nil {
		t.Errorf("second relay close: %v", err)
	}
	wg.Wait()
}
