package node

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func TestRelayValidation(t *testing.T) {
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := NewRelay(nil, func() (transport.Conn, error) { return nil, nil }); err == nil {
		t.Error("nil listener accepted")
	}
	if _, err := NewRelay(l, nil); err == nil {
		t.Error("nil dialer accepted")
	}
}

func TestDistributedSessionThroughRelay(t *testing.T) {
	// Full session with every vehicle reaching the fusion centre only via
	// an RSU relay (Fig. 1 topology), including one malicious vehicle —
	// the relay must be protocol-transparent end to end.
	s := buildSession(t, 12, 3, 0)

	fcListener, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fcListener.Close()
	relayListener, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relay, err := NewRelay(relayListener, func() (transport.Conn, error) {
		return transport.DialTCP(fcListener.Addr())
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := relay.Serve(); err != nil {
			t.Logf("relay serve: %v", err)
		}
	}()
	defer relay.Close()

	var wg sync.WaitGroup
	for i := range s.clients {
		conn, err := transport.DialTCP(relayListener.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			if err := RunVehicle(conn, s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i, conn)
	}
	serverConns := make([]transport.Conn, len(s.clients))
	for i := range serverConns {
		done := make(chan struct{})
		var c transport.Conn
		var acceptErr error
		go func() {
			c, acceptErr = fcListener.Accept()
			close(done)
		}()
		select {
		case <-done:
			if acceptErr != nil {
				t.Fatal(acceptErr)
			}
			serverConns[i] = c
		case <-time.After(5 * time.Second):
			t.Fatal("timed out accepting relayed vehicles")
		}
	}
	report, err := s.server.Run(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != 3 {
		t.Errorf("rounds = %d", report.Rounds)
	}
	if report.Stragglers != 0 {
		t.Errorf("stragglers through relay = %d", report.Stragglers)
	}
	if len(report.SuspectedMalicious) != 0 {
		t.Errorf("honest relayed session flagged %v", report.SuspectedMalicious)
	}
}

// TestRelayGatherCombinesShard: at protocol revision 5 the relay absorbs
// its shard's uploads into combined Gather frames, and the session's
// final parameters stay bit-identical to the same session run with
// direct connections — the aggregation tree re-groups frames, never
// payloads.
func TestRelayGatherCombinesShard(t *testing.T) {
	const vehicles, rounds = 4, 2
	cfgs, clients := fleetScenario(t, []string{"g"}, vehicles, rounds)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	clk := &obs.ManualClock{}
	o := obs.New(reg, obs.NewTracer(&buf, clk), clk)

	fabUp := transport.NewPipeFabric(0)
	fabDown := transport.NewPipeFabric(0)
	relay, err := NewRelayWith(RelayConfig{
		Listener: fabDown,
		Dial:     fabUp.Dial,
		// A full shard flushes immediately; the huge window pins every
		// flush to the complete-shard path so the counters are exact.
		GatherWindow: time.Hour,
		Obs:          o,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := relay.Serve(); err != nil {
			t.Errorf("relay serve: %v", err)
		}
	}()
	defer relay.Close()

	srv, err := NewServer(cfgs["g"])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < vehicles; i++ {
		conn, err := fabDown.Dial()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			defer conn.Close()
			if err := RunVehicle(conn, clients["g"][i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i, conn)
	}
	conns := make([]transport.Conn, vehicles)
	for i := range conns {
		c, err := fabUp.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	report, err := srv.Run(conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", report.Rounds, rounds)
	}
	gathers := reg.Counter("relay.gathers").Value()
	gathered := reg.Counter("relay.gathered_uploads").Value()
	if gathers < 1 {
		t.Fatal("relay never combined a shard burst into a Gather frame")
	}
	if gathered != gathers*vehicles {
		t.Fatalf("gathered %d uploads over %d gathers, want full shards of %d", gathered, gathers, vehicles)
	}

	// Direct-connection baseline: bit-identical final parameters.
	solo, err := NewServer(cfgs["g"])
	if err != nil {
		t.Fatal(err)
	}
	var sconns []transport.Conn
	var swg sync.WaitGroup
	for i := 0; i < vehicles; i++ {
		sv, vc := transport.Pipe()
		sconns = append(sconns, sv)
		cc := clients["g"][i]
		swg.Add(1)
		go func() {
			defer swg.Done()
			defer vc.Close()
			if err := RunVehicle(vc, cc); err != nil {
				t.Errorf("solo vehicle %d: %v", cc.VehicleID, err)
			}
		}()
	}
	soloReport, err := solo.Run(sconns)
	swg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.FinalParams) != len(soloReport.FinalParams) {
		t.Fatalf("param length %d vs direct %d", len(report.FinalParams), len(soloReport.FinalParams))
	}
	for i := range report.FinalParams {
		if report.FinalParams[i] != soloReport.FinalParams[i] {
			t.Fatalf("param %d: relayed %v vs direct %v — gathering altered the aggregate",
				i, report.FinalParams[i], soloReport.FinalParams[i])
		}
	}
}

// TestRelayUpstreamDialFailureMidSession: an upstream dial failure no
// longer kills the relay — the affected vehicles' connections close,
// those vehicles retry directly against the fusion centre, and the
// session completes with the relay still serving its remaining shard.
func TestRelayUpstreamDialFailureMidSession(t *testing.T) {
	const vehicles, rounds = 4, 2
	cfgs, clients := fleetScenario(t, []string{"d"}, vehicles, rounds)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	clk := &obs.ManualClock{}
	o := obs.New(reg, obs.NewTracer(&buf, clk), clk)

	fabUp := transport.NewPipeFabric(0)
	fabDown := transport.NewPipeFabric(0)
	var dials atomic.Int32
	relay, err := NewRelayWith(RelayConfig{
		Listener: fabDown,
		Dial: func() (transport.Conn, error) {
			if dials.Add(1) > 2 {
				return nil, fmt.Errorf("upstream refused")
			}
			return fabUp.Dial()
		},
		Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- relay.Serve() }()

	var wg sync.WaitGroup
	for i := 0; i < vehicles; i++ {
		cc := clients["d"][i]
		var attempts atomic.Int32
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunVehicleRetry(cc, RetryConfig{
				Dial: func() (transport.Conn, error) {
					if attempts.Add(1) == 1 {
						return fabDown.Dial() // first try goes through the relay
					}
					return fabUp.Dial() // recovery dials the fusion centre directly
				},
				Sleeper: &obs.ManualSleeper{},
			})
			if err != nil {
				t.Errorf("vehicle %d: %v", cc.VehicleID, err)
			}
		}()
	}
	conns := make([]transport.Conn, vehicles)
	for i := range conns {
		c, err := fabUp.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	srv, err := NewServer(cfgs["d"])
	if err != nil {
		t.Fatal(err)
	}
	// Later arrivals (there should be none here, but a slow vehicle may
	// re-dial) are rejoins.
	rejoinsDone := make(chan struct{})
	go func() {
		defer close(rejoinsDone)
		for {
			c, err := fabUp.Accept()
			if err != nil {
				return
			}
			srv.Rejoin(c)
		}
	}()
	report, err := srv.Run(conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", report.Rounds, rounds)
	}
	if got := reg.Counter("relay.dial_errors").Value(); got != 2 {
		t.Fatalf("relay.dial_errors = %d, want 2", got)
	}
	select {
	case err := <-serveErr:
		t.Fatalf("relay serve exited mid-session: %v", err)
	default:
	}
	if err := relay.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("relay serve after close: %v", err)
	}
	fabUp.Close()
	<-rejoinsDone
}

// crashAtRoundConn makes a relay upstream leg die the moment the given
// round's broadcast arrives, simulating a relay crash at a deterministic
// point in the session. The embedded interface deliberately drops the
// optional faces — a crashed relay flushes nothing.
type crashAtRoundConn struct {
	transport.Conn
	round int
}

func (c *crashAtRoundConn) Recv() (*protocol.Message, error) {
	m, err := c.Conn.Recv()
	if err == nil && m.Broadcast != nil && m.Broadcast.Round == c.round {
		_ = c.Conn.Close()
		return nil, fmt.Errorf("relay crashed")
	}
	return m, err
}

// TestRelayCrashVehiclesRecoverDirect: the relay crashes when round 2
// begins — no vehicle can make progress through it — and every vehicle
// behind it reconnects directly to the fusion centre through
// RunVehicleRetry. The session still completes all its rounds.
func TestRelayCrashVehiclesRecoverDirect(t *testing.T) {
	const vehicles, rounds = 4, 3
	cfgs, clients := fleetScenario(t, []string{"c"}, vehicles, rounds)
	cfg := cfgs["c"]
	// Generous: on a loaded -race run a short timeout can expire before
	// the crashed shard finishes rejoining, degrading the round and
	// completing the session with zero rejoins to count.
	cfg.RoundTimeout = 60 * time.Second
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	fabUp := transport.NewPipeFabric(0)
	fabDown := transport.NewPipeFabric(0)
	relay, err := NewRelay(fabDown, func() (transport.Conn, error) {
		c, err := fabUp.Dial()
		if err != nil {
			return nil, err
		}
		return &crashAtRoundConn{Conn: c, round: 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = relay.Serve() }()

	var wg sync.WaitGroup
	for i := 0; i < vehicles; i++ {
		cc := clients["c"][i]
		var attempts atomic.Int32
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunVehicleRetry(cc, RetryConfig{
				Dial: func() (transport.Conn, error) {
					if attempts.Add(1) == 1 {
						return fabDown.Dial()
					}
					return fabUp.Dial()
				},
				MaxAttempts: 10,
				Sleeper:     &obs.ManualSleeper{},
			})
			if err != nil {
				t.Errorf("vehicle %d: %v", cc.VehicleID, err)
			}
		}()
	}
	conns := make([]transport.Conn, vehicles)
	for i := range conns {
		c, err := fabUp.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	rejoinsDone := make(chan struct{})
	go func() {
		defer close(rejoinsDone)
		for {
			c, err := fabUp.Accept()
			if err != nil {
				return
			}
			srv.Rejoin(c)
		}
	}()
	report, err := srv.Run(conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", report.Rounds, rounds)
	}
	if report.Rejoins < 1 {
		t.Fatalf("rejoins = %d, want >= 1 after the relay crash", report.Rejoins)
	}
	if report.DegradedRounds != 0 {
		t.Fatalf("degraded rounds = %d, want 0 (recovery, not degradation)", report.DegradedRounds)
	}
	if err := relay.Close(); err != nil {
		t.Fatal(err)
	}
	fabUp.Close()
	<-rejoinsDone
}

// TestRelayCloseDrainsParkedUploads: regression for the shutdown race
// where Relay.Close's best-effort flush could drop frames the relay had
// already accepted. A parked (gathered but unflushed) upload must reach
// the fusion centre before the connections are torn down.
func TestRelayCloseDrainsParkedUploads(t *testing.T) {
	fabUp := transport.NewPipeFabric(0)
	fabDown := transport.NewPipeFabric(0)
	relay, err := NewRelayWith(RelayConfig{
		Listener:     fabDown,
		Dial:         fabUp.Dial,
		GatherWindow: time.Hour, // nothing flushes on its own
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = relay.Serve() }()

	// Two links so one parked upload stays below the full-shard flush
	// threshold.
	v1, err := fabDown.Dial()
	if err != nil {
		t.Fatal(err)
	}
	u1, err := fabUp.Accept()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := fabDown.Dial()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := fabUp.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	defer u2.Close()

	// The fusion centre negotiates revision 5 on link 1; the relay's
	// upstream pipe now parks uploads instead of forwarding them.
	if err := u1.Send(&protocol.Message{Setup: &protocol.Setup{WireVersion: protocol.FleetVersion}}); err != nil {
		t.Fatal(err)
	}
	if m, err := v1.Recv(); err != nil || m.Setup == nil {
		t.Fatalf("vehicle setup = %+v, %v", m, err)
	}
	if err := v1.Send(&protocol.Message{Upload: &protocol.Upload{Round: 1, VehicleID: 0, Values: []float64{42}}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the upload is parked in the gatherer (not forwarded, not
	// dropped), then close the relay: the drain must put it on the wire.
	for relay.pendingCount() == 0 {
		runtime.Gosched()
	}
	if err := relay.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := u1.Recv()
	if err != nil {
		t.Fatalf("parked upload lost at close: %v", err)
	}
	if m.Upload == nil || m.Upload.Round != 1 || m.Upload.Values[0] != 42 {
		t.Fatalf("drained frame = %+v, want the parked upload", m)
	}
	_ = v1.Close()
	_ = u1.Close()
}
