package node

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestRelayValidation(t *testing.T) {
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := NewRelay(nil, func() (transport.Conn, error) { return nil, nil }); err == nil {
		t.Error("nil listener accepted")
	}
	if _, err := NewRelay(l, nil); err == nil {
		t.Error("nil dialer accepted")
	}
}

func TestDistributedSessionThroughRelay(t *testing.T) {
	// Full session with every vehicle reaching the fusion centre only via
	// an RSU relay (Fig. 1 topology), including one malicious vehicle —
	// the relay must be protocol-transparent end to end.
	s := buildSession(t, 12, 3, 0)

	fcListener, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fcListener.Close()
	relayListener, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relay, err := NewRelay(relayListener, func() (transport.Conn, error) {
		return transport.DialTCP(fcListener.Addr())
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := relay.Serve(); err != nil {
			t.Logf("relay serve: %v", err)
		}
	}()
	defer relay.Close()

	var wg sync.WaitGroup
	for i := range s.clients {
		conn, err := transport.DialTCP(relayListener.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			if err := RunVehicle(conn, s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i, conn)
	}
	serverConns := make([]transport.Conn, len(s.clients))
	for i := range serverConns {
		done := make(chan struct{})
		var c transport.Conn
		var acceptErr error
		go func() {
			c, acceptErr = fcListener.Accept()
			close(done)
		}()
		select {
		case <-done:
			if acceptErr != nil {
				t.Fatal(acceptErr)
			}
			serverConns[i] = c
		case <-time.After(5 * time.Second):
			t.Fatal("timed out accepting relayed vehicles")
		}
	}
	report, err := s.server.Run(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if report.Rounds != 3 {
		t.Errorf("rounds = %d", report.Rounds)
	}
	if report.Stragglers != 0 {
		t.Errorf("stragglers through relay = %d", report.Stragglers)
	}
	if len(report.SuspectedMalicious) != 0 {
		t.Errorf("honest relayed session flagged %v", report.SuspectedMalicious)
	}
}
