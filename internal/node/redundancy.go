package node

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/latency"
)

// Adaptive redundancy (DESIGN.md §14).
//
// The pipelined round engine can close a round's collection window after
// K + D uploads instead of waiting for the full fleet, where D is the
// wait-budget — the redundancy the paper's eq. 6 buys: K uploads decode,
// and every extra upload beyond K either absorbs an erroneous vehicle
// (two per error, K + 2E ≤ V) or merely confirms. AdaptiveRedundancy
// picks D per round from two observed signals:
//
//   - the straggler distribution: if the recent rounds' straggler counts
//     concentrate around σ, waiting for more than V − K − σ extra
//     uploads is waiting for vehicles that will not arrive before the
//     timeout, so the budget shrinks toward V − K − σ (a high percentile
//     of σ, so bursts do not whipsaw the budget);
//   - the flagged-vehicle count: eq. 6 needs K + 2E arrivals to both
//     decode and FLAG E erroneous vehicles, so once E vehicles stand
//     accused the budget never drops below 2E — closing earlier would
//     trade error identification for latency.
//
// The controller is pure arithmetic over a sliding window — no clocks,
// no randomness — so engine runs stay deterministic for a given upload
// schedule.

// redundancyWindow is how many recent rounds' straggler counts inform
// the budget; small enough to track mobility-driven drift, large enough
// that the percentile is not a single round's mood.
const redundancyWindow = 8

// redundancyQuantile is the straggler percentile the budget plans for.
const redundancyQuantile = 0.9

// AdaptiveRedundancy adapts the per-round wait-budget D (uploads beyond
// the recover threshold K to wait for) to the observed straggler
// distribution, floored by the eq. 6 error-identification requirement.
// It is confined to the engine's round loop; not safe for concurrent use.
type AdaptiveRedundancy struct {
	maxBudget int   // V − K: waiting for the whole fleet
	minBudget int   // 2E floor from the flagged-vehicle count
	recent    []int // straggler counts of the last redundancyWindow rounds
}

// NewAdaptiveRedundancy builds the controller from the round's latency
// scenario (the same shape package latency costs): V and K bound the
// budget range, and Errors — the assumed erroneous-vehicle count E —
// sets the initial 2E floor.
func NewAdaptiveRedundancy(scen latency.Scenario) (*AdaptiveRedundancy, error) {
	k := scen.Degree*(scen.Batches-1) + 1
	if scen.Vehicles < k {
		return nil, fmt.Errorf("node: adaptive redundancy: K=%d exceeds V=%d", k, scen.Vehicles)
	}
	a := &AdaptiveRedundancy{maxBudget: scen.Vehicles - k}
	a.SetErrors(scen.Errors)
	return a, nil
}

// SetErrors raises (or lowers) the budget floor to 2e — the extra
// uploads eq. 6 charges for identifying e erroneous vehicles. The engine
// feeds it the session's accumulated flagged-vehicle count.
func (a *AdaptiveRedundancy) SetErrors(e int) {
	m := 2 * e
	if m < 0 {
		m = 0
	}
	if m > a.maxBudget {
		m = a.maxBudget
	}
	a.minBudget = m
}

// ObserveStragglers records one completed round's straggler count.
func (a *AdaptiveRedundancy) ObserveStragglers(n int) {
	if n < 0 {
		n = 0
	}
	a.recent = append(a.recent, n)
	if len(a.recent) > redundancyWindow {
		a.recent = a.recent[1:]
	}
}

// Budget returns the wait-budget D for the next round: V − K until the
// first observation (wait for everyone while the distribution is
// unknown), then V − K − P90(stragglers) clamped to [2E, V − K].
func (a *AdaptiveRedundancy) Budget() int {
	if len(a.recent) == 0 {
		return a.maxBudget
	}
	d := a.maxBudget - percentileInt(a.recent, redundancyQuantile)
	if d < a.minBudget {
		d = a.minBudget
	}
	if d > a.maxBudget {
		d = a.maxBudget
	}
	return d
}

// percentileInt is the nearest-rank percentile of xs (q in (0, 1]).
func percentileInt(xs []int, q float64) int {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// RoundLatency estimates one round's wall-clock under a wait-budget: the
// analytic LCoFL breakdown (package latency) with the uplink phase
// ending at the (K+D)-th arrival order statistic. delays holds each
// vehicle's extra per-round delay in seconds (stragglers — zero for a
// punctual vehicle); the round closes when K+D uploads have landed, so
// its latency is the (K+D)-th smallest arrival time plus the fusion
// centre's decode. The EXPERIMENTS straggler-latency curve sweeps D
// through this model next to the measured engine.
func RoundLatency(scen latency.Scenario, p latency.Params, budget int, delays []float64) (float64, error) {
	if len(delays) != scen.Vehicles {
		return 0, fmt.Errorf("node: %d delays for %d vehicles", len(delays), scen.Vehicles)
	}
	b, err := latency.LCoFL(scen, p)
	if err != nil {
		return 0, err
	}
	k := scen.Degree*(scen.Batches-1) + 1
	target := k + budget
	if target < k {
		target = k
	}
	if target > scen.Vehicles {
		target = scen.Vehicles
	}
	arrivals := make([]float64, len(delays))
	for i, d := range delays {
		arrivals[i] = b.VehicleCompute + b.Uplink + d
	}
	sort.Float64s(arrivals)
	return arrivals[target-1] + b.FusionCompute, nil
}
