package node

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// pipelineCase is one cell of the chaos axis of the bit-identity matrix.
type pipelineCase struct {
	name    string
	spec    string
	retry   map[int]bool  // vehicles running under RunVehicleRetry
	timeout time.Duration // round timeout override (0 = session default)
}

// runPipelineSession executes one chaos session and returns its report.
// lockstep selects the legacy engine; mixed pins every even vehicle to
// wire version 2 (the JSON-only build) so the fleet negotiates per
// connection.
func runPipelineSession(t *testing.T, vehicles, rounds, workers int, lockstep, mixed bool, tc pipelineCase) *Report {
	t.Helper()
	s := buildSessionFull(t, vehicles, rounds, 0, nil, workers)
	s.server.cfg.DisablePipeline = lockstep
	if tc.timeout > 0 {
		s.server.cfg.RoundTimeout = tc.timeout
	}
	if mixed {
		for i := range s.clients {
			if i%2 == 0 {
				s.clients[i].ForceVersion = 2
			}
		}
	}
	inj := chaos.New(mustChaosSpec(t, tc.spec), chaos.Options{Sleeper: &obs.ManualSleeper{}})
	return chaosRun(t, s, inj, tc.retry)
}

// TestPipelineBitIdentical pins the tentpole invariant: for every
// schedule (chaos spec), worker count and wire-version mix, the
// pipelined engine produces bit-identical FinalParams — and identical
// recovery counters — to the lock-step engine forced by DisablePipeline.
func TestPipelineBitIdentical(t *testing.T) {
	const vehicles, rounds = 12, 3
	cases := []pipelineCase{
		// One silently dropped upload: a timeout-closed round with a
		// straggler, recovered next round.
		{name: "drop", spec: "seed=3;drop.upload@3=1:max=1", timeout: time.Second},
		// Injected upload delays (recorded, not slept, so schedules stay
		// deterministic) exercise the arrival-order machinery.
		{name: "delay", spec: "seed=4;delay.upload=0.5:10ms"},
		// Corrupt frames with bounded retransmits plus a crash-and-rejoin
		// whose upload is only ever delivered through the rejoin resend.
		{name: "crash", spec: "seed=9;corrupt.upload=0.3:max=1;crash@4=before-upload:2",
			retry: map[int]bool{4: true}},
	}
	for _, tc := range cases {
		for _, mixed := range []bool{false, true} {
			base := runPipelineSession(t, vehicles, rounds, 1, true, mixed, tc)
			if base.Rounds != rounds {
				t.Fatalf("%s mixed=%v: lock-step rounds = %d", tc.name, mixed, base.Rounds)
			}
			for _, workers := range []int{1, 2, 8} {
				rep := runPipelineSession(t, vehicles, rounds, workers, false, mixed, tc)
				if !sameBits(rep.FinalParams, base.FinalParams) {
					t.Errorf("%s mixed=%v workers=%d: pipelined FinalParams diverged from lock-step",
						tc.name, mixed, workers)
				}
				// RecvErrors is compared only for crash-free specs: whether
				// the fusion centre's receiver observes a killed conn's EOF
				// before the rejoin replaces it is a scheduling race in BOTH
				// engines (TestChaosRecoveryBitIdentical omits it likewise).
				if tc.retry == nil && rep.RecvErrors != base.RecvErrors {
					t.Errorf("%s mixed=%v workers=%d: recv errors %d, lock-step %d",
						tc.name, mixed, workers, rep.RecvErrors, base.RecvErrors)
				}
				if rep.Rounds != base.Rounds ||
					rep.Stragglers != base.Stragglers ||
					rep.CorruptFrames != base.CorruptFrames ||
					rep.Retransmits != base.Retransmits ||
					rep.Rejoins != base.Rejoins ||
					rep.DegradedRounds != base.DegradedRounds {
					t.Errorf("%s mixed=%v workers=%d: recovery counters diverged:\npipelined %+v\nlock-step %+v",
						tc.name, mixed, workers, rep, base)
				}
				if len(rep.SuspectedMalicious) != len(base.SuspectedMalicious) {
					t.Errorf("%s mixed=%v workers=%d: flagged %v, lock-step %v",
						tc.name, mixed, workers, rep.SuspectedMalicious, base.SuspectedMalicious)
				}
			}
		}
	}
}

// deferConn holds back every upload until the NEXT broadcast arrives,
// making its vehicle a deterministic straggler: its uploads always land
// one round late (stale), so a budget-closed round's excluded set is a
// fixed pair of vehicles rather than a scheduling race.
type deferConn struct {
	transport.Conn
	pending *protocol.Message
}

func (c *deferConn) Send(m *protocol.Message) error {
	if m.Upload != nil {
		c.pending = m
		return nil
	}
	return c.Conn.Send(m)
}

func (c *deferConn) Recv() (*protocol.Message, error) {
	m, err := c.Conn.Recv()
	if err == nil && m.Broadcast != nil && c.pending != nil {
		late := c.pending
		c.pending = nil
		if err := c.Conn.Send(late); err != nil {
			return nil, err
		}
	}
	return m, err
}

// runDeferredSession runs a session where the last two vehicles defer
// every upload one round (deferConn), under the given pipeline knobs.
func runDeferredSession(t *testing.T, vehicles, rounds, workers, waitBudget, window int, o *obs.Obs) *Report {
	t.Helper()
	s := buildSessionFull(t, vehicles, rounds, 0, o, workers)
	s.server.cfg.WaitBudget = waitBudget
	if window > 0 {
		s.server.cfg.PipelineWindow = window
	}
	var wg sync.WaitGroup
	for i := range s.clients {
		wg.Add(1)
		conn := s.vconns[i]
		if i >= vehicles-2 {
			conn = &deferConn{Conn: conn}
		}
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			if err := RunVehicle(conn, s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i, conn)
	}
	report, err := s.server.Run(s.conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return report
}

// TestPipelineEarlyClose pins the wait-budget close: with the last two
// vehicles always a round late and WaitBudget=2 (close at K+2 — exactly
// the punctual fleet), every round closes by budget with the same two
// vehicles excluded, so the outcome is deterministic: bit-identical
// FinalParams across worker counts, stragglers = 2 per round, and
// node.early_closes = rounds.
func TestPipelineEarlyClose(t *testing.T) {
	const vehicles, rounds = 12, 3 // K = 8, punctual fleet = 10 = K+2
	reg := obs.NewRegistry()
	o := obs.New(reg, nil, nil)
	base := runDeferredSession(t, vehicles, rounds, 1, 2, 0, o)
	if got := reg.Counter("node.early_closes").Value(); got != rounds {
		t.Errorf("node.early_closes = %d, want %d", got, rounds)
	}
	if base.Stragglers != 2*rounds {
		t.Errorf("stragglers = %d, want %d", base.Stragglers, 2*rounds)
	}
	if base.DegradedRounds != 0 {
		t.Errorf("degraded rounds = %d", base.DegradedRounds)
	}
	for _, workers := range []int{2, 8} {
		rep := runDeferredSession(t, vehicles, rounds, workers, 2, 0, nil)
		if !sameBits(rep.FinalParams, base.FinalParams) {
			t.Errorf("workers=%d: budget-closed run not deterministic", workers)
		}
		if rep.Stragglers != base.Stragglers {
			t.Errorf("workers=%d: stragglers %d, want %d", workers, rep.Stragglers, base.Stragglers)
		}
	}
}

// TestPipelineWindowWithholding pins the bounded in-flight window: with
// PipelineWindow=1 the two behind vehicles exceed the window after the
// first budget close, their broadcasts are withheld (they are not even
// outstanding, so later rounds close as "all" without waiting), and the
// session still terminates cleanly — Finished reaches the withheld
// vehicles too.
func TestPipelineWindowWithholding(t *testing.T) {
	const vehicles, rounds = 12, 4
	reg := obs.NewRegistry()
	o := obs.New(reg, nil, nil)
	rep := runDeferredSession(t, vehicles, rounds, 1, 2, 1, o)
	if rep.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", rep.Rounds, rounds)
	}
	// Round 1 closes by budget (the deferring pair still outstanding);
	// from round 2 on they are withheld, so the collect loop drains the
	// punctual fleet and exits naturally — no further early closes.
	if got := reg.Counter("node.early_closes").Value(); got != 1 {
		t.Errorf("node.early_closes = %d, want 1", got)
	}
	if rep.Stragglers != 2*rounds {
		t.Errorf("stragglers = %d, want %d", rep.Stragglers, 2*rounds)
	}
	if rep.DegradedRounds != 0 {
		t.Errorf("degraded rounds = %d", rep.DegradedRounds)
	}
}
