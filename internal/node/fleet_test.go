package node

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/protocol"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// fleetScenario builds one independent ServerConfig plus vehicle client
// configs per session ID. Every session gets its own dataset and seeds
// (derived from its index) so per-session aggregates are distinguishable
// — a routing bug that crosses sessions cannot produce matching params.
func fleetScenario(t testing.TB, ids []string, vehicles, rounds int) (map[string]ServerConfig, map[string][]ClientConfig) {
	t.Helper()
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: 8 * 24, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	refX := refDS.Features()
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make(map[string]ServerConfig, len(ids))
	clients := make(map[string][]ClientConfig, len(ids))
	for j, id := range ids {
		seed := int64(300 + 10*j)
		ds, err := traffic.Generate(traffic.GenConfig{Rows: 600, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		parts, err := ds.PartitionIID(vehicles, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		cfgs[id] = ServerConfig{
			FL: fl.Config{
				InputSize:     traffic.NumFeatures,
				LocalEpochs:   2,
				LocalRate:     0.2,
				DistillEpochs: 8,
				DistillRate:   0.2,
				ServerStep:    0.5,
				Seed:          seed + 2,
			},
			// NumBatches = vehicles keeps the recover threshold K = V, so
			// even one-vehicle sessions are schedulable (192 ref rows divide
			// evenly by every fleet size used here).
			Scheme: core.SchemeConfig{
				NumVehicles: vehicles, NumBatches: vehicles, Degree: 1, Seed: seed + 3,
			},
			RefX:             refX,
			ActivationCoeffs: p,
			Rounds:           rounds,
			RoundTimeout:     10 * time.Second,
		}
		cc := make([]ClientConfig, vehicles)
		for i := 0; i < vehicles; i++ {
			cc[i] = ClientConfig{VehicleID: i, SessionID: id, Data: parts[i], Seed: seed + int64(50+i)}
		}
		clients[id] = cc
	}
	return cfgs, clients
}

// runFleetVehicles drives every session's vehicles over the fabric and
// reports the first vehicle error.
func runFleetVehicles(fab *transport.PipeFabric, clients map[string][]ClientConfig, ids []string) error {
	errCh := make(chan error, 256)
	var wg sync.WaitGroup
	for _, id := range ids {
		for _, cc := range clients[id] {
			wg.Add(1)
			go func(cc ClientConfig) {
				defer wg.Done()
				conn, err := fab.Dial()
				if err != nil {
					errCh <- fmt.Errorf("vehicle %s/%d dial: %w", cc.SessionID, cc.VehicleID, err)
					return
				}
				defer conn.Close()
				if err := RunVehicle(conn, cc); err != nil {
					errCh <- fmt.Errorf("vehicle %s/%d: %w", cc.SessionID, cc.VehicleID, err)
				}
			}(cc)
		}
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// TestFleetMultiSessionRouting: three concurrent sessions behind one
// fabric, one of them reached through the default-session route by a
// vehicle pinned to wire revision 2. Every session completes, and the
// routed session's final parameters are bit-identical to the same
// session run solo on a dedicated server.
func TestFleetMultiSessionRouting(t *testing.T) {
	ids := []string{"alpha", "beta", "gamma"}
	const vehicles, rounds = 3, 2
	cfgs, clients := fleetScenario(t, ids, vehicles, rounds)
	// Session gamma is the default: its vehicles omit the session ID, and
	// one of them speaks the pre-fleet JSON dialect.
	gc := clients["gamma"]
	for i := range gc {
		gc[i].SessionID = ""
	}
	gc[0].ForceVersion = 2

	fleet, err := NewFleet(FleetConfig{Sessions: cfgs, DefaultSession: "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewPipeFabric(0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fleet.Serve(fab) }()
	if err := runFleetVehicles(fab, clients, ids); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("fleet serve: %v", err)
	}

	results := fleet.Results()
	for _, id := range ids {
		r := results[id]
		if r.Err != nil {
			t.Fatalf("session %s: %v", id, r.Err)
		}
		if r.Report == nil || r.Report.Rounds != rounds {
			t.Fatalf("session %s report = %+v", id, r.Report)
		}
	}
	// Distinct sessions must have produced distinct models.
	pa, pb := results["alpha"].Report.FinalParams, results["beta"].Report.FinalParams
	same := len(pa) == len(pb)
	for i := range pa {
		if !same || pa[i] != pb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sessions alpha and beta produced identical params — routing crossed sessions?")
	}

	// Bit-identity: session beta solo, on a dedicated server over plain
	// pipes, must match the fleet run exactly.
	solo, err := NewServer(cfgs["beta"])
	if err != nil {
		t.Fatal(err)
	}
	var sconns []transport.Conn
	var wg sync.WaitGroup
	for i := 0; i < vehicles; i++ {
		sv, vc := transport.Pipe()
		sconns = append(sconns, sv)
		cc := clients["beta"][i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer vc.Close()
			if err := RunVehicle(vc, cc); err != nil {
				t.Errorf("solo vehicle %d: %v", cc.VehicleID, err)
			}
		}()
	}
	soloReport, err := solo.Run(sconns)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	fp, sp := results["beta"].Report.FinalParams, soloReport.FinalParams
	if len(fp) != len(sp) {
		t.Fatalf("param length %d vs solo %d", len(fp), len(sp))
	}
	for i := range fp {
		if fp[i] != sp[i] {
			t.Fatalf("param %d: fleet %v vs solo %v — fleet run not bit-identical", i, fp[i], sp[i])
		}
	}

	st := fleet.Status()
	if st.Live != 0 || st.Committed != 0 {
		t.Fatalf("drained fleet status live=%d committed=%d", st.Live, st.Committed)
	}
	if st.Admitted != len(ids)*vehicles {
		t.Fatalf("admitted %d, want %d", st.Admitted, len(ids)*vehicles)
	}
	for _, ss := range st.Sessions {
		if ss.State != "done" {
			t.Fatalf("session %s state %q after serve returned", ss.ID, ss.State)
		}
	}
}

// waitFleet spins until the fleet snapshot satisfies cond; the go test
// timeout bounds a condition that never comes true.
func waitFleet(f *Fleet, cond func(FleetStatus) bool) {
	for !cond(f.Status()) {
		runtime.Gosched()
	}
}

// dialHello opens a raw fabric connection and sends one hello.
func dialHello(t *testing.T, fab *transport.PipeFabric, ver int, sessionID string, vid int) transport.Conn {
	t.Helper()
	conn, err := fab.Dial()
	if err != nil {
		t.Fatal(err)
	}
	err = conn.Send(&protocol.Message{Hello: &protocol.Hello{
		Version: ver, VehicleID: vid, SessionID: sessionID,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestFleetAdmissionRejectedCleanly: every rejection class is answered
// with an explicit frame in the newest dialect the peer speaks — never a
// silent hang or a bare connection reset.
func TestFleetAdmissionRejectedCleanly(t *testing.T) {
	cfgs, clients := fleetScenario(t, []string{"main"}, 2, 1)
	fleet, err := NewFleet(FleetConfig{Sessions: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewPipeFabric(0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fleet.Serve(fab) }()

	// Unknown session at v5: Admission with a reason, no retry hint.
	conn := dialHello(t, fab, protocol.Version, "nope", 0)
	m, err := conn.Recv()
	if err != nil || m.Admission == nil {
		t.Fatalf("unknown-session answer = %+v, %v", m, err)
	}
	if m.Admission.Queued || m.Admission.Retry || !strings.Contains(m.Admission.Reason, "nope") {
		t.Fatalf("unknown-session admission = %+v", m.Admission)
	}
	_ = conn.Close()

	// A v4 peer with no default session configured: the Error message its
	// revision already understands.
	conn = dialHello(t, fab, protocol.FleetVersion-1, "", 0)
	m, err = conn.Recv()
	if err != nil || m.Error == nil || m.Error.Reason == "" {
		t.Fatalf("v4 reject answer = %+v, %v", m, err)
	}
	_ = conn.Close()

	// Out-of-range vehicle ID for a known session.
	conn = dialHello(t, fab, protocol.Version, "main", 7)
	m, err = conn.Recv()
	if err != nil || m.Admission == nil || m.Admission.Retry {
		t.Fatalf("out-of-range answer = %+v, %v", m, err)
	}
	_ = conn.Close()

	// Duplicate vehicle ID while gathering: first conn holds the slot,
	// second is refused. Wait for the first admission to land — the two
	// handshakes would otherwise race for the slot.
	held := dialHello(t, fab, protocol.Version, "main", 0)
	waitFleet(fleet, func(st FleetStatus) bool { return st.Admitted == 1 })
	dup := dialHello(t, fab, protocol.Version, "main", 0)
	m, err = dup.Recv()
	if err != nil || m.Admission == nil || !strings.Contains(m.Admission.Reason, "already connected") {
		t.Fatalf("duplicate answer = %+v, %v", m, err)
	}
	_ = dup.Close()

	// The vehicle-facing view: RunVehicle against a bad session ID fails
	// with a permanent, reasoned error rather than hanging.
	cc := clients["main"][1]
	cc.SessionID = "missing"
	vconn, err := fab.Dial()
	if err != nil {
		t.Fatal(err)
	}
	verr := RunVehicle(vconn, cc)
	if verr == nil || IsTransient(verr) || !strings.Contains(verr.Error(), "missing") {
		t.Fatalf("vehicle reject error = %v", verr)
	}
	_ = vconn.Close()

	st := fleet.Status()
	if st.Rejected != 5 {
		t.Fatalf("rejected tally %d, want 5", st.Rejected)
	}
	_ = held.Close()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve after close: %v", err)
	}
}

// TestFleetBudgetQueueing: with budget for only one session at a time,
// the second session's vehicles park in the admission queue (answered
// with an explicit Admission{Queued}) and are admitted when the first
// session completes and releases its chunk. Both sessions finish.
func TestFleetBudgetQueueing(t *testing.T) {
	ids := []string{"s0", "s1"}
	const vehicles, rounds = 2, 2
	cfgs, clients := fleetScenario(t, ids, vehicles, rounds)
	fleet, err := NewFleet(FleetConfig{
		Sessions:   cfgs,
		MaxConns:   vehicles, // one session's complement — the other must wait
		QueueDepth: 2 * vehicles,
	})
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewPipeFabric(0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fleet.Serve(fab) }()
	if err := runFleetVehicles(fab, clients, ids); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("fleet serve: %v", err)
	}
	results := fleet.Results()
	for _, id := range ids {
		if r := results[id]; r.Err != nil || r.Report == nil || r.Report.Rounds != rounds {
			t.Fatalf("session %s: report=%+v err=%v", id, r.Report, r.Err)
		}
	}
	st := fleet.Status()
	if st.QueuedTotal < 1 {
		t.Fatalf("queued total %d — budget pressure never queued anyone", st.QueuedTotal)
	}
	if st.Admitted != 2*vehicles {
		t.Fatalf("admitted %d, want %d", st.Admitted, 2*vehicles)
	}
}

// TestFleetBudgetRejectsWhenQueueDisabled: with no queue, a session that
// cannot reserve budget is refused with the retry hint, and the refusal
// is the explicit v5 Admission frame.
func TestFleetBudgetRejectsWhenQueueDisabled(t *testing.T) {
	cfgs, _ := fleetScenario(t, []string{"s0", "s1"}, 2, 1)
	fleet, err := NewFleet(FleetConfig{Sessions: cfgs, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewPipeFabric(0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fleet.Serve(fab) }()

	// First conn reserves s0's full complement; s1 then cannot reserve.
	held := dialHello(t, fab, protocol.Version, "s0", 0)
	waitFleet(fleet, func(st FleetStatus) bool { return st.Committed == 2 })
	starved := dialHello(t, fab, protocol.Version, "s1", 0)
	m, err := starved.Recv()
	if err != nil || m.Admission == nil {
		t.Fatalf("starved answer = %+v, %v", m, err)
	}
	if !m.Admission.Retry || m.Admission.Queued {
		t.Fatalf("starved admission = %+v, want retry-reject", m.Admission)
	}
	_ = starved.Close()
	_ = held.Close()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve after close: %v", err)
	}
	if st := fleet.Status(); st.Rejected != 1 {
		t.Fatalf("rejected tally %d, want 1", st.Rejected)
	}
}

// TestFleetLateDialerGetsFinished: a vehicle reconnecting after its
// session completed is answered with Finished, whichever side of the
// running→done transition its hello lands on.
func TestFleetLateDialerGetsFinished(t *testing.T) {
	cfgs, clients := fleetScenario(t, []string{"fast", "idle"}, 2, 1)
	fleet, err := NewFleet(FleetConfig{Sessions: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewPipeFabric(0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fleet.Serve(fab) }()

	// Run session "fast" to completion; "idle" never fills, keeping the
	// fleet (and its listener) alive for the late dial below.
	if err := runFleetVehicles(fab, clients, []string{"fast"}); err != nil {
		t.Fatal(err)
	}

	late := dialHello(t, fab, protocol.Version, "fast", 0)
	m, err := late.Recv()
	if err != nil {
		t.Fatal(err)
	}
	// The hello may land while the session is still technically running
	// (Server.Rejoin then answers Finished itself) or after it is marked
	// done (the fleet answers directly) — both must yield Finished,
	// possibly after revival frames sent during teardown.
	for i := 0; m.Finished == nil && i < 8; i++ {
		if m, err = late.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Finished == nil || m.Finished.Rounds != 1 {
		t.Fatalf("late dialer answer = %+v", m)
	}
	_ = late.Close()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	<-serveErr
}
