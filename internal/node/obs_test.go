package node

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// TestReportRecvErrorsOnConnectionBreak kills one vehicle's connection
// mid-session and checks the break is visible in all three ledgers: the
// Report field, the node.recv_errors counter, and node.recv_error trace
// events (PR goal: receive errors used to vanish into the straggler
// path without a trace).
func TestReportRecvErrorsOnConnectionBreak(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	clk := &obs.ManualClock{}
	o := obs.New(reg, obs.NewTracer(&buf, clk), clk)

	s := buildSessionObs(t, 20, 3, 0, o)
	s.server.cfg.RoundTimeout = 300 * time.Millisecond

	var wg sync.WaitGroup
	for i := range s.clients {
		wg.Add(1)
		if i == 7 {
			// Handshakes, receives the setup and the first broadcast,
			// then drops the connection without uploading.
			go func(i int) {
				defer wg.Done()
				conn := s.vconns[i]
				if err := conn.Send(&protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: i}}); err != nil {
					t.Errorf("crasher hello: %v", err)
					return
				}
				if _, err := conn.Recv(); err != nil { // Setup
					return
				}
				if _, err := conn.Recv(); err != nil { // Broadcast round 1
					return
				}
				conn.Close()
			}(i)
			continue
		}
		go func(i int) {
			defer wg.Done()
			if err := RunVehicle(s.vconns[i], s.clients[i]); err != nil {
				t.Errorf("vehicle %d: %v", i, err)
			}
		}(i)
	}
	report, err := s.server.Run(s.conns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if report.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 despite the broken connection", report.Rounds)
	}
	if report.RecvErrors < 1 {
		t.Fatalf("RecvErrors = %d, want >= 1 after a mid-session close", report.RecvErrors)
	}
	if got := reg.Counter("node.recv_errors").Value(); got != int64(report.RecvErrors) {
		t.Errorf("node.recv_errors counter = %d, Report.RecvErrors = %d", got, report.RecvErrors)
	}

	if err := o.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	var recvErrorEvents int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec["ev"] == "node.recv_error" {
			recvErrorEvents++
			if v, _ := rec["vehicle"].(float64); int(v) != 7 {
				t.Errorf("recv_error blamed vehicle %v, want 7", rec["vehicle"])
			}
		}
	}
	if recvErrorEvents != report.RecvErrors {
		t.Errorf("trace has %d node.recv_error events, Report.RecvErrors = %d", recvErrorEvents, report.RecvErrors)
	}
	// The handshake relabels the instrumented conn from its accept-order
	// name to the vehicle ID, so the crasher's traffic must be attributed
	// to vehicle-7 rather than conn-7.
	if !strings.Contains(buf.String(), `"peer":"vehicle-7"`) {
		t.Error("trace never attributed traffic to vehicle-7 after the handshake relabel")
	}
}
