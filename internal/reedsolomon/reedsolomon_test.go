package reedsolomon

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/poly"
)

// corrupt flips e distinct positions of ys to random wrong values.
func corrupt(rng *rand.Rand, ys []field.Element, e int) []int {
	pos := rng.Perm(len(ys))[:e]
	for _, p := range pos {
		for {
			v := field.Rand(rng)
			if v != ys[p] {
				ys[p] = v
				break
			}
		}
	}
	return pos
}

func randomCodeword(rng *rand.Rand, n, k int) (poly.Poly, []field.Element, []field.Element) {
	coeffs := make([]field.Element, k)
	for i := range coeffs {
		coeffs[i] = field.Rand(rng)
	}
	f := poly.New(coeffs...)
	xs := field.RandDistinct(rng, n, nil)
	return f, xs, f.EvalMany(xs)
}

func TestMaxErrors(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{100, 46, 27}, // paper setting: M=16, deg 3 → K=46, V=100 → E=27
		{100, 31, 34}, // degree 2
		{100, 16, 42}, // degree 1
		{10, 10, 0},
		{5, 6, -1},
	}
	for _, tt := range tests {
		if got := MaxErrors(tt.n, tt.k); got != tt.want {
			t.Errorf("MaxErrors(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestDecodeNoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f, xs, ys := randomCodeword(rng, 20, 5)
	res, err := Decode(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poly.Equal(f) {
		t.Fatalf("decoded %v, want %v", res.Poly, f)
	}
	if len(res.ErrorPositions) != 0 {
		t.Errorf("spurious error positions %v", res.ErrorPositions)
	}
}

func TestDecodeCorrectsUpToBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(40)
		k := 1 + rng.Intn(n/2)
		emax := MaxErrors(n, k)
		e := rng.Intn(emax + 1)
		f, xs, ys := randomCodeword(rng, n, k)
		wantPos := corrupt(rng, ys, e)
		res, err := Decode(xs, ys, k)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d e=%d): %v", trial, n, k, e, err)
		}
		if !res.Poly.Equal(f) {
			t.Fatalf("trial %d: wrong polynomial", trial)
		}
		if len(res.ErrorPositions) != e {
			t.Fatalf("trial %d: located %d errors, want %d", trial, len(res.ErrorPositions), e)
		}
		want := map[int]bool{}
		for _, p := range wantPos {
			want[p] = true
		}
		for _, p := range res.ErrorPositions {
			if !want[p] {
				t.Fatalf("trial %d: false error position %d", trial, p)
			}
		}
	}
}

func TestDecodeBeyondBudgetFails(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 20, 10
	emax := MaxErrors(n, k) // 5
	f, xs, ys := randomCodeword(rng, n, k)
	corrupt(rng, ys, emax+1)
	res, err := Decode(xs, ys, k)
	// Either a detected failure, or (rarely) a *different* consistent
	// codeword; it must never silently return the original with wrong
	// error accounting.
	if err == nil {
		if res.Poly.Equal(f) && len(res.ErrorPositions) != emax+1 {
			t.Fatalf("silent mis-decode: %v", res)
		}
	} else if !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestDecodePaperScale(t *testing.T) {
	// The paper's headline configuration: V=100 vehicles, M=16 batches,
	// activation degree 3 → composed degree 45, K=46, E-security 27.
	rng := rand.New(rand.NewSource(4))
	n, k := 100, 46
	f, xs, ys := randomCodeword(rng, n, k)
	corrupt(rng, ys, 27)
	res, err := Decode(xs, ys, k)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poly.Equal(f) {
		t.Fatal("failed to correct 27 errors at paper scale")
	}
	if len(res.ErrorPositions) != 27 {
		t.Fatalf("found %d error positions, want 27", len(res.ErrorPositions))
	}
}

func TestDecodeZeroWord(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := field.RandDistinct(rng, 8, nil)
	ys := make([]field.Element, 8)
	res, err := Decode(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poly.IsZero() {
		t.Fatalf("zero word decoded to %v", res.Poly)
	}
}

func TestDecodeValidation(t *testing.T) {
	xs := []field.Element{field.New(1), field.New(2)}
	ys := []field.Element{field.New(1)}
	if _, err := Decode(xs, ys, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Decode(xs, xs, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Decode(xs, xs, 3); err == nil {
		t.Error("n<k accepted")
	}
	dup := []field.Element{field.New(1), field.New(1)}
	if _, err := Decode(dup, dup, 1); err == nil {
		t.Error("duplicate points accepted")
	}
}

func TestDecodeErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f, xs, ys := randomCodeword(rng, 15, 6)
	present := make([]bool, 15)
	for _, i := range rng.Perm(15)[:8] { // 8 ≥ k=6 present
		present[i] = true
	}
	got, err := DecodeErasures(xs, ys, present, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatalf("erasure decode mismatch")
	}
}

func TestDecodeErasuresTooFew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, xs, ys := randomCodeword(rng, 10, 6)
	present := make([]bool, 10)
	present[0], present[1] = true, true
	if _, err := DecodeErasures(xs, ys, present, 6); err == nil {
		t.Error("under-determined erasure decode accepted")
	}
}

func TestDecodeErasuresDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, xs, ys := randomCodeword(rng, 10, 4)
	present := make([]bool, 10)
	for i := range present {
		present[i] = true
	}
	ys[3] = ys[3].Add(field.One) // silent corruption
	if _, err := DecodeErasures(xs, ys, present, 4); err == nil {
		t.Error("corrupted erasure decode accepted")
	}
}

func TestDecodeErasuresValidation(t *testing.T) {
	if _, err := DecodeErasures(nil, nil, []bool{true}, 1); err == nil {
		t.Error("inconsistent lengths accepted")
	}
}

// --- real-valued robust decoding ---

func realCodeword(rng *rand.Rand, n, k int) (poly.Real, []float64, []float64) {
	coefs := make([]float64, k)
	for i := range coefs {
		coefs[i] = rng.NormFloat64()
	}
	f := poly.NewReal(coefs...)
	// Use spread points in [-1, 1] to keep the Vandermonde well-behaved.
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = -1 + 2*float64(i)/float64(n-1) + 1e-3*rng.Float64()
	}
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = f.Eval(xs[i])
	}
	return f, xs, ys
}

func TestDecodeRealRobustClean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f, xs, ys := realCodeword(rng, 30, 5)
	res, err := DecodeRealRobust(xs, ys, 5, RealOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) != 0 {
		t.Errorf("clean word flagged outliers %v", res.Outliers)
	}
	for _, x := range []float64{-0.9, -0.3, 0, 0.4, 0.9} {
		if math.Abs(res.Poly.Eval(x)-f.Eval(x)) > 1e-8 {
			t.Errorf("p(%g) = %g, want %g", x, res.Poly.Eval(x), f.Eval(x))
		}
	}
}

func TestDecodeRealRobustWithGrossErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f, xs, ys := realCodeword(rng, 40, 6)
	// Honest small noise + 8 gross errors (budget is (40-6)/2 = 17).
	for i := range ys {
		ys[i] += 1e-6 * rng.NormFloat64()
	}
	bad := rng.Perm(40)[:8]
	for _, i := range bad {
		ys[i] += 5 + rng.Float64()*10
	}
	res, err := DecodeRealRobust(xs, ys, 6, RealOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	badSet := map[int]bool{}
	for _, i := range bad {
		badSet[i] = true
	}
	if len(res.Outliers) != len(bad) {
		t.Fatalf("flagged %d outliers, want %d (flagged=%v)", len(res.Outliers), len(bad), res.Outliers)
	}
	for _, i := range res.Outliers {
		if !badSet[i] {
			t.Errorf("false positive outlier %d", i)
		}
	}
	for _, x := range []float64{-0.8, -0.2, 0.1, 0.6, 0.95} {
		if math.Abs(res.Poly.Eval(x)-f.Eval(x)) > 1e-4 {
			t.Errorf("p(%g) = %g, want %g", x, res.Poly.Eval(x), f.Eval(x))
		}
	}
}

func TestDecodeRealRobustTooManyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, xs, ys := realCodeword(rng, 20, 10)
	// Corrupt 60% of points with dispersed values: no consensus survives.
	// The explicit threshold encodes the caller's knowledge of the honest
	// noise floor (≈0 here) — required to detect majority garbage.
	for _, i := range rng.Perm(20)[:12] {
		ys[i] = rng.NormFloat64() * 100
	}
	if _, err := DecodeRealRobust(xs, ys, 10, RealOptions{InlierThreshold: 0.5}); err == nil {
		t.Error("expected failure beyond real error budget")
	}
}

func TestDecodeRealRobustValidation(t *testing.T) {
	if _, err := DecodeRealRobust([]float64{1}, []float64{1, 2}, 1, RealOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := DecodeRealRobust([]float64{1}, []float64{1}, 0, RealOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := DecodeRealRobust([]float64{1}, []float64{1}, 2, RealOptions{}); err == nil {
		t.Error("n<k accepted")
	}
}

func TestDecodeRealRobustDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	_, xs, ys := realCodeword(rng, 25, 4)
	for _, i := range rng.Perm(25)[:5] {
		ys[i] += 50
	}
	a, err := DecodeRealRobust(xs, ys, 4, RealOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeRealRobust(xs, ys, 4, RealOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Poly.Coef {
		if a.Poly.Coef[i] != b.Poly.Coef[i] {
			t.Fatal("same seed produced different decodes")
		}
	}
}

func TestMedianOf(t *testing.T) {
	if got := medianOf([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g", got)
	}
	if got := medianOf([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	if got := medianOf(nil); got != 0 {
		t.Errorf("empty median = %g", got)
	}
}

func BenchmarkDecodeV100K46E27(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	_, xs, ys := randomCodeword(rng, 100, 46)
	corrupt(rng, ys, 27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(xs, ys, 46); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRealRobustV100(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	_, xs, ys := realCodeword(rng, 100, 16)
	for _, i := range rng.Perm(100)[:20] {
		ys[i] += 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRealRobust(xs, ys, 16, RealOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
