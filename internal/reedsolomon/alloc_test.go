package reedsolomon

import (
	"math/rand"
	"testing"

	"repro/internal/field"
)

// Steady-state allocation pins (ISSUE 7): after warmup the decoder hot
// paths run on pooled scratch and may allocate only what the caller
// keeps. The bounds carry a little headroom over the measured values
// (Decode: 3 — Result, Poly, ErrorPositions; DecodeBatch at S=32: ~11 —
// result/errs slices, three per-call slabs, the recovery dispatcher and
// one BatchInv prefix inside the combined decode) because a GC run can
// clear a sync.Pool mid-measurement; they still sit far below the
// pre-optimisation counts (per-slot interpolation and Euclid chains:
// hundreds per call).

func TestDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(11))
	const n, k = 100, 46
	e := MaxErrors(n, k)
	xs, words := batchWords(rng, n, k, 1, e, true)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	w := words[0]
	for i := 0; i < 3; i++ { // warm the gao scratch pool
		if _, err := d.Decode(w); err != nil {
			t.Fatal(err)
		}
	}
	var res *Result
	avg := testing.AllocsPerRun(100, func() {
		var err error
		res, err = d.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(res.ErrorPositions) != e {
		t.Fatalf("decode found %d errors, want %d", len(res.ErrorPositions), e)
	}
	if avg > 6 {
		t.Errorf("Decode allocates %.1f times per call, want <= 6", avg)
	}
}

func TestDecodeBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(12))
	const n, k, S = 100, 46, 32
	e := MaxErrors(n, k)
	xs, words := batchWords(rng, n, k, S, e, true)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	src := field.NewSeededSource(5)
	for i := 0; i < 3; i++ { // warm the batch scratch and accumulator pools
		if _, _, stats := d.DecodeBatch(words, src, 1); stats.Recovered != S {
			t.Fatalf("warmup: fast path disengaged: %+v", stats)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		_, _, stats := d.DecodeBatch(words, src, 1)
		if stats.Recovered != S {
			t.Fatalf("fast path disengaged: %+v", stats)
		}
	})
	// The ISSUE 7 acceptance bar is a >= 10x cut from the 857 allocs/op
	// baseline (<= 85); the measured steady state is ~11.
	if avg > 25 {
		t.Errorf("DecodeBatch allocates %.1f times per call, want <= 25", avg)
	}
}
