package reedsolomon

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/poly"
)

// batchWords builds S received words over the same points: one random
// codeword per slot, with e positions corrupted in every slot. When
// shared is true the corrupted positions are the same across slots (the
// L-CoFL threat model: a malicious worker lies in every slot), otherwise
// each slot draws its own positions.
func batchWords(rng *rand.Rand, n, k, S, e int, shared bool) (xs []field.Element, words [][]field.Element) {
	xs = field.RandDistinct(rng, n, nil)
	sharedPos := rng.Perm(n)[:e]
	words = make([][]field.Element, S)
	for s := range words {
		coeffs := make([]field.Element, k)
		for i := range coeffs {
			coeffs[i] = field.Rand(rng)
		}
		ys := poly.New(coeffs...).EvalMany(xs)
		pos := sharedPos
		if !shared {
			pos = rng.Perm(n)[:e]
		}
		for _, p := range pos {
			for {
				v := field.Rand(rng)
				if v != ys[p] {
					ys[p] = v
					break
				}
			}
		}
		words[s] = ys
	}
	return xs, words
}

// assertBatchMatchesPerSlot checks every slot of a DecodeBatch call is
// bit-identical to the per-slot Decode: same error value (by message),
// same polynomial, same error positions in the same order.
func assertBatchMatchesPerSlot(t *testing.T, d *Decoder, words [][]field.Element, results []*Result, errs []error) {
	t.Helper()
	for s, w := range words {
		wantRes, wantErr := d.Decode(w)
		gotRes, gotErr := results[s], errs[s]
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("slot %d: batch err %v, per-slot err %v", s, gotErr, wantErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("slot %d: batch err %q, per-slot err %q", s, gotErr, wantErr)
			}
			continue
		}
		if !gotRes.Poly.Equal(wantRes.Poly) {
			t.Fatalf("slot %d: batch poly %v, per-slot poly %v", s, gotRes.Poly, wantRes.Poly)
		}
		if len(gotRes.ErrorPositions) != len(wantRes.ErrorPositions) {
			t.Fatalf("slot %d: batch positions %v, per-slot %v", s, gotRes.ErrorPositions, wantRes.ErrorPositions)
		}
		for i := range gotRes.ErrorPositions {
			if gotRes.ErrorPositions[i] != wantRes.ErrorPositions[i] {
				t.Fatalf("slot %d: batch positions %v, per-slot %v", s, gotRes.ErrorPositions, wantRes.ErrorPositions)
			}
		}
	}
}

func TestDecodeBatchEquivalence(t *testing.T) {
	const n, k, S = 40, 10, 8
	maxE := MaxErrors(n, k)
	for _, workers := range []int{1, 2, 8} {
		for _, shared := range []bool{true, false} {
			for _, e := range []int{0, 1, maxE / 2, maxE, maxE + 3} {
				name := fmt.Sprintf("workers=%d/shared=%v/e=%d", workers, shared, e)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(100*workers + 10*e + btoi(shared))))
					xs, words := batchWords(rng, n, k, S, e, shared)
					d, err := NewDecoder(xs, k)
					if err != nil {
						t.Fatal(err)
					}
					src := field.NewSeededSource(7)
					results, errs, _ := d.DecodeBatch(words, src, workers)
					assertBatchMatchesPerSlot(t, d, words, results, errs)
				})
			}
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestDecodeBatchFastPathEngages(t *testing.T) {
	// Shared error positions within budget: the combined decode locates
	// them and every slot should take the erasure fast path.
	rng := rand.New(rand.NewSource(42))
	const n, k, S = 40, 10, 16
	e := MaxErrors(n, k)
	xs, words := batchWords(rng, n, k, S, e, true)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	_, errs, stats := d.DecodeBatch(words, field.NewSeededSource(1), 1)
	for s, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
	}
	if !stats.CombinedOK {
		t.Fatal("combined decode failed on in-budget shared errors")
	}
	if stats.Recovered != S || stats.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want all %d slots recovered", stats, S)
	}
}

func TestDecodeBatchAllFallBackWhenUnionExceedsBudget(t *testing.T) {
	// Disjoint per-slot error positions whose union exceeds the budget:
	// the combined word is undecodable, so every slot must fall back —
	// and still match the per-slot decoder exactly.
	rng := rand.New(rand.NewSource(43))
	const n, k, S = 40, 10, 12
	maxE := MaxErrors(n, k)
	xs, words := batchWords(rng, n, k, S, maxE, false)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	results, errs, stats := d.DecodeBatch(words, field.NewSeededSource(1), 2)
	if stats.CombinedOK {
		t.Skip("random positions happened to overlap within budget")
	}
	if stats.Fallbacks != S || stats.Recovered != 0 {
		t.Fatalf("stats = %+v, want all %d slots fallen back", stats, S)
	}
	assertBatchMatchesPerSlot(t, d, words, results, errs)
}

func TestDecodeBatchMixedValidAndMalformedSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const n, k = 20, 5
	xs, words := batchWords(rng, n, k, 4, 2, true)
	words[1] = words[1][:n-1] // malformed: short word
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	results, errs, _ := d.DecodeBatch(words, field.NewSeededSource(1), 1)
	if errs[1] == nil || results[1] != nil {
		t.Fatalf("malformed slot: res %v err %v, want length error", results[1], errs[1])
	}
	assertBatchMatchesPerSlot(t, d, words, results, errs)
}

func TestDecodeBatchSmallBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const n, k = 20, 5
	xs, words := batchWords(rng, n, k, 3, 2, true)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	// Empty batch.
	results, errs, stats := d.DecodeBatch(nil, field.NewSeededSource(1), 1)
	if len(results) != 0 || len(errs) != 0 || stats.Recovered+stats.Fallbacks != 0 {
		t.Fatalf("empty batch: results=%v errs=%v stats=%+v", results, errs, stats)
	}
	// Single word: combination buys nothing, expect a per-slot fallback.
	results, errs, stats = d.DecodeBatch(words[:1], field.NewSeededSource(1), 1)
	if stats.Fallbacks != 1 || stats.Recovered != 0 {
		t.Fatalf("single word stats = %+v, want one fallback", stats)
	}
	assertBatchMatchesPerSlot(t, d, words[:1], results, errs)
}

func TestDecodeBatchZeroWords(t *testing.T) {
	// All-zero words decode to the nil polynomial with no error positions,
	// exactly as Decode does.
	rng := rand.New(rand.NewSource(46))
	const n, k, S = 20, 5, 4
	xs := field.RandDistinct(rng, n, nil)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	words := make([][]field.Element, S)
	for s := range words {
		words[s] = make([]field.Element, n)
	}
	results, errs, _ := d.DecodeBatch(words, field.NewSeededSource(1), 1)
	for s := range words {
		if errs[s] != nil {
			t.Fatalf("slot %d: %v", s, errs[s])
		}
		if results[s].Poly != nil || results[s].ErrorPositions != nil {
			t.Fatalf("slot %d: %+v, want nil poly and positions", s, *results[s])
		}
	}
	assertBatchMatchesPerSlot(t, d, words, results, errs)
}

func TestDecodeBatchManySeeds(t *testing.T) {
	// The combination coefficients must never affect results, only the
	// fast-path rate: sweep sources and check equivalence every time.
	rng := rand.New(rand.NewSource(47))
	const n, k, S = 30, 7, 6
	e := MaxErrors(n, k)
	xs, words := batchWords(rng, n, k, S, e, true)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		results, errs, _ := d.DecodeBatch(words, field.NewSeededSource(seed), 3)
		assertBatchMatchesPerSlot(t, d, words, results, errs)
	}
}

// BenchmarkDecodeBatch compares batch decoding against per-slot Decode at
// the paper scale (V=100, K=46) for growing slot counts. The batch mode
// amortises the single O(V³)-class locator decode over S slots of O(V·K)
// erasure recovery, so its advantage grows with S.
func BenchmarkDecodeBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(48))
	const n, k = 100, 46
	e := MaxErrors(n, k)
	for _, S := range []int{8, 32} {
		xs, words := batchWords(rng, n, k, S, e, true)
		d, err := NewDecoder(xs, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("slots=%d/mode=batch", S), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := field.NewSeededSource(int64(i))
				_, _, stats := d.DecodeBatch(words, src, 1)
				if stats.Recovered != S {
					b.Fatalf("fast path disengaged: %+v", stats)
				}
			}
		})
		b.Run(fmt.Sprintf("slots=%d/mode=perslot", S), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, w := range words {
					if _, err := d.Decode(w); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
