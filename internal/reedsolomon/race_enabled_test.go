//go:build race

package reedsolomon

// raceEnabled gates the exact allocation pins: the race runtime's
// instrumentation allocates on its own behalf and perturbs sync.Pool
// reuse, so AllocsPerRun counts are only meaningful in a plain build
// (which tier-1 and CI both run).
const raceEnabled = true
