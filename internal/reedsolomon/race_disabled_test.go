//go:build !race

package reedsolomon

const raceEnabled = false
