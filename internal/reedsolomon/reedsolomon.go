// Package reedsolomon implements the decoding side of Lagrange coded
// computing (paper §III-B, Decoding).
//
// The fusion centre receives evaluations ỹ_i of an unknown polynomial
// g(z) = C(H(z)) at the worker points ρ_i. With deg(g) ≤ K-1, V workers
// and E erroneous (malicious) results, g is uniquely recoverable whenever
//
//	K + 2E ≤ V        (equivalently paper eq. 6 with K-1 = (M-1)·deg(C))
//
// Three decoders are provided:
//
//   - Decode: exact error correction over GF(p) using Gao's
//     extended-Euclidean formulation of Reed–Solomon decoding (equivalent
//     to Berlekamp–Welch, but branch-free and easier to verify). Used on
//     the fixed-point coded-inference path where honest results are exact.
//   - DecodeErasures: interpolation-only decoding when results are merely
//     missing (stragglers), the first decoding assumption in the paper.
//   - DecodeRealRobust: real-valued decoding for the FL pipeline, where
//     honest results carry small model-heterogeneity noise and malicious
//     results are gross errors. Consensus is found by trimmed least
//     squares and the polynomial refit on the inliers.
//
// The paper's §IV Step 3 also names Forney's algorithm; Forney computes
// error VALUES in syndrome-based decoding of BCH-view Reed–Solomon codes,
// which requires evaluation points that are consecutive powers of a
// primitive root. L-CoFL's evaluation points ρ_i are arbitrary distinct
// field elements (a generalized Reed–Solomon code), so this package uses
// the interpolation-view decoders — Gao's extended-Euclidean formulation
// and the Berlekamp–Welch linear system — which subsume the error-value
// computation.
package reedsolomon

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/field"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/poly"
)

// ErrTooManyErrors is returned when no polynomial consistent with the
// error budget explains the received word.
var ErrTooManyErrors = errors.New("reedsolomon: received word is not decodable within the error budget")

// MaxErrors returns the unique-decoding error budget E for n received
// evaluations of a polynomial of degree ≤ k-1: E = ⌊(n-k)/2⌋.
// This is paper eq. 6 rearranged.
func MaxErrors(n, k int) int {
	if n < k {
		return -1
	}
	return (n - k) / 2
}

// Result reports a successful exact decode.
type Result struct {
	// Poly is the reconstructed polynomial of degree ≤ K-1.
	Poly poly.Poly
	// ErrorPositions lists the indices i whose received value disagreed
	// with Poly(xs[i]) — the detected malicious workers.
	ErrorPositions []int
}

// Decode reconstructs the unique polynomial of degree ≤ k-1 that agrees
// with the received values ys at the distinct points xs in all but at most
// ⌊(n-k)/2⌋ positions, using Gao decoding. It returns ErrTooManyErrors
// when no such polynomial exists.
func Decode(xs, ys []field.Element, k int) (*Result, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("reedsolomon: %d points but %d values", n, len(ys))
	}
	if k < 1 {
		return nil, fmt.Errorf("reedsolomon: message degree bound k=%d must be >= 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("reedsolomon: need at least k=%d evaluations, got %d", k, n)
	}
	if !field.Distinct(xs) {
		return nil, fmt.Errorf("reedsolomon: evaluation points must be distinct")
	}

	// g0(z) = Π (z - x_i)
	g0 := poly.New(field.One)
	for _, x := range xs {
		g0 = g0.MulLinear(x)
	}
	// g1 = interpolation through all received points.
	g1, err := poly.Interpolate(xs, ys)
	if err != nil {
		return nil, err
	}
	return gaoEuclid(xs, ys, k, g0, g1)
}

// gaoEuclid runs the Euclidean stage of Gao decoding given the
// precomputed locator product g0 and received-word interpolation g1.
func gaoEuclid(xs, ys []field.Element, k int, g0, g1 poly.Poly) (*Result, error) {
	return gaoEuclidInto(newGaoScratch(len(xs)), xs, ys, k, g0, g1)
}

// gaoScratch holds the working polynomials of one Gao decode: the
// Newton interpolation buffers and the six dense coefficient buffers the
// Euclidean stage swaps among. All degrees stay ≤ n (DESIGN §9), so
// every buffer is capped at n+1 coefficients and a pooled scratch makes
// the steady-state Euclid loop allocation-free. Buffers are plain
// slices, not poly.Poly values: the loop re-slices them in place, which
// the immutable poly API deliberately does not allow.
type gaoScratch struct {
	coef   []field.Element // divided-difference diagonal (InterpolateInto)
	interp poly.Poly       // received-word interpolation g1
	bufs   [6][]field.Element
}

func newGaoScratch(n int) *gaoScratch {
	sc := &gaoScratch{
		coef:   make([]field.Element, n),
		interp: make(poly.Poly, 0, n),
	}
	for i := range sc.bufs {
		sc.bufs[i] = make([]field.Element, 0, n+1)
	}
	return sc
}

// trimZeros strips trailing zero coefficients, the dense-slice analogue
// of poly normalization (zero polynomial = empty slice).
func trimZeros(p []field.Element) []field.Element {
	n := len(p)
	for n > 0 && p[n-1] == field.Zero {
		n--
	}
	return p[:n]
}

// quoRemInPlace divides r by m (both normalized, m non-empty): the
// quotient is written into quo's backing array and the remainder left in
// r, both returned trimmed. The per-step update r −= c·z^shift·m runs on
// the fused MulAddVec kernel with the negated coefficient.
func quoRemInPlace(r, m, quo []field.Element) (q, rem []field.Element) {
	if len(r) < len(m) {
		return quo[:0], r
	}
	quo = quo[:len(r)-len(m)+1]
	for i := range quo {
		quo[i] = field.Zero
	}
	lcInv := m[len(m)-1].Inv()
	for len(r) >= len(m) {
		shift := len(r) - len(m)
		c := r[len(r)-1].Mul(lcInv)
		quo[shift] = c
		field.MulAddVec(r[shift:], c.Neg(), m)
		// The leading coefficient cancels by construction; deeper
		// cancellation is handled by the trim.
		r = trimZeros(r[:len(r)-1])
	}
	return trimZeros(quo), r
}

// mulInto writes a·b into dst's backing array and returns it trimmed.
func mulInto(dst, a, b []field.Element) []field.Element {
	if len(a) == 0 || len(b) == 0 {
		return dst[:0]
	}
	dst = dst[:len(a)+len(b)-1]
	for i := range dst {
		dst[i] = field.Zero
	}
	for i, ai := range a {
		if ai != field.Zero {
			field.MulAddVec(dst[i:i+len(b)], ai, b)
		}
	}
	return trimZeros(dst)
}

// subInPlace computes a −= b in place (growing a within its capacity as
// needed) and returns it trimmed.
func subInPlace(a, b []field.Element) []field.Element {
	for len(a) < len(b) {
		a = append(a, field.Zero)
	}
	for i, bi := range b {
		a[i] = a[i].Sub(bi)
	}
	return trimZeros(a)
}

// gaoEuclidInto is gaoEuclid on caller-provided scratch. Only the
// returned Result (its Poly and ErrorPositions) is freshly allocated;
// every intermediate polynomial lives in sc. Results are bit-identical
// to the immutable-poly formulation: the arithmetic is exact and the
// iteration order unchanged.
func gaoEuclidInto(sc *gaoScratch, xs, ys []field.Element, k int, g0, g1 poly.Poly) (*Result, error) {
	n := len(xs)
	if g1.IsZero() {
		// All-zero word: the zero polynomial explains it with no errors.
		return &Result{Poly: nil, ErrorPositions: nil}, nil
	}

	// Partial extended Euclid on (g0, g1), tracking only the g1
	// coefficient v: r = u·g0 + v·g1. Stop when 2·deg(r) < n + k.
	// The six scratch buffers rotate roles as the slice headers swap;
	// their backing arrays are interchangeable and reset per call.
	r0 := append(sc.bufs[0][:0], g0...)
	r1 := append(sc.bufs[1][:0], g1...)
	v0 := sc.bufs[2][:0]
	v1 := append(sc.bufs[3][:0], field.One)
	quo, tmp := sc.bufs[4], sc.bufs[5]
	for 2*(len(r1)-1) >= n+k {
		var q []field.Element
		q, r0 = quoRemInPlace(r0, r1, quo)
		r0, r1 = r1, r0
		v0 = subInPlace(v0, mulInto(tmp, q, v1))
		v0, v1 = v1, v0
		if len(r1) == 0 {
			break
		}
	}
	if len(v1) == 0 {
		return nil, ErrTooManyErrors
	}
	fq, rem := quoRemInPlace(r1, v1, quo)
	if len(rem) != 0 || len(fq)-1 > k-1 {
		return nil, ErrTooManyErrors
	}
	var f poly.Poly
	if len(fq) > 0 {
		f = make(poly.Poly, len(fq))
		copy(f, fq)
	}

	// Verify the error budget and locate the malicious positions. The
	// slice is sized to the budget up front: the moment one more
	// disagreement would exceed maxE the word is undecodable, exactly
	// when the count-then-check formulation would reject it.
	maxE := MaxErrors(n, k)
	var errPos []int
	for i, x := range xs {
		if f.Eval(x) == ys[i] {
			continue
		}
		if len(errPos) == maxE {
			return nil, ErrTooManyErrors
		}
		if errPos == nil {
			errPos = make([]int, 0, maxE)
		}
		errPos = append(errPos, i)
	}
	return &Result{Poly: f, ErrorPositions: errPos}, nil
}

// Decoder amortises the point-dependent work of Decode across many words
// received at the same evaluation points — the L-CoFL fusion centre
// decodes one word per verification slot per round, all at the fixed
// vehicle points ρ_i. Construction validates the points and precomputes
// g0(z) = Π(z − x_i); each Decode then only interpolates the received
// word and runs the Euclidean stage.
type Decoder struct {
	xs []field.Element
	k  int
	g0 poly.Poly

	// obs metric handles, resolved once in SetObs so the batch decoder's
	// hot loops update lock-free counters without registry lookups. All
	// nil (no-op) by default.
	obs            *obs.Obs
	cBatchWords    *obs.Counter
	cBatchRecov    *obs.Counter
	cBatchFallback *obs.Counter
	cCombinedOK    *obs.Counter
	cCombinedFail  *obs.Counter

	// Scratch pools; all buffers are sized by the decoder's fixed (n, k),
	// so pooled entries never need re-validation. gaoPool recycles the
	// Euclidean-stage working polynomials of Decode, scratchPool the
	// internal buffers of one decodeBatch call, and slotAccPool the
	// width-k accumulators of the per-slot erasure recovery (one per
	// concurrent worker).
	gaoPool     sync.Pool
	scratchPool sync.Pool
	slotAccPool sync.Pool
}

// SetObs attaches observability to the decoder: DecodeBatch increments
// the rs.batch.* counters and, when tracing is on, emits per-call
// rs.batch events. A nil handle (the default) disables everything at the
// cost of a few nil checks.
func (d *Decoder) SetObs(o *obs.Obs) {
	d.obs = o
	d.cBatchWords = o.Counter("rs.batch.words")
	d.cBatchRecov = o.Counter("rs.batch.recovered")
	d.cBatchFallback = o.Counter("rs.batch.fallbacks")
	d.cCombinedOK = o.Counter("rs.batch.combined_ok")
	d.cCombinedFail = o.Counter("rs.batch.combined_fail")
}

// NewDecoder validates the points and message bound and precomputes the
// locator product.
func NewDecoder(xs []field.Element, k int) (*Decoder, error) {
	if k < 1 {
		return nil, fmt.Errorf("reedsolomon: message degree bound k=%d must be >= 1", k)
	}
	if len(xs) < k {
		return nil, fmt.Errorf("reedsolomon: need at least k=%d evaluation points, got %d", k, len(xs))
	}
	if !field.Distinct(xs) {
		return nil, fmt.Errorf("reedsolomon: evaluation points must be distinct")
	}
	g0 := poly.New(field.One)
	for _, x := range xs {
		g0 = g0.MulLinear(x)
	}
	return &Decoder{xs: append([]field.Element(nil), xs...), k: k, g0: g0}, nil
}

// MaxErrors returns the decoder's error budget ⌊(n−k)/2⌋.
func (d *Decoder) MaxErrors() int { return MaxErrors(len(d.xs), d.k) }

// Decode reconstructs the polynomial from one received word (one value
// per point, in point order). Steady state it allocates only the
// returned Result: interpolation and the Euclidean stage run on pooled
// scratch (the construction-time distinctness check of the points
// licenses the unchecked InterpolateInto).
func (d *Decoder) Decode(ys []field.Element) (*Result, error) {
	if len(ys) != len(d.xs) {
		return nil, fmt.Errorf("reedsolomon: %d values for %d points", len(ys), len(d.xs))
	}
	sc, ok := d.gaoPool.Get().(*gaoScratch)
	if !ok {
		sc = newGaoScratch(len(d.xs))
	}
	g1 := poly.InterpolateInto(sc.interp, sc.coef, d.xs, ys)
	res, err := gaoEuclidInto(sc, d.xs, ys, d.k, d.g0, g1)
	d.gaoPool.Put(sc)
	return res, err
}

// DecodeErasures reconstructs the degree ≤ k-1 polynomial from a subset of
// correct evaluations (straggler case: values missing, none wrong). At
// least k present values are required; present[i] marks availability.
func DecodeErasures(xs, ys []field.Element, present []bool, k int) (poly.Poly, error) {
	n := len(xs)
	if len(ys) != n || len(present) != n {
		return nil, fmt.Errorf("reedsolomon: inconsistent input lengths %d/%d/%d", n, len(ys), len(present))
	}
	var px, py []field.Element
	for i := 0; i < n; i++ {
		if present[i] {
			px = append(px, xs[i])
			py = append(py, ys[i])
		}
	}
	if len(px) < k {
		return nil, fmt.Errorf("reedsolomon: %d evaluations present, need at least k=%d", len(px), k)
	}
	// Interpolating through exactly k points pins the polynomial; using
	// all present points and checking the degree detects silent errors.
	f, err := poly.Interpolate(px, py)
	if err != nil {
		return nil, err
	}
	if f.Degree() > k-1 {
		return nil, fmt.Errorf("reedsolomon: present evaluations are inconsistent with degree bound %d (degree %d): data is corrupted, not just missing", k-1, f.Degree())
	}
	return f, nil
}

// RealOptions configures DecodeRealRobust.
type RealOptions struct {
	// InlierThreshold is the absolute residual below which a worker result
	// counts as honest. Honest results differ from the consensus
	// polynomial by local-training heterogeneity; malicious results are
	// gross outliers. Zero selects an adaptive threshold from the robust
	// scale (median absolute deviation) of the residuals.
	InlierThreshold float64
	// Iterations bounds the trim-and-refit loop (default 64).
	Iterations int
	// CountFactor loosens the error-counting cutoff relative to the fit
	// threshold (default 2.5). Honest results in the noise tail between
	// threshold and CountFactor·threshold are excluded from the refit but
	// still counted as consistent for the eq. 6 error budget — they are
	// noisy, not erroneous. Only points beyond the counting cutoff are
	// treated as errors (Outliers).
	CountFactor float64
	// Seed is kept for API stability; the trimmed-least-squares decoder
	// is fully deterministic and ignores it.
	Seed int64
}

// RealResult reports a robust real decode.
type RealResult struct {
	// Poly is the consensus polynomial of degree ≤ K-1 refit on the
	// inliers, in the Chebyshev basis (numerically stable at the
	// composed degrees L-CoFL reaches, ≈45 at paper scale).
	Poly poly.Cheb
	// Inliers and Outliers partition the worker indices; Outliers are the
	// suspected malicious results.
	Inliers  []int
	Outliers []int
	// Threshold is the residual cutoff actually used.
	Threshold float64
}

// DecodeRealRobust reconstructs the degree ≤ k-1 polynomial underlying the
// received real-valued evaluations by trimmed least squares: fit all
// points in the Chebyshev basis, discard the points whose residuals sit
// far above the robust scale (median absolute deviation) of the rest,
// refit, and iterate to a fixed point. Gross (malicious) errors carry the
// dominant residuals at every stage, so they are peeled off while honest
// heterogeneity noise is retained and averaged by the fit.
//
// Success requires the surviving consensus to contain at least
// k + ⌊(n-k)/2⌋ points — the real-arithmetic analogue of the eq. 6 unique
// decoding bound; otherwise ErrTooManyErrors is returned. (A sampling
// RANSAC is hopeless in this regime: a random k-subset of V=100 points
// with 30% corruption is all-honest with probability ≈ 0.7^31 ≈ 1e-5.)
func DecodeRealRobust(xs, ys []float64, k int, opts RealOptions) (*RealResult, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("reedsolomon: %d points but %d values", n, len(ys))
	}
	if k < 1 || n < k {
		return nil, fmt.Errorf("reedsolomon: need n >= k >= 1, got n=%d k=%d", n, k)
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 64
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo == hi && n > 1 {
		return nil, fmt.Errorf("reedsolomon: degenerate points (all at x=%g)", lo)
	}
	if lo == hi {
		hi = lo + 1 // single-point domain; fit is the constant
	}
	minKeep := k + MaxErrors(n, k)

	// Precompute the Chebyshev design row of every point once.
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, k)
		poly.ChebDesignRow(rows[i], xs[i], lo, hi)
	}
	const ridgeLambda = 1e-10

	fit := func(active []int) (poly.Cheb, error) {
		design := linalg.NewMatrix(len(active), k)
		rhs := make([]float64, len(active))
		for r, i := range active {
			for c, v := range rows[i] {
				design.Set(r, c, v)
			}
			rhs[r] = ys[i]
		}
		coef, err := linalg.RidgeLeastSquares(design, rhs, ridgeLambda)
		if err != nil {
			return poly.Cheb{}, err
		}
		return poly.Cheb{Lo: lo, Hi: hi, Coef: coef}, nil
	}

	// leverages returns the hat-matrix diagonal h_ii = a_iᵀ(AᵀA+λI)⁻¹a_i
	// for every point (zero for points outside the active design). A
	// gross error at a high-leverage position is interpolated by the fit
	// — raw residual ≈ 0 — so trimming must rank by the leave-one-out
	// residual r_i/(1−h_ii), which explodes for exactly those points.
	leverages := func(active []int) ([]float64, error) {
		ata := linalg.NewMatrix(k, k)
		for _, i := range active {
			for a := 0; a < k; a++ {
				va := rows[i][a]
				if va == 0 {
					continue
				}
				for b := 0; b < k; b++ {
					ata.Set(a, b, ata.At(a, b)+va*rows[i][b])
				}
			}
		}
		for d := 0; d < k; d++ {
			ata.Set(d, d, ata.At(d, d)+ridgeLambda)
		}
		// Invert once, then h_ii = a_iᵀ·(AᵀA+λI)⁻¹·a_i per active point.
		inv, err := ata.Inverse()
		if err != nil {
			return nil, err
		}
		hat := make([]float64, n)
		for _, i := range active {
			h, err := inv.QuadraticForm(rows[i])
			if err != nil {
				return nil, err
			}
			hat[i] = h
		}
		return hat, nil
	}

	// Least-trimmed-squares concentration: fit, keep the h points with the
	// smallest residuals, refit, repeat until the kept set is stable. Each
	// step cannot increase the trimmed sum of squares, so the iteration
	// converges; with an honest majority of exact (or lightly noisy)
	// polynomial evaluations the h-set concentrates onto honest points.
	// Soft 3σ̂ trimming stalls here: a degree-(k-1) fit has enough freedom
	// to partially absorb gross errors, so residuals never separate.
	h := minKeep
	resid := make([]float64, n)
	order := make([]int, n)
	// looRelax discounts the leave-one-out residual in the trimming score.
	// For a point the fit interpolates (leverage ≈ 1) the raw residual is
	// uninformative, but its LOO residual r/(1−h) equals exactly the
	// deviation from the fit computed without it: a gross error parked at
	// a high-leverage position scores its full lie magnitude, while an
	// honest high-leverage point scores only the fit's extrapolation
	// error there. Dividing by looRelax keeps that honest extrapolation
	// error (amplified numerics, not data corruption) from evicting
	// honest edge points.
	const looRelax = 20.0
	looResid := make([]float64, n)
	score := make([]float64, n)
	// computeResiduals fills resid and looResid for the given fit/active.
	computeResiduals := func(cheb poly.Cheb, active []int) error {
		hat, err := leverages(active)
		if err != nil {
			return fmt.Errorf("reedsolomon: leverage computation failed: %w", err)
		}
		for i := 0; i < n; i++ {
			resid[i] = math.Abs(cheb.Eval(xs[i]) - ys[i])
			denom := 1 - hat[i]
			if denom < 1e-9 {
				denom = 1e-9
			}
			looResid[i] = resid[i] / denom
		}
		return nil
	}
	concentrate := func(start []int) ([]int, poly.Cheb, float64, error) {
		active := start
		var cheb poly.Cheb
		for it := 0; it < iters; it++ {
			var err error
			cheb, err = fit(active)
			if err != nil {
				return nil, poly.Cheb{}, 0, fmt.Errorf("reedsolomon: trimmed fit failed: %w", err)
			}
			if err := computeResiduals(cheb, active); err != nil {
				return nil, poly.Cheb{}, 0, err
			}
			for i := 0; i < n; i++ {
				score[i] = math.Max(resid[i], looResid[i]/looRelax)
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				ra, rb := score[order[a]], score[order[b]]
				if ra != rb {
					return ra < rb
				}
				return order[a] < order[b]
			})
			next := append([]int(nil), order[:h]...)
			sort.Ints(next)
			if equalInts(next, active) {
				break
			}
			active = next
		}
		var ssq float64
		for _, i := range active {
			ssq += resid[i] * resid[i]
		}
		return active, cheb, ssq, nil
	}

	// Deterministic multi-start to escape poisoned local optima. The
	// primary start comes from a local-median filter: honest evaluations
	// of the smooth consensus polynomial agree with their x-neighbours,
	// while gross errors stand out locally regardless of the polynomial's
	// degree — exactly the regime (degree ≈ 45, 30 % corruption) where a
	// fit on the full set can absorb the errors and never separate them.
	// The concentration step re-selects from all points every iteration,
	// so a start merely has to be honest-dominated, and the trimmed-SSQ
	// comparison picks the honest optimum (its SSQ is near zero).
	all := make([]int, n)
	evens := make([]int, 0, (n+1)/2)
	odds := make([]int, 0, n/2)
	for i := range all {
		all[i] = i
		if i%2 == 0 {
			evens = append(evens, i)
		} else {
			odds = append(odds, i)
		}
	}
	var starts [][]int
	if filtered := localMedianStart(xs, ys, opts.InlierThreshold); len(filtered) >= k {
		starts = append(starts, filtered)
	}
	starts = append(starts, all)
	if n/2 >= h && h >= k {
		starts = append(starts, all[:n/2], all[n-n/2:])
	}
	if len(evens) >= k {
		starts = append(starts, evens)
	}
	if len(odds) >= k {
		starts = append(starts, odds)
	}
	// Select the winner by consensus size — the number of points the fit
	// explains within the classification threshold — with trimmed SSQ as
	// the tie-break. Pure SSQ selection is ambiguous here: a flexible fit
	// that spikes through one gross error while matching h-1 honest
	// points ties the honest fit at SSQ ≈ 0, but explains fewer points.
	bestCount := -1
	bestSSQ := math.Inf(1)
	var bestActive []int
	var bestCheb poly.Cheb
	classifyThreshold := func(kept []int) float64 {
		if opts.InlierThreshold > 0 {
			return opts.InlierThreshold
		}
		keptResid := make([]float64, len(kept))
		for j, i := range kept {
			keptResid[j] = resid[i]
		}
		return math.Max(4*1.4826*medianOf(keptResid), 1e-9)
	}
	for _, start := range starts {
		active, cheb, ssq, err := concentrate(start)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			resid[i] = math.Abs(cheb.Eval(xs[i]) - ys[i])
		}
		thr := classifyThreshold(active)
		count := 0
		for _, r := range resid {
			if r <= thr {
				count++
			}
		}
		if count > bestCount || (count == bestCount && ssq < bestSSQ) {
			bestCount, bestSSQ, bestActive, bestCheb = count, ssq, active, cheb
		}
		// With an explicit threshold a consensus of size ≥ minKeep is the
		// unique codeword within the eq. 6 budget — no other start can
		// legitimately beat it, so skip the remaining restarts.
		if opts.InlierThreshold > 0 && count >= minKeep {
			break
		}
	}
	if bestActive == nil {
		return nil, ErrTooManyErrors
	}
	for i := 0; i < n; i++ {
		resid[i] = math.Abs(bestCheb.Eval(xs[i]) - ys[i])
	}

	// Hull expansion. The h-limited concentration may have excluded
	// consistent points at the hull edges, where the refit then
	// extrapolates and inflates their residuals artificially. Greedily
	// re-admit every point within the classification threshold and refit;
	// each pass extends the fitted hull by roughly one point spacing, so
	// edge blocks rejoin step by step. Gross errors never re-enter: their
	// deviation is data corruption, not extrapolation error.
	expandThreshold := opts.InlierThreshold
	if expandThreshold <= 0 {
		keptResid := make([]float64, len(bestActive))
		for j, i := range bestActive {
			keptResid[j] = resid[i]
		}
		expandThreshold = math.Max(4*1.4826*medianOf(keptResid), 1e-9)
	}
	inActive := make([]bool, n)
	for _, i := range bestActive {
		inActive[i] = true
	}
	for pass := 0; pass < n; pass++ {
		grew := false
		for i := 0; i < n; i++ {
			if !inActive[i] && resid[i] <= expandThreshold {
				inActive[i] = true
				bestActive = append(bestActive, i)
				grew = true
			}
		}
		if !grew {
			break
		}
		sort.Ints(bestActive)
		var err error
		bestCheb, err = fit(bestActive)
		if err != nil {
			return nil, fmt.Errorf("reedsolomon: expansion refit failed: %w", err)
		}
		for i := 0; i < n; i++ {
			resid[i] = math.Abs(bestCheb.Eval(xs[i]) - ys[i])
		}
	}

	// Final acceptance: classify every point against the caller's
	// threshold when given (it encodes the known honest noise floor and
	// thereby rejects majority-garbage words), else against 4σ̂ of the
	// robust scale over ALL residuals — the eq. 6 model guarantees a
	// sub-half error fraction, so the overall median is outlier-safe and,
	// unlike the concentrated set's own residuals, not biased small by
	// selection. The floor absorbs the ridge regulariser's bias on exact
	// data.
	finalThreshold := opts.InlierThreshold
	if finalThreshold <= 0 {
		absY := make([]float64, n)
		for i := range ys {
			absY[i] = math.Abs(ys[i])
		}
		floor := 1e-6 * (1 + medianOf(absY))
		finalThreshold = math.Max(4*1.4826*medianOf(resid), floor)
	}
	countFactor := opts.CountFactor
	if countFactor <= 0 {
		countFactor = 2.5
	}
	if countFactor < 1 {
		countFactor = 1
	}
	countThreshold := countFactor * finalThreshold
	var inliers, outliers []int
	consistent := 0
	for i, r := range resid {
		if r <= finalThreshold {
			inliers = append(inliers, i)
		}
		if r <= countThreshold {
			consistent++
		} else {
			outliers = append(outliers, i)
		}
	}
	// eq. 6 analogue: more suspected errors than the budget means the
	// consensus is not unique — refuse rather than return a guess. The
	// budget is charged only for gross errors beyond the counting cutoff,
	// not for honest results in the noise tail.
	if consistent < minKeep || len(inliers) < k {
		return nil, ErrTooManyErrors
	}
	cheb, err := fit(inliers)
	if err != nil {
		return nil, fmt.Errorf("reedsolomon: final refit failed: %w", err)
	}
	return &RealResult{
		Poly:      cheb,
		Inliers:   inliers,
		Outliers:  outliers,
		Threshold: finalThreshold,
	}, nil
}

// localMedianStart returns the indices whose value agrees with the median
// of their 11 nearest x-neighbours within a cut of max(threshold, 3σ̂ of
// the deviations). Honest evaluations of one smooth polynomial track their
// neighbourhood; gross errors do not — independent of the polynomial
// degree, which makes this a reliable honest-dominated starting set for
// the trimmed-least-squares concentration.
func localMedianStart(xs, ys []float64, threshold float64) []int {
	n := len(xs)
	const half = 5
	if n < 2*half+1 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	dev := make([]float64, n)
	window := make([]float64, 0, 2*half+1)
	for pos, i := range order {
		lo := pos - half
		if lo < 0 {
			lo = 0
		}
		hi := lo + 2*half
		if hi >= n {
			hi = n - 1
			lo = hi - 2*half
		}
		window = window[:0]
		for p := lo; p <= hi; p++ {
			window = append(window, ys[order[p]])
		}
		dev[i] = math.Abs(ys[i] - medianOf(window))
	}
	cut := 3 * 1.4826 * medianOf(dev)
	if threshold > cut {
		cut = threshold
	}
	if cut <= 0 {
		cut = 1e-9
	}
	var keep []int
	for i, d := range dev {
		if d <= cut {
			keep = append(keep, i)
		}
	}
	return keep
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// medianOf returns the median of vals without modifying the input.
func medianOf(vals []float64) float64 {
	tmp := append([]float64(nil), vals...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
