package reedsolomon

import (
	"fmt"
	"sort"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// Incremental decoding (DESIGN.md §14).
//
// The pipelined round engine feeds uploads into the decoder AS THEY
// ARRIVE instead of waiting for the full round barrier. The decoder
// maintains shared Newton-interpolation state across all verification
// slots: each of the first K arrivals extends every slot's candidate
// polynomial by one divided-difference step (O(S·K) per arrival, with
// one shared nodal polynomial and a single field inversion), and every
// later arrival is merely evaluated against the candidates (O(S·K)).
// By the time the collection window closes, the per-slot interpolation
// work of the batch decoder has already been paid during the waiting.
//
// Correctness never rests on arrival order. An accepted candidate is a
// polynomial of degree ≤ K−1 that disagrees with the ingested word in at
// most E = ⌊(m−K)/2⌋ positions, which by unique decoding pins it to
// exactly what Decode would return for that word; a slot whose candidate
// fails that check (for example because an erroneous upload landed among
// the first K arrivals) falls back to the authoritative per-slot Decode
// on the ingested sub-word. Arrival order can therefore shift work
// between the fast and slow paths, but never change a result — the same
// argument, and the same verification, as DecodeBatch (§9).

// IncrementalDecoder accumulates one round's uploads position by
// position and decodes all slots over exactly the ingested positions.
// It is built by Decoder.NewIncremental, fed by Ingest, and consumed by
// one Finalize call. It is not safe for concurrent use: the round
// engine ingests from its single collect loop.
type IncrementalDecoder struct {
	d     *Decoder
	slots int

	seen  []bool // parent-position presence mask
	order []int  // parent positions in arrival order
	// nodal is N(x) = Π_j (x − xs[order[j]]) over the interpolated
	// arrivals (the first min(arrivals, k)); coefficient of x^i at index i.
	nodal []field.Element
	// coeffs holds every slot's Newton candidate P_s, slot-major with k
	// coefficients per slot; the valid prefix has min(arrivals, k) terms.
	coeffs []field.Element
	// words stores the ingested symbols slot-major by parent position, so
	// Finalize can rebuild any slot's sub-word for the fallback decode.
	words []field.Element
	// mismatch collects, per slot, the parent positions (in arrival
	// order) whose symbol disagreed with the slot's candidate.
	mismatch  [][]int
	finalized bool
}

// NewIncremental begins an incremental decode of `slots` words sharing
// the decoder's evaluation points, to be fed one position at a time.
func (d *Decoder) NewIncremental(slots int) *IncrementalDecoder {
	n, k := len(d.xs), d.k
	inc := &IncrementalDecoder{
		d:        d,
		slots:    slots,
		seen:     make([]bool, n),
		order:    make([]int, 0, n),
		nodal:    make([]field.Element, 1, k+1),
		coeffs:   make([]field.Element, slots*k),
		words:    make([]field.Element, slots*n),
		mismatch: make([][]int, slots),
	}
	inc.nodal[0] = field.One // N = 1 before the first arrival
	return inc
}

// Arrived returns how many positions have been ingested so far.
func (inc *IncrementalDecoder) Arrived() int { return len(inc.order) }

// Ingest feeds the arrival of position pos: one symbol per slot,
// index-aligned with the slot words of the eventual decode. The first k
// arrivals each extend every slot's candidate polynomial by one Newton
// step; later arrivals are checked against the candidates and recorded.
func (inc *IncrementalDecoder) Ingest(pos int, syms []field.Element) error {
	if inc.finalized {
		return fmt.Errorf("reedsolomon: ingest after finalize")
	}
	n, k := len(inc.d.xs), inc.d.k
	if pos < 0 || pos >= n {
		return fmt.Errorf("reedsolomon: position %d outside [0, %d)", pos, n)
	}
	if inc.seen[pos] {
		return fmt.Errorf("reedsolomon: position %d ingested twice", pos)
	}
	if len(syms) != inc.slots {
		return fmt.Errorf("reedsolomon: %d symbols for %d slots", len(syms), inc.slots)
	}
	x := inc.d.xs[pos]
	j := len(inc.order)
	if j < k {
		// Newton step, shared across slots: one evaluation and one
		// inversion of the nodal polynomial N (x is distinct from every
		// interpolated point, so N(x) ≠ 0), then per slot the update
		// P_s += (y_s − P_s(x))·N(x)^{-1} · N.
		invN := poly.Poly(inc.nodal).Eval(x).Inv()
		for s, y := range syms {
			row := inc.coeffs[s*k : (s+1)*k]
			c := y.Sub(poly.Poly(row[:j]).Eval(x)).Mul(invN)
			field.MulAddVec(row[:j+1], c, inc.nodal[:j+1])
		}
		// N *= (x' − x), in place: degree grows from j to j+1.
		inc.nodal = append(inc.nodal, inc.nodal[j])
		for t := j; t > 0; t-- {
			inc.nodal[t] = inc.nodal[t-1].Sub(x.Mul(inc.nodal[t]))
		}
		inc.nodal[0] = inc.nodal[0].Mul(x.Neg())
	} else {
		for s, y := range syms {
			row := inc.coeffs[s*k : (s+1)*k]
			if poly.Poly(row).Eval(x) != y {
				inc.mismatch[s] = append(inc.mismatch[s], pos)
			}
		}
	}
	for s, y := range syms {
		inc.words[s*n+pos] = y
	}
	inc.seen[pos] = true
	inc.order = append(inc.order, pos)
	return nil
}

// Finalize decodes every slot over exactly the ingested positions,
// returning one Result or one error per slot. Each slot's outcome is
// bit-identical to running Decode (equivalently DecodeBatch, §9) on the
// sub-word of ingested symbols at the ingested points — independent of
// arrival order and worker count — with ErrorPositions reported in the
// PARENT position space (the decoder's point indices, which for the
// L-CoFL scheme are vehicle IDs). CombinedOK in the returned stats
// records whether the shared interpolation state was usable (at least k
// arrivals); Recovered counts slots whose streamed candidate verified,
// Fallbacks slots that re-ran the per-slot decode.
func (inc *IncrementalDecoder) Finalize(workers int) ([]*Result, []error, BatchStats) {
	results, errs, stats := inc.finalize(workers)
	d := inc.d
	if d.obs.Enabled() {
		d.cBatchWords.Add(int64(inc.slots))
		d.cBatchRecov.Add(int64(stats.Recovered))
		d.cBatchFallback.Add(int64(stats.Fallbacks))
		if stats.CombinedOK {
			d.cCombinedOK.Inc()
		} else {
			d.cCombinedFail.Inc()
		}
		if d.obs.TraceEnabled() {
			d.obs.Emit("rs.batch",
				obs.F("words", inc.slots),
				obs.F("points", len(inc.order)),
				obs.F("combined_ok", stats.CombinedOK),
				obs.F("recovered", stats.Recovered),
				obs.F("fallbacks", stats.Fallbacks))
		}
	}
	return results, errs, stats
}

func (inc *IncrementalDecoder) finalize(workers int) ([]*Result, []error, BatchStats) {
	inc.finalized = true
	d := inc.d
	n, k, S := len(d.xs), d.k, inc.slots
	m := len(inc.order)
	results := make([]*Result, S)
	errs := make([]error, S)
	var stats BatchStats
	if m < k {
		for s := range errs {
			errs[s] = fmt.Errorf("reedsolomon: %d positions ingested, need at least k=%d", m, k)
		}
		return results, errs, stats
	}
	stats.CombinedOK = true
	maxE := MaxErrors(m, k)
	sorted := append([]int(nil), inc.order...)
	sort.Ints(sorted)

	// Decide each slot's path up front (a length comparison), so the
	// fallback sub-decoder is built exactly once and only when needed.
	needFallback := false
	for s := 0; s < S; s++ {
		if len(inc.mismatch[s]) > maxE {
			needFallback = true
			break
		}
	}
	subDec := d
	if needFallback && m != n {
		subXs := make([]field.Element, m)
		for t, pos := range sorted {
			subXs[t] = d.xs[pos]
		}
		// The points are a subset of the validated parent points, so the
		// construction cannot fail.
		var err error
		subDec, err = NewDecoder(subXs, k)
		if err != nil {
			for s := range errs {
				errs[s] = err
			}
			return results, errs, stats
		}
	}

	slot := func(s int) error {
		if len(inc.mismatch[s]) <= maxE {
			// The streamed candidate is a valid decoding: degree ≤ k−1 by
			// construction and at most E disagreements with the ingested
			// word (the interpolated positions agree exactly), so unique
			// decoding pins it to the per-slot Decode result.
			out := make(poly.Poly, k)
			copy(out, inc.coeffs[s*k:(s+1)*k])
			var errPos []int
			if len(inc.mismatch[s]) > 0 {
				errPos = append([]int(nil), inc.mismatch[s]...)
				sort.Ints(errPos)
			}
			results[s] = &Result{Poly: coeffsToPoly(out), ErrorPositions: errPos}
			return nil
		}
		ys := make([]field.Element, m)
		for t, pos := range sorted {
			ys[t] = inc.words[s*n+pos]
		}
		res, err := subDec.Decode(ys)
		if err != nil {
			errs[s] = err
			return nil
		}
		var errPos []int
		if len(res.ErrorPositions) > 0 {
			errPos = make([]int, len(res.ErrorPositions))
			for i, idx := range res.ErrorPositions {
				errPos[i] = sorted[idx]
			}
		}
		results[s] = &Result{Poly: res.Poly, ErrorPositions: errPos}
		return nil
	}
	if w := parallel.Workers(workers); w <= 1 {
		for s := 0; s < S; s++ {
			_ = slot(s)
		}
	} else {
		_ = parallel.ForEach(w, S, slot)
	}
	for s := 0; s < S; s++ {
		if len(inc.mismatch[s]) <= maxE {
			stats.Recovered++
		} else {
			stats.Fallbacks++
		}
	}
	return results, errs, stats
}
