package reedsolomon

import (
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/poly"
)

func TestDecodeBWNoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f, xs, ys := randomCodeword(rng, 20, 5)
	res, err := DecodeBW(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poly.Equal(f) {
		t.Fatalf("decoded %v, want %v", res.Poly, f)
	}
	if len(res.ErrorPositions) != 0 {
		t.Errorf("spurious error positions %v", res.ErrorPositions)
	}
}

func TestDecodeBWCorrectsUpToBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(30)
		k := 1 + rng.Intn(n/2)
		e := rng.Intn(MaxErrors(n, k) + 1)
		f, xs, ys := randomCodeword(rng, n, k)
		wantPos := corrupt(rng, ys, e)
		res, err := DecodeBW(xs, ys, k)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d e=%d): %v", trial, n, k, e, err)
		}
		if !res.Poly.Equal(f) {
			t.Fatalf("trial %d: wrong polynomial", trial)
		}
		want := map[int]bool{}
		for _, p := range wantPos {
			want[p] = true
		}
		if len(res.ErrorPositions) != e {
			t.Fatalf("trial %d: located %d errors, want %d", trial, len(res.ErrorPositions), e)
		}
		for _, p := range res.ErrorPositions {
			if !want[p] {
				t.Fatalf("trial %d: false position %d", trial, p)
			}
		}
	}
}

func TestDecodeBWAgreesWithGao(t *testing.T) {
	// The two decoders are independent implementations of the same
	// mathematics; they must agree on every decodable word and both
	// refuse the same undecodable ones.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(40)
		k := 1 + rng.Intn(n/2)
		e := rng.Intn(MaxErrors(n, k) + 2) // occasionally beyond budget
		_, xs, ys := randomCodeword(rng, n, k)
		corrupt(rng, ys, min(e, n))
		gao, gaoErr := Decode(xs, ys, k)
		bw, bwErr := DecodeBW(xs, ys, k)
		if (gaoErr == nil) != (bwErr == nil) {
			t.Fatalf("trial %d: gao err=%v, bw err=%v", trial, gaoErr, bwErr)
		}
		if gaoErr != nil {
			continue
		}
		if !gao.Poly.Equal(bw.Poly) {
			t.Fatalf("trial %d: decoders disagree", trial)
		}
	}
}

func TestDecodeBWPaperScale(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n, k := 100, 46
	f, xs, ys := randomCodeword(rng, n, k)
	corrupt(rng, ys, 27)
	res, err := DecodeBW(xs, ys, k)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poly.Equal(f) {
		t.Fatal("failed to correct 27 errors at paper scale")
	}
}

func TestDecodeBWBeyondBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n, k := 16, 8
	f, xs, ys := randomCodeword(rng, n, k)
	corrupt(rng, ys, MaxErrors(n, k)+2)
	res, err := DecodeBW(xs, ys, k)
	if err == nil && res.Poly.Equal(f) && len(res.ErrorPositions) > MaxErrors(n, k) {
		t.Fatal("silent mis-decode")
	}
}

func TestDecodeBWValidation(t *testing.T) {
	xs := []field.Element{field.New(1), field.New(2)}
	if _, err := DecodeBW(xs, xs[:1], 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := DecodeBW(xs, xs, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := DecodeBW(xs, xs, 3); err == nil {
		t.Error("n<k accepted")
	}
	dup := []field.Element{field.New(1), field.New(1)}
	if _, err := DecodeBW(dup, dup, 1); err == nil {
		t.Error("duplicate points accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkDecodeBWvsGao(b *testing.B) {
	rng := rand.New(rand.NewSource(26))
	_, xs, ys := randomCodeword(rng, 100, 46)
	corrupt(rng, ys, 27)
	b.Run("gao", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Decode(xs, ys, 46); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("berlekamp-welch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBW(xs, ys, 46); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestDecoderReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	_, xs, _ := randomCodeword(rng, 40, 10)
	dec, err := NewDecoder(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dec.MaxErrors() != 15 {
		t.Errorf("MaxErrors = %d", dec.MaxErrors())
	}
	for trial := 0; trial < 20; trial++ {
		f, _, ys := randomCodewordAt(rng, xs, 10)
		e := rng.Intn(dec.MaxErrors() + 1)
		corrupt(rng, ys, e)
		got, err := dec.Decode(ys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Poly.Equal(f) {
			t.Fatalf("trial %d: wrong polynomial", trial)
		}
		if len(got.ErrorPositions) != e {
			t.Fatalf("trial %d: %d errors, want %d", trial, len(got.ErrorPositions), e)
		}
	}
}

// randomCodewordAt evaluates a fresh random message at fixed points.
func randomCodewordAt(rng *rand.Rand, xs []field.Element, k int) (poly.Poly, []field.Element, []field.Element) {
	coeffs := make([]field.Element, k)
	for i := range coeffs {
		coeffs[i] = field.Rand(rng)
	}
	f := poly.New(coeffs...)
	return f, xs, f.EvalMany(xs)
}

func TestNewDecoderValidation(t *testing.T) {
	xs := []field.Element{field.New(1), field.New(2)}
	if _, err := NewDecoder(xs, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewDecoder(xs, 3); err == nil {
		t.Error("n<k accepted")
	}
	dup := []field.Element{field.New(1), field.New(1)}
	if _, err := NewDecoder(dup, 1); err == nil {
		t.Error("duplicate points accepted")
	}
	d, err := NewDecoder(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(xs[:1]); err == nil {
		t.Error("short word accepted")
	}
}

// TestDecodeBWParallelMatchesSequential races the per-budget attempts at
// several worker counts and checks the Result — polynomial AND error
// positions — is bit-identical to the sequential descending scan, on
// decodable and undecodable words alike.
func TestDecodeBWParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(40)
		k := 1 + rng.Intn(n/2)
		e := rng.Intn(MaxErrors(n, k) + 3) // often beyond budget
		_, xs, ys := randomCodeword(rng, n, k)
		corrupt(rng, ys, min(e, n))
		seq, seqErr := DecodeBWParallel(xs, ys, k, 1)
		for _, workers := range []int{2, 8} {
			par, parErr := DecodeBWParallel(xs, ys, k, workers)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d workers=%d: seq err=%v, par err=%v", trial, workers, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if !par.Poly.Equal(seq.Poly) {
				t.Fatalf("trial %d workers=%d: polynomials differ", trial, workers)
			}
			if len(par.ErrorPositions) != len(seq.ErrorPositions) {
				t.Fatalf("trial %d workers=%d: %d error positions, want %d",
					trial, workers, len(par.ErrorPositions), len(seq.ErrorPositions))
			}
			for i := range par.ErrorPositions {
				if par.ErrorPositions[i] != seq.ErrorPositions[i] {
					t.Fatalf("trial %d workers=%d: error positions differ at %d", trial, workers, i)
				}
			}
		}
	}
}

// TestDecodeBWParallelPaperScale checks the racing path at the paper's
// V=100, K=46, E=27 configuration.
func TestDecodeBWParallelPaperScale(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n, k := 100, 46
	f, xs, ys := randomCodeword(rng, n, k)
	corrupt(rng, ys, 27)
	res, err := DecodeBWParallel(xs, ys, k, 0) // 0 = all cores
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poly.Equal(f) {
		t.Fatal("parallel decode failed to correct 27 errors at paper scale")
	}
	if len(res.ErrorPositions) != 27 {
		t.Fatalf("located %d errors, want 27", len(res.ErrorPositions))
	}
}
