package reedsolomon

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// DecodeBW is the classical Berlekamp–Welch decoder the paper names in
// §IV Step 3: find an error-locator polynomial e(x) (monic, degree E) and
// a product polynomial q(x) (degree ≤ K−1+E) satisfying
//
//	q(x_i) = y_i·e(x_i)   for every received evaluation,
//
// then recover the message polynomial as f = q / e. It is mathematically
// equivalent to Decode (Gao's extended-Euclidean formulation) and kept as
// an independently-implemented cross-check: the two share no code beyond
// field arithmetic, so agreement between them validates both.
//
// The linear system is solved by Gaussian elimination over GF(p); when it
// is singular the actual error count is below the attempted E and the
// decoder retries with a smaller budget.
func DecodeBW(xs, ys []field.Element, k int) (*Result, error) {
	return DecodeBWParallel(xs, ys, k, 1)
}

// DecodeBWParallel is DecodeBW with its per-error-count bwAttempt
// Gaussian eliminations raced across a bounded worker pool. The
// sequential search scans e from MaxErrors down to 0 and returns the
// first budget whose attempt succeeds and verifies; the parallel search
// runs the independent attempts concurrently and selects the HIGHEST
// passing budget, which is exactly the budget that descending scan would
// have stopped at — so the returned Result is bit-identical to the
// sequential one at any worker count (see DESIGN.md "Parallel execution
// engine"). Attempts for budgets below an already-confirmed success are
// skipped as they can no longer affect the answer.
//
// workers < 1 selects GOMAXPROCS; workers == 1 runs the pre-pool
// sequential scan with its early exit.
func DecodeBWParallel(xs, ys []field.Element, k, workers int) (*Result, error) {
	return DecodeBWObs(xs, ys, k, workers, nil)
}

// DecodeBWObs is DecodeBWParallel with observability attached: every
// error-budget attempt increments rs.bw.attempts (rs.bw.wins on success)
// and, with tracing on, emits an rs.bw_attempt event carrying the budget
// and outcome. With a nil handle it is exactly DecodeBWParallel. Note
// that in the racing configuration (workers > 1) attempt events are
// emitted from pool goroutines, so their ORDER in the trace follows the
// scheduler; the racing outcome itself stays bit-identical (see above).
func DecodeBWObs(xs, ys []field.Element, k, workers int, o *obs.Obs) (*Result, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("reedsolomon: %d points but %d values", n, len(ys))
	}
	if k < 1 {
		return nil, fmt.Errorf("reedsolomon: message degree bound k=%d must be >= 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("reedsolomon: need at least k=%d evaluations, got %d", k, n)
	}
	if !field.Distinct(xs) {
		return nil, fmt.Errorf("reedsolomon: evaluation points must be distinct")
	}
	maxE := MaxErrors(n, k)
	workers = parallel.Workers(workers)
	// Resolve the counters once per call; the per-attempt loop then pays
	// one atomic add, not a registry lookup.
	var cAttempts, cWins *obs.Counter
	if o.Enabled() {
		cAttempts = o.Counter("rs.bw.attempts")
		cWins = o.Counter("rs.bw.wins")
	}
	attempt := func(e int) *Result {
		res := bwVerifiedAttempt(xs, ys, k, e, maxE)
		if o.Enabled() {
			cAttempts.Inc()
			if res != nil {
				cWins.Inc()
			}
			if o.TraceEnabled() {
				o.Emit("rs.bw_attempt", obs.F("budget", e), obs.F("ok", res != nil))
			}
		}
		return res
	}
	if workers == 1 {
		for e := maxE; e >= 0; e-- {
			if res := attempt(e); res != nil {
				return res, nil
			}
		}
		return nil, ErrTooManyErrors
	}

	// Race every budget. Task t attempts e = maxE - t, so the pool claims
	// high budgets (the ones the sequential scan tries first) earliest.
	// best tracks the highest budget confirmed so far: once budget e
	// succeeds, tasks for e' < e are skipped — their outcome cannot win.
	results := make([]*Result, maxE+1)
	var best atomic.Int64
	best.Store(-1)
	_ = parallel.ForEach(workers, maxE+1, func(t int) error {
		e := maxE - t
		if int64(e) <= best.Load() {
			return nil
		}
		if res := attempt(e); res != nil {
			results[e] = res
			for {
				cur := best.Load()
				if int64(e) <= cur || best.CompareAndSwap(cur, int64(e)) {
					break
				}
			}
		}
		return nil
	})
	for e := maxE; e >= 0; e-- {
		if results[e] != nil {
			return results[e], nil
		}
	}
	return nil, ErrTooManyErrors
}

// bwVerifiedAttempt runs one error-budget attempt plus the decoder's
// post-check: the recovered polynomial must disagree with the received
// word in at most maxE positions. It returns nil when the budget fails.
func bwVerifiedAttempt(xs, ys []field.Element, k, e, maxE int) *Result {
	f, ok := bwAttempt(xs, ys, k, e)
	if !ok {
		return nil
	}
	var errPos []int
	for i, x := range xs {
		if f.Eval(x) != ys[i] {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) > maxE {
		return nil
	}
	return &Result{Poly: f, ErrorPositions: errPos}
}

// bwScratch holds the augmented-matrix storage of one bwAttempt. The
// racing budget search runs many attempts (across budgets and across
// goroutines); pooling the matrix turns an O(n·cols) allocation per
// attempt into a near-free checkout.
type bwScratch struct {
	flat []field.Element
	rows [][]field.Element
}

var bwScratchPool = sync.Pool{New: func() any { return new(bwScratch) }}

// matrix returns an n×width row view over the scratch, growing the
// backing storage as needed. Callers overwrite every cell before reading,
// so stale values from a previous attempt never need zeroing. The rows are
// re-sliced from the flat backing on every call, which also undoes any row
// permutation a previous solveField left behind.
func (s *bwScratch) matrix(n, width int) [][]field.Element {
	if cap(s.flat) < n*width {
		s.flat = make([]field.Element, n*width)
	}
	flat := s.flat[:n*width]
	if cap(s.rows) < n {
		s.rows = make([][]field.Element, n)
	}
	rows := s.rows[:n]
	for i := range rows {
		rows[i] = flat[i*width : (i+1)*width]
	}
	return rows
}

// bwAttempt solves the Berlekamp–Welch system for a fixed error budget e.
// Unknowns: q_0..q_{k+e-1} and e_0..e_{e-1} (the locator is monic, so its
// leading coefficient is fixed at 1). Equations, one per received point:
//
//	Σ_j q_j·x^j − y·Σ_j e_j·x^j = y·x^e.
func bwAttempt(xs, ys []field.Element, k, e int) (poly.Poly, bool) {
	n := len(xs)
	cols := k + 2*e // q has k+e coefficients, the locator e
	if cols > n {
		return nil, false
	}
	// Build the augmented matrix [A | b] in pooled scratch.
	scratch := bwScratchPool.Get().(*bwScratch)
	defer bwScratchPool.Put(scratch)
	a := scratch.matrix(n, cols+1)
	for i := 0; i < n; i++ {
		row := a[i]
		pw := field.One
		for j := 0; j < k+e; j++ {
			row[j] = pw
			pw = pw.Mul(xs[i])
		}
		pw = field.One
		for j := 0; j < e; j++ {
			row[k+e+j] = ys[i].Mul(pw).Neg()
			pw = pw.Mul(xs[i])
		}
		// pw is now x^e.
		row[cols] = ys[i].Mul(pw)
	}
	sol, ok := solveField(a, cols)
	if !ok {
		return nil, false
	}
	q := poly.New(sol[:k+e]...)
	locCoeffs := make([]field.Element, e+1)
	copy(locCoeffs, sol[k+e:])
	locCoeffs[e] = field.One // monic
	loc := poly.New(locCoeffs...)
	f, rem := q.QuoRem(loc)
	if !rem.IsZero() || f.Degree() > k-1 {
		return nil, false
	}
	return f, true
}

// solveField solves an overdetermined linear system over GF(p) given as
// augmented rows (cols unknowns, last column the RHS). It returns false
// when the system is inconsistent or underdetermined in a pivot column —
// callers treat that as "this error budget does not fit".
func solveField(rows [][]field.Element, cols int) ([]field.Element, bool) {
	n := len(rows)
	rank := 0
	for col := 0; col < cols && rank < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := rank; r < n; r++ {
			if rows[r][col] != field.Zero {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			// Free column: fix the unknown at zero by leaving it; the
			// back-substitution below treats missing pivots as zero.
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		inv := rows[rank][col].Inv()
		for c := col; c <= cols; c++ {
			rows[rank][c] = rows[rank][c].Mul(inv)
		}
		for r := 0; r < n; r++ {
			if r == rank || rows[r][col] == field.Zero {
				continue
			}
			// rows[r] += (−factor)·rows[rank] over the active columns, via
			// the fused kernel: one reduction per element instead of the
			// separate Mul and Sub reductions of the scalar form.
			neg := rows[r][col].Neg()
			field.MulAddVec(rows[r][col:cols+1], neg, rows[rank][col:cols+1])
		}
		rank++
	}
	// Inconsistency check: a zero row with non-zero RHS.
	for r := rank; r < n; r++ {
		if rows[r][cols] != field.Zero {
			return nil, false
		}
	}
	// Read the solution: pivot columns carry values, free ones are zero.
	sol := make([]field.Element, cols)
	r := 0
	for col := 0; col < cols && r < rank; col++ {
		if rows[r][col] == field.One {
			// Verify this row's pivot really is this column (all earlier
			// entries eliminated).
			isPivot := true
			for c := 0; c < col; c++ {
				if rows[r][c] != field.Zero {
					isPivot = false
					break
				}
			}
			if isPivot {
				sol[col] = rows[r][cols]
				r++
			}
		}
	}
	return sol, true
}
