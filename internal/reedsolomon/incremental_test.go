package reedsolomon

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/field"
)

// incRef decodes the ingested sub-word the authoritative way: a fresh
// decoder over the sorted ingested positions, DecodeBatch on the
// sub-words, error positions mapped back to parent space. The property
// tests pin IncrementalDecoder to this reference for every arrival order.
func incRef(t *testing.T, d *Decoder, words [][]field.Element, positions []int, workers int) ([]*Result, []error) {
	t.Helper()
	sorted := append([]int(nil), positions...)
	sort.Ints(sorted)
	subXs := make([]field.Element, len(sorted))
	for i, pos := range sorted {
		subXs[i] = d.xs[pos]
	}
	sub, err := NewDecoder(subXs, d.k)
	if err != nil {
		t.Fatalf("sub decoder: %v", err)
	}
	subWords := make([][]field.Element, len(words))
	for s, w := range words {
		sw := make([]field.Element, len(sorted))
		for i, pos := range sorted {
			sw[i] = w[pos]
		}
		subWords[s] = sw
	}
	results, errs, _ := sub.DecodeBatch(subWords, field.NewSeededSource(7), workers)
	for _, res := range results {
		if res == nil {
			continue
		}
		for i, idx := range res.ErrorPositions {
			res.ErrorPositions[i] = sorted[idx]
		}
	}
	return results, errs
}

func ingestAll(t *testing.T, inc *IncrementalDecoder, words [][]field.Element, order []int) {
	t.Helper()
	syms := make([]field.Element, len(words))
	for _, pos := range order {
		for s, w := range words {
			syms[s] = w[pos]
		}
		if err := inc.Ingest(pos, syms); err != nil {
			t.Fatalf("Ingest(%d): %v", pos, err)
		}
	}
}

func assertSameOutcomes(t *testing.T, label string, got, want []*Result, gotErrs, wantErrs []error) {
	t.Helper()
	for s := range want {
		if (wantErrs[s] == nil) != (gotErrs[s] == nil) {
			t.Fatalf("%s: slot %d error mismatch: got %v want %v", label, s, gotErrs[s], wantErrs[s])
		}
		if wantErrs[s] != nil {
			continue
		}
		if !got[s].Poly.Equal(want[s].Poly) {
			t.Fatalf("%s: slot %d poly mismatch:\n got %v\nwant %v", label, s, got[s].Poly, want[s].Poly)
		}
		if len(got[s].ErrorPositions) != len(want[s].ErrorPositions) {
			t.Fatalf("%s: slot %d error positions: got %v want %v", label, s, got[s].ErrorPositions, want[s].ErrorPositions)
		}
		for i := range want[s].ErrorPositions {
			if got[s].ErrorPositions[i] != want[s].ErrorPositions[i] {
				t.Fatalf("%s: slot %d error positions: got %v want %v", label, s, got[s].ErrorPositions, want[s].ErrorPositions)
			}
		}
	}
}

// TestIncrementalMatchesBatch is the pinned property: for every
// prefix of every arrival order tried (with at least k arrivals), the
// incremental decoder agrees bit-for-bit with DecodeBatch over the same
// positions — polynomials, error positions (parent space), and error/ok
// split — at every worker count.
func TestIncrementalMatchesBatch(t *testing.T) {
	const n, k, S = 24, 8, 6
	rng := rand.New(rand.NewSource(31))
	xs, _ := batchWords(rng, n, k, S, 0, false)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	maxE := MaxErrors(n, k)
	for _, e := range []int{0, 1, maxE, maxE + 2} {
		for _, shared := range []bool{true, false} {
			for trial := 0; trial < 4; trial++ {
				_, words := batchWords(rng, n, k, S, e, shared)
				order := rng.Perm(n)
				for _, m := range []int{k, k + 1, k + 2*maxE, n} {
					prefix := order[:m]
					for _, workers := range []int{1, 2, 8} {
						inc := d.NewIncremental(S)
						ingestAll(t, inc, words, prefix)
						if got := inc.Arrived(); got != m {
							t.Fatalf("Arrived() = %d, want %d", got, m)
						}
						results, errs, stats := inc.Finalize(workers)
						wantRes, wantErrs := incRef(t, d, words, prefix, workers)
						label := fmt.Sprintf("e=%d shared=%v trial=%d m=%d workers=%d", e, shared, trial, m, workers)
						assertSameOutcomes(t, label, results, wantRes, errs, wantErrs)
						if !stats.CombinedOK {
							t.Fatalf("%s: CombinedOK=false with m=%d >= k", label, m)
						}
						if stats.Recovered+stats.Fallbacks != S {
							t.Fatalf("%s: stats %+v do not cover %d slots", label, stats, S)
						}
					}
				}
			}
		}
	}
}

// TestIncrementalOrderIndependent pins that two different arrival orders
// of the same position set produce identical results — the engine's
// bit-identity invariant does not depend on network timing.
func TestIncrementalOrderIndependent(t *testing.T) {
	const n, k, S = 20, 7, 5
	rng := rand.New(rand.NewSource(97))
	xs, words := batchWords(rng, n, k, S, 2, true)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	positions := rng.Perm(n)[:k+5]
	var base []*Result
	var baseErrs []error
	for trial := 0; trial < 6; trial++ {
		order := append([]int(nil), positions...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		inc := d.NewIncremental(S)
		ingestAll(t, inc, words, order)
		results, errs, _ := inc.Finalize(1)
		if trial == 0 {
			base, baseErrs = results, errs
			continue
		}
		assertSameOutcomes(t, fmt.Sprintf("trial=%d", trial), results, base, errs, baseErrs)
	}
}

// TestIncrementalFullPresenceMatchesDecodeBatch checks the m == n case
// reuses the parent decoder and still agrees with a direct DecodeBatch.
func TestIncrementalFullPresenceMatchesDecodeBatch(t *testing.T) {
	const n, k, S = 16, 6, 4
	rng := rand.New(rand.NewSource(5))
	xs, words := batchWords(rng, n, k, S, MaxErrors(n, k), true)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	inc := d.NewIncremental(S)
	ingestAll(t, inc, words, rng.Perm(n))
	results, errs, _ := inc.Finalize(2)
	wantRes, wantErrs, _ := d.DecodeBatch(words, field.NewSeededSource(3), 2)
	assertSameOutcomes(t, "full presence", results, wantRes, errs, wantErrs)
}

func TestIncrementalValidation(t *testing.T) {
	const n, k, S = 10, 4, 3
	rng := rand.New(rand.NewSource(11))
	xs, words := batchWords(rng, n, k, S, 0, false)
	d, err := NewDecoder(xs, k)
	if err != nil {
		t.Fatal(err)
	}
	syms := make([]field.Element, S)
	for s, w := range words {
		syms[s] = w[0]
	}

	inc := d.NewIncremental(S)
	if err := inc.Ingest(-1, syms); err == nil {
		t.Fatal("negative position accepted")
	}
	if err := inc.Ingest(n, syms); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if err := inc.Ingest(0, syms[:S-1]); err == nil {
		t.Fatal("short symbol slice accepted")
	}
	if err := inc.Ingest(0, syms); err != nil {
		t.Fatalf("valid ingest rejected: %v", err)
	}
	if err := inc.Ingest(0, syms); err == nil {
		t.Fatal("duplicate position accepted")
	}

	// Fewer than k arrivals: every slot errors, nothing decodes.
	results, errs, stats := inc.Finalize(1)
	for s := range errs {
		if errs[s] == nil || results[s] != nil {
			t.Fatalf("slot %d: want under-determined error, got %v / %v", s, errs[s], results[s])
		}
	}
	if stats.CombinedOK || stats.Recovered != 0 || stats.Fallbacks != 0 {
		t.Fatalf("under-determined stats: %+v", stats)
	}
	if err := inc.Ingest(1, syms); err == nil {
		t.Fatal("ingest after finalize accepted")
	}
}
