package reedsolomon

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/poly"
)

// FuzzDecodeBatchAgreement pins the contract DESIGN §9 promises: for
// every slot, DecodeBatch returns exactly what a standalone Decode of
// that slot returns — same polynomial, same error positions, same
// error/no-error outcome — regardless of the shared-locator fast path,
// the erasure fallback, and the worker count. The three uint64 inputs
// seed the codeword generator, the corruption count, and the batch
// width, so the mutator explores the whole clean/correctable/overloaded
// space.
func FuzzDecodeBatchAgreement(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(1))  // clean single slot
	f.Add(uint64(2), uint64(3), uint64(4))  // shared corruption at capacity
	f.Add(uint64(3), uint64(4), uint64(2))  // one error beyond capacity
	f.Add(uint64(7), uint64(1), uint64(8))  // wide batch, light corruption
	f.Add(uint64(42), uint64(9), uint64(3)) // heavily overloaded
	f.Fuzz(func(t *testing.T, seed, corrupt, slots uint64) {
		const n, k = 12, 4
		xs := make([]field.Element, n)
		for i := range xs {
			xs[i] = field.New(uint64(i + 1))
		}
		dec, err := NewDecoder(xs, k)
		if err != nil {
			t.Fatal(err)
		}

		S := int(slots%8) + 1
		nErr := int(corrupt % (n + 1))
		gen := field.NewSeededSource(int64(seed%1_000_003) + 1)
		words := make([][]field.Element, S)
		for s := range words {
			coeffs := make([]field.Element, k)
			for i := range coeffs {
				coeffs[i] = field.New(gen.Uint64() % field.Modulus)
			}
			truth := poly.New(coeffs...)
			ys := truth.EvalMany(xs)
			// Corrupt nErr distinct positions; drawing positions and
			// deltas from the same seeded source keeps the case
			// reproducible from the corpus entry alone.
			hit := map[int]bool{}
			for len(hit) < nErr {
				p := int(gen.Uint64() % n)
				if hit[p] {
					continue
				}
				hit[p] = true
				ys[p] = ys[p].Add(field.New(gen.Uint64()%(field.Modulus-1) + 1))
			}
			words[s] = ys
		}

		// Batch decode with its own source (slot outcomes must not
		// depend on how the batch consumes randomness) and workers=2 to
		// cross the parallel path.
		batchRes, batchErrs, _ := dec.DecodeBatch(words, field.NewSeededSource(99), 2)
		if len(batchRes) != S || len(batchErrs) != S {
			t.Fatalf("batch returned %d results / %d errors for %d slots", len(batchRes), len(batchErrs), S)
		}

		for s, ys := range words {
			single, err := dec.Decode(ys)
			if (err == nil) != (batchErrs[s] == nil) {
				t.Fatalf("slot %d: Decode err=%v but DecodeBatch err=%v", s, err, batchErrs[s])
			}
			if err != nil {
				if !errors.Is(err, ErrTooManyErrors) || !errors.Is(batchErrs[s], ErrTooManyErrors) {
					t.Fatalf("slot %d: unexpected error kinds: %v vs %v", s, err, batchErrs[s])
				}
				continue
			}
			if !single.Poly.Equal(batchRes[s].Poly) {
				t.Fatalf("slot %d: polynomials disagree:\n single: %v\n  batch: %v", s, single.Poly, batchRes[s].Poly)
			}
			if !equalInts(single.ErrorPositions, batchRes[s].ErrorPositions) {
				t.Fatalf("slot %d: error positions disagree: %v vs %v", s, single.ErrorPositions, batchRes[s].ErrorPositions)
			}
		}
	})
}
