package reedsolomon

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// Batch decoding (DESIGN.md §9).
//
// The L-CoFL fusion centre decodes one Reed–Solomon word per verification
// slot per round, all at the same evaluation points. In the paper's threat
// model a malicious vehicle corrupts what it reports wholesale, so the
// error POSITIONS repeat across slots even though the error values differ.
// DecodeBatch exploits that: it locates the errors once on a random GF(p)
// linear combination of all S words (one full decode), then recovers every
// slot by erasure-only interpolation at the surviving positions — O(V·K)
// per slot instead of a full O(V³)-class decode per slot.
//
// Correctness does not rest on the randomness. Every fast-path result is
// verified against its own received word and accepted only when it is a
// valid decoding (degree ≤ K−1, at most E disagreements), which by unique
// decoding pins it to exactly what the per-slot decoder would return;
// any slot that fails that check falls back to the per-slot Decode. The
// random combination only governs how often the fast path is taken.

// BatchStats reports how a DecodeBatch call split its work, for
// benchmarks and tests asserting the fast path engaged.
type BatchStats struct {
	// CombinedOK records whether the shared-locator decode of the random
	// linear combination succeeded. When false every slot fell back.
	CombinedOK bool
	// Recovered counts slots recovered by erasure interpolation at the
	// shared surviving positions (the fast path).
	Recovered int
	// Fallbacks counts slots that re-ran the full per-slot Decode.
	Fallbacks int
}

// DecodeBatch decodes many received words that share the decoder's
// evaluation points, one word per verification slot. It returns one
// Result or one error per word, index-aligned with words; each slot's
// outcome is bit-identical to d.Decode(words[s]) by construction (see the
// package comment above and DESIGN.md §9 for the argument).
//
// src supplies the random combination coefficients; any Source is sound
// here because the coefficients affect only performance, never results.
// workers bounds the per-slot recovery fan-out (< 1 selects GOMAXPROCS,
// 1 is sequential); outcomes are slot-indexed, so they are identical at
// any worker count.
func (d *Decoder) DecodeBatch(words [][]field.Element, src field.Source, workers int) ([]*Result, []error, BatchStats) {
	results, errs, stats := d.decodeBatch(words, src, workers)
	if d.obs.Enabled() {
		d.cBatchWords.Add(int64(len(words)))
		d.cBatchRecov.Add(int64(stats.Recovered))
		d.cBatchFallback.Add(int64(stats.Fallbacks))
		if stats.CombinedOK {
			d.cCombinedOK.Inc()
		} else {
			d.cCombinedFail.Inc()
		}
		if d.obs.TraceEnabled() {
			d.obs.Emit("rs.batch",
				obs.F("words", len(words)),
				obs.F("points", len(d.xs)),
				obs.F("combined_ok", stats.CombinedOK),
				obs.F("recovered", stats.Recovered),
				obs.F("fallbacks", stats.Fallbacks))
		}
	}
	return results, errs, stats
}

// batchScratch holds the internal (never caller-visible) buffers of one
// decodeBatch call, recycled through Decoder.scratchPool. Everything is
// sized by the decoder's fixed (n, k) except the slot-indexed ok and
// recovered marks, which grow to the largest slot count seen.
type batchScratch struct {
	ok        []bool // words with a valid length, eligible for combination
	recovered []bool
	combined  []field.Element
	comboAcc  *field.Accumulator
	flagged   []bool
	support   []int
	// erasure-basis buffers (see erasureBasisInto)
	ts       []field.Element
	phi      []field.Element
	denomInv []field.Element
	flat     []field.Element
	basis    [][]field.Element
}

func (d *Decoder) getScratch(S int) *batchScratch {
	n, k := len(d.xs), d.k
	sc, _ := d.scratchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{
			combined: make([]field.Element, n),
			comboAcc: field.NewAccumulator(n),
			flagged:  make([]bool, n),
			support:  make([]int, 0, k),
			ts:       make([]field.Element, k),
			phi:      make([]field.Element, k+1),
			denomInv: make([]field.Element, k),
			flat:     make([]field.Element, k*k),
			basis:    make([][]field.Element, k),
		}
	}
	if cap(sc.ok) < S {
		sc.ok = make([]bool, S)
		sc.recovered = make([]bool, S)
	}
	sc.ok = sc.ok[:S]
	sc.recovered = sc.recovered[:S]
	for i := range sc.ok {
		sc.ok[i] = false
		sc.recovered[i] = false
	}
	for i := range sc.flagged {
		sc.flagged[i] = false
	}
	sc.support = sc.support[:0]
	return sc
}

// batchRecovery carries the shared inputs of the per-slot erasure
// recovery so the slot worker is a method, not a closure — the
// sequential path then allocates nothing per slot.
type batchRecovery struct {
	d          *Decoder
	words      [][]field.Element
	sc         *batchScratch
	basis      [][]field.Element
	maxE       int
	coeffSlab  []field.Element
	errPosSlab []int
	resultSlab []Result
	results    []*Result
	errs       []error
}

// slot recovers one verification slot: interpolate through the support
// values (a cached-basis mat-vec, no divisions), then verify against the
// slot's own word. Acceptance requires a valid decoding, so a cancelled
// error inside the support can only force a fallback, never a wrong
// result. All writes are slot-indexed, so outcomes are identical at any
// worker count.
func (br *batchRecovery) slot(s int) {
	d, sc := br.d, br.sc
	if !sc.ok[s] {
		return
	}
	acc, _ := d.slotAccPool.Get().(*field.Accumulator)
	if acc == nil {
		acc = field.NewAccumulator(d.k)
	}
	word := br.words[s]
	for j, i := range sc.support {
		acc.VecMulAddScalar(word[i], br.basis[j])
	}
	// Slot coefficients come from the per-call slab: one allocation
	// serves every slot, and the resulting Poly stays valid for the
	// caller after the scratch is pooled again.
	coeffs := poly.Poly(br.coeffSlab[s*d.k : (s+1)*d.k : (s+1)*d.k])
	acc.Reduce(coeffs)
	d.slotAccPool.Put(acc)
	f := coeffsToPoly(coeffs)

	// Error positions live in a cap-limited slab window: the moment one
	// more disagreement would exceed maxE this slot is not a valid
	// decoding and falls back, exactly when the collect-then-count
	// formulation would.
	errPos := br.errPosSlab[s*br.maxE : s*br.maxE : (s+1)*br.maxE]
	for i, x := range d.xs {
		if f.Eval(x) == word[i] {
			continue
		}
		if len(errPos) == br.maxE {
			br.results[s], br.errs[s] = d.Decode(word)
			return
		}
		errPos = append(errPos, i)
	}
	if len(errPos) == 0 {
		errPos = nil // match Decode's nil-when-clean representation
	}
	res := &br.resultSlab[s]
	res.Poly = f
	res.ErrorPositions = errPos
	br.results[s] = res
	sc.recovered[s] = true
}

func (br *batchRecovery) slotErr(s int) error {
	br.slot(s)
	return nil
}

// decodeBatch is DecodeBatch without the observability wrapper. Steady
// state it allocates only what the caller keeps: the results/errs
// slices and three slabs (Result structs, coefficient backing, error
// positions) handed out slot by slot. All internal buffers are pooled.
func (d *Decoder) decodeBatch(words [][]field.Element, src field.Source, workers int) ([]*Result, []error, BatchStats) {
	n := len(d.xs)
	S := len(words)
	results := make([]*Result, S)
	errs := make([]error, S)
	var stats BatchStats

	sc := d.getScratch(S)
	defer d.scratchPool.Put(sc)
	eligible := 0
	for s, w := range words {
		if len(w) != n {
			errs[s] = fmt.Errorf("reedsolomon: %d values for %d points", len(w), n)
			continue
		}
		sc.ok[s] = true
		eligible++
	}

	fallback := func(s int) {
		results[s], errs[s] = d.Decode(words[s])
	}

	// A single word gains nothing from combination: the locator decode IS
	// a full decode of that word.
	if eligible < 2 {
		for s := range words {
			if sc.ok[s] {
				fallback(s)
				stats.Fallbacks++
			}
		}
		return results, errs, stats
	}

	// Locate the shared error positions: decode Σ_s r_s·y_s with random
	// non-zero r_s. Honest positions carry evaluations of Σ_s r_s·f_s
	// (degree ≤ K−1); a position corrupted in any slot survives the
	// combination except when its error values conspire to cancel, which
	// happens with probability ≤ 1/(p−1) per position (§9).
	for s := range words {
		if sc.ok[s] {
			sc.comboAcc.VecMulAddScalar(field.RandNonZero(src), words[s])
		}
	}
	sc.comboAcc.Reduce(sc.combined)

	comb, err := d.Decode(sc.combined)
	if err != nil {
		// The union of corrupted positions exceeds the budget (or the
		// slots disagree on the message polynomial's degree support in a
		// way no single word does). Decode each slot on its own.
		for s := range words {
			if sc.ok[s] {
				fallback(s)
				stats.Fallbacks++
			}
		}
		return results, errs, stats
	}
	stats.CombinedOK = true

	// Erasure support: the first K positions the locator did not flag.
	// n − |flagged| ≥ n − ⌊(n−K)/2⌋ ≥ K, so the support always fills.
	for _, i := range comb.ErrorPositions {
		sc.flagged[i] = true
	}
	for i := 0; i < n && len(sc.support) < d.k; i++ {
		if !sc.flagged[i] {
			sc.support = append(sc.support, i)
		}
	}
	basis := d.erasureBasisInto(sc)
	maxE := d.MaxErrors()

	br := &batchRecovery{
		d: d, words: words, sc: sc, basis: basis, maxE: maxE,
		coeffSlab:  make([]field.Element, S*d.k),
		errPosSlab: make([]int, S*maxE),
		resultSlab: make([]Result, S),
		results:    results,
		errs:       errs,
	}
	if w := parallel.Workers(workers); w <= 1 {
		for s := 0; s < S; s++ {
			br.slot(s)
		}
	} else {
		_ = parallel.ForEach(w, S, br.slotErr)
	}
	// Tally outside the pool so the counters need no atomics.
	for s := range words {
		if !sc.ok[s] {
			continue
		}
		if sc.recovered[s] {
			stats.Recovered++
		} else {
			stats.Fallbacks++
		}
	}
	return results, errs, stats
}

// erasureBasisInto computes, for each support index j, the monomial
// coefficients of the Lagrange basis polynomial L_j over the support
// points: L_j(x_{support[i]}) = [i == j]. A polynomial interpolating
// values y over the support is then the mat-vec Σ_j y_j·L_j, which the
// batch fast path evaluates with the lazy-reduction accumulator — no
// per-slot divisions, unlike Newton interpolation. The support always
// has exactly k points (see the fill loop in decodeBatch), so every
// buffer comes pre-sized from the pooled scratch; every entry is
// overwritten before it is read.
func (d *Decoder) erasureBasisInto(sc *batchScratch) [][]field.Element {
	k := d.k
	ts := sc.ts
	for j, i := range sc.support {
		ts[j] = d.xs[i]
	}
	// Φ(x) = Π_j (x − ts[j]), degree k.
	phi := sc.phi
	phi[0] = field.One
	deg := 0
	for _, t := range ts {
		phi[deg+1] = phi[deg]
		for c := deg; c > 0; c-- {
			phi[c] = phi[c-1].Sub(t.Mul(phi[c]))
		}
		phi[0] = phi[0].Mul(t.Neg())
		deg++
	}
	// Denominators Π_{i≠j}(ts[j] − ts[i]), inverted in one batch pass.
	denomInv := sc.denomInv
	for j := range ts {
		dj := field.One
		for i := range ts {
			if i != j {
				dj = dj.Mul(ts[j].Sub(ts[i]))
			}
		}
		denomInv[j] = dj
	}
	field.BatchInv(denomInv)
	// L_j = (Φ / (x − ts[j])) · denomInv[j] by synthetic division: O(k)
	// per basis polynomial, O(k²) total.
	basis := sc.basis
	for j := range ts {
		row := sc.flat[j*k : (j+1)*k]
		row[k-1] = phi[k]
		for c := k - 1; c > 0; c-- {
			row[c-1] = phi[c].Add(ts[j].Mul(row[c]))
		}
		for c := range row {
			row[c] = row[c].Mul(denomInv[j])
		}
		basis[j] = row
	}
	return basis
}

// coeffsToPoly canonicalises raw interpolation coefficients, matching
// Decode's representation exactly: trailing zeros stripped and the zero
// polynomial as nil (Decode returns Poly: nil for the all-zero word).
func coeffsToPoly(coeffs poly.Poly) poly.Poly {
	n := len(coeffs)
	for n > 0 && coeffs[n-1] == field.Zero {
		n--
	}
	if n == 0 {
		return nil
	}
	return coeffs[:n]
}
