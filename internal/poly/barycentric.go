package poly

import "fmt"

// Barycentric is a Lagrange interpolating polynomial in barycentric form:
// evaluation is O(n) and numerically stable at any polynomial degree,
// unlike expansion to monomial coefficients whose conditioning collapses
// beyond degree ~20. The robust real-valued Reed–Solomon decoder uses it
// for its candidate polynomials (composed L-CoFL polynomials reach degree
// d·(M−1) ≈ 45 at paper scale).
type Barycentric struct {
	xs, ys []float64
	w      []float64
}

// NewBarycentric builds the interpolant through (xs[i], ys[i]). The nodes
// must be pairwise distinct.
func NewBarycentric(xs, ys []float64) (*Barycentric, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("poly: barycentric length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("poly: barycentric needs at least one point")
	}
	n := len(xs)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		prod := 1.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := xs[i] - xs[j]
			if d == 0 {
				return nil, fmt.Errorf("poly: duplicate barycentric node %g", xs[i])
			}
			prod *= d
		}
		w[i] = 1 / prod
	}
	return &Barycentric{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		w:  w,
	}, nil
}

// Eval evaluates the interpolant at x using the second (true) barycentric
// formula; at a node it returns the node value exactly.
func (b *Barycentric) Eval(x float64) float64 {
	var num, den float64
	for i := range b.xs {
		d := x - b.xs[i]
		if d == 0 {
			return b.ys[i]
		}
		t := b.w[i] / d
		num += t * b.ys[i]
		den += t
	}
	return num / den
}

// Degree returns the maximal polynomial degree of the interpolant.
func (b *Barycentric) Degree() int { return len(b.xs) - 1 }

// Cheb is a polynomial in the Chebyshev basis on [Lo, Hi]:
// p(x) = Σ Coef[k]·T_k(t) with t = (2x − Lo − Hi)/(Hi − Lo). The basis is
// well-conditioned at high degree where the monomial basis is not; the
// robust decoder's consensus refit returns this form.
type Cheb struct {
	// Lo and Hi delimit the domain the basis is orthogonal on.
	Lo, Hi float64
	// Coef holds the Chebyshev coefficients, constant term first.
	Coef []float64
}

// Eval evaluates the series at x by Clenshaw's recurrence.
func (c Cheb) Eval(x float64) float64 {
	if len(c.Coef) == 0 {
		return 0
	}
	t := (2*x - c.Lo - c.Hi) / (c.Hi - c.Lo)
	var b1, b2 float64
	for k := len(c.Coef) - 1; k >= 1; k-- {
		b1, b2 = 2*t*b1-b2+c.Coef[k], b1
	}
	return t*b1 - b2 + c.Coef[0]
}

// Degree returns the series degree.
func (c Cheb) Degree() int { return len(c.Coef) - 1 }

// ChebDesignRow fills row with T_0(t)…T_deg(t) for x mapped into [lo, hi]
// — one row of the least-squares design matrix in the Chebyshev basis.
func ChebDesignRow(row []float64, x, lo, hi float64) {
	t := (2*x - lo - hi) / (hi - lo)
	for k := range row {
		switch k {
		case 0:
			row[k] = 1
		case 1:
			row[k] = t
		default:
			row[k] = 2*t*row[k-1] - row[k-2]
		}
	}
}
