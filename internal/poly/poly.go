// Package poly provides dense univariate polynomials over GF(p)
// (see package field) and over float64.
//
// Field polynomials are the working objects of Lagrange coded computing:
// the encoder builds the Lagrange interpolation polynomial H(z) of the data
// batches (paper eq. 3), vehicles evaluate the composed polynomial C(H(z)),
// and the Berlekamp–Welch decoder reconstructs it from noisy evaluations.
// Real polynomials carry the activation-function approximations of package
// approx into the neural network.
package poly

import (
	"fmt"
	"strings"

	"repro/internal/field"
)

// Poly is a dense polynomial over GF(p). The coefficient of z^i is
// stored at index i. The canonical form has no trailing zero
// coefficients; the zero polynomial is the empty slice.
type Poly []field.Element

// New returns the canonical polynomial with the given coefficients
// (constant term first). The input slice is copied.
func New(coeffs ...field.Element) Poly {
	p := make(Poly, len(coeffs))
	copy(p, coeffs)
	return p.normalize()
}

// NewInt64 builds a polynomial from signed integer coefficients,
// a convenience for tests and examples.
func NewInt64(coeffs ...int64) Poly {
	p := make(Poly, len(coeffs))
	for i, c := range coeffs {
		p[i] = field.NewInt64(c)
	}
	return p.normalize()
}

// normalize strips trailing zeros in place and returns the result.
func (p Poly) normalize() Poly {
	n := len(p)
	for n > 0 && p[n-1] == field.Zero {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, with the convention that the zero
// polynomial has degree -1.
func (p Poly) Degree() int { return len(p) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p) == 0 }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Coeff returns the coefficient of z^i, which is zero beyond the degree.
func (p Poly) Coeff(i int) field.Element {
	if i < 0 || i >= len(p) {
		return field.Zero
	}
	return p[i]
}

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(x field.Element) field.Element {
	var acc field.Element
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(p[i])
	}
	return acc
}

// EvalMany evaluates p at every point of xs.
func (p Poly) EvalMany(xs []field.Element) []field.Element {
	out := make([]field.Element, len(xs))
	for i, x := range xs {
		out[i] = p.Eval(x)
	}
	return out
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p), len(q))
	out := make(Poly, n)
	for i := range out {
		out[i] = p.Coeff(i).Add(q.Coeff(i))
	}
	return out.normalize()
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	n := max(len(p), len(q))
	out := make(Poly, n)
	for i := range out {
		out[i] = p.Coeff(i).Sub(q.Coeff(i))
	}
	return out.normalize()
}

// Scale returns c·p.
func (p Poly) Scale(c field.Element) Poly {
	if c == field.Zero {
		return nil
	}
	out := make(Poly, len(p))
	for i := range p {
		out[i] = p[i].Mul(c)
	}
	return out.normalize()
}

// Mul returns p·q by schoolbook convolution. Degrees in LCC are small
// (tens), so the quadratic algorithm is the right tool.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, pi := range p {
		if pi == field.Zero {
			continue
		}
		for j, qj := range q {
			out[i+j] = out[i+j].Add(pi.Mul(qj))
		}
	}
	return out.normalize()
}

// MulLinear returns p·(z - a), the common building block of interpolation.
func (p Poly) MulLinear(a field.Element) Poly {
	return p.Mul(New(a.Neg(), field.One))
}

// QuoRem returns the quotient and remainder of p ÷ q.
// It panics if q is zero.
func (p Poly) QuoRem(q Poly) (quo, rem Poly) {
	if q.IsZero() {
		panic("poly: division by zero polynomial")
	}
	rem = p.Clone()
	if p.Degree() < q.Degree() {
		return nil, rem
	}
	quo = make(Poly, p.Degree()-q.Degree()+1)
	lcInv := q[len(q)-1].Inv()
	for rem.Degree() >= q.Degree() {
		shift := rem.Degree() - q.Degree()
		c := rem[len(rem)-1].Mul(lcInv)
		quo[shift] = c
		// rem -= c * z^shift * q
		for i, qi := range q {
			rem[shift+i] = rem[shift+i].Sub(c.Mul(qi))
		}
		rem = rem.normalize()
	}
	return quo.normalize(), rem
}

// Derivative returns dp/dz.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = p[i].Mul(field.New(uint64(i)))
	}
	return out.normalize()
}

// Compose returns p(q(z)). Used to verify the composed LCC polynomial
// C(H(z)) degree bound deg(C)·deg(H) in tests.
func (p Poly) Compose(q Poly) Poly {
	var out Poly
	for i := len(p) - 1; i >= 0; i-- {
		out = out.Mul(q).Add(New(p[i]))
	}
	return out
}

// Equal reports whether p and q are identical polynomials.
func (p Poly) Equal(q Poly) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders p as a human-readable sum of monomials.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == field.Zero {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		switch i {
		case 0:
			fmt.Fprintf(&b, "%v", p[i])
		case 1:
			fmt.Fprintf(&b, "%v·z", p[i])
		default:
			fmt.Fprintf(&b, "%v·z^%d", p[i], i)
		}
	}
	return b.String()
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through the points (xs[i], ys[i]). The xs must be pairwise distinct;
// it panics on length mismatch and returns an error on duplicate nodes.
func Interpolate(xs, ys []field.Element) (Poly, error) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("poly: interpolate length mismatch %d != %d", len(xs), len(ys)))
	}
	if !field.Distinct(xs) {
		return nil, fmt.Errorf("poly: interpolation nodes are not distinct")
	}
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	coef := make([]field.Element, n)
	return InterpolateInto(make(Poly, 0, n), coef, xs, ys), nil
}

// InterpolateInto is Interpolate for scratch-reusing hot paths: the
// result is built in dst's backing array (capacity must be ≥ len(xs))
// and the divided-difference table in coef (length exactly len(xs)), so
// a steady-state caller allocates nothing. The returned polynomial
// aliases dst — it must not be retained past the next reuse of the
// scratch. The nodes MUST be pairwise distinct; unlike Interpolate this
// precondition is the caller's (checked once at decoder construction,
// not per call). It panics on length mismatch.
func InterpolateInto(dst Poly, coef, xs, ys []field.Element) Poly {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("poly: interpolate length mismatch %d != %d", len(xs), len(ys)))
	}
	if len(coef) != len(xs) {
		panic(fmt.Sprintf("poly: interpolate scratch length %d for %d nodes", len(coef), len(xs)))
	}
	n := len(xs)
	if n == 0 {
		return nil
	}
	// Build via Newton's divided differences: O(n^2), numerically exact
	// over the field.
	copy(coef, ys)
	for j := 1; j < n; j++ {
		for i := n - 1; i >= j; i-- {
			num := coef[i].Sub(coef[i-1])
			den := xs[i].Sub(xs[i-j])
			coef[i] = num.Div(den)
		}
	}
	// Expand Newton form to monomial coefficients, Horner-style in one
	// buffer preallocated to the final degree: each step computes
	// result·(z − x_i) + coef[i] in place (shift up one degree, then
	// fold −x_i into the shifted coefficients downwards, so every read
	// sees the pre-shift value). This keeps the expansion allocation-free
	// where a MulLinear/Add chain would allocate two fresh polynomials
	// per node — Interpolate sits under every decode.
	result := append(dst[:0], coef[n-1])
	for i := n - 2; i >= 0; i-- {
		d := len(result)
		result = append(result, result[d-1])
		for c := d - 1; c > 0; c-- {
			result[c] = result[c-1].Sub(xs[i].Mul(result[c]))
		}
		result[0] = xs[i].Neg().Mul(result[0]).Add(coef[i])
	}
	return result.normalize()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
