package poly

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRealEval(t *testing.T) {
	p := NewReal(1, 0, 2) // 1 + 2x^2
	tests := []struct{ x, want float64 }{
		{0, 1}, {1, 3}, {-1, 3}, {2, 9}, {0.5, 1.5},
	}
	for _, tt := range tests {
		if got := p.Eval(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("p(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
	if got := Real(nil).Eval(3); got != 0 {
		t.Errorf("zero poly eval = %g", got)
	}
}

func TestRealArithmetic(t *testing.T) {
	p := NewReal(1, 2)  // 1 + 2x
	q := NewReal(3, -2) // 3 - 2x
	if got := p.Add(q); got.Degree() != 0 || !almostEqual(got.Coeff(0), 4, 0) {
		t.Errorf("Add = %v", got)
	}
	// (1+2x)(3-2x) = 3 + 4x - 4x^2
	got := p.Mul(q)
	want := NewReal(3, 4, -4)
	for i := 0; i <= 2; i++ {
		if !almostEqual(got.Coeff(i), want.Coeff(i), 1e-12) {
			t.Errorf("Mul coeff %d = %g, want %g", i, got.Coeff(i), want.Coeff(i))
		}
	}
	if got := p.Sub(p); !got.IsZero() {
		t.Errorf("p-p = %v", got)
	}
	if got := p.Scale(2.5); !almostEqual(got.Coeff(1), 5, 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRealDerivative(t *testing.T) {
	p := NewReal(7, 3, 0, 2) // 7 + 3x + 2x^3
	got := p.Derivative()    // 3 + 6x^2
	want := NewReal(3, 0, 6)
	for i := 0; i <= 2; i++ {
		if !almostEqual(got.Coeff(i), want.Coeff(i), 1e-12) {
			t.Errorf("Derivative coeff %d = %g, want %g", i, got.Coeff(i), want.Coeff(i))
		}
	}
}

func TestInterpolateReal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		deg := rng.Intn(6)
		want := make(Real, deg+1)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		want = want.normalize()
		n := len(want)
		if n == 0 {
			continue
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) - float64(n)/2 // distinct, well-spread
			ys[i] = want.Eval(xs[i])
		}
		got, err := InterpolateReal(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !almostEqual(got.Coeff(i), want.Coeff(i), 1e-8) {
				t.Fatalf("trial %d coeff %d: got %g want %g", trial, i, got.Coeff(i), want.Coeff(i))
			}
		}
	}
}

func TestInterpolateRealDuplicate(t *testing.T) {
	if _, err := InterpolateReal([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("expected duplicate-node error")
	}
}

func TestMaxErrorOn(t *testing.T) {
	// p(x) = x approximates sin(x) near 0; worst error on [-1,1] is at ±1.
	p := NewReal(0, 1)
	got := p.MaxErrorOn(math.Sin, -1, 1, 1000)
	want := 1 - math.Sin(1)
	if !almostEqual(got, want, 1e-4) {
		t.Errorf("MaxErrorOn = %g, want ≈ %g", got, want)
	}
}

func TestRealString(t *testing.T) {
	if got := NewReal(1.5, -2).String(); got != "-2·x + 1.5" {
		t.Errorf("String = %q", got)
	}
	if got := Real(nil).String(); got != "0" {
		t.Errorf("zero String = %q", got)
	}
}
