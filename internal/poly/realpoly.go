package poly

import (
	"fmt"
	"math"
	"strings"
)

// Real is a dense polynomial over float64, constant term first.
// It carries activation-function approximations (package approx) into the
// neural network and supports the real-valued decoding path.
type Real []float64

// NewReal returns a copy of coeffs as a polynomial, trimming trailing
// coefficients that are exactly zero.
func NewReal(coeffs ...float64) Real {
	p := make(Real, len(coeffs))
	copy(p, coeffs)
	return p.normalize()
}

func (p Real) normalize() Real {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree with the zero polynomial at -1.
func (p Real) Degree() int { return len(p) - 1 }

// IsZero reports whether p has no nonzero coefficients.
func (p Real) IsZero() bool { return len(p) == 0 }

// Clone returns an independent copy.
func (p Real) Clone() Real {
	q := make(Real, len(p))
	copy(q, p)
	return q
}

// Coeff returns the coefficient of x^i (zero beyond the degree).
func (p Real) Coeff(i int) float64 {
	if i < 0 || i >= len(p) {
		return 0
	}
	return p[i]
}

// Eval evaluates p at x with Horner's rule.
func (p Real) Eval(x float64) float64 {
	var acc float64
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*x + p[i]
	}
	return acc
}

// Derivative returns dp/dx.
func (p Real) Derivative() Real {
	if len(p) <= 1 {
		return nil
	}
	out := make(Real, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = p[i] * float64(i)
	}
	return out.normalize()
}

// Add returns p + q.
func (p Real) Add(q Real) Real {
	n := max(len(p), len(q))
	out := make(Real, n)
	for i := range out {
		out[i] = p.Coeff(i) + q.Coeff(i)
	}
	return out.normalize()
}

// Sub returns p - q.
func (p Real) Sub(q Real) Real {
	n := max(len(p), len(q))
	out := make(Real, n)
	for i := range out {
		out[i] = p.Coeff(i) - q.Coeff(i)
	}
	return out.normalize()
}

// Scale returns c·p.
func (p Real) Scale(c float64) Real {
	out := make(Real, len(p))
	for i := range p {
		out[i] = c * p[i]
	}
	return out.normalize()
}

// Mul returns p·q by schoolbook convolution.
func (p Real) Mul(q Real) Real {
	if p.IsZero() || q.IsZero() {
		return nil
	}
	out := make(Real, len(p)+len(q)-1)
	for i, pi := range p {
		for j, qj := range q {
			out[i+j] += pi * qj
		}
	}
	return out.normalize()
}

// MaxErrorOn returns the maximum absolute deviation |p(x) - f(x)| sampled
// at n+1 uniform points on [lo, hi]. Approximation quality reporting uses
// this (paper Theorem 1's σ bound is with respect to the sup norm).
func (p Real) MaxErrorOn(f func(float64) float64, lo, hi float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	var worst float64
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		if d := math.Abs(p.Eval(x) - f(x)); d > worst {
			worst = d
		}
	}
	return worst
}

// String renders p with 6 significant digits per coefficient.
func (p Real) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		switch i {
		case 0:
			fmt.Fprintf(&b, "%.6g", p[i])
		case 1:
			fmt.Fprintf(&b, "%.6g·x", p[i])
		default:
			fmt.Fprintf(&b, "%.6g·x^%d", p[i], i)
		}
	}
	return b.String()
}

// InterpolateReal returns the polynomial of degree < len(xs) through the
// points (xs[i], ys[i]) using Newton divided differences. The nodes must
// be pairwise distinct.
func InterpolateReal(xs, ys []float64) (Real, error) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("poly: interpolate length mismatch %d != %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if xs[i] == xs[j] {
				return nil, fmt.Errorf("poly: duplicate interpolation node %g", xs[i])
			}
		}
	}
	coef := make([]float64, n)
	copy(coef, ys)
	for j := 1; j < n; j++ {
		for i := n - 1; i >= j; i-- {
			coef[i] = (coef[i] - coef[i-1]) / (xs[i] - xs[i-j])
		}
	}
	result := NewReal(coef[n-1])
	for i := n - 2; i >= 0; i-- {
		result = result.Mul(NewReal(-xs[i], 1)).Add(NewReal(coef[i]))
	}
	return result, nil
}
