package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

// randPoly returns a random polynomial of degree at most maxDeg.
func randPoly(rng *rand.Rand, maxDeg int) Poly {
	n := rng.Intn(maxDeg + 2) // 0..maxDeg+1 coefficients
	coeffs := make([]field.Element, n)
	for i := range coeffs {
		coeffs[i] = field.Rand(rng)
	}
	return New(coeffs...)
}

func TestNewNormalizes(t *testing.T) {
	p := New(field.New(1), field.New(2), field.Zero, field.Zero)
	if p.Degree() != 1 {
		t.Errorf("degree = %d, want 1", p.Degree())
	}
	z := New(field.Zero, field.Zero)
	if !z.IsZero() || z.Degree() != -1 {
		t.Errorf("zero poly: IsZero=%v Degree=%d", z.IsZero(), z.Degree())
	}
}

func TestEval(t *testing.T) {
	// p(z) = 3 + 2z + z^2; p(5) = 3 + 10 + 25 = 38
	p := NewInt64(3, 2, 1)
	if got := p.Eval(field.New(5)); got != field.New(38) {
		t.Errorf("p(5) = %v, want 38", got)
	}
	if got := Poly(nil).Eval(field.New(7)); got != field.Zero {
		t.Errorf("zero poly eval = %v, want 0", got)
	}
}

func TestEvalMany(t *testing.T) {
	p := NewInt64(1, 1) // 1 + z
	xs := []field.Element{field.New(0), field.New(1), field.New(2)}
	got := p.EvalMany(xs)
	want := []field.Element{field.New(1), field.New(2), field.New(3)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("EvalMany[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddSub(t *testing.T) {
	p := NewInt64(1, 2, 3)
	q := NewInt64(4, 5)
	sum := p.Add(q)
	if !sum.Equal(NewInt64(5, 7, 3)) {
		t.Errorf("Add = %v", sum)
	}
	if !sum.Sub(q).Equal(p) {
		t.Errorf("(p+q)-q != p")
	}
	// Cancellation must renormalize.
	if got := p.Sub(p); !got.IsZero() {
		t.Errorf("p-p = %v, want zero", got)
	}
}

func TestMul(t *testing.T) {
	// (1+z)(1-z) = 1 - z^2
	p := NewInt64(1, 1)
	q := NewInt64(1, -1)
	if got := p.Mul(q); !got.Equal(NewInt64(1, 0, -1)) {
		t.Errorf("Mul = %v", got)
	}
	if got := p.Mul(nil); !got.IsZero() {
		t.Errorf("p*0 = %v", got)
	}
}

func TestMulLinear(t *testing.T) {
	// (2 + z)(z - 3) = -6 + 2z - 3z + z^2 = -6 - z + z^2
	p := NewInt64(2, 1)
	if got := p.MulLinear(field.New(3)); !got.Equal(NewInt64(-6, -1, 1)) {
		t.Errorf("MulLinear = %v", got)
	}
}

func TestQuoRem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := randPoly(rng, 12)
		q := randPoly(rng, 6)
		if q.IsZero() {
			continue
		}
		quo, rem := p.QuoRem(q)
		if rem.Degree() >= q.Degree() {
			t.Fatalf("rem degree %d >= divisor degree %d", rem.Degree(), q.Degree())
		}
		if got := quo.Mul(q).Add(rem); !got.Equal(p) {
			t.Fatalf("quo*q+rem != p:\n p=%v\n q=%v\n got=%v", p, q, got)
		}
	}
}

func TestQuoRemZeroDivisorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero poly did not panic")
		}
	}()
	NewInt64(1, 2).QuoRem(nil)
}

func TestDerivative(t *testing.T) {
	// d/dz (1 + 2z + 3z^2) = 2 + 6z
	p := NewInt64(1, 2, 3)
	if got := p.Derivative(); !got.Equal(NewInt64(2, 6)) {
		t.Errorf("Derivative = %v", got)
	}
	if got := NewInt64(5).Derivative(); !got.IsZero() {
		t.Errorf("constant derivative = %v", got)
	}
}

func TestCompose(t *testing.T) {
	// p(z) = z^2, q(z) = z + 1 → p(q) = z^2 + 2z + 1
	p := NewInt64(0, 0, 1)
	q := NewInt64(1, 1)
	if got := p.Compose(q); !got.Equal(NewInt64(1, 2, 1)) {
		t.Errorf("Compose = %v", got)
	}
	// Degree law: deg(p∘q) = deg(p)·deg(q) — the LCC degree bound.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		p := randPoly(rng, 4)
		q := randPoly(rng, 4)
		if p.Degree() < 1 || q.Degree() < 1 {
			continue
		}
		if got := p.Compose(q).Degree(); got != p.Degree()*q.Degree() {
			t.Fatalf("deg(p∘q) = %d, want %d", got, p.Degree()*q.Degree())
		}
	}
}

func TestInterpolate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		want := randPoly(rng, 8)
		n := want.Degree() + 1
		if n < 1 {
			n = 1
		}
		xs := field.RandDistinct(rng, n, nil)
		ys := want.EvalMany(xs)
		got, err := Interpolate(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("interpolate mismatch:\nwant %v\ngot  %v", want, got)
		}
	}
}

func TestInterpolateDuplicateNodes(t *testing.T) {
	_, err := Interpolate(
		[]field.Element{field.New(1), field.New(1)},
		[]field.Element{field.New(2), field.New(3)},
	)
	if err == nil {
		t.Fatal("expected error on duplicate nodes")
	}
}

func TestInterpolateEmpty(t *testing.T) {
	p, err := Interpolate(nil, nil)
	if err != nil || !p.IsZero() {
		t.Fatalf("empty interpolation = %v, %v", p, err)
	}
}

func TestPropertyRingLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	rng := rand.New(rand.NewSource(4))
	gen := func() Poly { return randPoly(rng, 6) }

	t.Run("mul distributes over add", func(t *testing.T) {
		f := func(_ uint8) bool {
			p, q, r := gen(), gen(), gen()
			return p.Mul(q.Add(r)).Equal(p.Mul(q).Add(p.Mul(r)))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul commutative", func(t *testing.T) {
		f := func(_ uint8) bool {
			p, q := gen(), gen()
			return p.Mul(q).Equal(q.Mul(p))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("eval is ring hom", func(t *testing.T) {
		f := func(x uint64) bool {
			p, q := gen(), gen()
			at := field.New(x)
			return p.Mul(q).Eval(at) == p.Eval(at).Mul(q.Eval(at)) &&
				p.Add(q).Eval(at) == p.Eval(at).Add(q.Eval(at))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestString(t *testing.T) {
	if got := NewInt64(3, 2, 1).String(); got != "1·z^2 + 2·z + 3" {
		t.Errorf("String = %q", got)
	}
	if got := Poly(nil).String(); got != "0" {
		t.Errorf("zero String = %q", got)
	}
}
