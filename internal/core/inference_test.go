package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/approx"
	"repro/internal/field"
	"repro/internal/poly"
)

func inferenceFixture(t *testing.T, v, m, degree int, frac uint) (*Inference, []float64, float64, poly.Real, [][]float64) {
	t.Helper()
	inf, err := NewInference(InferenceConfig{
		NumVehicles: v, NumBatches: m, FracBits: frac, Seed: 1,
	}, degree)
	if err != nil {
		t.Fatal(err)
	}
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, degree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const features = 16
	w := make([]float64, features)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	b := 0.1
	batches := make([][]float64, m)
	for i := range batches {
		batches[i] = make([]float64, features)
		for j := range batches[i] {
			batches[i][j] = rng.Float64()*2 - 1
		}
	}
	return inf, w, b, p, batches
}

func TestInferenceValidation(t *testing.T) {
	if _, err := NewInference(InferenceConfig{NumVehicles: 0, NumBatches: 4, FracBits: 7}, 2); err == nil {
		t.Error("zero vehicles accepted")
	}
	if _, err := NewInference(InferenceConfig{NumVehicles: 10, NumBatches: 1, FracBits: 7}, 2); err == nil {
		t.Error("one batch accepted")
	}
	if _, err := NewInference(InferenceConfig{NumVehicles: 10, NumBatches: 4, FracBits: 7}, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewInference(InferenceConfig{NumVehicles: 5, NumBatches: 8, FracBits: 7}, 3); err == nil {
		t.Error("K > V accepted")
	}
	// Headroom: degree 3 needs (2·3+1)·frac ≤ 50 → frac ≤ 7.
	if _, err := NewInference(InferenceConfig{NumVehicles: 100, NumBatches: 16, FracBits: 8}, 3); err == nil {
		t.Error("overflowing FracBits accepted")
	}
	if _, err := NewInference(InferenceConfig{NumVehicles: 100, NumBatches: 16, FracBits: 0}, 3); err == nil {
		t.Error("zero FracBits accepted")
	}
}

func TestInferenceHonestMatchesPlaintext(t *testing.T) {
	inf, w, b, act, batches := inferenceFixture(t, 60, 8, 3, 7)
	res, err := inf.Run(w, b, act, batches, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrorPositions) != 0 {
		t.Errorf("honest run flagged errors %v", res.ErrorPositions)
	}
	for m, batch := range batches {
		want, err := inf.PlaintextModel(w, b, act, batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.BatchOutputs[m] != want {
			t.Fatalf("batch %d decoded %g, plaintext %g — must be bit-exact", m, res.BatchOutputs[m], want)
		}
	}
}

func TestInferenceQuantisationAccuracy(t *testing.T) {
	// The decoded fixed-point output must track the float64 computation
	// within quantisation error.
	inf, w, b, act, batches := inferenceFixture(t, 60, 8, 3, 7)
	res, err := inf.Run(w, b, act, batches, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m, batch := range batches {
		var z float64
		for j := range w {
			z += w[j] * batch[j]
		}
		z += b
		want := act.Eval(z)
		if math.Abs(res.BatchOutputs[m]-want) > 0.05 {
			t.Errorf("batch %d decoded %g, float64 %g", m, res.BatchOutputs[m], want)
		}
	}
}

func TestInferenceCorrectsMalicious(t *testing.T) {
	inf, w, b, act, batches := inferenceFixture(t, 100, 16, 3, 7)
	if inf.RecoverThreshold() != 46 || inf.MaxMalicious() != 27 {
		t.Fatalf("paper-scale thresholds wrong: K=%d E=%d", inf.RecoverThreshold(), inf.MaxMalicious())
	}
	honest, err := inf.Run(w, b, act, batches, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	corrupt := map[int]field.Element{}
	for _, id := range rng.Perm(100)[:27] { // exactly the E budget
		corrupt[id] = field.Rand(rng)
	}
	res, err := inf.Run(w, b, act, batches, corrupt)
	if err != nil {
		t.Fatal(err)
	}
	for m := range batches {
		if res.BatchOutputs[m] != honest.BatchOutputs[m] {
			t.Fatalf("batch %d output changed under attack: %g vs %g", m, res.BatchOutputs[m], honest.BatchOutputs[m])
		}
	}
	if len(res.ErrorPositions) != len(corrupt) {
		t.Fatalf("identified %d errors, want %d", len(res.ErrorPositions), len(corrupt))
	}
	for _, pos := range res.ErrorPositions {
		if _, planted := corrupt[pos]; !planted {
			t.Errorf("false positive error position %d", pos)
		}
	}
}

func TestInferenceBeyondBudgetFails(t *testing.T) {
	inf, w, b, act, batches := inferenceFixture(t, 40, 8, 2, 9)
	// K = 15, E = 12; corrupt 13.
	rng := rand.New(rand.NewSource(4))
	corrupt := map[int]field.Element{}
	for _, id := range rng.Perm(40)[:13] {
		corrupt[id] = field.Rand(rng)
	}
	if _, err := inf.Run(w, b, act, batches, corrupt); err == nil {
		t.Error("decoding beyond the budget succeeded silently")
	}
}

func TestInferenceRunValidation(t *testing.T) {
	inf, w, b, act, batches := inferenceFixture(t, 30, 8, 2, 9)
	if _, err := inf.Run(w, b, act, batches[:3], nil); err == nil {
		t.Error("wrong batch count accepted")
	}
	ragged := make([][]float64, 8)
	for i := range ragged {
		ragged[i] = make([]float64, 3)
	}
	if _, err := inf.Run(w, b, act, ragged, nil); err == nil {
		t.Error("ragged batches accepted")
	}
	if _, err := inf.Run(w, b, act, batches, map[int]field.Element{99: 1}); err == nil {
		t.Error("out-of-range corrupt ID accepted")
	}
	tooHigh := poly.NewReal(0, 1, 0, 0, 1) // degree 4 > configured 2
	if _, err := inf.Run(w, b, tooHigh, batches, nil); err == nil {
		t.Error("over-degree activation accepted")
	}
}

func TestInferenceDeterministic(t *testing.T) {
	infA, w, b, act, batches := inferenceFixture(t, 30, 8, 2, 9)
	infB, _, _, _, _ := inferenceFixture(t, 30, 8, 2, 9)
	ra, err := infA.Run(w, b, act, batches, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := infB.Run(w, b, act, batches, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := range ra.BatchOutputs {
		if ra.BatchOutputs[m] != rb.BatchOutputs[m] {
			t.Fatal("same seed produced different inference")
		}
	}
}

func TestInferencePrivacyRoundTrip(t *testing.T) {
	// With T=2 privacy padding the recover threshold grows but decoding
	// still returns the exact plaintext outputs.
	inf, err := NewInference(InferenceConfig{
		NumVehicles: 60, NumBatches: 8, PrivacyT: 2, FracBits: 9, Seed: 11,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// K = 2·(8+2−1)+1 = 19, E = (60−19)/2 = 20.
	if inf.RecoverThreshold() != 19 {
		t.Fatalf("K = %d, want 19", inf.RecoverThreshold())
	}
	if inf.MaxMalicious() != 20 {
		t.Fatalf("E = %d, want 20", inf.MaxMalicious())
	}
	_, w, b, act, batches := inferenceFixture(t, 60, 8, 2, 9)
	rng := rand.New(rand.NewSource(12))
	corrupt := map[int]field.Element{}
	for _, id := range rng.Perm(60)[:20] {
		corrupt[id] = field.Rand(rng)
	}
	res, err := inf.Run(w, b, act, batches, corrupt)
	if err != nil {
		t.Fatal(err)
	}
	for m, batch := range batches {
		want, err := inf.PlaintextModel(w, b, act, batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.BatchOutputs[m] != want {
			t.Fatalf("batch %d decoded %g, plaintext %g", m, res.BatchOutputs[m], want)
		}
	}
	if len(res.ErrorPositions) != len(corrupt) {
		t.Fatalf("identified %d errors, want %d", len(res.ErrorPositions), len(corrupt))
	}
}

func TestInferencePrivacyMasksShares(t *testing.T) {
	// The same data encoded twice under T=1 must yield different shares:
	// the padding randomness masks every individual share. Without
	// privacy the shares are a deterministic function of the data.
	mk := func(privacy int) *Inference {
		inf, err := NewInference(InferenceConfig{
			NumVehicles: 30, NumBatches: 4, PrivacyT: privacy, FracBits: 9, Seed: 13,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return inf
	}
	data := make([][]float64, 4)
	for i := range data {
		data[i] = make([]float64, 6)
		for j := range data[i] {
			data[i][j] = float64(i*6+j) / 30
		}
	}
	priv := mk(1)
	a, err := priv.Shares(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := priv.Shares(data) // fresh padding randomness
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for v := range a {
		for f := range a[v] {
			if a[v][f] != b[v][f] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("privacy padding did not re-randomise the shares")
	}
	plain := mk(0)
	c, err := plain.Shares(data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := plain.Shares(data)
	if err != nil {
		t.Fatal(err)
	}
	for v := range c {
		for f := range c[v] {
			if c[v][f] != d[v][f] {
				t.Fatal("unpadded shares must be deterministic")
			}
		}
	}
}

func TestInferencePrivacyValidation(t *testing.T) {
	if _, err := NewInference(InferenceConfig{NumVehicles: 30, NumBatches: 4, PrivacyT: -1, FracBits: 9}, 2); err == nil {
		t.Error("negative T accepted")
	}
	// T pushes K beyond V: K = 2·(4+20−1)+1 = 47 > 30.
	if _, err := NewInference(InferenceConfig{NumVehicles: 30, NumBatches: 4, PrivacyT: 20, FracBits: 9}, 2); err == nil {
		t.Error("K > V with privacy accepted")
	}
}
