package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
)

// streamedAggregate runs AggregateStreamed after ingesting the uploads
// in the given arrival order, mirroring what the pipelined round engine
// does with its receive stream.
func streamedAggregate(t *testing.T, s *Scheme, ups [][]float64, order []int) []float64 {
	t.Helper()
	sink := s.BeginIngest()
	for _, id := range order {
		if ups[id] == nil {
			continue
		}
		if err := sink.Add(id, ups[id]); err != nil {
			t.Fatalf("Add(%d): %v", id, err)
		}
	}
	targets, err := s.AggregateStreamed(sink, ups)
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

// TestAggregateStreamedBitIdentical is the scheme-level half of the
// pipeline invariant: ingesting uploads in ANY arrival order (including
// none at all) and aggregating via AggregateStreamed is bit-identical to
// the plain Aggregate — targets, DecodeFailures, DetectedMalicious and
// the batch recovered/fallback split.
func TestAggregateStreamedBitIdentical(t *testing.T) {
	ref := refFeatures(t, 8*4) // S = 4 slots
	const v, m, degree = 40, 8, 2
	model := polyActivationModel(t, degree, 21)
	rng := rand.New(rand.NewSource(77))
	for _, workers := range []int{1, 2, 8} {
		cfg := SchemeConfig{NumVehicles: v, NumBatches: m, Degree: degree, Workers: workers, Seed: 3}
		streamed, err := NewScheme(ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewScheme(ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		maxE := streamed.MaxMalicious()
		for _, e := range []int{0, 1, maxE, maxE + 5} {
			ups := roundUploads(t, streamed, model, nil)
			for _, id := range rng.Perm(v)[:e] {
				for j := range ups[id] {
					ups[id][j] = ups[id][j]*2 + 7
				}
			}
			// Straggler mix: some vehicles never arrive at all.
			for _, id := range rng.Perm(v)[:3] {
				ups[id] = nil
			}
			gotT := streamedAggregate(t, streamed, ups, rng.Perm(v))
			wantT, err := plain.Aggregate(ups)
			if err != nil {
				t.Fatal(err)
			}
			for j := range wantT {
				if math.Float64bits(gotT[j]) != math.Float64bits(wantT[j]) {
					t.Fatalf("workers=%d e=%d target[%d]: streamed %g, plain %g", workers, e, j, gotT[j], wantT[j])
				}
			}
			if streamed.DecodeFailures != plain.DecodeFailures {
				t.Fatalf("workers=%d e=%d DecodeFailures: streamed %d, plain %d", workers, e, streamed.DecodeFailures, plain.DecodeFailures)
			}
			for i := range plain.DetectedMalicious {
				if streamed.DetectedMalicious[i] != plain.DetectedMalicious[i] {
					t.Fatalf("workers=%d e=%d DetectedMalicious[%d]: streamed %d, plain %d",
						workers, e, i, streamed.DetectedMalicious[i], plain.DetectedMalicious[i])
				}
			}
			if streamed.BatchRecovered+streamed.BatchFallbacks != plain.BatchRecovered+plain.BatchFallbacks {
				t.Fatalf("workers=%d e=%d batch split: streamed %d+%d, plain %d+%d", workers, e,
					streamed.BatchRecovered, streamed.BatchFallbacks, plain.BatchRecovered, plain.BatchFallbacks)
			}
		}
	}
}

// TestAggregateStreamedPartialDrops pins that per-value drops — slots
// seeing different vehicle subsets, where the streamed state cannot
// match any presence group — silently fall back to the batch path with
// identical results.
func TestAggregateStreamedPartialDrops(t *testing.T) {
	ref := refFeatures(t, 8*4)
	const v, m, degree = 40, 8, 1
	model := polyActivationModel(t, degree, 23)
	rng := rand.New(rand.NewSource(31))
	cfg := SchemeConfig{NumVehicles: v, NumBatches: m, Degree: degree, Workers: 2, Seed: 5}
	streamed, err := NewScheme(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewScheme(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		ups := roundUploads(t, streamed, model, nil)
		// Scatter per-value verification drops so masks differ by slot.
		for i := 0; i < 6; i++ {
			id := rng.Intn(v)
			slot := rng.Intn(streamed.Slots())
			ups[id][2*slot] = fl.Dropped
		}
		gotT := streamedAggregate(t, streamed, ups, rng.Perm(v))
		wantT, err := plain.Aggregate(ups)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantT {
			if math.Float64bits(gotT[j]) != math.Float64bits(wantT[j]) {
				t.Fatalf("trial %d target[%d]: streamed %g, plain %g", trial, j, gotT[j], wantT[j])
			}
		}
	}
}

func TestRoundIngestValidation(t *testing.T) {
	ref := refFeatures(t, 8*2)
	cfg := SchemeConfig{NumVehicles: 12, NumBatches: 8, Degree: 1, Workers: 1, Seed: 9}
	s, err := NewScheme(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 1, 41)
	ups := roundUploads(t, s, model, nil)
	sink := s.BeginIngest()
	if err := sink.Add(-1, ups[0]); err == nil {
		t.Fatal("negative vehicle ID accepted")
	}
	if err := sink.Add(12, ups[0]); err == nil {
		t.Fatal("out-of-range vehicle ID accepted")
	}
	if err := sink.Add(0, ups[0][:3]); err == nil {
		t.Fatal("short upload accepted")
	}
	if err := sink.Add(0, nil); err != nil {
		t.Fatalf("nil upload should be a no-op: %v", err)
	}
	if err := sink.Add(0, ups[0]); err != nil {
		t.Fatalf("valid add rejected: %v", err)
	}
	if err := sink.Add(0, ups[0]); err == nil {
		t.Fatal("duplicate vehicle accepted")
	}
	// A foreign sink type must not break AggregateStreamed.
	var foreign dummySink
	if _, err := s.AggregateStreamed(&foreign, ups); err != nil {
		t.Fatalf("foreign sink: %v", err)
	}
}

type dummySink struct{}

func (*dummySink) Add(int, []float64) error { return nil }

// The scheme must satisfy the fl.StreamingAggregator contract.
var _ fl.StreamingAggregator = (*Scheme)(nil)
