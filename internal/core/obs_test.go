package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestObsCountersMirrorLegacyFields drives several Aggregate rounds with
// different outcomes (honest, malicious, straggler-starved) and checks
// the cumulative obs counters equal the sum of the per-round legacy
// fields — the two bookkeeping systems must never drift.
func TestObsCountersMirrorLegacyFields(t *testing.T) {
	ref := refFeatures(t, 16*2)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	clk := &obs.ManualClock{}
	o := obs.New(reg, obs.NewTracer(&buf, clk), clk)

	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 40, NumBatches: 16, Degree: 2, Seed: 11, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 2, 3)

	var wantFail, wantRecov, wantFall, wantFlagged int
	aggregate := func(ups [][]float64) {
		t.Helper()
		if _, err := s.Aggregate(ups); err != nil {
			t.Fatal(err)
		}
		wantFail += s.DecodeFailures
		wantRecov += s.BatchRecovered
		wantFall += s.BatchFallbacks
		wantFlagged += len(s.SuspectedMalicious())
	}

	// Round 1: all honest.
	aggregate(roundUploads(t, s, model, nil))

	// Round 2: three vehicles corrupted wholesale (budget E = 4).
	ups := roundUploads(t, s, model, nil)
	rng := rand.New(rand.NewSource(5))
	for _, id := range rng.Perm(40)[:3] {
		for j := range ups[id] {
			ups[id][j] = 5 + rng.Float64()*10
		}
	}
	aggregate(ups)
	if wantFlagged == 0 {
		t.Fatal("malicious round flagged nobody; test exercises nothing")
	}

	// Round 3: 12 vehicles silent leaves 28 present, below K = 31 —
	// every slot must fail to decode.
	ups = roundUploads(t, s, model, nil)
	for i := 0; i < 12; i++ {
		ups[i] = nil
	}
	aggregate(ups)
	if s.DecodeFailures != s.Slots() {
		t.Fatalf("starved round: %d failures, want %d", s.DecodeFailures, s.Slots())
	}

	checks := []struct {
		name string
		want int64
	}{
		{"core.decode_failures", int64(wantFail)},
		{"core.batch_recovered", int64(wantRecov)},
		{"core.batch_fallbacks", int64(wantFall)},
		{"core.flagged_vehicles", int64(wantFlagged)},
		{"core.aggregates", 3},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	// The batch-decode layer counts the same traffic from below: every
	// slot the scheme recovered or fell back passed through DecodeBatch.
	if got := reg.Counter("rs.batch.recovered").Value(); got != int64(wantRecov) {
		t.Errorf("rs.batch.recovered = %d, want %d", got, wantRecov)
	}
	if got := reg.Counter("rs.batch.fallbacks").Value(); got != int64(wantFall) {
		t.Errorf("rs.batch.fallbacks = %d, want %d", got, wantFall)
	}

	// The trace must carry one core.aggregate span per round whose fields
	// re-sum to the same totals.
	if err := o.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	var spans, traceFail, slotFails int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		switch rec["ev"] {
		case "core.aggregate":
			spans++
			traceFail += int(rec["decode_failures"].(float64))
		case "core.slot_fail":
			slotFails++
		}
	}
	if spans != 3 {
		t.Errorf("trace has %d core.aggregate spans, want 3", spans)
	}
	if traceFail != wantFail || slotFails != wantFail {
		t.Errorf("trace failures: spans sum %d, slot_fail events %d, want %d", traceFail, slotFails, wantFail)
	}
}

// TestObsDisabledSchemeUnchanged pins the default: a scheme without an
// Obs handle keeps all legacy fields working and resolves no metrics.
func TestObsDisabledSchemeUnchanged(t *testing.T) {
	ref := refFeatures(t, 8*2)
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 20, NumBatches: 8, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 2, 3)
	if _, err := s.Aggregate(roundUploads(t, s, model, nil)); err != nil {
		t.Fatal(err)
	}
	if s.obs.Enabled() {
		t.Fatal("scheme without Obs reports enabled")
	}
	if s.DecodeFailures != 0 || s.BatchRecovered == 0 {
		t.Fatalf("legacy fields broken without obs: failures=%d recovered=%d", s.DecodeFailures, s.BatchRecovered)
	}
}
