package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/lagrange"
	"repro/internal/nn"
	"repro/internal/reedsolomon"
)

// AnalogScheme is the real-valued variant of L-CoFL, kept as a studied
// ablation against the exact-field Scheme (DESIGN.md §1): vehicles encode
// the reference batches over ℝ with the eq. 9 Chebyshev geometry and
// evaluate their LOCALLY-TRAINED polynomial models on the encoded slots;
// the fusion centre reconstructs the composed polynomial per slot with
// the robust (trimmed-least-squares) Reed–Solomon decoder and reads the
// per-batch estimation targets off the nodes (eq. 7).
//
// Unlike the exact Scheme there is no separate verification channel: the
// decoded polynomial itself is the aggregate, so local data influences
// the targets directly through the decoded estimations. The price is the
// analog-decoding regime: honest results are evaluations of one
// polynomial only up to local-model heterogeneity, so decoding needs a
// residual threshold separating that heterogeneity from gross lies, and
// the noise is amplified at the node read-off. Use the exact Scheme in
// production; use this to study the analog trade-off (the
// BenchmarkAblationExactVsRealDecode axis).
type AnalogScheme struct {
	cfg     SchemeConfig
	coder   *lagrange.RealCoder
	batches [][][]float64 // [M][S][F]
	slots   int
	k       int
	// Threshold is the decoder's inlier residual cutoff; it must sit
	// above the honest heterogeneity level and below the lie magnitude.
	Threshold float64

	// DecodeFailures counts slots whose decode exceeded the error budget
	// in the last Aggregate.
	DecodeFailures int
}

// NewAnalogScheme builds the real-valued scheme. The threshold defaults
// to 0.25; tune it to the expected honest heterogeneity.
func NewAnalogScheme(refX [][]float64, cfg SchemeConfig, threshold float64) (*AnalogScheme, error) {
	if cfg.NumVehicles < 1 {
		return nil, fmt.Errorf("core: need at least one vehicle, got %d", cfg.NumVehicles)
	}
	if cfg.NumBatches < 2 {
		return nil, fmt.Errorf("core: need at least two batches, got %d", cfg.NumBatches)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("core: degree %d must be >= 1", cfg.Degree)
	}
	if len(refX) == 0 || len(refX)%cfg.NumBatches != 0 {
		return nil, fmt.Errorf("core: reference size %d is not a positive multiple of M=%d", len(refX), cfg.NumBatches)
	}
	k := cfg.Degree*(cfg.NumBatches-1) + 1
	if k > cfg.NumVehicles {
		return nil, fmt.Errorf("core: recover threshold K=%d exceeds V=%d", k, cfg.NumVehicles)
	}
	if threshold <= 0 {
		threshold = 0.25
	}
	// Chebyshev-distributed nodes and (slightly contracted) points: the
	// extreme points bracket the extreme nodes so node read-off is
	// interpolation, and the eq. 9 redundancy D stays near the Lebesgue
	// constant (see Scheme for the full rationale).
	nodes := lagrange.ChebyshevNodes(cfg.NumBatches, -1, 1)
	var coder *lagrange.RealCoder
	var err error
	for _, scale := range []float64{1, 0.99991, 0.99983, 0.99977} {
		points := lagrange.ChebyshevNodes(cfg.NumVehicles, -scale, scale)
		if points[cfg.NumVehicles-1] <= nodes[cfg.NumBatches-1] {
			continue
		}
		coder, err = lagrange.NewRealCoder(nodes, points)
		if err == nil {
			break
		}
	}
	if coder == nil {
		if err == nil {
			err = fmt.Errorf("vehicle points cannot bracket the batch nodes (V=%d, M=%d)", cfg.NumVehicles, cfg.NumBatches)
		}
		return nil, fmt.Errorf("core: %w", err)
	}
	s := len(refX) / cfg.NumBatches
	batches := make([][][]float64, cfg.NumBatches)
	for m := range batches {
		batches[m] = make([][]float64, s)
		for j := 0; j < s; j++ {
			batches[m][j] = append([]float64(nil), refX[m*s+j]...)
		}
	}
	return &AnalogScheme{
		cfg:       cfg,
		coder:     coder,
		batches:   batches,
		slots:     s,
		k:         k,
		Threshold: threshold,
	}, nil
}

// Name implements fl.Scheme.
func (s *AnalogScheme) Name() string { return "l-cofl-analog" }

// RecoverThreshold returns K = d·(M−1)+1 of eq. 6.
func (s *AnalogScheme) RecoverThreshold() int { return s.k }

// MaxMalicious returns the E-security budget ⌊(V−K)/2⌋ (eq. 6).
func (s *AnalogScheme) MaxMalicious() int {
	return reedsolomon.MaxErrors(s.cfg.NumVehicles, s.k)
}

// Redundancy returns the eq. 9 bound D = max_i Σ_m |p_m(ρ_i)|.
func (s *AnalogScheme) Redundancy() float64 { return s.coder.Redundancy() }

// Slots returns S, the per-vehicle upload size.
func (s *AnalogScheme) Slots() int { return s.slots }

// BeginRound implements fl.Scheme; the analog variant has no separate
// verification model.
func (s *AnalogScheme) BeginRound(*nn.Network) error { return nil }

// Upload implements fl.Scheme: vehicle i encodes the reference batches at
// its point ρ_i (eqs. 4, 8) and estimates every encoded slot with its
// locally-trained model. Estimates are NOT clamped: the decoder needs raw
// polynomial evaluations.
func (s *AnalogScheme) Upload(vehicleID int, model *nn.Network) ([]float64, error) {
	if vehicleID < 0 || vehicleID >= s.cfg.NumVehicles {
		return nil, fmt.Errorf("core: vehicle ID %d outside [0, %d)", vehicleID, s.cfg.NumVehicles)
	}
	w := s.coder.WorkerWeights(vehicleID)
	features := len(s.batches[0][0])
	out := make([]float64, s.slots)
	enc := make([]float64, features)
	for j := 0; j < s.slots; j++ {
		for f := range enc {
			enc[f] = 0
		}
		for m := range s.batches {
			wm := w[m]
			row := s.batches[m][j]
			for f, v := range row {
				enc[f] += wm * v
			}
		}
		pi, err := model.Estimate(enc)
		if err != nil {
			return nil, fmt.Errorf("core: vehicle %d slot %d: %w", vehicleID, j, err)
		}
		out[j] = pi
	}
	return out, nil
}

// Aggregate implements fl.Scheme: per slot, reconstruct the composed
// polynomial with the robust real decoder and read the per-batch targets
// off the nodes. A slot whose decode fails (heterogeneity above the
// threshold, or lies beyond the eq. 6 budget) degrades to the median of
// the received values.
func (s *AnalogScheme) Aggregate(uploads [][]float64) ([]float64, error) {
	if len(uploads) != s.cfg.NumVehicles {
		return nil, fmt.Errorf("core: got %d uploads, want %d", len(uploads), s.cfg.NumVehicles)
	}
	s.DecodeFailures = 0
	m := s.coder.NumBatches()
	targets := make([]float64, m*s.slots)
	points := s.coder.Points()
	nodes := s.coder.Nodes()
	for j := 0; j < s.slots; j++ {
		var xs, ys []float64
		for i, up := range uploads {
			if up == nil {
				continue
			}
			if len(up) != s.slots {
				return nil, fmt.Errorf("core: vehicle %d uploaded %d slots, want %d", i, len(up), s.slots)
			}
			if fl.IsDropped(up[j]) {
				continue
			}
			xs = append(xs, points[i])
			ys = append(ys, up[j])
		}
		if len(xs) < s.k {
			s.DecodeFailures++
			fillMedian(targets, ys, m, s.slots, j)
			continue
		}
		res, err := reedsolomon.DecodeRealRobust(xs, ys, s.k, reedsolomon.RealOptions{
			InlierThreshold: s.Threshold,
		})
		if err != nil {
			s.DecodeFailures++
			fillMedian(targets, ys, m, s.slots, j)
			continue
		}
		for b, node := range nodes {
			targets[b*s.slots+j] = clampTarget(res.Poly.Eval(node))
		}
	}
	return targets, nil
}

// fillMedian writes the slot's median (or Dropped when empty) to every
// batch target of slot j.
func fillMedian(targets, ys []float64, m, slots, j int) {
	v := fl.Dropped
	if len(ys) > 0 {
		v = median(ys)
	}
	for b := 0; b < m; b++ {
		targets[b*slots+j] = v
	}
}

// clampTarget bounds decoded node values: estimation results are
// probabilities, and real-valued decoding can overshoot under noise.
func clampTarget(v float64) float64 {
	if math.IsNaN(v) {
		return fl.Dropped
	}
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// verify interface compliance.
var _ fl.Scheme = (*AnalogScheme)(nil)
