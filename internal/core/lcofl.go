// Package core implements L-CoFL, the paper's primary contribution: the
// first Lagrange-coded federated-learning model (paper §IV).
//
// Scheme is the FL pipeline plugged into package fl. Every global round it
// runs the paper's Steps 1–3 as a coded VERIFICATION channel plus a
// learning channel:
//
//   - Step 1: the fusion centre partitions its reference feature set into
//     M batches, quantises it into GF(p) (package fixedpoint), and fixes
//     encoding elements {ℓ_m} (batch nodes) and {ρ_i} (one point per
//     vehicle) in the field.
//   - Step 2: each vehicle holds its Lagrange-encoded share X̃_i = H(ρ_i)
//     (eqs. 3–4, 8) and evaluates the broadcast shared model — identical
//     at every honest vehicle, in exact fixed-point field arithmetic — on
//     its encoded slots, uploading those estimation symbols together with
//     its locally-trained model's estimations of the raw reference
//     samples.
//   - Step 3: honest verification symbols are exact evaluations of ONE
//     composed polynomial C(H(z)) of degree deg(C)·(M−1) over GF(p), so
//     the Gao/Berlekamp–Welch Reed–Solomon decoder reconstructs it and
//     pinpoints every erroneous upload whenever
//     (M−1)·deg(C) + 2E + 1 ≤ V (eq. 6) — with equality, no thresholds,
//     and bit-exact honesty checks. Vehicles caught lying are excluded,
//     and the learning estimations of the verified vehicles are averaged
//     into the distillation targets: the paper's "inaccurate estimation
//     results produced with the system noises can be removed".
//
// DESIGN.md §1 records why verification-then-aggregate is the coherent
// reading: Reed–Solomon decoding requires honest workers to evaluate one
// common polynomial, which locally-trained (heterogeneous) models do not
// provide, but the broadcast shared model does — exactly and at every
// vehicle. A vehicle that computes the verification slots honestly but
// lies only on the learning channel evades this defence; that is the
// data-poisoning problem, outside the paper's "erroneous results" threat
// model (its malicious vehicles corrupt what they report wholesale).
//
// Inference is the standalone coded-inference pipeline over the same
// machinery, for applications that only need secure estimation of a
// fixed model.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/fl"
	"repro/internal/lagrange"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/reedsolomon"
)

// SchemeConfig parameterises the L-CoFL scheme.
type SchemeConfig struct {
	// NumVehicles is V; vehicle IDs 0..V-1 map to points ρ_1..ρ_V.
	NumVehicles int
	// NumBatches is M, the number of reference batches (the paper uses
	// the feature count, 16).
	NumBatches int
	// Degree is the end-to-end polynomial degree of the estimation in its
	// input — the approximation degree d for the paper's single-
	// nonlinear-layer model. It determines the recover threshold
	// K = d·(M−1) + 1 of eq. 6.
	Degree int
	// FracBits is the fixed-point resolution of the verification channel;
	// zero selects the maximum the field headroom allows at this degree
	// (capped at 16). See fixedpoint for the scale budget.
	FracBits uint
	// Seed drives the random selection of the field encoding elements.
	Seed int64
	// Workers bounds the goroutines used for the per-slot encode at
	// construction and the per-slot verification decodes in Aggregate.
	// Zero (or negative) selects GOMAXPROCS; 1 runs sequentially. Results
	// are bit-identical at any worker count: slots are independent and the
	// per-slot outcomes are merged in slot order.
	Workers int
	// DisableBatchDecode forces Aggregate's verification decodes down the
	// per-slot path instead of the shared-locator batch fast path. The two
	// paths produce bit-identical results (DESIGN.md §9); the knob exists
	// for A/B benchmarks and as an escape hatch.
	DisableBatchDecode bool
	// Obs attaches the observability layer (metrics + tracing) to the
	// scheme, its Lagrange coder and its Reed–Solomon decoders. Nil (the
	// default) disables all instrumentation at near-zero cost.
	Obs *obs.Obs
}

// Scheme is the L-CoFL upload/aggregate strategy; it implements fl.Scheme.
type Scheme struct {
	cfg     SchemeConfig
	codec   *fixedpoint.Codec
	coder   *lagrange.Coder
	refX    [][]float64         // original reference order (learning channel)
	shares  [][][]field.Element // [V][S][F] encoded verification shares
	slots   int                 // S: verification slots per vehicle
	k       int                 // recover threshold K = Degree·(M-1) + 1
	dec     *reedsolomon.Decoder
	fpm     *fpModel // broadcast model, quantised per round
	workers int      // resolved parallelism for slot-level fan-out

	// batchSrc supplies the random combination coefficients for batch
	// decoding; seeded from cfg.Seed, and immaterial to results (the batch
	// decoder is result-equivalent for any coefficients, DESIGN.md §9).
	batchSrc field.Source

	// Aggregate scratch, reused round over round so the steady-state hot
	// path allocates only caller-visible output. Aggregate is called once
	// per round from the FL loop and is not itself concurrent (only its
	// internal slot fan-out is), so plain reuse is safe: each slot's
	// ys/ids/flagged slices are re-sliced to zero length and refilled,
	// keeping their grown capacity.
	aggWords    []slotWord
	aggOutcomes []slotOutcome
	aggEligible []int
	aggBatch    [][]field.Element

	// pendingIngest, when non-nil, is the round's streamed decode state
	// (stream.go): set by AggregateStreamed for the duration of one
	// Aggregate call and consumed by the first matching presence group.
	pendingIngest *RoundIngest

	// DecodeFailures counts verification slots whose decode exceeded the
	// error budget in the last Aggregate.
	DecodeFailures int
	// DetectedMalicious holds per-vehicle error counts from the last
	// Aggregate's verification decodes.
	DetectedMalicious []int
	// BatchRecovered and BatchFallbacks count how the last Aggregate's
	// verification decodes split between the shared-locator fast path and
	// the per-slot fallback (both stay zero under DisableBatchDecode).
	BatchRecovered int
	BatchFallbacks int

	// Observability handles, resolved once in NewScheme. The cumulative
	// counters core.decode_failures / core.batch_recovered /
	// core.batch_fallbacks mirror the per-round fields above: after every
	// Aggregate the round's deltas are added, so counter totals equal the
	// sum of the field values across rounds (asserted in obs_test.go).
	obs             *obs.Obs
	cDecodeFailures *obs.Counter
	cBatchRecovered *obs.Counter
	cBatchFallbacks *obs.Counter
	cAggregates     *obs.Counter
	cFlagged        *obs.Counter
	hAggregateNs    *obs.Histogram
	spanParent      obs.SpanContext
}

// SetSpanParent links the next Aggregate's core.aggregate span under the
// given parent — the round span of whichever engine drives the scheme —
// so a merged timeline can nest the decode inside its round. The zero
// context detaches. Call between rounds, from the goroutine that calls
// Aggregate (the field is unsynchronised like the per-round report
// fields).
func (s *Scheme) SetSpanParent(ctx obs.SpanContext) { s.spanParent = ctx }

// NewScheme quantises and Lagrange-encodes the reference features and
// fixes the encoding elements. len(refX) must be a positive multiple of M
// (use TrimToMultiple), and every feature must fit the fixed-point range
// (features normalised to [-1, 1] always do — the eq. 9 precondition).
func NewScheme(refX [][]float64, cfg SchemeConfig) (*Scheme, error) {
	if cfg.NumVehicles < 1 {
		return nil, fmt.Errorf("core: need at least one vehicle, got %d", cfg.NumVehicles)
	}
	if cfg.NumBatches < 2 {
		return nil, fmt.Errorf("core: need at least two batches, got %d", cfg.NumBatches)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("core: degree %d must be >= 1", cfg.Degree)
	}
	if len(refX) == 0 || len(refX)%cfg.NumBatches != 0 {
		return nil, fmt.Errorf("core: reference size %d is not a positive multiple of M=%d", len(refX), cfg.NumBatches)
	}
	k := cfg.Degree*(cfg.NumBatches-1) + 1
	if k > cfg.NumVehicles {
		return nil, fmt.Errorf("core: recover threshold K=%d exceeds V=%d (eq. 6 unsatisfiable even with zero errors)", k, cfg.NumVehicles)
	}
	frac := cfg.FracBits
	if frac == 0 {
		frac = maxFracBitsFor(cfg.Degree)
		if frac > 16 {
			frac = 16
		}
	}
	codec, err := fixedpoint.New(frac)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := field.RandDistinct(rng, cfg.NumBatches, nil)
	points := field.RandDistinct(rng, cfg.NumVehicles, nodes)
	coder, err := lagrange.NewCoder(nodes, points)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Attach obs before the one-time reference-share encode below so the
	// construction cost shows up in lagrange.encode_* too.
	coder.SetObs(cfg.Obs)

	s := len(refX) / cfg.NumBatches
	features := len(refX[0])
	refCopy := make([][]float64, len(refX))
	for i, r := range refX {
		if len(r) != features {
			return nil, fmt.Errorf("core: reference sample %d has %d features, want %d", i, len(r), features)
		}
		refCopy[i] = append([]float64(nil), r...)
	}

	// Quantise and Lagrange-encode the verification shares once: for slot
	// j, the M batch rows {refX[m·S+j]}_m are combined per vehicle. Slots
	// are independent and each writes the disjoint column shares[·][j], so
	// they fan out across the worker pool; the coder itself stays
	// sequential inside the scheme (parallelism lives at the slot level).
	workers := parallel.Workers(cfg.Workers)
	shares := make([][][]field.Element, cfg.NumVehicles)
	for v := range shares {
		shares[v] = make([][]field.Element, s)
	}
	encErr := parallel.ForEach(workers, s, func(j int) error {
		rows := make([][]field.Element, cfg.NumBatches)
		for m := 0; m < cfg.NumBatches; m++ {
			enc, err := codec.EncodeVec(refX[m*s+j])
			if err != nil {
				return fmt.Errorf("core: reference batch %d slot %d: %w", m, j, err)
			}
			rows[m] = enc
		}
		perVehicle, err := coder.EncodeVectors(rows)
		if err != nil {
			return fmt.Errorf("core: encoding slot %d: %w", j, err)
		}
		for v := range perVehicle {
			shares[v][j] = perVehicle[v]
		}
		return nil
	})
	if encErr != nil {
		return nil, encErr
	}
	dec, err := reedsolomon.NewDecoder(coder.Points(), k)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sch := &Scheme{
		cfg:      cfg,
		codec:    codec,
		coder:    coder,
		refX:     refCopy,
		shares:   shares,
		slots:    s,
		k:        k,
		dec:      dec,
		workers:  workers,
		batchSrc: field.NewSeededSource(cfg.Seed),
	}
	if cfg.Obs.Enabled() {
		o := cfg.Obs
		sch.obs = o
		dec.SetObs(o)
		sch.cDecodeFailures = o.Counter("core.decode_failures")
		sch.cBatchRecovered = o.Counter("core.batch_recovered")
		sch.cBatchFallbacks = o.Counter("core.batch_fallbacks")
		sch.cAggregates = o.Counter("core.aggregates")
		sch.cFlagged = o.Counter("core.flagged_vehicles")
		sch.hAggregateNs = o.Histogram("core.aggregate_ns", obs.LatencyBuckets())
	}
	return sch, nil
}

// TrimToMultiple returns the largest prefix of refX whose length is a
// multiple of m — a convenience for sizing the reference set.
func TrimToMultiple(refX [][]float64, m int) [][]float64 {
	if m <= 0 {
		return nil
	}
	return refX[:len(refX)/m*m]
}

// Name implements fl.Scheme.
func (s *Scheme) Name() string { return "l-cofl" }

// RecoverThreshold returns K = d·(M−1)+1 of eq. 6.
func (s *Scheme) RecoverThreshold() int { return s.k }

// MaxMalicious returns the E-security budget ⌊(V−K)/2⌋ (eq. 6).
func (s *Scheme) MaxMalicious() int {
	return reedsolomon.MaxErrors(s.cfg.NumVehicles, s.k)
}

// Slots returns S, the number of verification slots per vehicle.
func (s *Scheme) Slots() int { return s.slots }

// UploadLen returns the total upload size: 2·S verification floats (each
// field symbol travels as two exact 32-bit halves) plus len(refX)
// learning estimations.
func (s *Scheme) UploadLen() int { return 2*s.slots + len(s.refX) }

// FracBits returns the verification channel's fixed-point resolution.
func (s *Scheme) FracBits() uint { return s.codec.FracBits() }

// BeginRound implements fl.Scheme: it quantises the broadcast model every
// honest vehicle uses on the verification channel this round. The model
// must be single-layer with a polynomial activation of degree ≤ Degree
// (the L-CoFL requirement from §IV Step 2).
func (s *Scheme) BeginRound(shared *nn.Network) error {
	if shared == nil {
		return fmt.Errorf("core: nil shared model")
	}
	if len(shared.Sizes()) != 2 || shared.OutputSize() != 1 {
		return fmt.Errorf("core: verification requires a single-nonlinear-layer model, got layers %v", shared.Sizes())
	}
	actPoly := shared.Activation().Poly
	if actPoly == nil {
		return fmt.Errorf("core: shared model's activation %q is not a polynomial approximation", shared.Activation().Name)
	}
	features := len(s.refX[0])
	if shared.InputSize() != features {
		return fmt.Errorf("core: model input %d, reference features %d", shared.InputSize(), features)
	}
	params := shared.Params() // [w… b] for a single layer
	fpm, err := newFPModel(s.codec, params[:features], params[features], actPoly, s.cfg.Degree)
	if err != nil {
		return err
	}
	s.fpm = fpm
	return nil
}

// Upload implements fl.Scheme. The first 2·S scalars are the verification
// channel: the quantised broadcast model evaluated on the vehicle's
// encoded shares, each field symbol split into two exact float halves.
// The remaining scalars are the learning channel: the locally-trained
// model's estimations of every raw reference sample.
func (s *Scheme) Upload(vehicleID int, model *nn.Network) ([]float64, error) {
	if vehicleID < 0 || vehicleID >= s.cfg.NumVehicles {
		return nil, fmt.Errorf("core: vehicle ID %d outside [0, %d)", vehicleID, s.cfg.NumVehicles)
	}
	if s.fpm == nil {
		return nil, fmt.Errorf("core: BeginRound must run before Upload")
	}
	out := make([]float64, 0, s.UploadLen())
	for j := 0; j < s.slots; j++ {
		hi, lo := symbolToFloats(s.fpm.Eval(s.shares[vehicleID][j]))
		out = append(out, hi, lo)
	}
	for j, x := range s.refX {
		pi, err := model.EstimateClamped(x)
		if err != nil {
			return nil, fmt.Errorf("core: vehicle %d learning sample %d: %w", vehicleID, j, err)
		}
		out = append(out, pi)
	}
	return out, nil
}

// Aggregate implements fl.Scheme. Per verification slot it decodes the
// received symbols with the exact Reed–Solomon decoder and records which
// vehicles returned erroneous results; a vehicle flagged on any slot is
// excluded. The distillation targets are the per-sample means of the
// surviving vehicles' learning estimations. If more than half the
// verification slots are undecodable (error budget of eq. 6 exceeded),
// the round degrades to a per-sample median over all vehicles — still
// robust to a minority of liars, but without the eq. 6 guarantee.
func (s *Scheme) Aggregate(uploads [][]float64) ([]float64, error) {
	if len(uploads) != s.cfg.NumVehicles {
		return nil, fmt.Errorf("core: got %d uploads, want %d", len(uploads), s.cfg.NumVehicles)
	}
	for i, up := range uploads {
		if up != nil && len(up) != s.UploadLen() {
			return nil, fmt.Errorf("core: vehicle %d uploaded %d values, want %d", i, len(up), s.UploadLen())
		}
	}
	if s.obs.Enabled() {
		start := s.obs.Now()
		defer func() {
			elapsed := s.obs.Now() - start
			s.cAggregates.Inc()
			s.hAggregateNs.Observe(int64(elapsed))
			fields := []obs.Field{
				obs.F("slots", s.slots),
				obs.F("decode_failures", s.DecodeFailures),
				obs.F("batch_recovered", s.BatchRecovered),
				obs.F("batch_fallbacks", s.BatchFallbacks),
				obs.F("flagged", len(s.SuspectedMalicious())),
			}
			if p := s.spanParent; p.Valid() {
				span := obs.DeriveSpan(p.Trace, "core.aggregate", p.Span)
				fields = append(fields, obs.CtxFields(obs.SpanContext{Trace: p.Trace, Span: span}, p.Span)...)
			}
			s.obs.EmitSpan("core.aggregate", start, elapsed, fields...)
		}()
	}
	s.DecodeFailures = 0
	s.DetectedMalicious = make([]int, s.cfg.NumVehicles)
	s.BatchRecovered = 0
	s.BatchFallbacks = 0
	points := s.coder.Points()

	// Gather each slot's received word and the IDs of the vehicles present
	// in it. Slots are independent, so the gather fans out; each writes
	// only its own index. The words live in round-over-round scratch:
	// every slot's ys/ids restart at length zero with retained capacity.
	if len(s.aggWords) != s.slots {
		s.aggWords = make([]slotWord, s.slots)
		s.aggOutcomes = make([]slotOutcome, s.slots)
	}
	words := s.aggWords
	_ = parallel.ForEach(s.workers, s.slots, func(j int) error {
		words[j].ys = words[j].ys[:0]
		words[j].ids = words[j].ids[:0]
		for i, up := range uploads {
			if up == nil || fl.IsDropped(up[2*j]) || fl.IsDropped(up[2*j+1]) {
				continue
			}
			words[j].ys = append(words[j].ys, floatsToSymbol(up[2*j], up[2*j+1]))
			words[j].ids = append(words[j].ids, i)
		}
		return nil
	})

	// Decode the verification slots — each is an independent Reed–Solomon
	// word — then merge the per-slot outcomes in slot order.
	// DecodeFailures and DetectedMalicious are order-independent sums, so
	// the merged counters match the sequential loop exactly.
	outcomes := s.aggOutcomes
	for j := range outcomes {
		outcomes[j].failed = false
		outcomes[j].flagged = outcomes[j].flagged[:0]
	}
	if s.cfg.DisableBatchDecode {
		_ = parallel.ForEach(s.workers, s.slots, func(j int) error {
			w := words[j]
			if len(w.ids) < s.k {
				outcomes[j].failed = true
				return nil
			}
			// The common case — every vehicle present — reuses the cached
			// decoder; straggler rounds fall back to the one-shot path.
			var res *reedsolomon.Result
			var err error
			if len(w.ids) == s.cfg.NumVehicles {
				res, err = s.dec.Decode(w.ys)
			} else {
				xs := make([]field.Element, len(w.ids))
				for t, i := range w.ids {
					xs[t] = points[i]
				}
				res, err = reedsolomon.Decode(xs, w.ys, s.k)
			}
			if err != nil {
				outcomes[j].failed = true
				return nil
			}
			for _, idx := range res.ErrorPositions {
				outcomes[j].flagged = append(outcomes[j].flagged, w.ids[idx])
			}
			return nil
		})
	} else {
		s.aggregateBatch(words, outcomes, points)
	}
	// The merge runs sequentially in slot order, so slot_fail events land
	// in the trace deterministically even when the decodes fanned out.
	for j, o := range outcomes {
		if o.failed {
			s.DecodeFailures++
			if s.obs.TraceEnabled() {
				s.obs.Emit("core.slot_fail", obs.F("slot", j))
			}
			continue
		}
		for _, id := range o.flagged {
			s.DetectedMalicious[id]++
		}
	}
	if s.obs.Enabled() {
		// Cumulative counters mirror the per-round fields: add this round's
		// deltas so totals stay in lock-step with the legacy ints.
		s.cDecodeFailures.Add(int64(s.DecodeFailures))
		s.cBatchRecovered.Add(int64(s.BatchRecovered))
		s.cBatchFallbacks.Add(int64(s.BatchFallbacks))
		s.cFlagged.Add(int64(len(s.SuspectedMalicious())))
	}

	n := len(s.refX)
	offset := 2 * s.slots
	targets := make([]float64, n)
	if 2*s.DecodeFailures > s.slots {
		// Verification unusable: robust fallback without exclusions.
		for j := 0; j < n; j++ {
			var vals []float64
			for _, up := range uploads {
				if up == nil || fl.IsDropped(up[offset+j]) {
					continue
				}
				vals = append(vals, up[offset+j])
			}
			if len(vals) == 0 {
				targets[j] = fl.Dropped
				continue
			}
			targets[j] = median(vals)
		}
		return targets, nil
	}

	// Learning: average the verified vehicles' estimations per sample.
	for j := 0; j < n; j++ {
		var sum float64
		count := 0
		for i, up := range uploads {
			if up == nil || s.DetectedMalicious[i] > 0 || fl.IsDropped(up[offset+j]) {
				continue
			}
			sum += up[offset+j]
			count++
		}
		if count == 0 {
			targets[j] = fl.Dropped
			continue
		}
		targets[j] = sum / float64(count)
	}
	return targets, nil
}

// slotWord is one verification slot's received word: the present
// vehicles' symbols in vehicle-ID order, and those IDs.
type slotWord struct {
	ys  []field.Element
	ids []int
}

// slotOutcome is one slot's verification verdict.
type slotOutcome struct {
	failed  bool
	flagged []int // vehicle IDs with erroneous symbols in this slot
}

// aggregateBatch decodes the gathered slot words through the batch
// shared-locator decoder (DESIGN.md §9), writing outcomes in place.
// Per-value drops mean slots can see different vehicle subsets, and the
// batch decoder requires one common point set, so slots are grouped by
// presence mask (in first-appearance order, deterministically) and each
// group decoded as one batch. The common case is a single full-presence
// group reusing the cached decoder; straggler masks amortise one decoder
// construction across their slots.
func (s *Scheme) aggregateBatch(words []slotWord, outcomes []slotOutcome, points []field.Element) {
	eligible := s.aggEligible[:0]
	for j := range words {
		if len(words[j].ids) < s.k {
			outcomes[j].failed = true
			continue
		}
		eligible = append(eligible, j)
	}
	s.aggEligible = eligible
	if len(eligible) == 0 {
		return
	}
	// Uniform-presence fast path: when every eligible slot saw the same
	// vehicles — the overwhelmingly common case, every vehicle present —
	// there is exactly one group, and the mask-keyed map (with its
	// per-slot byte-mask and string allocations) is skipped entirely.
	uniform := true
	for _, j := range eligible[1:] {
		if !equalIDs(words[eligible[0]].ids, words[j].ids) {
			uniform = false
			break
		}
	}
	if uniform {
		s.decodeGroup(words, outcomes, points, eligible)
		return
	}
	groups := make(map[string][]int)
	var order []string
	for _, j := range eligible {
		key := maskKey(words[j].ids, s.cfg.NumVehicles)
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], j)
	}
	for _, key := range order {
		s.decodeGroup(words, outcomes, points, groups[key])
	}
}

// decodeGroup batch-decodes one presence group (slot indices sharing a
// vehicle set), writing outcomes in place.
func (s *Scheme) decodeGroup(words []slotWord, outcomes []slotOutcome, points []field.Element, slots []int) {
	ids := words[slots[0]].ids
	// Streamed fast path: when this group spans every verification slot
	// and its vehicle set is exactly the ingested set, each slot's word
	// equals the streamed symbols and the incremental decoder's Finalize
	// is bit-identical to DecodeBatch on it (stream.go).
	if ri := s.pendingIngest; ri != nil && len(slots) == s.slots && ri.matches(ids) {
		s.pendingIngest = nil
		s.finalizeIngest(ri, outcomes, slots, len(ids))
		return
	}
	dec := s.dec
	if len(ids) != s.cfg.NumVehicles {
		xs := make([]field.Element, len(ids))
		for t, i := range ids {
			xs[t] = points[i]
		}
		var err error
		dec, err = reedsolomon.NewDecoder(xs, s.k)
		if err == nil && s.obs.Enabled() {
			dec.SetObs(s.obs)
		}
		if err != nil {
			// Unreachable given the scheme's invariants (k ≥ 1, enough
			// distinct points); treat the group as undecodable.
			for _, j := range slots {
				outcomes[j].failed = true
			}
			return
		}
	}
	batch := s.aggBatch[:0]
	for _, j := range slots {
		batch = append(batch, words[j].ys)
	}
	s.aggBatch = batch
	results, errs, stats := dec.DecodeBatch(batch, s.batchSrc, s.workers)
	s.BatchRecovered += stats.Recovered
	s.BatchFallbacks += stats.Fallbacks
	if s.obs.TraceEnabled() {
		s.obs.Emit("core.batch_group",
			obs.F("slots", len(slots)),
			obs.F("present", len(ids)),
			obs.F("recovered", stats.Recovered),
			obs.F("fallbacks", stats.Fallbacks),
			obs.F("combined_ok", stats.CombinedOK))
	}
	for t, j := range slots {
		if errs[t] != nil {
			outcomes[j].failed = true
			continue
		}
		for _, idx := range results[t].ErrorPositions {
			outcomes[j].flagged = append(outcomes[j].flagged, ids[idx])
		}
	}
}

// equalIDs reports whether two strictly-increasing vehicle-ID lists are
// identical.
func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maskKey packs the presence set into a bitmask string usable as a map
// key; ids are strictly increasing vehicle IDs below numVehicles.
func maskKey(ids []int, numVehicles int) string {
	mask := make([]byte, (numVehicles+7)/8)
	for _, i := range ids {
		mask[i/8] |= 1 << (i % 8)
	}
	return string(mask)
}

func median(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), vals...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// SuspectedMalicious returns the vehicles flagged on at least one
// verification slot in the last Aggregate — the fusion centre's
// malicious-vehicle report.
func (s *Scheme) SuspectedMalicious() []int {
	var out []int
	for id, cnt := range s.DetectedMalicious {
		if cnt > 0 {
			out = append(out, id)
		}
	}
	return out
}

// verify interface compliance.
var _ fl.Scheme = (*Scheme)(nil)

// PolynomialDegreeOf returns the end-to-end degree of a single-nonlinear-
// layer model whose activation is the given polynomial — a helper for
// wiring SchemeConfig.Degree to the approximation actually installed.
func PolynomialDegreeOf(activation poly.Real) int { return activation.Degree() }
