package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/nn"
)

func analogUploads(t *testing.T, s *AnalogScheme, models []*nn.Network) [][]float64 {
	t.Helper()
	ups := make([][]float64, s.cfg.NumVehicles)
	for i := range ups {
		up, err := s.Upload(i, models[i%len(models)])
		if err != nil {
			t.Fatal(err)
		}
		ups[i] = up
	}
	return ups
}

func TestAnalogSchemeValidation(t *testing.T) {
	ref := refFeatures(t, 32)
	if _, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 0, NumBatches: 4, Degree: 1}, 0); err == nil {
		t.Error("zero vehicles accepted")
	}
	if _, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 10, NumBatches: 1, Degree: 1}, 0); err == nil {
		t.Error("one batch accepted")
	}
	if _, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 10, NumBatches: 4, Degree: 0}, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewAnalogScheme(nil, SchemeConfig{NumVehicles: 10, NumBatches: 4, Degree: 1}, 0); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 5, NumBatches: 4, Degree: 3}, 0); err == nil {
		t.Error("K > V accepted")
	}
	s, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 20, NumBatches: 4, Degree: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold != 0.25 {
		t.Errorf("default threshold = %g", s.Threshold)
	}
	if s.Redundancy() < 1 || s.Redundancy() > 5 {
		t.Errorf("redundancy = %g outside the Chebyshev-geometry range", s.Redundancy())
	}
}

func TestAnalogSchemeIdenticalModels(t *testing.T) {
	// With identical honest models the decoded targets match the direct
	// evaluation of the model on the raw reference samples — the analog
	// variant's exactness regime.
	ref := refFeatures(t, 16*3)
	s, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 60, NumBatches: 16, Degree: 2}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 2, 3)
	targets, err := s.Aggregate(analogUploads(t, s, []*nn.Network{model}))
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("%d decode failures on identical honest models", s.DecodeFailures)
	}
	for j, x := range ref {
		want, err := model.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 1e-6 {
			t.Fatalf("target[%d] = %g, want %g", j, targets[j], want)
		}
	}
}

func TestAnalogSchemeCorrectsGrossLies(t *testing.T) {
	ref := refFeatures(t, 16*2)
	s, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 100, NumBatches: 16, Degree: 2}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 2, 4)
	ups := analogUploads(t, s, []*nn.Network{model})
	rng := rand.New(rand.NewSource(5))
	for _, id := range rng.Perm(100)[:30] { // budget is 34 at degree 2
		for j := range ups[id] {
			ups[id][j] = 5 + rng.Float64()*10
		}
	}
	targets, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("%d decode failures within budget", s.DecodeFailures)
	}
	for j, x := range ref {
		want, err := model.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 1e-4 {
			t.Fatalf("target[%d] = %g, want %g (lies leaked into analog decode)", j, targets[j], want)
		}
	}
}

func TestAnalogSchemeToleratesMildHeterogeneity(t *testing.T) {
	// The analog regime: honest models perturbed well below the threshold
	// still decode; targets stay close to the mean model's estimations.
	ref := refFeatures(t, 8*2)
	const v = 40
	s, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: v, NumBatches: 8, Degree: 1}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	base := polyActivationModel(t, 1, 8)
	rng := rand.New(rand.NewSource(9))
	models := make([]*nn.Network, v)
	for i := range models {
		models[i] = base.Clone()
		params := models[i].Params()
		for p := range params {
			params[p] += 0.01 * rng.NormFloat64()
		}
		if err := models[i].SetParams(params); err != nil {
			t.Fatal(err)
		}
	}
	ups := make([][]float64, v)
	for i := range ups {
		up, err := s.Upload(i, models[i])
		if err != nil {
			t.Fatal(err)
		}
		ups[i] = up
	}
	targets, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("%d decode failures under mild heterogeneity", s.DecodeFailures)
	}
	for j, x := range ref {
		want, err := base.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 0.15 {
			t.Fatalf("target[%d] = %g, want ≈ %g", j, targets[j], want)
		}
	}
}

func TestAnalogSchemeFallbackBeyondBudget(t *testing.T) {
	ref := refFeatures(t, 8)
	s, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 20, NumBatches: 8, Degree: 2}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxMalicious() != 2 {
		t.Fatalf("budget = %d", s.MaxMalicious())
	}
	model := polyActivationModel(t, 2, 6)
	ups := analogUploads(t, s, []*nn.Network{model})
	rng := rand.New(rand.NewSource(7))
	for _, id := range rng.Perm(20)[:9] {
		for j := range ups[id] {
			ups[id][j] = 50
		}
	}
	targets, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures == 0 {
		t.Error("expected decode failures beyond the budget")
	}
	for j, target := range targets {
		if fl.IsDropped(target) {
			continue
		}
		if target < -1 || target > 2 {
			t.Errorf("fallback target[%d] = %g escaped the honest range", j, target)
		}
	}
}

func TestAnalogSchemeUploadValidation(t *testing.T) {
	ref := refFeatures(t, 8*2) // two slots, so a one-slot upload is invalid
	s, err := NewAnalogScheme(ref, SchemeConfig{NumVehicles: 10, NumBatches: 8, Degree: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 1, 10)
	if err := s.BeginRound(nil); err != nil {
		t.Errorf("BeginRound should be a no-op: %v", err)
	}
	if _, err := s.Upload(-1, model); err == nil {
		t.Error("negative ID accepted")
	}
	if _, err := s.Upload(10, model); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if _, err := s.Aggregate(make([][]float64, 3)); err == nil {
		t.Error("wrong upload count accepted")
	}
	bad := make([][]float64, 10)
	bad[0] = []float64{1}
	if _, err := s.Aggregate(bad); err == nil {
		t.Error("wrong slot count accepted")
	}
}
