package core

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/fl"
	"repro/internal/obs"
	"repro/internal/reedsolomon"
)

// Streaming aggregation (DESIGN.md §14).
//
// The pipelined round engine hands the scheme each upload as it arrives;
// the scheme feeds the verification symbols into an incremental
// Reed–Solomon decoder so the interpolation work is already paid when
// the collection window closes. AggregateStreamed then runs the normal
// Aggregate, except that the one presence group whose vehicle set equals
// the ingested set is finalised from the streamed state instead of
// re-decoded from scratch. The incremental decoder is bit-identical to
// DecodeBatch over the same positions (reedsolomon/incremental.go), and
// every group that does not exactly match the ingested set falls back to
// the ordinary batch path, so AggregateStreamed(sink, uploads) ==
// Aggregate(uploads) bit for bit, always.

// RoundIngest absorbs one round's uploads incrementally. It implements
// fl.UploadSink; build it with Scheme.BeginIngest and consume it with
// Scheme.AggregateStreamed. Not safe for concurrent use.
type RoundIngest struct {
	s       *Scheme
	inc     *reedsolomon.IncrementalDecoder
	present []bool // ingested vehicles (full verification words only)
	count   int
	syms    []field.Element // per-Add scratch, one symbol per slot
}

// BeginIngest starts a round's incremental ingest. One sink per round;
// feed it via Add and hand it back through AggregateStreamed.
func (s *Scheme) BeginIngest() fl.UploadSink {
	return &RoundIngest{
		s:       s,
		inc:     s.dec.NewIncremental(s.slots),
		present: make([]bool, s.cfg.NumVehicles),
		syms:    make([]field.Element, s.slots),
	}
}

// Add implements fl.UploadSink. It parses the upload's verification
// channel and streams it into the incremental decoder. A vehicle with
// ANY dropped verification half is skipped entirely (per-value drops
// give slots differing vehicle sets, which the grouped batch path
// handles); skipping here only moves that work back to Aggregate, it
// never changes results.
func (r *RoundIngest) Add(vehicleID int, upload []float64) error {
	s := r.s
	if vehicleID < 0 || vehicleID >= s.cfg.NumVehicles {
		return fmt.Errorf("core: ingest vehicle ID %d outside [0, %d)", vehicleID, s.cfg.NumVehicles)
	}
	if upload == nil {
		return nil
	}
	if len(upload) != s.UploadLen() {
		return fmt.Errorf("core: ingest vehicle %d uploaded %d values, want %d", vehicleID, len(upload), s.UploadLen())
	}
	if r.present[vehicleID] {
		return fmt.Errorf("core: vehicle %d ingested twice", vehicleID)
	}
	for j := 0; j < s.slots; j++ {
		if fl.IsDropped(upload[2*j]) || fl.IsDropped(upload[2*j+1]) {
			return nil
		}
	}
	for j := 0; j < s.slots; j++ {
		r.syms[j] = floatsToSymbol(upload[2*j], upload[2*j+1])
	}
	// The decoder's points are coder.Points(), indexed by vehicle ID, so
	// the ingest position IS the vehicle ID (and error positions come
	// back in vehicle-ID space).
	if err := r.inc.Ingest(vehicleID, r.syms); err != nil {
		return err
	}
	r.present[vehicleID] = true
	r.count++
	return nil
}

// matches reports whether the ingested vehicle set equals the given
// strictly-increasing ID list.
func (r *RoundIngest) matches(ids []int) bool {
	if len(ids) != r.count {
		return false
	}
	for _, id := range ids {
		if !r.present[id] {
			return false
		}
	}
	return true
}

// AggregateStreamed implements fl.StreamingAggregator: Aggregate, with
// the streamed state consumed where it applies. Results are bit-identical
// to Aggregate(uploads) for any ingest subset and arrival order.
func (s *Scheme) AggregateStreamed(sink fl.UploadSink, uploads [][]float64) ([]float64, error) {
	if ri, ok := sink.(*RoundIngest); ok && ri.s == s && !s.cfg.DisableBatchDecode {
		s.pendingIngest = ri
		defer func() { s.pendingIngest = nil }()
	}
	return s.Aggregate(uploads)
}

// finalizeIngest consumes the streamed state for one presence group. The
// caller (decodeGroup) has already established that the group covers all
// S slots and its vehicle set equals the ingested set, so each slot's
// word is exactly the ingested symbols and Finalize's outcome is
// bit-identical to DecodeBatch on the gathered words. Error positions
// arrive in vehicle-ID space directly — no ids[idx] remap.
func (s *Scheme) finalizeIngest(ri *RoundIngest, outcomes []slotOutcome, slots []int, present int) {
	results, errs, stats := ri.inc.Finalize(s.workers)
	s.BatchRecovered += stats.Recovered
	s.BatchFallbacks += stats.Fallbacks
	if s.obs.TraceEnabled() {
		s.obs.Emit("core.batch_group",
			obs.F("slots", len(slots)),
			obs.F("present", present),
			obs.F("recovered", stats.Recovered),
			obs.F("fallbacks", stats.Fallbacks),
			obs.F("combined_ok", stats.CombinedOK))
	}
	for t, j := range slots {
		if errs[t] != nil {
			outcomes[j].failed = true
			continue
		}
		for _, id := range results[t].ErrorPositions {
			outcomes[j].flagged = append(outcomes[j].flagged, id)
		}
	}
}
