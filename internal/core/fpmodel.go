package core

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/poly"
)

// fpModel is a single-nonlinear-layer model quantised into GF(p):
// estimation = act(w·x + b) evaluated entirely in fixed-point field
// arithmetic. Because every operation is exact field arithmetic, two
// parties evaluating the same fpModel on the same encoded input produce
// bit-identical results — the property the L-CoFL verification channel
// relies on.
//
// Scale management: weights, inputs and activation coefficients carry
// frac fractional bits each. The pre-activation z = w·x + b carries
// 2·frac (bias pre-scaled accordingly), z^t carries 2t·frac, and each term
// c_t·z^t is padded with powers of the fixed-point unit so every term —
// and therefore the output — carries (2·deg+1)·frac bits.
type fpModel struct {
	codec *fixedpoint.Codec
	w     []field.Element
	b     field.Element // at scale 2·frac
	act   []field.Element
	deg   int
}

// maxFracBitsFor returns the largest usable fractional resolution for a
// given activation degree, leaving ~10 bits of magnitude headroom under
// the 60-bit symmetric field range.
func maxFracBitsFor(degree int) uint {
	return uint(50 / (2*degree + 1))
}

// newFPModel quantises the model. The activation polynomial's degree sets
// the composed-degree budget; deg is the configured ceiling.
func newFPModel(codec *fixedpoint.Codec, w []float64, b float64, act poly.Real, deg int) (*fpModel, error) {
	if act.Degree() > deg {
		return nil, fmt.Errorf("core: activation degree %d exceeds configured %d", act.Degree(), deg)
	}
	if act.Degree() < 1 {
		return nil, fmt.Errorf("core: activation must be a non-constant polynomial")
	}
	if bits := (2*uint(deg) + 1) * codec.FracBits(); bits > 50 {
		return nil, fmt.Errorf("core: %d fractional bits at degree %d need %d bits, exceeding field headroom (max FracBits %d)",
			codec.FracBits(), deg, bits, maxFracBitsFor(deg))
	}
	m := &fpModel{codec: codec, deg: deg}
	var err error
	if m.w, err = codec.EncodeVec(w); err != nil {
		return nil, fmt.Errorf("core: weights: %w", err)
	}
	// The bias joins the pre-activation sum at 2·frac bits.
	if m.b, err = codec.Encode(b * math.Ldexp(1, int(codec.FracBits()))); err != nil {
		return nil, fmt.Errorf("core: bias: %w", err)
	}
	m.act = make([]field.Element, act.Degree()+1)
	for i := range m.act {
		e, err := codec.Encode(act.Coeff(i))
		if err != nil {
			return nil, fmt.Errorf("core: activation coeff %d: %w", i, err)
		}
		m.act[i] = e
	}
	return m, nil
}

// Eval computes act(w·x + b) for a quantised input vector. The result
// carries (2·deg+1)·frac fractional bits.
func (m *fpModel) Eval(x []field.Element) field.Element {
	z := field.Dot(m.w, x).Add(m.b) // scale 2·frac
	unit := field.New(1 << m.codec.FracBits())
	out := field.Zero
	zPow := field.One // z^0, dimensionless
	for t := 0; t <= m.deg; t++ {
		var c field.Element
		if t < len(m.act) {
			c = m.act[t]
		}
		// term = c·z^t·unit^{2(deg−t)}: frac + 2t·frac + 2(deg−t)·frac
		// = (2·deg+1)·frac for every t.
		term := c.Mul(zPow)
		for pad := 0; pad < 2*(m.deg-t); pad++ {
			term = term.Mul(unit)
		}
		out = out.Add(term)
		zPow = zPow.Mul(z)
	}
	return out
}

// Decode converts an Eval result back to a real number.
func (m *fpModel) Decode(e field.Element) float64 {
	return m.codec.DecodeScaled(e, 2*uint(m.deg)+1)
}

// symbolToFloats splits a field element into two exactly-representable
// float64 halves for transport over the float-valued upload vector
// (61-bit symbols do not fit a 53-bit mantissa). Any corruption of either
// half reassembles into a different field element, which the exact
// Reed–Solomon decoder then flags — corruption semantics are preserved.
func symbolToFloats(e field.Element) (hi, lo float64) {
	v := e.Uint64()
	return float64(v >> 32), float64(v & 0xffffffff)
}

// floatsToSymbol reassembles a symbol, deterministically mapping corrupted
// (non-integral or out-of-range) halves to some canonical field element so
// the decoder sees a concrete — wrong — symbol rather than an error.
func floatsToSymbol(hi, lo float64) field.Element {
	toU32 := func(f float64) uint64 {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0x5a5a5a5a // arbitrary garbage marker
		}
		r := math.Abs(math.Round(f))
		return uint64(r) & 0xffffffff
	}
	return field.New(toU32(hi)<<32 | toU32(lo))
}
