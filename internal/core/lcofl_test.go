package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/traffic"
)

// polyActivationModel builds a single-layer network with a least-squares
// polynomial activation of the given degree, as L-CoFL prescribes.
func polyActivationModel(t *testing.T, degree int, seed int64) *nn.Network {
	t.Helper()
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, degree)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.New(nn.Config{
		LayerSizes: []int{traffic.NumFeatures, 1},
		Activation: approx.FromPolynomial("ls", p),
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func refFeatures(t *testing.T, rows int) [][]float64 {
	t.Helper()
	ds, err := traffic.Generate(traffic.GenConfig{Rows: rows, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Features()
}

func TestNewSchemeValidation(t *testing.T) {
	ref := refFeatures(t, 32)
	cases := []struct {
		name string
		cfg  SchemeConfig
		ref  [][]float64
	}{
		{"zero vehicles", SchemeConfig{NumVehicles: 0, NumBatches: 4, Degree: 1}, ref},
		{"one batch", SchemeConfig{NumVehicles: 10, NumBatches: 1, Degree: 1}, ref},
		{"zero degree", SchemeConfig{NumVehicles: 10, NumBatches: 4, Degree: 0}, ref},
		{"ref not multiple", SchemeConfig{NumVehicles: 10, NumBatches: 5, Degree: 1}, ref},
		{"empty ref", SchemeConfig{NumVehicles: 10, NumBatches: 4, Degree: 1}, nil},
		{"K exceeds V", SchemeConfig{NumVehicles: 5, NumBatches: 4, Degree: 3}, ref},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewScheme(tc.ref, tc.cfg); err == nil {
				t.Errorf("accepted invalid config %+v", tc.cfg)
			}
		})
	}
}

func TestSchemeThresholdArithmetic(t *testing.T) {
	// The paper-scale sanity check from DESIGN.md: V=100, M=16.
	ref := refFeatures(t, 16*4)
	tests := []struct{ degree, wantK, wantE int }{
		{1, 16, 42},
		{2, 31, 34},
		{3, 46, 27},
	}
	for _, tt := range tests {
		s, err := NewScheme(ref, SchemeConfig{NumVehicles: 100, NumBatches: 16, Degree: tt.degree})
		if err != nil {
			t.Fatal(err)
		}
		if s.RecoverThreshold() != tt.wantK {
			t.Errorf("degree %d: K = %d, want %d", tt.degree, s.RecoverThreshold(), tt.wantK)
		}
		if s.MaxMalicious() != tt.wantE {
			t.Errorf("degree %d: E = %d, want %d", tt.degree, s.MaxMalicious(), tt.wantE)
		}
	}
}

func TestSchemeUploadLenAndFracBits(t *testing.T) {
	ref := refFeatures(t, 16*2)
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 100, NumBatches: 16, Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.UploadLen(); got != 2*s.Slots()+len(ref) {
		t.Errorf("UploadLen = %d", got)
	}
	// Degree 1 allows (2·1+1)·frac ≤ 50 → frac 16 (the cap).
	if got := s.FracBits(); got != 16 {
		t.Errorf("default FracBits = %d, want 16", got)
	}
	s3, err := NewScheme(ref, SchemeConfig{NumVehicles: 100, NumBatches: 16, Degree: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.FracBits(); got != 7 {
		t.Errorf("degree-3 default FracBits = %d, want 7", got)
	}
}

// roundUploads runs BeginRound with the shared model and collects every
// vehicle's upload using the given local models (shared model reused when
// locals is nil).
func roundUploads(t *testing.T, s *Scheme, shared *nn.Network, locals []*nn.Network) [][]float64 {
	t.Helper()
	if err := s.BeginRound(shared); err != nil {
		t.Fatal(err)
	}
	ups := make([][]float64, s.cfg.NumVehicles)
	for i := range ups {
		local := shared
		if locals != nil {
			local = locals[i]
		}
		up, err := s.Upload(i, local)
		if err != nil {
			t.Fatal(err)
		}
		ups[i] = up
	}
	return ups
}

func TestSchemeHonestRoundTrip(t *testing.T) {
	// All-honest: every vehicle is verified and targets equal the mean of
	// the local estimations — here exactly the shared model's estimation.
	ref := refFeatures(t, 16*3)
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 60, NumBatches: 16, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 2, 3)
	targets, err := s.Aggregate(roundUploads(t, s, model, nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("%d decode failures on honest uploads", s.DecodeFailures)
	}
	if got := s.SuspectedMalicious(); len(got) != 0 {
		t.Fatalf("honest round flagged %v", got)
	}
	for j, x := range ref {
		want, err := model.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 1e-12 {
			t.Fatalf("target[%d] = %g, want %g", j, targets[j], want)
		}
	}
}

func TestSchemeCorrectsMaliciousUploads(t *testing.T) {
	ref := refFeatures(t, 16*3)
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 100, NumBatches: 16, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 2, 4)
	ups := roundUploads(t, s, model, nil)

	// Corrupt 30 vehicles wholesale (budget is 34 at degree 2).
	rng := rand.New(rand.NewSource(5))
	bad := rng.Perm(100)[:30]
	for _, id := range bad {
		for j := range ups[id] {
			ups[id][j] = 5 + rng.Float64()*10
		}
	}
	targets, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("%d decode failures within budget", s.DecodeFailures)
	}
	// Targets must equal the honest estimation exactly: the malicious
	// vehicles are identified on the verification channel and their
	// learning estimations never enter the average.
	for j, x := range ref {
		want, err := model.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 1e-12 {
			t.Fatalf("target[%d] = %g, want %g (malicious influence leaked)", j, targets[j], want)
		}
	}
	// The decoder must finger exactly the planted vehicles.
	suspected := map[int]bool{}
	for _, id := range s.SuspectedMalicious() {
		suspected[id] = true
	}
	for _, id := range bad {
		if !suspected[id] {
			t.Errorf("malicious vehicle %d not flagged", id)
		}
	}
	if len(suspected) != len(bad) {
		t.Errorf("flagged %d vehicles, want %d", len(suspected), len(bad))
	}
}

func TestSchemeHeterogeneousLocals(t *testing.T) {
	// Locally-trained models differ between vehicles; the verification
	// channel still uses the common shared model, so decoding stays exact
	// and targets equal the mean of the heterogeneous local estimations.
	ref := refFeatures(t, 8*2)
	const v = 30
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: v, NumBatches: 8, Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	shared := polyActivationModel(t, 1, 8)
	locals := make([]*nn.Network, v)
	rng := rand.New(rand.NewSource(9))
	for i := range locals {
		locals[i] = shared.Clone()
		params := locals[i].Params()
		for p := range params {
			params[p] += 0.3 * rng.NormFloat64() // strong heterogeneity
		}
		if err := locals[i].SetParams(params); err != nil {
			t.Fatal(err)
		}
	}
	targets, err := s.Aggregate(roundUploads(t, s, shared, locals))
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("%d decode failures despite exact verification channel", s.DecodeFailures)
	}
	for j, x := range ref {
		var want float64
		for _, l := range locals {
			pi, err := l.EstimateClamped(x)
			if err != nil {
				t.Fatal(err)
			}
			want += pi / float64(v)
		}
		if math.Abs(targets[j]-want) > 1e-12 {
			t.Fatalf("target[%d] = %g, want mean %g", j, targets[j], want)
		}
	}
}

func TestSchemeBeyondBudgetFallsBack(t *testing.T) {
	ref := refFeatures(t, 8*2)
	// V=20, M=8, degree 2 → K=15, E budget = 2.
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 20, NumBatches: 8, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxMalicious() != 2 {
		t.Fatalf("budget = %d, want 2", s.MaxMalicious())
	}
	model := polyActivationModel(t, 2, 6)
	ups := roundUploads(t, s, model, nil)
	rng := rand.New(rand.NewSource(7))
	for _, id := range rng.Perm(20)[:9] { // way beyond budget
		for j := range ups[id] {
			ups[id][j] = 50 + rng.Float64()
		}
	}
	targets, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures == 0 {
		t.Error("expected decode failures beyond the budget")
	}
	// The median fallback must stay in the honest range: 11 of 20 honest.
	for j, x := range ref {
		want, err := model.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 0.5 {
			t.Errorf("fallback target[%d] = %g, honest %g", j, targets[j], want)
		}
	}
}

func TestSchemeDroppedUploads(t *testing.T) {
	ref := refFeatures(t, 8*2)
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 30, NumBatches: 8, Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 1, 8)
	ups := roundUploads(t, s, model, nil)
	// Drop 10 vehicles entirely plus scattered scalars: K=8, the 20
	// surviving vehicles still verify and aggregate.
	for i := 0; i < 10; i++ {
		ups[i] = nil
	}
	ups[15][0] = fl.Dropped             // half of a verification symbol
	ups[16][2*s.Slots()+1] = fl.Dropped // learning scalar
	targets, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("%d decode failures with 20 survivors and K=8", s.DecodeFailures)
	}
	for j, x := range ref {
		want, err := model.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 1e-12 {
			t.Fatalf("target[%d] = %g, want %g", j, targets[j], want)
		}
	}
}

func TestSchemeAllSlotsUndecodable(t *testing.T) {
	ref := refFeatures(t, 8)
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 16, NumBatches: 8, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 2, 9)
	ups := roundUploads(t, s, model, nil)
	for i := 2; i < 16; i++ { // only 2 survivors < K=15
		ups[i] = nil
	}
	targets, err := s.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeFailures != s.Slots() {
		t.Fatalf("DecodeFailures = %d, want %d", s.DecodeFailures, s.Slots())
	}
	// Fallback median over the two surviving honest vehicles.
	for j, x := range ref {
		want, err := model.EstimateClamped(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(targets[j]-want) > 1e-12 {
			t.Fatalf("fallback target[%d] = %g, want %g", j, targets[j], want)
		}
	}
}

func TestSchemeUploadValidation(t *testing.T) {
	ref := refFeatures(t, 8)
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: 10, NumBatches: 8, Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, 1, 10)
	if _, err := s.Upload(0, model); err == nil {
		t.Error("Upload before BeginRound accepted")
	}
	if err := s.BeginRound(nil); err == nil {
		t.Error("nil shared model accepted")
	}
	if err := s.BeginRound(model); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(-1, model); err == nil {
		t.Error("negative ID accepted")
	}
	if _, err := s.Upload(10, model); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if _, err := s.Aggregate(make([][]float64, 3)); err == nil {
		t.Error("wrong upload count accepted")
	}
	bad := make([][]float64, 10)
	bad[0] = []float64{1, 2, 3} // wrong upload width
	if _, err := s.Aggregate(bad); err == nil {
		t.Error("wrong upload width accepted")
	}
}

func TestSchemeInFullSystem(t *testing.T) {
	// End-to-end: L-CoFL plugged into the fl round loop with 30%
	// malicious vehicles must keep learning — the Fig. 4 scenario.
	ds, err := traffic.Generate(traffic.GenConfig{Rows: 2500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 12)
	if err != nil {
		t.Fatal(err)
	}
	refAll := refFeatures(t, 16*8)
	const vehicles = 100
	parts, err := train.PartitionIID(vehicles, 13)
	if err != nil {
		t.Fatal(err)
	}
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{
		InputSize:     traffic.NumFeatures,
		LocalEpochs:   5,
		LocalRate:     0.2,
		DistillEpochs: 30,
		DistillRate:   0.2,
		ServerStep:    0.5,
		Seed:          14,
	}
	mkSystem := func() *fl.System {
		sys, err := fl.NewSystem(cfg, parts, refAll, approx.FromPolynomial("ls-1", p))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sysCoded, sysHonest, sysPlainAttacked := mkSystem(), mkSystem(), mkSystem()
	scheme, err := NewScheme(refAll, SchemeConfig{
		NumVehicles: vehicles, NumBatches: 16, Degree: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plainH, err := fl.NewPlainScheme(refAll)
	if err != nil {
		t.Fatal(err)
	}
	plainA, err := fl.NewPlainScheme(refAll)
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, vehicles, 0.3)
	const rounds = 12
	var accCoded, accHonest, accAttacked float64
	for r := 0; r < rounds; r++ {
		if _, err := sysCoded.RunRound(scheme, plan, nil); err != nil {
			t.Fatal(err)
		}
		if scheme.DecodeFailures != 0 {
			t.Fatalf("round %d: %d decode failures", r, scheme.DecodeFailures)
		}
		if got := len(scheme.SuspectedMalicious()); got != plan.Count() {
			t.Fatalf("round %d: flagged %d vehicles, want %d", r, got, plan.Count())
		}
		if _, err := sysHonest.RunRound(plainH, nil, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := sysPlainAttacked.RunRound(plainA, plan, nil); err != nil {
			t.Fatal(err)
		}
		if r >= rounds-5 {
			a, err := sysCoded.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sysHonest.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			c, err := sysPlainAttacked.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			accCoded += a / 5
			accHonest += b / 5
			accAttacked += c / 5
		}
	}
	// The paper's Fig. 5 claim: L-CoFL under attack tracks the ideal
	// (accurate) FL model, while plain FL is poisoned.
	if rel := math.Abs(accCoded - accHonest); rel > 0.08 {
		t.Errorf("L-CoFL relative error %.3f vs ideal (coded %.3f, honest %.3f), want <= 0.08",
			rel, accCoded, accHonest)
	}
	if accCoded < accAttacked+0.1 {
		t.Errorf("L-CoFL (%.3f) does not clearly beat attacked plain FL (%.3f)", accCoded, accAttacked)
	}
}

func TestCostModel(t *testing.T) {
	c := Cost{V: 100, M: 16, Degree: 3, ApproxPoints: 21, Errors: 10}
	if c.RecoverThreshold() != 46 {
		t.Errorf("K = %d", c.RecoverThreshold())
	}
	if got := c.EncodingPerVehicle(); got != 256 {
		t.Errorf("encoding = %g", got)
	}
	if got := c.ApproximationPerVehicle(); got != 21*9 {
		t.Errorf("approx = %g", got)
	}
	// Decoding cost grows with errors (two evaluations each).
	lo := Cost{V: 100, M: 16, Degree: 3, ApproxPoints: 21, Errors: 0}.Decoding()
	hi := c.Decoding()
	if hi <= lo {
		t.Errorf("decoding cost %g did not grow with errors (base %g)", hi, lo)
	}
	// Cap at V³.
	huge := Cost{V: 100, M: 16, Degree: 3, ApproxPoints: 21, Errors: 1000}
	if got := huge.Decoding(); got != 1e6 {
		t.Errorf("capped decoding = %g, want 1e6", got)
	}
	if c.Total() <= 0 || c.PerDataPiece() != c.Total()/16 {
		t.Error("total/per-piece accounting inconsistent")
	}
	// Fig. 9 shape: cost increases with degree and with malicious rate.
	prev := 0.0
	for d := 1; d <= 4; d++ {
		cur := Cost{V: 100, M: 16, Degree: d, ApproxPoints: 21, Errors: 10}.PerDataPiece()
		if cur <= prev {
			t.Errorf("cost at degree %d (%g) not above degree %d (%g)", d, cur, d-1, prev)
		}
		prev = cur
	}
}

func TestTrimToMultiple(t *testing.T) {
	rows := make([][]float64, 10)
	if got := TrimToMultiple(rows, 4); len(got) != 8 {
		t.Errorf("trim = %d, want 8", len(got))
	}
	if got := TrimToMultiple(rows, 0); got != nil {
		t.Error("m=0 should return nil")
	}
	if got := TrimToMultiple(rows, 3); len(got) != 9 {
		t.Errorf("trim = %d, want 9", len(got))
	}
}

func mustPlan(t *testing.T, v int, frac float64) *adversary.Plan {
	t.Helper()
	p, err := adversary.NewPlan(v, frac, adversary.ConstantLie{Value: 5}, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPropertySchemeIdentifiesAnyMaliciousSubset(t *testing.T) {
	// For ANY malicious subset within the eq. 6 budget and ANY gross
	// corruption values, the verification channel identifies exactly the
	// planted vehicles and the targets equal the honest aggregate.
	ref := refFeatures(t, 8*2)
	const v, m, degree = 40, 8, 2 // K=15, E budget 12
	s, err := NewScheme(ref, SchemeConfig{NumVehicles: v, NumBatches: m, Degree: degree})
	if err != nil {
		t.Fatal(err)
	}
	model := polyActivationModel(t, degree, 11)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		ups := roundUploads(t, s, model, nil)
		e := rng.Intn(s.MaxMalicious() + 1)
		planted := map[int]bool{}
		for _, id := range rng.Perm(v)[:e] {
			planted[id] = true
			for j := range ups[id] {
				// Mixed corruption styles; each provably changes the
				// transported verification symbol (the halves are
				// non-negative integers, so an affine bump or +1 always
				// lands on a different value). A corruption that leaves
				// the symbol bit-identical is not a lie.
				switch rng.Intn(3) {
				case 0:
					ups[id][j] = rng.Float64() * 100
				case 1:
					ups[id][j] = ups[id][j]*2 + 7
				default:
					ups[id][j] += 1
				}
			}
		}
		targets, err := s.Aggregate(ups)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.DecodeFailures != 0 {
			t.Fatalf("trial %d (e=%d): %d decode failures", trial, e, s.DecodeFailures)
		}
		flagged := s.SuspectedMalicious()
		if len(flagged) != e {
			t.Fatalf("trial %d: flagged %d, want %d", trial, len(flagged), e)
		}
		for _, id := range flagged {
			if !planted[id] {
				t.Fatalf("trial %d: false positive %d", trial, id)
			}
		}
		for j, x := range ref {
			want, err := model.EstimateClamped(x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(targets[j]-want) > 1e-12 {
				t.Fatalf("trial %d: target[%d] leaked", trial, j)
			}
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
	if got := median(nil); !math.IsNaN(got) {
		t.Errorf("empty median = %g, want NaN", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Errorf("single median = %g, want 7", got)
	}
	in := []float64{3, 1, 2}
	_ = median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("median mutated its input: %v", in)
	}
}

// newSchemePair builds two schemes with identical parameters (hence
// identical encoding elements and shares), one on the batch decode path
// and one forced down the per-slot path.
func newSchemePair(t *testing.T, ref [][]float64, cfg SchemeConfig) (batch, perslot *Scheme) {
	t.Helper()
	batch, err := NewScheme(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableBatchDecode = true
	perslot, err = NewScheme(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return batch, perslot
}

// assertAggregateEquivalent feeds the same uploads to both schemes and
// requires bit-identical outcomes: targets (via Float64bits, so NaN
// fallbacks compare too), DecodeFailures and DetectedMalicious.
func assertAggregateEquivalent(t *testing.T, batch, perslot *Scheme, ups [][]float64) []float64 {
	t.Helper()
	gotT, err := batch.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	wantT, err := perslot.Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}
	for j := range wantT {
		if math.Float64bits(gotT[j]) != math.Float64bits(wantT[j]) {
			t.Fatalf("target[%d]: batch %g, per-slot %g (not bit-identical)", j, gotT[j], wantT[j])
		}
	}
	if batch.DecodeFailures != perslot.DecodeFailures {
		t.Fatalf("DecodeFailures: batch %d, per-slot %d", batch.DecodeFailures, perslot.DecodeFailures)
	}
	for i := range perslot.DetectedMalicious {
		if batch.DetectedMalicious[i] != perslot.DetectedMalicious[i] {
			t.Fatalf("DetectedMalicious[%d]: batch %d, per-slot %d",
				i, batch.DetectedMalicious[i], perslot.DetectedMalicious[i])
		}
	}
	if perslot.BatchRecovered != 0 || perslot.BatchFallbacks != 0 {
		t.Fatalf("per-slot path recorded batch stats %d/%d", perslot.BatchRecovered, perslot.BatchFallbacks)
	}
	return gotT
}

func TestSchemeBatchEquivalence(t *testing.T) {
	// The tentpole guarantee: batch and per-slot verification decoding are
	// bit-identical across worker counts and adversary fractions from zero
	// through the eq. 6 budget and beyond it (median-fallback regime).
	ref := refFeatures(t, 8*4) // S = 4 slots
	const v, m, degree = 40, 8, 2
	model := polyActivationModel(t, degree, 21)
	rng := rand.New(rand.NewSource(22))
	for _, workers := range []int{1, 2, 8} {
		cfg := SchemeConfig{NumVehicles: v, NumBatches: m, Degree: degree, Workers: workers, Seed: 3}
		batch, perslot := newSchemePair(t, ref, cfg)
		maxE := batch.MaxMalicious()
		for _, e := range []int{0, 1, maxE / 2, maxE, maxE + 5} {
			ups := roundUploads(t, batch, model, nil)
			for _, id := range rng.Perm(v)[:e] {
				for j := range ups[id] {
					ups[id][j] = ups[id][j]*2 + 7
				}
			}
			assertAggregateEquivalent(t, batch, perslot, ups)
			if e <= maxE {
				if batch.DecodeFailures != 0 {
					t.Fatalf("workers=%d e=%d: %d decode failures within budget", workers, e, batch.DecodeFailures)
				}
				if batch.BatchRecovered != batch.Slots() {
					t.Fatalf("workers=%d e=%d: fast path recovered %d of %d slots",
						workers, e, batch.BatchRecovered, batch.Slots())
				}
			}
		}
	}
}

func TestSchemeBatchEquivalenceWithDrops(t *testing.T) {
	// Straggler rounds: dropped vehicles and scattered dropped scalars give
	// slots different presence masks, exercising the group-by-mask path.
	ref := refFeatures(t, 8*4)
	const v, m, degree = 40, 8, 1 // K=8, generous slack for drops
	model := polyActivationModel(t, degree, 23)
	rng := rand.New(rand.NewSource(24))
	cfg := SchemeConfig{NumVehicles: v, NumBatches: m, Degree: degree, Workers: 2, Seed: 5}
	batch, perslot := newSchemePair(t, ref, cfg)
	for trial := 0; trial < 5; trial++ {
		ups := roundUploads(t, batch, model, nil)
		for _, id := range rng.Perm(v)[:3] {
			ups[id] = nil
		}
		// Per-value drops: distinct masks across slots.
		for d := 0; d < 6; d++ {
			if ups[4+d] == nil {
				continue
			}
			ups[4+d][2*rng.Intn(batch.Slots())] = fl.Dropped
		}
		for _, id := range rng.Perm(v)[:4] {
			if ups[id] == nil {
				continue
			}
			for j := range ups[id] {
				ups[id][j] = ups[id][j]*2 + 7
			}
		}
		assertAggregateEquivalent(t, batch, perslot, ups)
	}
}

func TestPropertyPartialSlotCorruptionFlagged(t *testing.T) {
	// An adversary corrupting only a SUBSET of its verification slots is
	// still caught: any corrupted slot flags the vehicle, and the batch
	// path agrees with the per-slot path bit for bit.
	ref := refFeatures(t, 8*4) // S = 4 slots
	const v, m, degree = 40, 8, 2
	model := polyActivationModel(t, degree, 31)
	rng := rand.New(rand.NewSource(32))
	cfg := SchemeConfig{NumVehicles: v, NumBatches: m, Degree: degree, Workers: 3, Seed: 9}
	batch, perslot := newSchemePair(t, ref, cfg)
	maxE := batch.MaxMalicious()
	for trial := 0; trial < 10; trial++ {
		ups := roundUploads(t, batch, model, nil)
		e := 1 + rng.Intn(maxE)
		planted := map[int]int{} // vehicle -> corrupted slot count
		for _, id := range rng.Perm(v)[:e] {
			nSlots := 1 + rng.Intn(batch.Slots())
			for _, slot := range rng.Perm(batch.Slots())[:nSlots] {
				// Affine-bump the hi half: always lands on a different
				// transported symbol (see floatsToSymbol).
				ups[id][2*slot] = ups[id][2*slot]*2 + 7
			}
			planted[id] = nSlots
		}
		targets := assertAggregateEquivalent(t, batch, perslot, ups)
		if batch.DecodeFailures != 0 {
			t.Fatalf("trial %d: %d decode failures within budget", trial, batch.DecodeFailures)
		}
		for id, nSlots := range planted {
			if batch.DetectedMalicious[id] != nSlots {
				t.Fatalf("trial %d: vehicle %d flagged on %d slots, corrupted %d",
					trial, id, batch.DetectedMalicious[id], nSlots)
			}
		}
		if got := len(batch.SuspectedMalicious()); got != len(planted) {
			t.Fatalf("trial %d: flagged %d vehicles, want %d", trial, got, len(planted))
		}
		// Learning channel untouched, so targets must equal the honest
		// mean exactly: partial-slot liars are excluded wholesale.
		for j, x := range ref {
			want := 0.0
			count := 0
			for i := 0; i < v; i++ {
				if _, bad := planted[i]; bad {
					continue
				}
				pi, err := model.EstimateClamped(x)
				if err != nil {
					t.Fatal(err)
				}
				want += pi
				count++
				_ = i
			}
			want /= float64(count)
			if math.Abs(targets[j]-want) > 1e-12 {
				t.Fatalf("trial %d: target[%d] = %g, want honest mean %g", trial, j, targets[j], want)
			}
		}
	}
}
