package core

import (
	"fmt"
	"math/rand"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/lagrange"
	"repro/internal/poly"
	"repro/internal/reedsolomon"
)

// InferenceConfig parameterises the standalone coded-inference pipeline
// over GF(p).
type InferenceConfig struct {
	// NumVehicles is V.
	NumVehicles int
	// NumBatches is M.
	NumBatches int
	// PrivacyT adds T uniformly random padding batches to the Lagrange
	// interpolation (the LCC privacy construction of Yu et al., the
	// paper's ref. [24]): any coalition of at most T vehicles learns
	// nothing about the data from its shares. The recover threshold grows
	// to deg(C)·(M+T−1)+1, trading error budget for privacy.
	PrivacyT int
	// FracBits is the fixed-point fractional resolution; the end-to-end
	// computation carries (2·deg+1)·FracBits fractional bits and
	// NewInference validates the headroom against GF(p).
	FracBits uint
	// Seed drives the random choice of field encoding elements and the
	// privacy padding.
	Seed int64
}

// Inference runs the paper's Steps 1–3 with exact arithmetic: the shared
// single-layer polynomial model is evaluated on Lagrange-encoded data over
// GF(p), and the Gao Reed–Solomon decoder recovers every batch estimation
// exactly while identifying the malicious vehicles (eq. 6 security).
type Inference struct {
	cfg   InferenceConfig
	coder *lagrange.Coder
	codec *fixedpoint.Codec
	deg   int
	k     int
	rng   *rand.Rand // privacy padding randomness
}

// NewInference selects the field encoding elements and validates the
// fixed-point headroom for a model of the given activation degree.
func NewInference(cfg InferenceConfig, activationDegree int) (*Inference, error) {
	if cfg.NumVehicles < 1 || cfg.NumBatches < 2 {
		return nil, fmt.Errorf("core: need V >= 1 and M >= 2, got V=%d M=%d", cfg.NumVehicles, cfg.NumBatches)
	}
	if cfg.PrivacyT < 0 {
		return nil, fmt.Errorf("core: privacy parameter T=%d must be >= 0", cfg.PrivacyT)
	}
	if activationDegree < 1 {
		return nil, fmt.Errorf("core: activation degree %d must be >= 1", activationDegree)
	}
	k := activationDegree*(cfg.NumBatches+cfg.PrivacyT-1) + 1
	if k > cfg.NumVehicles {
		return nil, fmt.Errorf("core: recover threshold K=%d (with privacy T=%d) exceeds V=%d", k, cfg.PrivacyT, cfg.NumVehicles)
	}
	codec, err := fixedpoint.New(cfg.FracBits)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if bits := (2*uint(activationDegree) + 1) * cfg.FracBits; bits > 50 {
		return nil, fmt.Errorf("core: %d fractional bits at degree %d need %d bits, exceeding the field headroom (choose FracBits <= %d)",
			cfg.FracBits, activationDegree, bits, maxFracBitsFor(activationDegree))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := field.RandDistinct(rng, cfg.NumBatches+cfg.PrivacyT, nil)
	points := field.RandDistinct(rng, cfg.NumVehicles, nodes)
	coder, err := lagrange.NewCoder(nodes, points)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Inference{cfg: cfg, coder: coder, codec: codec, deg: activationDegree, k: k, rng: rng}, nil
}

// RecoverThreshold returns K of eq. 6.
func (inf *Inference) RecoverThreshold() int { return inf.k }

// MaxMalicious returns the E-security budget ⌊(V−K)/2⌋.
func (inf *Inference) MaxMalicious() int {
	return reedsolomon.MaxErrors(inf.cfg.NumVehicles, inf.k)
}

// InferenceResult reports one exact coded-inference round.
type InferenceResult struct {
	// BatchOutputs holds the decoded estimation value of every batch,
	// bit-exact equal to the plaintext fixed-point computation.
	BatchOutputs []float64
	// ErrorPositions lists the vehicle IDs the decoder identified as
	// having returned erroneous results.
	ErrorPositions []int
}

// Run executes one coded inference: the shared single-layer model
// (weights w, bias b, polynomial activation act) is evaluated on every
// batch of batchData ([M][F] — one representative feature vector per
// batch), protected against the malicious vehicles in corrupt (vehicle
// ID → forged field value).
//
// Honest vehicles all evaluate the same polynomial at distinct points, so
// decoding is exact whenever len(corrupt) ≤ MaxMalicious().
func (inf *Inference) Run(w []float64, b float64, act poly.Real, batchData [][]float64, corrupt map[int]field.Element) (*InferenceResult, error) {
	m := inf.cfg.NumBatches
	if len(batchData) != m {
		return nil, fmt.Errorf("core: got %d batches, want %d", len(batchData), m)
	}
	features := len(w)
	for i, row := range batchData {
		if len(row) != features {
			return nil, fmt.Errorf("core: batch %d has %d features, want %d", i, len(row), features)
		}
	}
	fpm, err := newFPModel(inf.codec, w, b, act, inf.deg)
	if err != nil {
		return nil, err
	}
	batchEnc := make([][]field.Element, m, m+inf.cfg.PrivacyT)
	for i, row := range batchData {
		enc, err := inf.codec.EncodeVec(row)
		if err != nil {
			return nil, fmt.Errorf("core: batch %d: %w", i, err)
		}
		batchEnc[i] = enc
	}
	// Privacy padding: T batches of uniformly random field elements make
	// every set of ≤ T shares statistically independent of the data
	// (fresh randomness each Run).
	for t := 0; t < inf.cfg.PrivacyT; t++ {
		pad := make([]field.Element, features)
		for f := range pad {
			pad[f] = field.Rand(inf.rng)
		}
		batchEnc = append(batchEnc, pad)
	}

	// Steps 1–2: Lagrange-encode the batches and let every vehicle compute
	// the model on its encoded share.
	shares, err := inf.coder.EncodeVectors(batchEnc)
	if err != nil {
		return nil, err
	}
	uploads := make([]field.Element, inf.cfg.NumVehicles)
	for i, share := range shares {
		uploads[i] = fpm.Eval(share)
	}
	for id, forged := range corrupt {
		if id < 0 || id >= len(uploads) {
			return nil, fmt.Errorf("core: corrupt vehicle ID %d out of range", id)
		}
		uploads[id] = forged
	}

	// Step 3: exact Reed–Solomon decoding and read-off at the nodes.
	res, err := reedsolomon.Decode(inf.coder.Points(), uploads, inf.k)
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	// Read off only the M data nodes; the trailing T privacy nodes carry
	// padding.
	outputs := make([]float64, m)
	for i, node := range inf.coder.Nodes()[:m] {
		outputs[i] = fpm.Decode(res.Poly.Eval(node))
	}
	return &InferenceResult{
		BatchOutputs:   outputs,
		ErrorPositions: res.ErrorPositions,
	}, nil
}

// Shares exposes the encoded shares for the given batches — used by the
// privacy tests to check that individual shares are masked. The returned
// slice is indexed by vehicle.
func (inf *Inference) Shares(batchData [][]float64) ([][]field.Element, error) {
	m := inf.cfg.NumBatches
	if len(batchData) != m {
		return nil, fmt.Errorf("core: got %d batches, want %d", len(batchData), m)
	}
	features := len(batchData[0])
	batchEnc := make([][]field.Element, m, m+inf.cfg.PrivacyT)
	for i, row := range batchData {
		enc, err := inf.codec.EncodeVec(row)
		if err != nil {
			return nil, fmt.Errorf("core: batch %d: %w", i, err)
		}
		batchEnc[i] = enc
	}
	for t := 0; t < inf.cfg.PrivacyT; t++ {
		pad := make([]field.Element, features)
		for f := range pad {
			pad[f] = field.Rand(inf.rng)
		}
		batchEnc = append(batchEnc, pad)
	}
	return inf.coder.EncodeVectors(batchEnc)
}

// PlaintextModel computes the same fixed-point model on raw (unencoded)
// data — the ground truth the decoded outputs must match bit-exactly.
func (inf *Inference) PlaintextModel(w []float64, b float64, act poly.Real, x []float64) (float64, error) {
	fpm, err := newFPModel(inf.codec, w, b, act, inf.deg)
	if err != nil {
		return 0, err
	}
	xEnc, err := inf.codec.EncodeVec(x)
	if err != nil {
		return 0, err
	}
	return fpm.Decode(fpm.Eval(xEnc)), nil
}
