package core

// Cost models the computing cost/redundancy of one L-CoFL round
// following Proposition 1 and the Fig. 9 accounting: element selection is
// O(M + V), each vehicle's encoding is O(M²), the one-off approximation is
// O(k·deg²), and Reed–Solomon decoding is O((K + 2E)³) with K the recover
// threshold and E the number of erroneous results (two extra evaluations
// per erroneous result).
type Cost struct {
	// V, M, Degree, ApproxPoints, Errors are the scenario parameters:
	// vehicles, batches, approximation degree, sample points k used by
	// the approximation method, and erroneous results E.
	V, M, Degree, ApproxPoints, Errors int
}

// ElementSelection returns the fusion centre's element-generation cost
// O(M + V).
func (c Cost) ElementSelection() float64 { return float64(c.M + c.V) }

// EncodingPerVehicle returns one vehicle's Lagrange-encoding cost O(M²).
func (c Cost) EncodingPerVehicle() float64 { return float64(c.M * c.M) }

// ApproximationPerVehicle returns the one-off polynomial-approximation
// cost k·deg² (paper's Proposition 1 example for least squares, Taylor
// and Chebyshev).
func (c Cost) ApproximationPerVehicle() float64 {
	return float64(c.ApproxPoints * c.Degree * c.Degree)
}

// RecoverThreshold returns K = Degree·(M−1) + 1.
func (c Cost) RecoverThreshold() int { return c.Degree*(c.M-1) + 1 }

// Decoding returns the fusion centre's Reed–Solomon decoding cost
// O((K + 2E)³), capped at V³ since the decoder never uses more than V
// evaluations (Proposition 1).
func (c Cost) Decoding() float64 {
	n := c.RecoverThreshold() + 2*c.Errors
	if n > c.V {
		n = c.V
	}
	return float64(n) * float64(n) * float64(n)
}

// Total returns the round cost O(V·(M² + A) + M + V³) of Proposition 1
// with the actual decoding size substituted.
func (c Cost) Total() float64 {
	return float64(c.V)*(c.EncodingPerVehicle()+c.ApproximationPerVehicle()) +
		c.ElementSelection() + c.Decoding()
}

// PerDataPiece normalises Total by the M batches — Fig. 9 reports the
// average computing cost of each piece of data.
func (c Cost) PerDataPiece() float64 { return c.Total() / float64(c.M) }
