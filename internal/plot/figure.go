package plot

import (
	"io"

	"repro/internal/experiments"
)

// FromFigure converts an experiments figure (first column = X axis, the
// rest = series) into a chart.
func FromFigure(fig *experiments.Figure) (*Chart, error) {
	c := &Chart{Title: fig.Name + ": " + fig.Title}
	for _, row := range fig.Rows {
		c.X = append(c.X, row[0])
	}
	for col := 1; col < len(fig.Columns); col++ {
		s := Series{Name: fig.Columns[col]}
		for _, row := range fig.Rows {
			s.Y = append(s.Y, row[col])
		}
		c.Series = append(c.Series, s)
	}
	return c, c.Validate()
}

// RenderFigure renders an experiments figure directly.
func RenderFigure(w io.Writer, fig *experiments.Figure, opts Options) error {
	c, err := FromFigure(fig)
	if err != nil {
		return err
	}
	return c.Render(w, opts)
}
