// Package plot renders experiment figures as ASCII line charts for the
// terminal — the repository is offline and produces TSV series, so a
// quick visual check of a figure's shape should not require external
// tooling. The renderer is deterministic: the same figure always yields
// the same bytes, which the tests rely on.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// glyphs marks the series, in column order.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Options sizes the chart.
type Options struct {
	// Width and Height are the plotting area in characters
	// (defaults 72×20).
	Width, Height int
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 72
	}
	if o.Height == 0 {
		o.Height = 20
	}
	return o
}

// Series is one named line.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Y holds the values, aligned with the shared X axis.
	Y []float64
}

// Chart is a renderable line chart over a shared X axis.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// X is the shared axis (must be non-empty and match every series).
	X []float64
	// Series holds the lines (at most len(glyphs)).
	Series []Series
}

// Validate checks the chart invariants.
func (c *Chart) Validate() error {
	if len(c.X) == 0 {
		return fmt.Errorf("plot: empty X axis")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if len(c.Series) > len(glyphs) {
		return fmt.Errorf("plot: %d series exceeds the %d glyphs available", len(c.Series), len(glyphs))
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("plot: series %q has %d points for %d x values", s.Name, len(s.Y), len(c.X))
		}
	}
	return nil
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer, opts Options) error {
	if err := c.Validate(); err != nil {
		return err
	}
	opts = opts.withDefaults()

	xmin, xmax := minMax(c.X)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		lo, hi := minMax(s.Y)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		// Flat data: pad the range so the line sits mid-chart.
		ymax = ymin + 1
		ymin = ymin - 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	toCol := func(x float64) int {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(opts.Width-1)))
		return clampInt(col, 0, opts.Width-1)
	}
	toRow := func(y float64) int {
		// Row 0 is the top of the chart.
		row := int(math.Round((ymax - y) / (ymax - ymin) * float64(opts.Height-1)))
		return clampInt(row, 0, opts.Height-1)
	}
	for si, s := range c.Series {
		g := glyphs[si]
		for i := range c.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			grid[toRow(s.Y[i])][toCol(c.X[i])] = g
		}
		// Connect consecutive points with interpolated marks so sparse
		// series still read as lines.
		for i := 1; i < len(c.X); i++ {
			if badPoint(s.Y[i-1]) || badPoint(s.Y[i]) {
				continue
			}
			c0, c1 := toCol(c.X[i-1]), toCol(c.X[i])
			for col := c0 + 1; col < c1; col++ {
				frac := float64(col-c0) / float64(c1-c0)
				y := s.Y[i-1] + frac*(s.Y[i]-s.Y[i-1])
				row := toRow(y)
				if grid[row][col] == ' ' {
					grid[row][col] = '.'
				}
			}
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case opts.Height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", opts.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 8),
		xmin, strings.Repeat(" ", maxInt(1, opts.Width-22)), xmax); err != nil {
		return err
	}
	for si, s := range c.Series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", glyphs[si], s.Name); err != nil {
			return err
		}
	}
	return nil
}

func badPoint(y float64) bool { return math.IsNaN(y) || math.IsInf(y, 0) }

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if badPoint(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) { // all bad
		return 0, 1
	}
	return lo, hi
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
