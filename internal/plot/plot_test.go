package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func simpleChart() *Chart {
	return &Chart{
		Title: "demo",
		X:     []float64{0, 1, 2, 3},
		Series: []Series{
			{Name: "up", Y: []float64{0, 1, 2, 3}},
			{Name: "down", Y: []float64{3, 2, 1, 0}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := simpleChart().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Chart{}
	if err := bad.Validate(); err == nil {
		t.Error("empty chart accepted")
	}
	bad = simpleChart()
	bad.Series[0].Y = bad.Series[0].Y[:2]
	if err := bad.Validate(); err == nil {
		t.Error("ragged series accepted")
	}
	big := &Chart{X: []float64{1}}
	for i := 0; i < 9; i++ {
		big.Series = append(big.Series, Series{Name: "s", Y: []float64{1}})
	}
	if err := big.Validate(); err == nil {
		t.Error("too many series accepted")
	}
}

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := simpleChart().Render(&buf, Options{Width: 40, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "* up", "o down", "+", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The rising series ends top-right, the falling one bottom-right.
	lines := strings.Split(out, "\n")
	top, bottom := lines[1], lines[10]
	if !strings.Contains(top, "*") {
		t.Errorf("top row lacks rising series: %q", top)
	}
	if !strings.Contains(bottom, "*") { // rising starts bottom-left
		t.Errorf("bottom row lacks rising series start: %q", bottom)
	}
	if !strings.Contains(top, "o") || !strings.Contains(bottom, "o") {
		t.Errorf("falling series not spanning rows")
	}
}

func TestRenderDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := simpleChart().Render(&a, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := simpleChart().Render(&b, Options{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("render is not deterministic")
	}
}

func TestRenderFlatAndNaN(t *testing.T) {
	c := &Chart{
		X: []float64{0, 1, 2},
		Series: []Series{
			{Name: "flat", Y: []float64{5, 5, 5}},
			{Name: "holey", Y: []float64{1, math.NaN(), 2}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, Options{Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flat") {
		t.Error("legend missing")
	}
}

func TestFromFigure(t *testing.T) {
	fig := &experiments.Figure{
		Name:    "figX",
		Title:   "t",
		Columns: []string{"x", "a", "b"},
	}
	if err := fig.AddRow(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := fig.AddRow(1, 3, 4); err != nil {
		t.Fatal(err)
	}
	c, err := FromFigure(fig)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 2 || c.Series[1].Y[1] != 4 {
		t.Errorf("conversion wrong: %+v", c)
	}
	var buf bytes.Buffer
	if err := RenderFigure(&buf, fig, Options{Width: 20, Height: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "figX") {
		t.Error("title missing")
	}
	empty := &experiments.Figure{Name: "e", Columns: []string{"x"}}
	if _, err := FromFigure(empty); err == nil {
		t.Error("empty figure accepted")
	}
}
