// Package channel models the wireless uplink between vehicles and the
// fusion centre.
//
// The paper's "system noise" has three sources: low-quality training data,
// malicious vehicles, and wireless channel errors (paper §I, Fig. 1).
// This package supplies the third: a Model transforms a transmitted scalar
// into what the fusion centre receives — possibly dropped (straggler /
// out of coverage), perturbed (fading, quantisation at the radio), or
// grossly corrupted (decoding the wrong codeword). Models compose, and
// every model is deterministic given its seed so experiments reproduce
// bit-for-bit.
package channel

import (
	"fmt"
	"math/rand"
)

// Reception is the outcome of transmitting one scalar result.
type Reception struct {
	// Value is the received value (meaningless when Dropped).
	Value float64
	// Dropped reports that the transmission never arrived.
	Dropped bool
}

// Model transforms transmitted values. Implementations must be
// deterministic functions of their configuration and seed.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// Transmit sends one value from the given vehicle index.
	Transmit(vehicle int, value float64) Reception
}

// Perfect delivers every value unchanged.
type Perfect struct{}

// Name implements Model.
func (Perfect) Name() string { return "perfect" }

// Transmit implements Model.
func (Perfect) Transmit(_ int, v float64) Reception { return Reception{Value: v} }

// Erasure drops each transmission independently with probability P —
// stragglers and coverage gaps.
type Erasure struct {
	// P is the drop probability in [0, 1].
	P float64
	// Seed drives the deterministic RNG.
	Seed int64

	rng *rand.Rand
}

// NewErasure validates P and returns the model.
func NewErasure(p float64, seed int64) (*Erasure, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("channel: erasure probability %g outside [0,1]", p)
	}
	return &Erasure{P: p, Seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Model.
func (e *Erasure) Name() string { return fmt.Sprintf("erasure(p=%g)", e.P) }

// Transmit implements Model.
func (e *Erasure) Transmit(_ int, v float64) Reception {
	if e.rng.Float64() < e.P {
		return Reception{Dropped: true}
	}
	return Reception{Value: v}
}

// AWGN adds zero-mean Gaussian noise of standard deviation Std to every
// value — analogue channel perturbation after demodulation.
type AWGN struct {
	// Std is the noise standard deviation (>= 0).
	Std float64
	// Seed drives the deterministic RNG.
	Seed int64

	rng *rand.Rand
}

// NewAWGN validates Std and returns the model.
func NewAWGN(std float64, seed int64) (*AWGN, error) {
	if std < 0 {
		return nil, fmt.Errorf("channel: noise std %g must be >= 0", std)
	}
	return &AWGN{Std: std, Seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Model.
func (a *AWGN) Name() string { return fmt.Sprintf("awgn(std=%g)", a.Std) }

// Transmit implements Model.
func (a *AWGN) Transmit(_ int, v float64) Reception {
	return Reception{Value: v + a.Std*a.rng.NormFloat64()}
}

// Burst corrupts each transmission with probability P by replacing it
// with a uniform draw from [-Magnitude, Magnitude] — an undetected
// decoding error delivering garbage.
type Burst struct {
	// P is the corruption probability in [0, 1].
	P float64
	// Magnitude bounds the garbage value.
	Magnitude float64
	// Seed drives the deterministic RNG.
	Seed int64

	rng *rand.Rand
}

// NewBurst validates parameters and returns the model.
func NewBurst(p, magnitude float64, seed int64) (*Burst, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("channel: burst probability %g outside [0,1]", p)
	}
	if magnitude <= 0 {
		return nil, fmt.Errorf("channel: burst magnitude %g must be positive", magnitude)
	}
	return &Burst{P: p, Magnitude: magnitude, Seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Model.
func (b *Burst) Name() string { return fmt.Sprintf("burst(p=%g,mag=%g)", b.P, b.Magnitude) }

// Transmit implements Model.
func (b *Burst) Transmit(_ int, v float64) Reception {
	if b.rng.Float64() < b.P {
		return Reception{Value: (2*b.rng.Float64() - 1) * b.Magnitude}
	}
	return Reception{Value: v}
}

// Chain applies models in order; a drop at any stage drops the whole
// transmission.
type Chain []Model

// Name implements Model.
func (c Chain) Name() string {
	if len(c) == 0 {
		return "perfect"
	}
	name := c[0].Name()
	for _, m := range c[1:] {
		name += "+" + m.Name()
	}
	return name
}

// Transmit implements Model.
func (c Chain) Transmit(vehicle int, v float64) Reception {
	r := Reception{Value: v}
	for _, m := range c {
		r = m.Transmit(vehicle, r.Value)
		if r.Dropped {
			return r
		}
	}
	return r
}
