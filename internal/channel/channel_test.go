package channel

import (
	"math"
	"testing"
)

func TestPerfect(t *testing.T) {
	var p Perfect
	r := p.Transmit(0, 3.14)
	if r.Dropped || r.Value != 3.14 {
		t.Errorf("Perfect changed the value: %+v", r)
	}
	if p.Name() != "perfect" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestErasureRate(t *testing.T) {
	e, err := NewErasure(0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if e.Transmit(0, 1).Dropped {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("drop rate %g, want ≈0.3", got)
	}
}

func TestErasureValidation(t *testing.T) {
	if _, err := NewErasure(-0.1, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewErasure(1.1, 1); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestErasureDeterministic(t *testing.T) {
	a, _ := NewErasure(0.5, 42)
	b, _ := NewErasure(0.5, 42)
	for i := 0; i < 100; i++ {
		if a.Transmit(0, 1).Dropped != b.Transmit(0, 1).Dropped {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAWGNStatistics(t *testing.T) {
	a, err := NewAWGN(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := a.Transmit(0, 5).Value - 5
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.005 {
		t.Errorf("noise mean %g, want ≈0", mean)
	}
	if math.Abs(std-0.1) > 0.01 {
		t.Errorf("noise std %g, want ≈0.1", std)
	}
}

func TestAWGNValidation(t *testing.T) {
	if _, err := NewAWGN(-1, 0); err == nil {
		t.Error("negative std accepted")
	}
	z, err := NewAWGN(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.Transmit(0, 7).Value; got != 7 {
		t.Errorf("zero-std AWGN changed value to %g", got)
	}
}

func TestBurst(t *testing.T) {
	b, err := NewBurst(0.5, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	const n = 10000
	for i := 0; i < n; i++ {
		r := b.Transmit(0, 0.123456)
		if r.Dropped {
			t.Fatal("burst dropped a value")
		}
		if r.Value != 0.123456 {
			corrupted++
			if math.Abs(r.Value) > 10 {
				t.Fatalf("burst value %g outside magnitude", r.Value)
			}
		}
	}
	if got := float64(corrupted) / n; math.Abs(got-0.5) > 0.02 {
		t.Errorf("corruption rate %g, want ≈0.5", got)
	}
}

func TestBurstValidation(t *testing.T) {
	if _, err := NewBurst(2, 1, 0); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewBurst(0.5, 0, 0); err == nil {
		t.Error("zero magnitude accepted")
	}
}

func TestChain(t *testing.T) {
	e, _ := NewErasure(1, 4) // always drops
	a, _ := NewAWGN(0, 5)
	c := Chain{a, e}
	if !c.Transmit(0, 1).Dropped {
		t.Error("chain did not propagate drop")
	}
	clean := Chain{a}
	if got := clean.Transmit(0, 2).Value; got != 2 {
		t.Errorf("clean chain value %g", got)
	}
	if Chain(nil).Name() != "perfect" {
		t.Errorf("empty chain name %q", Chain(nil).Name())
	}
	if c.Name() != "awgn(std=0)+erasure(p=1)" {
		t.Errorf("chain name %q", c.Name())
	}
	if got := Chain(nil).Transmit(0, 9); got.Dropped || got.Value != 9 {
		t.Errorf("empty chain = %+v", got)
	}
}
