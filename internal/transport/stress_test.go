package transport

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/protocol"
)

// stressMsg builds a minimal valid message.
func stressMsg(id int) *protocol.Message {
	return &protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: id}}
}

// TestPipeConcurrentStress hammers many in-memory pairs at once: one
// sender and one receiver per end, with the close arriving while traffic
// is in flight. Run under -race (scripts/check.sh does) this exercises
// the pipe's closed-flag and done-channel paths for data races.
func TestPipeConcurrentStress(t *testing.T) {
	const pairs = 32
	const msgs = 50
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		a, b := Pipe()
		wg.Add(2)
		go func(c Conn) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := c.Send(stressMsg(i)); err != nil {
					return // peer closed underneath us: allowed
				}
			}
			_ = c.Close()
		}(a)
		go func(c Conn) {
			defer wg.Done()
			for {
				if _, err := c.Recv(); err != nil {
					_ = c.Close()
					return
				}
				delivered.Add(1)
			}
		}(b)
	}
	wg.Wait()
	if delivered.Load() == 0 {
		t.Fatal("no messages survived the stress run")
	}
}

// TestPipeCloseRacesSend closes both ends while senders on both sides are
// mid-flight. No assertion beyond termination: the test fails by deadlock
// (test timeout) or by the race detector.
func TestPipeCloseRacesSend(t *testing.T) {
	const rounds = 64
	for r := 0; r < rounds; r++ {
		a, b := Pipe()
		var wg sync.WaitGroup
		for _, c := range []Conn{a, b} {
			wg.Add(2)
			go func(c Conn) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if err := c.Send(stressMsg(i)); err != nil {
						return
					}
				}
			}(c)
			go func(c Conn) {
				defer wg.Done()
				_ = c.Close()
			}(c)
		}
		wg.Wait()
	}
}

// TestTCPConcurrentStress runs many concurrent clients against one
// listener with an echo server per connection, exercising the framed
// send/recv mutexes and concurrent Close.
func TestTCPConcurrentStress(t *testing.T) {
	const clients = 24
	const msgs = 20
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var serverWG sync.WaitGroup
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			serverWG.Add(1)
			go func(c Conn) {
				defer serverWG.Done()
				defer c.Close()
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(m); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	var clientWG sync.WaitGroup
	var echoed atomic.Int64
	for i := 0; i < clients; i++ {
		clientWG.Add(1)
		go func(id int) {
			defer clientWG.Done()
			c, err := DialTCP(l.Addr())
			if err != nil {
				t.Errorf("client %d dial: %v", id, err)
				return
			}
			defer c.Close()
			for j := 0; j < msgs; j++ {
				if err := c.Send(stressMsg(id)); err != nil {
					t.Errorf("client %d send: %v", id, err)
					return
				}
				m, err := c.Recv()
				if err != nil {
					t.Errorf("client %d recv: %v", id, err)
					return
				}
				if m.Hello == nil || m.Hello.VehicleID != id {
					t.Errorf("client %d got foreign echo %+v", id, m)
					return
				}
				echoed.Add(1)
			}
		}(i)
	}
	clientWG.Wait()
	if got, want := echoed.Load(), int64(clients*msgs); got != want {
		t.Errorf("echoed %d messages, want %d", got, want)
	}
	_ = l.Close()
	serverWG.Wait()
}
