package transport

import (
	"fmt"
	"sync"
)

// PipeFabric is an in-memory network: Dial creates a Pipe pair and
// queues the server end for Accept, giving single-process fleets the
// same listener-shaped topology as TCP without any sockets. Soak tests
// drive hundreds of vehicle goroutines through one fabric.
type PipeFabric struct {
	mu     sync.Mutex // guards closed
	closed bool       // guarded by mu
	accept chan Conn
	done   chan struct{}
}

// NewPipeFabric builds a fabric whose pending-accept queue holds backlog
// connections (<= 0 selects 64, matching the pipe buffer depth).
func NewPipeFabric(backlog int) *PipeFabric {
	if backlog <= 0 {
		backlog = 64
	}
	return &PipeFabric{
		accept: make(chan Conn, backlog),
		done:   make(chan struct{}),
	}
}

// Dial opens a client connection; the server end becomes acceptable.
// It blocks only when the accept backlog is full.
func (f *PipeFabric) Dial() (Conn, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		// Checked ahead of the select below, which would otherwise pick
		// randomly between a free backlog slot and the closed signal.
		return nil, fmt.Errorf("transport: dial on closed pipe fabric")
	}
	client, server := Pipe()
	select {
	case f.accept <- server:
		return client, nil
	case <-f.done:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("transport: dial on closed pipe fabric")
	}
}

// Accept implements Listener.
func (f *PipeFabric) Accept() (Conn, error) {
	select {
	case c := <-f.accept:
		return c, nil
	case <-f.done:
		// Drain connections dialed before the close won the race.
		select {
		case c := <-f.accept:
			return c, nil
		default:
			return nil, fmt.Errorf("transport: accept on closed pipe fabric")
		}
	}
}

// Addr implements Listener; the fabric has no network address.
func (f *PipeFabric) Addr() string { return "" }

// Close implements Listener: pending and future Accepts and Dials fail.
func (f *PipeFabric) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		f.closed = true
		close(f.done)
	}
	return nil
}
