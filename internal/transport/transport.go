// Package transport carries protocol messages between the fusion centre
// and the vehicles. Two interchangeable fabrics are provided: an
// in-memory pipe for tests and single-process simulation, and TCP with
// length-prefixed framing for genuinely distributed deployments. Both
// expose the same Conn interface, so package node is fabric-agnostic.
package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/protocol"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send writes one message; it is safe for one concurrent sender.
	Send(m *protocol.Message) error
	// Recv blocks for the next message; io.EOF signals a clean close.
	Recv() (*protocol.Message, error)
	// Close releases the connection; Recv on the peer unblocks.
	Close() error
}

// Faulter is the optional fault-injection face of a fabric: SendCorrupt
// delivers m as a frame that fails the receiver's checksum, so the peer's
// Recv returns protocol.ErrCorruptFrame while the stream stays usable.
// Both built-in fabrics implement it — TCP by writing a real frame with a
// flipped CRC, the pipe by delivering a corruption marker — so the chaos
// layer (internal/chaos) exercises the genuine detection path end-to-end.
type Faulter interface {
	SendCorrupt(m *protocol.Message) error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next connection.
	Accept() (Conn, error)
	// Addr returns the listen address ("" for in-memory).
	Addr() string
	// Close stops accepting; pending Accepts unblock with an error.
	Close() error
}

// --- in-memory fabric ---

// pipeConn is one end of an in-memory duplex channel pair.
type pipeConn struct {
	in  <-chan *protocol.Message
	out chan<- *protocol.Message

	mu     sync.Mutex // guards closed
	closed bool       // guarded by mu
	done   chan struct{}
	peer   *pipeConn
}

// Pipe returns two connected in-memory ends. The internal buffer lets a
// round of messages queue without a reader, which keeps simple test
// drivers deadlock-free.
func Pipe() (Conn, Conn) {
	ab := make(chan *protocol.Message, 64)
	ba := make(chan *protocol.Message, 64)
	a := &pipeConn{in: ba, out: ab, done: make(chan struct{})}
	b := &pipeConn{in: ab, out: ba, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// corruptMarker is the in-memory stand-in for a frame that fails its
// checksum: SendCorrupt enqueues it and the receiving end's Recv
// translates it into protocol.ErrCorruptFrame, mirroring what the TCP
// fabric does with a real flipped-CRC frame.
var corruptMarker = &protocol.Message{}

// Send implements Conn.
func (c *pipeConn) Send(m *protocol.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return c.enqueue(m)
}

// SendCorrupt implements Faulter.
func (c *pipeConn) SendCorrupt(m *protocol.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return c.enqueue(corruptMarker)
}

func (c *pipeConn) enqueue(m *protocol.Message) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: send on closed pipe")
	}
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("transport: send on closed pipe")
	case <-c.peer.done:
		return fmt.Errorf("transport: peer closed")
	}
}

// Recv implements Conn.
func (c *pipeConn) Recv() (*protocol.Message, error) {
	select {
	case m := <-c.in:
		return c.deliver(m)
	case <-c.done:
		return nil, fmt.Errorf("transport: recv on closed pipe")
	case <-c.peer.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			return c.deliver(m)
		default:
			return nil, fmt.Errorf("transport: peer closed")
		}
	}
}

// deliver translates the corruption marker; honest messages pass through.
func (c *pipeConn) deliver(m *protocol.Message) (*protocol.Message, error) {
	if m == corruptMarker {
		return nil, fmt.Errorf("transport: %w", protocol.ErrCorruptFrame)
	}
	return m, nil
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

// --- TCP fabric ---

// tcpConn frames protocol messages over a net.Conn.
type tcpConn struct {
	conn    net.Conn
	sendMu  sync.Mutex // serializes frame writes on conn
	recvMu  sync.Mutex // serializes frame reads on conn
	closeMu sync.Mutex // guards closed
	closed  bool       // guarded by closeMu
}

// Send implements Conn.
func (c *tcpConn) Send(m *protocol.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return protocol.Write(c.conn, m)
}

// SendCorrupt implements Faulter: the frame goes out with a flipped
// CRC-32, so the peer detects real on-the-wire corruption.
func (c *tcpConn) SendCorrupt(m *protocol.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return protocol.WriteCorrupt(c.conn, m)
}

// Recv implements Conn.
func (c *tcpConn) Recv() (*protocol.Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return protocol.Read(c.conn)
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// tcpListener adapts net.Listener.
type tcpListener struct {
	l net.Listener
}

// ListenTCP starts a listener on addr ("127.0.0.1:0" picks a free port).
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return &tcpConn{conn: c}, nil
}

// Addr implements Listener.
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// DefaultDialTimeout bounds DialTCP: a black-holed fusion centre (packets
// silently dropped, no RST) must not hang a vehicle forever.
const DefaultDialTimeout = 10 * time.Second

// DialTCP connects to a fusion centre at addr with DefaultDialTimeout.
func DialTCP(addr string) (Conn, error) {
	return DialTCPTimeout(addr, DefaultDialTimeout)
}

// DialTCPTimeout connects to a fusion centre at addr, failing after the
// given timeout (<= 0 selects DefaultDialTimeout).
func DialTCPTimeout(addr string, timeout time.Duration) (Conn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: timeout}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &tcpConn{conn: c}, nil
}
