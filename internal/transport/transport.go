// Package transport carries protocol messages between the fusion centre
// and the vehicles. Two interchangeable fabrics are provided: an
// in-memory pipe for tests and single-process simulation, and TCP with
// length-prefixed framing for genuinely distributed deployments. Both
// expose the same Conn interface, so package node is fabric-agnostic.
package transport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send writes one message; it is safe for one concurrent sender.
	Send(m *protocol.Message) error
	// Recv blocks for the next message; io.EOF signals a clean close.
	Recv() (*protocol.Message, error)
	// Close releases the connection; Recv on the peer unblocks.
	Close() error
}

// Faulter is the optional fault-injection face of a fabric: SendCorrupt
// delivers m as a frame that fails the receiver's checksum, so the peer's
// Recv returns protocol.ErrCorruptFrame while the stream stays usable.
// Both built-in fabrics implement it — TCP by writing a real frame with a
// flipped CRC, the pipe by delivering a corruption marker — so the chaos
// layer (internal/chaos) exercises the genuine detection path end-to-end.
type Faulter interface {
	SendCorrupt(m *protocol.Message) error
}

// Flusher is the optional coalescing face of a connection: fabrics (or
// wrappers) built with a write buffer expose Flush to push pending
// frames onto the wire in one syscall. Callers that enable buffering own
// the flush barriers — see node.Server.
type Flusher interface {
	Flush() error
}

// WireVersioner is the optional negotiated-encoding face: after the
// handshake, node code raises (or pins down) the framing version so both
// ends agree on whether protocol v3 binary bodies are legal on this
// connection.
type WireVersioner interface {
	SetWireVersion(v int)
}

// Pender reports whether more input is already buffered locally, i.e. a
// Recv would return without touching the network. Relays use it to keep
// coalescing while a burst is still arriving.
type Pender interface {
	Pending() bool
}

// Flush pushes any buffered frames on c; connections without a write
// buffer report success immediately.
func Flush(c Conn) error {
	if f, ok := c.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// SetWireVersion records the negotiated protocol version on c. A no-op
// on fabrics that do not encode frames (the in-memory pipe passes
// message pointers, so every version is trivially supported).
func SetWireVersion(c Conn, v int) {
	if w, ok := c.(WireVersioner); ok {
		w.SetWireVersion(v)
	}
}

// Pending reports whether c has input already buffered locally; false
// for connections that cannot know.
func Pending(c Conn) bool {
	if p, ok := c.(Pender); ok {
		return p.Pending()
	}
	return false
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next connection.
	Accept() (Conn, error)
	// Addr returns the listen address ("" for in-memory).
	Addr() string
	// Close stops accepting; pending Accepts unblock with an error.
	Close() error
}

// --- in-memory fabric ---

// pipeConn is one end of an in-memory duplex channel pair.
type pipeConn struct {
	in  <-chan *protocol.Message
	out chan<- *protocol.Message

	mu     sync.Mutex // guards closed
	closed bool       // guarded by mu
	done   chan struct{}
	peer   *pipeConn
}

// Pipe returns two connected in-memory ends. The internal buffer lets a
// round of messages queue without a reader, which keeps simple test
// drivers deadlock-free.
func Pipe() (Conn, Conn) {
	ab := make(chan *protocol.Message, 64)
	ba := make(chan *protocol.Message, 64)
	a := &pipeConn{in: ba, out: ab, done: make(chan struct{})}
	b := &pipeConn{in: ab, out: ba, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// corruptMarker is the in-memory stand-in for a frame that fails its
// checksum: SendCorrupt enqueues it and the receiving end's Recv
// translates it into protocol.ErrCorruptFrame, mirroring what the TCP
// fabric does with a real flipped-CRC frame.
var corruptMarker = &protocol.Message{}

// Send implements Conn.
func (c *pipeConn) Send(m *protocol.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return c.enqueue(m)
}

// SendCorrupt implements Faulter.
func (c *pipeConn) SendCorrupt(m *protocol.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return c.enqueue(corruptMarker)
}

func (c *pipeConn) enqueue(m *protocol.Message) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: send on closed pipe")
	}
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("transport: send on closed pipe")
	case <-c.peer.done:
		return fmt.Errorf("transport: peer closed")
	}
}

// Recv implements Conn.
func (c *pipeConn) Recv() (*protocol.Message, error) {
	select {
	case m := <-c.in:
		return c.deliver(m)
	case <-c.done:
		return nil, fmt.Errorf("transport: recv on closed pipe")
	case <-c.peer.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			return c.deliver(m)
		default:
			return nil, fmt.Errorf("transport: peer closed")
		}
	}
}

// Pending implements Pender: a pipe knows exactly what is queued.
func (c *pipeConn) Pending() bool { return len(c.in) > 0 }

// deliver translates the corruption marker; honest messages pass through.
func (c *pipeConn) deliver(m *protocol.Message) (*protocol.Message, error) {
	if m == corruptMarker {
		return nil, fmt.Errorf("transport: %w", protocol.ErrCorruptFrame)
	}
	return m, nil
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

// --- TCP fabric ---

// Options tunes the TCP fabric. The zero value reproduces the legacy
// behaviour exactly: unbuffered writes (one syscall per Send) and
// unbuffered reads.
type Options struct {
	// WriteBuffer > 0 attaches a write buffer of that many bytes, so
	// consecutive Sends coalesce in memory until Flush (or Close) pushes
	// them out as one write. Callers that enable it own the flush
	// barriers; an unflushed frame is never delivered.
	WriteBuffer int
	// ReadBuffer > 0 attaches a read buffer, which additionally makes
	// Pending meaningful: a relay can tell whether the next frame is
	// already in memory and keep coalescing its forwarded burst.
	ReadBuffer int
}

// tcpConn frames protocol messages over a net.Conn.
type tcpConn struct {
	conn    net.Conn
	version atomic.Int32 // negotiated wire version for framing (starts at 2)
	sendMu  sync.Mutex   // serializes frame writes on conn
	// bw is nil when unbuffered. The pointer is set once at construction
	// and never reassigned; the buffer's mutable state is only touched
	// under sendMu (Send/SendCorrupt/Flush) or best-effort in Close.
	bw     *bufio.Writer
	recvMu sync.Mutex // serializes frame reads on conn
	// br is nil when unbuffered; set once at construction, state touched
	// under recvMu (Recv/Pending).
	br      *bufio.Reader
	closeMu sync.Mutex // guards closed
	closed  bool       // guarded by closeMu
}

func newTCPConn(c net.Conn, opts Options) *tcpConn {
	t := &tcpConn{conn: c}
	// Until the Hello/Setup handshake negotiates otherwise, frame at the
	// JSON-only revision 2 that every peer accepts.
	t.version.Store(2)
	if opts.WriteBuffer > 0 {
		t.bw = bufio.NewWriterSize(c, opts.WriteBuffer)
	}
	if opts.ReadBuffer > 0 {
		t.br = bufio.NewReaderSize(c, opts.ReadBuffer)
	}
	return t
}

// writer returns the frame destination; callers hold sendMu.
func (c *tcpConn) writer() io.Writer {
	if c.bw != nil {
		return c.bw
	}
	return c.conn
}

// reader returns the frame source; callers hold recvMu.
func (c *tcpConn) reader() io.Reader {
	if c.br != nil {
		return c.br
	}
	return c.conn
}

// SetWireVersion implements WireVersioner: subsequent Sends may frame
// bulk messages in the v3 binary encoding when v >= 3. Only the send
// side is governed — Recv always accepts every revision this build
// understands (liberal in what we accept), which also keeps a Recv
// already blocked across a mid-session negotiation correct.
func (c *tcpConn) SetWireVersion(v int) { c.version.Store(int32(v)) }

// Send implements Conn.
func (c *tcpConn) Send(m *protocol.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return protocol.WriteVersion(c.writer(), m, int(c.version.Load()))
}

// SendCorrupt implements Faulter: the frame goes out with a flipped
// CRC-32, so the peer detects real on-the-wire corruption.
func (c *tcpConn) SendCorrupt(m *protocol.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return protocol.WriteCorrupt(c.writer(), m)
}

// Flush implements Flusher.
func (c *tcpConn) Flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.bw == nil {
		return nil
	}
	return c.bw.Flush()
}

// Recv implements Conn.
func (c *tcpConn) Recv() (*protocol.Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return protocol.Read(c.reader())
}

// Pending implements Pender.
func (c *tcpConn) Pending() bool {
	if c.br == nil {
		return false
	}
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return c.br.Buffered() > 0
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.bw != nil && c.sendMu.TryLock() {
		// Best-effort flush of buffered frames. TryLock, not Lock: Close
		// must stay able to interrupt a sender blocked on a stuck socket,
		// which would otherwise hold sendMu forever.
		_ = c.bw.Flush()
		c.sendMu.Unlock()
	}
	return c.conn.Close()
}

// tcpListener adapts net.Listener.
type tcpListener struct {
	l    net.Listener
	opts Options
}

// ListenTCP starts a listener on addr ("127.0.0.1:0" picks a free port).
func ListenTCP(addr string) (Listener, error) {
	return ListenTCPOptions(addr, Options{})
}

// ListenTCPOptions starts a listener whose accepted connections carry
// the given buffering options.
func ListenTCPOptions(addr string, opts Options) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l, opts: opts}, nil
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return newTCPConn(c, t.opts), nil
}

// Addr implements Listener.
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// DefaultDialTimeout bounds DialTCP: a black-holed fusion centre (packets
// silently dropped, no RST) must not hang a vehicle forever.
const DefaultDialTimeout = 10 * time.Second

// DialTCP connects to a fusion centre at addr with DefaultDialTimeout.
func DialTCP(addr string) (Conn, error) {
	return DialTCPTimeout(addr, DefaultDialTimeout)
}

// DialTCPTimeout connects to a fusion centre at addr, failing after the
// given timeout (<= 0 selects DefaultDialTimeout).
func DialTCPTimeout(addr string, timeout time.Duration) (Conn, error) {
	return DialTCPOptions(addr, timeout, Options{})
}

// DialTCPOptions connects with the given timeout (<= 0 selects
// DefaultDialTimeout) and buffering options.
func DialTCPOptions(addr string, timeout time.Duration, opts Options) (Conn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: timeout}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c, opts), nil
}
