// Package transport carries protocol messages between the fusion centre
// and the vehicles. Two interchangeable fabrics are provided: an
// in-memory pipe for tests and single-process simulation, and TCP with
// length-prefixed framing for genuinely distributed deployments. Both
// expose the same Conn interface, so package node is fabric-agnostic.
package transport

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/protocol"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send writes one message; it is safe for one concurrent sender.
	Send(m *protocol.Message) error
	// Recv blocks for the next message; io.EOF signals a clean close.
	Recv() (*protocol.Message, error)
	// Close releases the connection; Recv on the peer unblocks.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next connection.
	Accept() (Conn, error)
	// Addr returns the listen address ("" for in-memory).
	Addr() string
	// Close stops accepting; pending Accepts unblock with an error.
	Close() error
}

// --- in-memory fabric ---

// pipeConn is one end of an in-memory duplex channel pair.
type pipeConn struct {
	in  <-chan *protocol.Message
	out chan<- *protocol.Message

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	peer   *pipeConn
}

// Pipe returns two connected in-memory ends. The internal buffer lets a
// round of messages queue without a reader, which keeps simple test
// drivers deadlock-free.
func Pipe() (Conn, Conn) {
	ab := make(chan *protocol.Message, 64)
	ba := make(chan *protocol.Message, 64)
	a := &pipeConn{in: ba, out: ab, done: make(chan struct{})}
	b := &pipeConn{in: ab, out: ba, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (c *pipeConn) Send(m *protocol.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: send on closed pipe")
	}
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("transport: send on closed pipe")
	case <-c.peer.done:
		return fmt.Errorf("transport: peer closed")
	}
}

// Recv implements Conn.
func (c *pipeConn) Recv() (*protocol.Message, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		return nil, fmt.Errorf("transport: recv on closed pipe")
	case <-c.peer.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, fmt.Errorf("transport: peer closed")
		}
	}
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

// --- TCP fabric ---

// tcpConn frames protocol messages over a net.Conn.
type tcpConn struct {
	conn    net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	closeMu sync.Mutex
	closed  bool
}

// Send implements Conn.
func (c *tcpConn) Send(m *protocol.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return protocol.Write(c.conn, m)
}

// Recv implements Conn.
func (c *tcpConn) Recv() (*protocol.Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return protocol.Read(c.conn)
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// tcpListener adapts net.Listener.
type tcpListener struct {
	l net.Listener
}

// ListenTCP starts a listener on addr ("127.0.0.1:0" picks a free port).
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return &tcpConn{conn: c}, nil
}

// Addr implements Listener.
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// DialTCP connects to a fusion centre at addr.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &tcpConn{conn: c}, nil
}
