package transport

import (
	"testing"
	"time"

	"repro/internal/protocol"
)

// bufferedPair dials a loopback TCP connection with the given options on
// both ends, returning (client, server).
func bufferedPair(t *testing.T, opts Options) (Conn, Conn) {
	t.Helper()
	l, err := ListenTCPOptions("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := DialTCPOptions(l.Addr(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server := <-accepted:
		t.Cleanup(func() { server.Close() })
		return client, server
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

// TestBufferedCoalesceAndPending exercises the opt-in buffered fabric:
// two Sends coalesce into the write buffer until Flush pushes them out
// as one write, after which the receiver sees the second frame as
// locally Pending once it has read the first.
func TestBufferedCoalesceAndPending(t *testing.T) {
	client, server := bufferedPair(t, Options{WriteBuffer: 64 << 10, ReadBuffer: 64 << 10})
	SetWireVersion(client, protocol.Version)

	m1 := &protocol.Message{Broadcast: &protocol.Broadcast{Round: 1, Params: []float64{1, 2, 3}}}
	m2 := &protocol.Message{Upload: &protocol.Upload{Round: 1, VehicleID: 7, Values: []float64{4, 5}}}
	if err := client.Send(m1); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(m2); err != nil {
		t.Fatal(err)
	}
	if err := Flush(client); err != nil {
		t.Fatal(err)
	}
	got1, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got1.Broadcast == nil || got1.Broadcast.Round != 1 {
		t.Fatalf("first message: %+v", got1)
	}
	// Both frames left in one flush (single loopback write), so after the
	// first Recv the second frame sits in the read buffer.
	if !Pending(server) {
		t.Error("second coalesced frame not pending after first Recv")
	}
	got2, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got2.Upload == nil || got2.Upload.VehicleID != 7 {
		t.Fatalf("second message: %+v", got2)
	}
}

// TestUnbufferedOptionalFaces pins the degenerate behaviour of the
// optional faces on an unbuffered connection and on the pipe fabric:
// Flush succeeds as a no-op, Pending is false (a pipe with queued input
// reports true), and SetWireVersion is accepted everywhere.
func TestUnbufferedOptionalFaces(t *testing.T) {
	client, server := bufferedPair(t, Options{})
	SetWireVersion(client, protocol.Version)
	if err := Flush(client); err != nil {
		t.Fatalf("unbuffered flush: %v", err)
	}
	if Pending(server) {
		t.Error("unbuffered conn reports pending input")
	}
	m := &protocol.Message{Upload: &protocol.Upload{Round: 2, VehicleID: 1, Values: []float64{9}}}
	if err := client.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Upload == nil || got.Upload.Values[0] != 9 {
		t.Fatalf("got %+v", got)
	}

	a, b := Pipe()
	SetWireVersion(a, protocol.Version) // no-op, must not panic
	if err := Flush(a); err != nil {
		t.Fatalf("pipe flush: %v", err)
	}
	if Pending(b) {
		t.Error("idle pipe reports pending input")
	}
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	if !Pending(b) {
		t.Error("pipe with a queued message reports no pending input")
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
}
