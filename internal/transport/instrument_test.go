package transport

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// obsForTest builds a full Obs (registry + tracer + manual clock) whose
// trace lands in the returned buffer. The buffer is only safe to read
// after every emitting goroutine has finished.
func obsForTest() (*obs.Obs, *obs.Registry, *bytes.Buffer) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	clk := &obs.ManualClock{}
	return obs.New(reg, obs.NewTracer(&buf, clk), clk), reg, &buf
}

func TestInstrumentDisabledReturnsOriginal(t *testing.T) {
	a, _ := Pipe()
	if got := Instrument(a, nil, "x"); got != a {
		t.Fatal("disabled Instrument wrapped the connection")
	}
}

// TestInstrumentCountsTraffic checks the wrapper's three ledgers agree:
// per-connection stats, registry counters, and trace events.
func TestInstrumentCountsTraffic(t *testing.T) {
	o, reg, buf := obsForTest()
	a, b := Pipe()
	ia := Instrument(a, o, "server")
	ib := Instrument(b, o, "vehicle-0")

	const n = 5
	wantBytes := int64(0)
	for i := 0; i < n; i++ {
		m := stressMsg(i)
		wantBytes += int64(protocol.EncodedSize(m))
		if err := ia.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := ib.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	st := ia.(*instrumentedConn).Stats()
	if st.SentMsgs != n || st.SentBytes != wantBytes || st.SendErrors != 0 {
		t.Fatalf("sender stats %+v, want %d msgs / %d bytes", st, n, wantBytes)
	}
	st = ib.(*instrumentedConn).Stats()
	if st.RecvMsgs != n || st.RecvBytes != wantBytes {
		t.Fatalf("receiver stats %+v, want %d msgs / %d bytes", st, n, wantBytes)
	}
	if got := reg.Counter("transport.send_msgs").Value(); got != n {
		t.Fatalf("transport.send_msgs = %d, want %d", got, n)
	}
	if got := reg.Counter("transport.recv_bytes").Value(); got != wantBytes {
		t.Fatalf("transport.recv_bytes = %d, want %d", got, wantBytes)
	}

	// Sends fail after the local close (the peer-close race is covered by
	// the stress tests); the error counter must move and the message
	// counters must not.
	_ = ia.Close()
	if err := ia.Send(stressMsg(99)); err == nil {
		t.Fatal("send after close succeeded")
	}
	if got := reg.Counter("transport.send_errors").Value(); got != 1 {
		t.Fatalf("transport.send_errors = %d, want 1", got)
	}
	if got := reg.Counter("transport.send_msgs").Value(); got != n {
		t.Fatalf("send_msgs moved on a failed send: %d", got)
	}

	if err := o.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	var sends, recvs int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		switch rec["ev"] {
		case "transport.send":
			sends++
			if rec["peer"] != "server" || rec["kind"] != "hello" {
				t.Fatalf("send event mislabelled: %v", rec)
			}
		case "transport.recv":
			recvs++
			if rec["peer"] != "vehicle-0" {
				t.Fatalf("recv event mislabelled: %v", rec)
			}
		}
	}
	if sends != n || recvs != n {
		t.Fatalf("trace has %d sends / %d recvs, want %d each", sends, recvs, n)
	}
}

func TestInstrumentSetPeerRelabels(t *testing.T) {
	o, _, buf := obsForTest()
	a, b := Pipe()
	ia := Instrument(a, o, "conn-0")
	ia.(interface{ SetPeer(string) }).SetPeer("vehicle-7")
	if err := ia.Send(stressMsg(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := o.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"peer":"vehicle-7"`) {
		t.Fatalf("trace kept stale peer label:\n%s", buf.String())
	}
}

// TestInstrumentCloseRacesSend mirrors TestPipeCloseRacesSend with every
// end wrapped: closes race sends and recvs on both instrumented ends
// while a relabeler spins. Run under -race (scripts/check.sh does); the
// test fails by deadlock or by the race detector.
func TestInstrumentCloseRacesSend(t *testing.T) {
	o, _, _ := obsForTest()
	const rounds = 64
	for r := 0; r < rounds; r++ {
		a, b := Pipe()
		ia, ib := Instrument(a, o, "a"), Instrument(b, o, "b")
		var wg sync.WaitGroup
		for _, c := range []Conn{ia, ib} {
			wg.Add(3)
			go func(c Conn) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if err := c.Send(stressMsg(i)); err != nil {
						return
					}
				}
			}(c)
			go func(c Conn) {
				defer wg.Done()
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}(c)
			go func(c Conn) {
				defer wg.Done()
				c.(interface{ SetPeer(string) }).SetPeer("relabelled")
				_ = c.Close()
			}(c)
		}
		wg.Wait()
	}
}

// TestInstrumentConcurrentStress is TestPipeConcurrentStress over
// instrumented pairs: traffic on many connections at once, with closes
// in flight, all feeding one shared registry and tracer.
func TestInstrumentConcurrentStress(t *testing.T) {
	o, reg, _ := obsForTest()
	const pairs = 16
	const msgs = 50
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		a, b := Pipe()
		ia, ib := Instrument(a, o, "a"), Instrument(b, o, "b")
		wg.Add(2)
		go func(c Conn) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := c.Send(stressMsg(i)); err != nil {
					return
				}
			}
			_ = c.Close()
		}(ia)
		go func(c Conn) {
			defer wg.Done()
			for {
				if _, err := c.Recv(); err != nil {
					_ = c.Close()
					return
				}
				delivered.Add(1)
			}
		}(ib)
	}
	wg.Wait()
	if delivered.Load() == 0 {
		t.Fatal("no messages survived the stress run")
	}
	if got := reg.Counter("transport.recv_msgs").Value(); got != delivered.Load() {
		t.Fatalf("registry recv_msgs = %d, delivered = %d", got, delivered.Load())
	}
	if err := o.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentSetPeerRacesSend pins the relabel path specifically: a
// sender streams messages while SetPeer flips the label concurrently.
// Run under -race (scripts/check.sh does); beyond race-cleanliness,
// every emitted event must carry one of the two labels — never a torn
// or empty peer.
func TestInstrumentSetPeerRacesSend(t *testing.T) {
	o, _, buf := obsForTest()
	a, b := Pipe()
	ia := Instrument(a, o, "conn-0")
	const n = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := ia.Send(stressMsg(i)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			label := "conn-0"
			if i%2 == 1 {
				label = "vehicle-9"
			}
			ia.(interface{ SetPeer(string) }).SetPeer(label)
		}
	}()
	wg.Wait()
	if err := o.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	events := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec["ev"] != "transport.send" {
			continue
		}
		events++
		if p := rec["peer"]; p != "conn-0" && p != "vehicle-9" {
			t.Fatalf("torn peer label %v in %v", p, rec)
		}
	}
	if events != n {
		t.Fatalf("trace has %d send events, want %d", events, n)
	}
}

// TestInstrumentPropagatesTraceContext: messages carrying trace context
// get it attached to their transport.send/recv events, and context-free
// messages stay context-free (no empty trace/span keys).
func TestInstrumentPropagatesTraceContext(t *testing.T) {
	o, _, buf := obsForTest()
	a, b := Pipe()
	ia, ib := Instrument(a, o, "server"), Instrument(b, o, "vehicle-1")
	withCtx := &protocol.Message{Broadcast: &protocol.Broadcast{
		Round: 1, Params: []float64{1},
		TraceID: "00000000deadbeef", SpanID: "00000000cafef00d"}}
	without := &protocol.Message{Finished: &protocol.Finished{Rounds: 1}}
	for _, m := range []*protocol.Message{withCtx, without} {
		if err := ia.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := ib.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	var ctxEvents, plainEvents int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		switch rec["kind"] {
		case "broadcast":
			ctxEvents++
			if rec["trace"] != "00000000deadbeef" || rec["span"] != "00000000cafef00d" {
				t.Fatalf("broadcast event lost its context: %v", rec)
			}
		case "finished":
			plainEvents++
			if _, has := rec["trace"]; has {
				t.Fatalf("context-free message grew a trace field: %v", rec)
			}
		}
	}
	if ctxEvents != 2 || plainEvents != 2 {
		t.Fatalf("saw %d ctx / %d plain events, want 2 each", ctxEvents, plainEvents)
	}
}
