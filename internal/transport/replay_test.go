package transport

import (
	"sync/atomic"
	"testing"

	"repro/internal/protocol"
)

// TestReplayDeliversHeadThenStream: the wrapped connection's first Recv
// is the replayed frame, subsequent Recvs come from the live stream, and
// Pending reports the buffered head.
func TestReplayDeliversHeadThenStream(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	hello := &protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: 3, SessionID: "s0"}}
	var released atomic.Int32
	rc := Replay(hello, b, func() { released.Add(1) })
	if !Pending(rc) {
		t.Fatal("replayed head not reported as pending")
	}
	got, err := rc.Recv()
	if err != nil || got.Hello == nil || got.Hello.SessionID != "s0" {
		t.Fatalf("first recv = %+v, %v", got, err)
	}
	up := &protocol.Message{Upload: &protocol.Upload{Round: 1, VehicleID: 3, Values: []float64{1}}}
	if err := a.Send(up); err != nil {
		t.Fatal(err)
	}
	got, err = rc.Recv()
	if err != nil || got.Upload == nil || got.Upload.Round != 1 {
		t.Fatalf("second recv = %+v, %v", got, err)
	}
	// Send path passes through to the peer.
	if err := rc.Send(up); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Recv(); err != nil || m.Upload == nil {
		t.Fatalf("peer recv = %+v, %v", m, err)
	}
	// Close fires the hook exactly once, even when called twice.
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	_ = rc.Close()
	if n := released.Load(); n != 1 {
		t.Fatalf("onClose fired %d times, want 1", n)
	}
}

// TestReplayForwardsFaces: the optional connection faces reach the
// wrapped fabric through the replay wrapper.
func TestReplayForwardsFaces(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	rc := Replay(nil, b, nil)
	SetWireVersion(rc, protocol.Version) // no-op on pipes; must not panic
	if err := Flush(rc); err != nil {
		t.Fatalf("flush: %v", err)
	}
	f, ok := rc.(Faulter)
	if !ok {
		t.Fatal("replay wrapper lost the Faulter face")
	}
	if err := f.SendCorrupt(&protocol.Message{Finished: &protocol.Finished{Rounds: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err == nil {
		t.Fatal("corrupt frame delivered clean through replay wrapper")
	}
}

// TestPipeFabric: Dial/Accept hand matched ends across the in-memory
// fabric, and Close fails both sides cleanly.
func TestPipeFabric(t *testing.T) {
	f := NewPipeFabric(0)
	client, err := f.Dial()
	if err != nil {
		t.Fatal(err)
	}
	server, err := f.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(&protocol.Message{Finished: &protocol.Finished{Rounds: 2}}); err != nil {
		t.Fatal(err)
	}
	if m, err := server.Recv(); err != nil || m.Finished == nil || m.Finished.Rounds != 2 {
		t.Fatalf("fabric recv = %+v, %v", m, err)
	}
	if f.Addr() != "" {
		t.Fatalf("pipe fabric has addr %q", f.Addr())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Dial(); err == nil {
		t.Fatal("dial succeeded on closed fabric")
	}
	if _, err := f.Accept(); err == nil {
		t.Fatal("accept succeeded on closed fabric")
	}
	_ = client.Close()
	_ = server.Close()
}
