package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func hello(id int) *protocol.Message {
	return &protocol.Message{Hello: &protocol.Hello{Version: protocol.Version, VehicleID: id}}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send(hello(1)); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Hello == nil || got.Hello.VehicleID != 1 {
		t.Errorf("got %+v", got)
	}
	// And the reverse direction.
	if err := b.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil || got.Hello.VehicleID != 2 {
		t.Errorf("reverse: %+v, %v", got, err)
	}
}

func TestPipeCloseUnblocksPeer(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("recv on closed peer returned nil error")
		}
	case <-time.After(time.Second):
		t.Fatal("recv did not unblock after peer close")
	}
	if err := a.Send(hello(0)); err == nil {
		t.Error("send on closed pipe accepted")
	}
}

func TestPipeDrainAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	if err := a.Send(hello(5)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("queued message lost after close: %v", err)
	}
	if got.Hello.VehicleID != 5 {
		t.Errorf("got %+v", got)
	}
	if _, err := b.Recv(); err == nil {
		t.Error("recv past drained queue returned message")
	}
}

func TestPipeRejectsInvalidMessage(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send(&protocol.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() == "" {
		t.Error("empty listen address")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		m, err := conn.Recv()
		if err != nil {
			serverErr = err
			return
		}
		serverErr = conn.Send(&protocol.Message{Upload: &protocol.Upload{
			Round: 1, VehicleID: m.Hello.VehicleID, Values: []float64{9},
		}})
	}()

	conn, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(hello(3)); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Upload == nil || got.Upload.VehicleID != 3 || got.Upload.Values[0] != 9 {
		t.Errorf("got %+v", got)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 8
	seen := make(chan int, n)
	go func() {
		for i := 0; i < n; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				defer c.Close()
				m, err := c.Recv()
				if err != nil {
					return
				}
				seen <- m.Hello.VehicleID
			}(conn)
		}
	}()
	for i := 0; i < n; i++ {
		conn, err := DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(hello(i)); err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
	}
	got := map[int]bool{}
	for i := 0; i < n; i++ {
		select {
		case id := <-seen:
			got[id] = true
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for clients")
		}
	}
	if len(got) != n {
		t.Errorf("saw %d distinct clients, want %d", len(got), n)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port accepted")
	}
}

func TestDialTCPTimeoutConnects(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := DialTCPTimeout(l.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// A non-positive timeout falls back to the default rather than
	// meaning "no timeout".
	conn, err = DialTCPTimeout(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

// TestCorruptFramePipe pins the pipe fabric's Faulter face: the corrupted
// message surfaces as protocol.ErrCorruptFrame and the connection keeps
// working afterwards.
func TestCorruptFramePipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f, ok := a.(Faulter)
	if !ok {
		t.Fatal("pipe conn does not implement Faulter")
	}
	if err := f.SendCorrupt(hello(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); !errors.Is(err, protocol.ErrCorruptFrame) {
		t.Fatalf("corrupt pipe frame: err = %v, want ErrCorruptFrame", err)
	}
	got, err := b.Recv()
	if err != nil || got.Hello == nil || got.Hello.VehicleID != 2 {
		t.Fatalf("pipe unusable after corrupt frame: %+v, %v", got, err)
	}
}

// TestCorruptFrameTCP does the same over a real socket: the flipped CRC
// travels the wire and the receiver's checksum catches it.
func TestCorruptFrameTCP(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	conn, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var server Conn
	select {
	case server = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	defer server.Close()
	if err := conn.(Faulter).SendCorrupt(hello(7)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(hello(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); !errors.Is(err, protocol.ErrCorruptFrame) {
		t.Fatalf("corrupt TCP frame: err = %v, want ErrCorruptFrame", err)
	}
	got, err := server.Recv()
	if err != nil || got.Hello == nil || got.Hello.VehicleID != 8 {
		t.Fatalf("TCP stream desynced after corrupt frame: %+v, %v", got, err)
	}
}
