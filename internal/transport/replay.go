package transport

import (
	"fmt"
	"sync"

	"repro/internal/protocol"
)

// Replay wraps c so its next Recv returns m once before delegating to
// the underlying connection, and Close additionally invokes onClose
// exactly once (nil is allowed). Servers that pre-read a handshake frame
// to route a connection — the fleet reads Hello to pick a session — hand
// the consumed frame back this way, so downstream code (Server.Run,
// Server.Rejoin) performs its own handshake unchanged. All optional
// connection faces (Faulter, Flusher, WireVersioner, Pender, SetPeer)
// are forwarded.
func Replay(m *protocol.Message, c Conn, onClose func()) Conn {
	return &replayConn{inner: c, head: m, onClose: onClose}
}

// replayConn delivers one buffered message ahead of the wrapped stream.
type replayConn struct {
	inner Conn

	mu   sync.Mutex        // guards head
	head *protocol.Message // guarded by mu; nil once replayed

	closeOnce sync.Once
	onClose   func()
}

// Recv implements Conn: the replayed frame first, then the live stream.
func (c *replayConn) Recv() (*protocol.Message, error) {
	c.mu.Lock()
	if m := c.head; m != nil {
		c.head = nil
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	return c.inner.Recv()
}

// Send implements Conn by delegation.
func (c *replayConn) Send(m *protocol.Message) error { return c.inner.Send(m) }

// Close implements Conn; onClose fires exactly once, before the inner
// close, so budget accounting never misses a teardown path.
func (c *replayConn) Close() error {
	c.closeOnce.Do(func() {
		if c.onClose != nil {
			c.onClose()
		}
	})
	return c.inner.Close()
}

// SendCorrupt implements Faulter when the wrapped fabric does.
func (c *replayConn) SendCorrupt(m *protocol.Message) error {
	if f, ok := c.inner.(Faulter); ok {
		return f.SendCorrupt(m)
	}
	return fmt.Errorf("transport: wrapped fabric cannot corrupt frames")
}

// Flush implements Flusher by delegation.
func (c *replayConn) Flush() error { return Flush(c.inner) }

// SetWireVersion implements WireVersioner by delegation.
func (c *replayConn) SetWireVersion(v int) { SetWireVersion(c.inner, v) }

// Pending implements Pender: the replayed frame counts as buffered
// input, then the inner connection's knowledge applies.
func (c *replayConn) Pending() bool {
	c.mu.Lock()
	buffered := c.head != nil
	c.mu.Unlock()
	return buffered || Pending(c.inner)
}

// SetPeer forwards the relabeling hook of an instrumented connection.
func (c *replayConn) SetPeer(peer string) {
	if sp, ok := c.inner.(interface{ SetPeer(string) }); ok {
		sp.SetPeer(peer)
	}
}
