package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// ConnStats is a point-in-time copy of one instrumented connection's
// traffic totals.
type ConnStats struct {
	SentMsgs, SentBytes, SendErrors int64
	RecvMsgs, RecvBytes, RecvErrors int64
}

// Instrument wraps a connection with traffic accounting: registry-wide
// counters (transport.send_msgs / send_bytes / send_errors and the recv
// trio), per-connection totals (Stats), and — with tracing on — one
// transport.send / transport.recv event per message carrying the peer
// label, message kind and wire size. With a disabled Obs the original
// connection is returned untouched, so the default path pays nothing.
//
// peer is the initial label on this connection's trace events; the
// fusion centre relabels a conn once the vehicle identifies itself via
// SetPeer (node.Server type-asserts for it after the handshake).
func Instrument(c Conn, o *obs.Obs, peer string) Conn {
	if !o.Enabled() {
		return c
	}
	ic := &instrumentedConn{inner: c, o: o, peer: peer}
	ic.version.Store(2)
	ic.cSendMsgs = o.Counter("transport.send_msgs")
	ic.cSendBytes = o.Counter("transport.send_bytes")
	ic.cSendErrors = o.Counter("transport.send_errors")
	ic.cRecvMsgs = o.Counter("transport.recv_msgs")
	ic.cRecvBytes = o.Counter("transport.recv_bytes")
	ic.cRecvErrors = o.Counter("transport.recv_errors")
	return ic
}

// instrumentedConn decorates a Conn with counters and trace events. The
// concurrency contract matches the wrapped fabrics: one concurrent
// sender, one concurrent receiver, Close from anywhere — the wrapper
// itself adds only atomics and a mutex-guarded peer label, so it stays
// race-clean under close-vs-send stress (instrument_test.go).
type instrumentedConn struct {
	inner   Conn
	o       *obs.Obs
	version atomic.Int32 // mirrors the inner conn's negotiated wire version

	mu   sync.Mutex // guards peer
	peer string     // guarded by mu

	stats struct {
		sentMsgs, sentBytes, sendErrors atomic.Int64
		recvMsgs, recvBytes, recvErrors atomic.Int64
	}

	cSendMsgs, cSendBytes, cSendErrors *obs.Counter
	cRecvMsgs, cRecvBytes, cRecvErrors *obs.Counter
}

// SetPeer relabels the connection's trace events — called by the fusion
// centre once a Hello identifies which vehicle is on the other end.
func (c *instrumentedConn) SetPeer(peer string) {
	c.mu.Lock()
	c.peer = peer
	c.mu.Unlock()
}

func (c *instrumentedConn) peerLabel() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peer
}

// SetWireVersion implements WireVersioner, mirroring the version locally
// so byte accounting matches what actually goes on the wire, then
// forwarding to the wrapped fabric.
func (c *instrumentedConn) SetWireVersion(v int) {
	c.version.Store(int32(v))
	SetWireVersion(c.inner, v)
}

// Flush implements Flusher by delegation.
func (c *instrumentedConn) Flush() error { return Flush(c.inner) }

// Pending implements Pender by delegation.
func (c *instrumentedConn) Pending() bool { return Pending(c.inner) }

// SendCorrupt implements Faulter when the wrapped fabric does; corrupted
// frames are JSON-encoded, so they count at the version-2 size.
func (c *instrumentedConn) SendCorrupt(m *protocol.Message) error {
	f, ok := c.inner.(Faulter)
	if !ok {
		return fmt.Errorf("transport: wrapped fabric cannot corrupt frames")
	}
	err := f.SendCorrupt(m)
	if err != nil {
		c.stats.sendErrors.Add(1)
		c.cSendErrors.Inc()
		return err
	}
	bytes := int64(protocol.EncodedSize(m))
	c.stats.sentMsgs.Add(1)
	c.stats.sentBytes.Add(bytes)
	c.cSendMsgs.Inc()
	c.cSendBytes.Add(bytes)
	return nil
}

// Stats returns the connection's traffic totals so far.
func (c *instrumentedConn) Stats() ConnStats {
	return ConnStats{
		SentMsgs:   c.stats.sentMsgs.Load(),
		SentBytes:  c.stats.sentBytes.Load(),
		SendErrors: c.stats.sendErrors.Load(),
		RecvMsgs:   c.stats.recvMsgs.Load(),
		RecvBytes:  c.stats.recvBytes.Load(),
		RecvErrors: c.stats.recvErrors.Load(),
	}
}

// Send implements Conn.
func (c *instrumentedConn) Send(m *protocol.Message) error {
	err := c.inner.Send(m)
	if err != nil {
		c.stats.sendErrors.Add(1)
		c.cSendErrors.Inc()
		return err
	}
	bytes := int64(protocol.EncodedSizeVersion(m, int(c.version.Load())))
	c.stats.sentMsgs.Add(1)
	c.stats.sentBytes.Add(bytes)
	c.cSendMsgs.Inc()
	c.cSendBytes.Add(bytes)
	if c.o.TraceEnabled() {
		c.emitMsg("transport.send", m, bytes)
	}
	return nil
}

// emitMsg records one per-message trace event, attaching the message's
// propagated trace context when it carries one so the merged timeline
// (cmd/tracereport -merge) can tie wire activity to round spans.
func (c *instrumentedConn) emitMsg(event string, m *protocol.Message, bytes int64) {
	fields := make([]obs.Field, 0, 5)
	fields = append(fields,
		obs.F("peer", c.peerLabel()),
		obs.F("kind", m.Kind()),
		obs.F("bytes", bytes))
	if trace, span := m.TraceContext(); trace != "" {
		fields = append(fields, obs.F("trace", trace))
		if span != "" {
			fields = append(fields, obs.F("span", span))
		}
	}
	c.o.Emit(event, fields...)
}

// Recv implements Conn.
func (c *instrumentedConn) Recv() (*protocol.Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		c.stats.recvErrors.Add(1)
		c.cRecvErrors.Inc()
		return nil, err
	}
	bytes := int64(protocol.EncodedSizeVersion(m, int(c.version.Load())))
	c.stats.recvMsgs.Add(1)
	c.stats.recvBytes.Add(bytes)
	c.cRecvMsgs.Inc()
	c.cRecvBytes.Add(bytes)
	if c.o.TraceEnabled() {
		c.emitMsg("transport.recv", m, bytes)
	}
	return m, nil
}

// Close implements Conn.
func (c *instrumentedConn) Close() error { return c.inner.Close() }
