package iov

import (
	"math"
	"testing"
)

func TestDefaultConfigScenario(t *testing.T) {
	s, err := NewScenario(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVehicles() != 100 {
		t.Fatalf("vehicles = %d", s.NumVehicles())
	}
	// All vehicles start inside the fusion centre's 500 m coverage.
	fc := Position{750, 750}
	for i, p := range s.Positions() {
		if p.Dist(fc) > 500 {
			t.Errorf("vehicle %d starts %g m from FC", i, p.Dist(fc))
		}
	}
	if got := s.ReachableCount(); got != 100 {
		t.Errorf("initially reachable = %d, want 100", got)
	}
}

func TestScenarioValidation(t *testing.T) {
	base := DefaultConfig(1)

	cfg := base
	cfg.NumVehicles = 0
	if _, err := NewScenario(cfg); err == nil {
		t.Error("zero vehicles accepted")
	}

	cfg = base
	cfg.AreaSize = -1
	if _, err := NewScenario(cfg); err == nil {
		t.Error("negative area accepted")
	}

	cfg = base
	cfg.MinSpeed, cfg.MaxSpeed = 10, 5
	if _, err := NewScenario(cfg); err == nil {
		t.Error("inverted speed range accepted")
	}

	cfg = base
	cfg.Stations = []Station{{ID: "RSU", Pos: Position{0, 0}, Radius: 100}}
	if _, err := NewScenario(cfg); err == nil {
		t.Error("no fusion centre accepted")
	}

	cfg = base
	cfg.Stations = []Station{
		{ID: "A", Pos: Position{0, 0}, Radius: 100, IsFusionCentre: true},
		{ID: "B", Pos: Position{1, 1}, Radius: 100, IsFusionCentre: true},
	}
	if _, err := NewScenario(cfg); err == nil {
		t.Error("two fusion centres accepted")
	}

	cfg = base
	cfg.Stations = []Station{{ID: "A", Pos: Position{0, 0}, Radius: 0, IsFusionCentre: true}}
	if _, err := NewScenario(cfg); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestStepMovesVehicles(t *testing.T) {
	s, err := NewScenario(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Positions()
	s.Step()
	after := s.Positions()
	moved := 0
	cfg := DefaultConfig(2)
	for i := range before {
		d := before[i].Dist(after[i])
		if d > 0 {
			moved++
		}
		if d > cfg.MaxSpeed+1e-9 {
			t.Errorf("vehicle %d moved %g m in one round (max %g)", i, d, cfg.MaxSpeed)
		}
	}
	if moved < 95 {
		t.Errorf("only %d vehicles moved", moved)
	}
	if s.Round() != 1 {
		t.Errorf("round = %d", s.Round())
	}
}

func TestVehiclesStayInArea(t *testing.T) {
	cfg := DefaultConfig(3)
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 300; r++ {
		s.Step()
		for i, p := range s.Positions() {
			if p.X < -1e-9 || p.Y < -1e-9 || p.X > cfg.AreaSize+1e-9 || p.Y > cfg.AreaSize+1e-9 {
				t.Fatalf("round %d: vehicle %d left the area: %+v", r, i, p)
			}
		}
	}
}

func TestAssociationsAndHandover(t *testing.T) {
	cfg := DefaultConfig(4)
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After enough mobility, some vehicles should be served by relays and
	// association should remain consistent with geometry.
	relayedSeen := false
	for r := 0; r < 200; r++ {
		s.Step()
		assocs := s.Associations()
		for i, a := range assocs {
			if !a.Reachable {
				continue
			}
			if a.Relayed {
				relayedSeen = true
			}
			// The reported station must actually cover the vehicle.
			var st *Station
			for j := range cfg.Stations {
				if cfg.Stations[j].ID == a.StationID {
					st = &cfg.Stations[j]
				}
			}
			if st == nil {
				t.Fatalf("unknown station %q", a.StationID)
			}
			if d := s.Positions()[i].Dist(st.Pos); d > st.Radius+1e-9 {
				t.Fatalf("vehicle %d associated to %s at distance %g > radius %g", i, st.ID, d, st.Radius)
			}
		}
	}
	if !relayedSeen {
		t.Error("no vehicle was ever served by a relay RSU in 200 rounds")
	}
}

func TestDeterministicScenario(t *testing.T) {
	a, _ := NewScenario(DefaultConfig(5))
	b, _ := NewScenario(DefaultConfig(5))
	for r := 0; r < 50; r++ {
		a.Step()
		b.Step()
	}
	pa, pb := a.Positions(), b.Positions()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPositionDist(t *testing.T) {
	if got := (Position{0, 0}).Dist(Position{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %g", got)
	}
}

func TestCoverageChannel(t *testing.T) {
	s, err := NewScenario(DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCoverageChannel(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoverageChannel(nil, nil); err == nil {
		t.Error("nil scenario accepted")
	}
	if cc.Name() != "coverage(perfect)" {
		t.Errorf("Name = %q", cc.Name())
	}
	// Initially everyone is inside the fusion centre's coverage.
	if got := cc.ReachableCount(); got != 100 {
		t.Errorf("initial reachable = %d", got)
	}
	r := cc.Transmit(0, 1.5)
	if r.Dropped || r.Value != 1.5 {
		t.Errorf("in-coverage transmit = %+v", r)
	}
	if got := cc.Transmit(-1, 1); !got.Dropped {
		t.Error("out-of-range vehicle not dropped")
	}
	// Advance mobility until someone leaves coverage; their transmissions
	// must drop while reachable vehicles still pass.
	rounds := 0
	for cc.ReachableCount() == 100 && rounds < 500 {
		cc.RoundStart()
		rounds++
	}
	if cc.ReachableCount() == 100 {
		t.Skip("no vehicle left coverage within 500 rounds (unusual seed)")
	}
	var dropped, passed bool
	for i := 0; i < 100; i++ {
		r := cc.Transmit(i, 2)
		if r.Dropped {
			dropped = true
		} else {
			passed = true
			if r.Value != 2 {
				t.Errorf("value perturbed by perfect inner channel: %g", r.Value)
			}
		}
	}
	if !dropped || !passed {
		t.Errorf("expected a mix of drops and passes (dropped=%v passed=%v)", dropped, passed)
	}
	if s.Round() != rounds {
		t.Errorf("RoundStart advanced %d mobility steps, scenario saw %d", rounds, s.Round())
	}
}
