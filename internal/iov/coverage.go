package iov

import (
	"fmt"

	"repro/internal/channel"
)

// CoverageChannel is a channel.Model driven by the mobility scenario:
// a vehicle outside every station's coverage this round cannot deliver
// anything (all its scalars drop — it is a straggler), and reachable
// vehicles' transmissions pass through the wrapped inner model (perfect
// when nil). It implements the optional RoundStart hook that the FL round
// engine calls once per global round, advancing the mobility simulation
// exactly one step per round.
type CoverageChannel struct {
	scenario *Scenario
	inner    channel.Model
	assoc    []Association
}

// NewCoverageChannel wraps a mobility scenario (required) and an inner
// channel model (nil = perfect radio inside coverage).
func NewCoverageChannel(s *Scenario, inner channel.Model) (*CoverageChannel, error) {
	if s == nil {
		return nil, fmt.Errorf("iov: mobility scenario required")
	}
	if inner == nil {
		inner = channel.Perfect{}
	}
	return &CoverageChannel{
		scenario: s,
		inner:    inner,
		assoc:    s.Associations(),
	}, nil
}

// Name implements channel.Model.
func (c *CoverageChannel) Name() string {
	return "coverage(" + c.inner.Name() + ")"
}

// RoundStart advances the mobility simulation one step and refreshes the
// association table; the FL round engine calls it once per global round.
func (c *CoverageChannel) RoundStart() {
	c.scenario.Step()
	c.assoc = c.scenario.Associations()
}

// Transmit implements channel.Model: out-of-coverage vehicles drop
// everything; the rest pass through the inner model.
func (c *CoverageChannel) Transmit(vehicle int, v float64) channel.Reception {
	if vehicle < 0 || vehicle >= len(c.assoc) || !c.assoc[vehicle].Reachable {
		return channel.Reception{Dropped: true}
	}
	return c.inner.Transmit(vehicle, v)
}

// ReachableCount reports how many vehicles can currently upload.
func (c *CoverageChannel) ReachableCount() int {
	n := 0
	for _, a := range c.assoc {
		if a.Reachable {
			n++
		}
	}
	return n
}
