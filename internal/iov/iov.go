// Package iov simulates the vehicular scenario of the paper's evaluation:
// a fusion centre hosted at a base station, roadside units acting as
// relays, and vehicles moving on an urban area, attached to whichever
// station covers them (paper §VI: 100 vehicles placed randomly within the
// 500-metre coverage of a BS, switching between BSs/RSUs as they move).
//
// The simulation advances in rounds. Each round every vehicle moves by a
// random-waypoint step; a vehicle inside some station's coverage is
// reachable (its uplink result can arrive at the fusion centre, possibly
// via an RSU relay), otherwise it behaves as a straggler for that round.
package iov

import (
	"fmt"
	"math"
	"math/rand"
)

// Position is a planar coordinate in metres.
type Position struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two positions.
func (p Position) Dist(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Station is a base station or roadside unit with circular coverage.
type Station struct {
	// ID names the station in association reports.
	ID string
	// Pos is the station location.
	Pos Position
	// Radius is the coverage radius in metres (the paper uses 500 m).
	Radius float64
	// IsFusionCentre marks the station hosting the fusion centre; the
	// others relay.
	IsFusionCentre bool
}

// Vehicle is a mobile node with random-waypoint mobility.
type Vehicle struct {
	// ID is the vehicle index.
	ID int
	// Pos is the current position.
	Pos Position

	waypoint Position
	speed    float64 // metres per round
}

// Config parameterises the scenario.
type Config struct {
	// NumVehicles is V (paper default 100).
	NumVehicles int
	// AreaSize is the side of the square simulation area in metres.
	AreaSize float64
	// Stations places the radio infrastructure; exactly one must be the
	// fusion centre.
	Stations []Station
	// MinSpeed and MaxSpeed bound per-round vehicle displacement.
	MinSpeed, MaxSpeed float64
	// Seed makes the scenario deterministic.
	Seed int64
}

// DefaultConfig reproduces the paper's setting: a 1500 m square, one
// fusion-centre BS in the centre with 500 m coverage, four relay RSUs at
// the quadrant centres, and 100 vehicles.
func DefaultConfig(seed int64) Config {
	return Config{
		NumVehicles: 100,
		AreaSize:    1500,
		Stations: []Station{
			{ID: "BS-0", Pos: Position{750, 750}, Radius: 500, IsFusionCentre: true},
			{ID: "RSU-1", Pos: Position{375, 375}, Radius: 350},
			{ID: "RSU-2", Pos: Position{1125, 375}, Radius: 350},
			{ID: "RSU-3", Pos: Position{375, 1125}, Radius: 350},
			{ID: "RSU-4", Pos: Position{1125, 1125}, Radius: 350},
		},
		MinSpeed: 5,
		MaxSpeed: 25,
		Seed:     seed,
	}
}

// Scenario is a running mobility simulation.
type Scenario struct {
	cfg      Config
	vehicles []Vehicle
	rng      *rand.Rand
	round    int
}

// NewScenario validates cfg and places the vehicles uniformly at random
// inside the fusion centre's coverage, as in the paper's setup.
func NewScenario(cfg Config) (*Scenario, error) {
	if cfg.NumVehicles <= 0 {
		return nil, fmt.Errorf("iov: vehicle count %d must be positive", cfg.NumVehicles)
	}
	if cfg.AreaSize <= 0 {
		return nil, fmt.Errorf("iov: area size %g must be positive", cfg.AreaSize)
	}
	if cfg.MinSpeed < 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("iov: invalid speed range [%g, %g]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	var fc *Station
	for i := range cfg.Stations {
		if cfg.Stations[i].IsFusionCentre {
			if fc != nil {
				return nil, fmt.Errorf("iov: more than one fusion centre")
			}
			fc = &cfg.Stations[i]
		}
		if cfg.Stations[i].Radius <= 0 {
			return nil, fmt.Errorf("iov: station %s has non-positive radius", cfg.Stations[i].ID)
		}
	}
	if fc == nil {
		return nil, fmt.Errorf("iov: no fusion centre among %d stations", len(cfg.Stations))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Scenario{cfg: cfg, rng: rng}
	for i := 0; i < cfg.NumVehicles; i++ {
		// Rejection-sample a start position inside the FC coverage.
		var pos Position
		for {
			pos = Position{
				X: fc.Pos.X + (2*rng.Float64()-1)*fc.Radius,
				Y: fc.Pos.Y + (2*rng.Float64()-1)*fc.Radius,
			}
			if pos.Dist(fc.Pos) <= fc.Radius && s.inArea(pos) {
				break
			}
		}
		v := Vehicle{ID: i, Pos: pos}
		s.assignWaypoint(&v)
		s.vehicles = append(s.vehicles, v)
	}
	return s, nil
}

func (s *Scenario) inArea(p Position) bool {
	return p.X >= 0 && p.Y >= 0 && p.X <= s.cfg.AreaSize && p.Y <= s.cfg.AreaSize
}

func (s *Scenario) assignWaypoint(v *Vehicle) {
	v.waypoint = Position{
		X: s.rng.Float64() * s.cfg.AreaSize,
		Y: s.rng.Float64() * s.cfg.AreaSize,
	}
	v.speed = s.cfg.MinSpeed + s.rng.Float64()*(s.cfg.MaxSpeed-s.cfg.MinSpeed)
}

// Round returns the number of completed mobility steps.
func (s *Scenario) Round() int { return s.round }

// NumVehicles returns V.
func (s *Scenario) NumVehicles() int { return len(s.vehicles) }

// Positions returns a copy of the current vehicle positions.
func (s *Scenario) Positions() []Position {
	out := make([]Position, len(s.vehicles))
	for i, v := range s.vehicles {
		out[i] = v.Pos
	}
	return out
}

// Step advances every vehicle one random-waypoint move.
func (s *Scenario) Step() {
	for i := range s.vehicles {
		v := &s.vehicles[i]
		d := v.Pos.Dist(v.waypoint)
		if d <= v.speed {
			v.Pos = v.waypoint
			s.assignWaypoint(v)
			continue
		}
		f := v.speed / d
		v.Pos.X += (v.waypoint.X - v.Pos.X) * f
		v.Pos.Y += (v.waypoint.Y - v.Pos.Y) * f
	}
	s.round++
}

// Association describes which station (if any) serves a vehicle this
// round.
type Association struct {
	// StationID is the serving station, empty when out of coverage.
	StationID string
	// Relayed is true when the serving station is not the fusion centre.
	Relayed bool
	// Reachable is true when some station covers the vehicle.
	Reachable bool
}

// Associations computes the per-vehicle association table: each vehicle
// attaches to the nearest station whose coverage contains it, preferring
// the fusion centre on ties.
func (s *Scenario) Associations() []Association {
	out := make([]Association, len(s.vehicles))
	for i, v := range s.vehicles {
		bestDist := math.Inf(1)
		var best *Station
		for j := range s.cfg.Stations {
			st := &s.cfg.Stations[j]
			d := v.Pos.Dist(st.Pos)
			if d > st.Radius {
				continue
			}
			if d < bestDist || (d == bestDist && st.IsFusionCentre) {
				bestDist, best = d, st
			}
		}
		if best != nil {
			out[i] = Association{
				StationID: best.ID,
				Relayed:   !best.IsFusionCentre,
				Reachable: true,
			}
		}
	}
	return out
}

// ReachableCount returns how many vehicles are currently in coverage.
func (s *Scenario) ReachableCount() int {
	n := 0
	for _, a := range s.Associations() {
		if a.Reachable {
			n++
		}
	}
	return n
}
