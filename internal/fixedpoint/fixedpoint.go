// Package fixedpoint maps real values into GF(p) and back so that the
// exact Reed–Solomon machinery can protect real-valued computations.
//
// A value x is encoded as round(x · 2^frac) interpreted as a signed
// residue: non-negative integers map to themselves, negatives to p - |v|.
// Decoding uses the symmetric representative (field.Element.Centered).
// The codec tracks the representable range and returns an error on
// overflow instead of wrapping silently, because a wrapped residue decodes
// to an unrelated value and would defeat error correction downstream.
//
// The composed LCC polynomial multiplies up to deg(C)·(M-1) encoded values
// together, so callers must budget fractional bits: the product of t
// fixed-point values carries t·frac fractional bits and must stay below
// (p-1)/2. Scale management helpers are provided for the common cases.
package fixedpoint

import (
	"fmt"
	"math"

	"repro/internal/field"
)

// Codec converts between float64 and GF(p) fixed-point residues.
// The zero value is unusable; construct with New.
type Codec struct {
	frac  uint    // fractional bits
	scale float64 // 2^frac
	// maxAbs is the largest |x| representable without leaving the
	// symmetric range (p-1)/2.
	maxAbs float64
}

// New returns a codec with the given number of fractional bits.
// frac must be in [1, 52] so that the scale is exactly representable in a
// float64 and rounding is well-defined.
func New(frac uint) (*Codec, error) {
	if frac < 1 || frac > 52 {
		return nil, fmt.Errorf("fixedpoint: fractional bits %d out of range [1, 52]", frac)
	}
	scale := math.Ldexp(1, int(frac))
	return &Codec{
		frac:  frac,
		scale: scale,
		//lint:ignore floatpurity codec construction is the float boundary: maxAbs is the real-valued range bound handed to callers
		maxAbs: float64(field.Modulus/2) / scale,
	}, nil
}

// MustNew is New for statically-known parameters; it panics on error.
func MustNew(frac uint) *Codec {
	c, err := New(frac)
	if err != nil {
		panic(err)
	}
	return c
}

// FracBits returns the number of fractional bits.
func (c *Codec) FracBits() uint { return c.frac }

// MaxAbs returns the largest representable magnitude.
func (c *Codec) MaxAbs() float64 { return c.maxAbs }

// Encode quantises x into the field. It returns an error when |x| exceeds
// the representable range or x is not finite.
func (c *Codec) Encode(x float64) (field.Element, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("fixedpoint: cannot encode non-finite value %g", x)
	}
	if math.Abs(x) > c.maxAbs {
		return 0, fmt.Errorf("fixedpoint: value %g exceeds representable range ±%g", x, c.maxAbs)
	}
	return field.NewInt64(int64(math.RoundToEven(x * c.scale))), nil
}

// Decode recovers the real value from a residue produced by Encode (or by
// field arithmetic on encoded values carrying the same scale).
func (c *Codec) Decode(e field.Element) float64 {
	return float64(e.Centered()) / c.scale
}

// DecodeScaled recovers a value whose fixed-point scale has been raised to
// times·frac bits by multiplications in the field (e.g. a degree-d
// polynomial evaluation of encoded inputs carries d·frac fractional bits).
func (c *Codec) DecodeScaled(e field.Element, times uint) float64 {
	return float64(e.Centered()) / math.Ldexp(1, int(times*c.frac))
}

// EncodeVec quantises a vector, failing on the first unrepresentable entry.
func (c *Codec) EncodeVec(xs []float64) ([]field.Element, error) {
	out := make([]field.Element, len(xs))
	for i, x := range xs {
		e, err := c.Encode(x)
		if err != nil {
			return nil, fmt.Errorf("fixedpoint: index %d: %w", i, err)
		}
		out[i] = e
	}
	return out, nil
}

// DecodeVec recovers a vector of residues at the codec's base scale.
func (c *Codec) DecodeVec(es []field.Element) []float64 {
	out := make([]float64, len(es))
	for i, e := range es {
		out[i] = c.Decode(e)
	}
	return out
}

// QuantizationError returns the worst-case absolute rounding error of a
// single Encode: half a quantum.
func (c *Codec) QuantizationError() float64 { return 0.5 / c.scale }

// HeadroomDegree returns the largest polynomial degree d such that
// evaluating a degree-d polynomial (with coefficients bounded by coefAbs
// and inputs bounded by inAbs) on encoded values stays within the
// symmetric field range. Callers size frac against this before running
// coded inference.
func (c *Codec) HeadroomDegree(coefAbs, inAbs float64) int {
	// A degree-d term contributes |coef|·|x|^d at scale (d+1)·frac bits
	// (one factor for the coefficient, d for the input powers).
	limit := float64(field.Modulus / 2)
	for d := 0; ; d++ {
		bits := float64(d+1) * float64(c.frac)
		mag := coefAbs * math.Pow(inAbs, float64(d)) * math.Pow(2, bits)
		// Sum over d+1 terms of a polynomial: bound by (d+1)·mag.
		if float64(d+1)*mag > limit {
			return d - 1
		}
		if d > 64 {
			return d // practically unbounded for these parameters
		}
	}
}
