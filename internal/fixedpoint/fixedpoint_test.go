package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []uint{0, 53, 64} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%d) accepted", bad)
		}
	}
	if _, err := New(20); err != nil {
		t.Errorf("New(20): %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := MustNew(20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64() * 100
		e, err := c.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Decode(e); math.Abs(got-x) > c.QuantizationError() {
			t.Fatalf("roundtrip %g -> %g, error > %g", x, got, c.QuantizationError())
		}
	}
}

func TestEncodeNegative(t *testing.T) {
	c := MustNew(10)
	e, err := c.Encode(-1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Decode(e); got != -1.5 {
		t.Errorf("Decode = %g, want -1.5", got)
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	c := MustNew(16)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := c.Encode(bad); err == nil {
			t.Errorf("Encode(%g) accepted", bad)
		}
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	c := MustNew(40)
	if _, err := c.Encode(c.MaxAbs() * 2); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := c.Encode(c.MaxAbs() * 0.99); err != nil {
		t.Errorf("in-range value rejected: %v", err)
	}
}

func TestFieldArithmeticCarriesScale(t *testing.T) {
	// (a + b) and (a * b) in the field must decode to the real sum and
	// product (the latter at doubled scale).
	c := MustNew(20)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := rng.Float64()*4 - 2
		b := rng.Float64()*4 - 2
		ea, err := c.Encode(a)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := c.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Decode(ea.Add(eb)); math.Abs(got-(a+b)) > 2*c.QuantizationError() {
			t.Fatalf("sum %g+%g decoded %g", a, b, got)
		}
		if got := c.DecodeScaled(ea.Mul(eb), 2); math.Abs(got-a*b) > 1e-4 {
			t.Fatalf("product %g*%g decoded %g", a, b, got)
		}
	}
}

func TestDecodeScaledPolynomialEvaluation(t *testing.T) {
	// Evaluate q(x) = 2x^2 - x + 0.5 entirely in the field with scale
	// management: encode coefficients and x at frac bits, compute
	// c2·x² + c1·x·s + c0·s² which carries 3·frac bits.
	c := MustNew(16)
	x := 0.75
	ex, _ := c.Encode(x)
	e2, _ := c.Encode(2)
	e1, _ := c.Encode(-1)
	e0, _ := c.Encode(0.5)
	s, _ := c.Encode(1) // one unit of scale

	term2 := e2.Mul(ex).Mul(ex)
	term1 := e1.Mul(ex).Mul(s)
	term0 := e0.Mul(s).Mul(s)
	sum := term2.Add(term1).Add(term0)
	want := 2*x*x - x + 0.5
	if got := c.DecodeScaled(sum, 3); math.Abs(got-want) > 1e-3 {
		t.Fatalf("poly eval decoded %g, want %g", got, want)
	}
}

func TestEncodeVecDecodeVec(t *testing.T) {
	c := MustNew(24)
	xs := []float64{0, -1, 2.5, 1e-3}
	es, err := c.EncodeVec(xs)
	if err != nil {
		t.Fatal(err)
	}
	got := c.DecodeVec(es)
	for i := range xs {
		if math.Abs(got[i]-xs[i]) > c.QuantizationError() {
			t.Errorf("vec[%d] = %g, want %g", i, got[i], xs[i])
		}
	}
	if _, err := c.EncodeVec([]float64{math.NaN()}); err == nil {
		t.Error("vec with NaN accepted")
	}
}

func TestHeadroomDegree(t *testing.T) {
	c := MustNew(16)
	d := c.HeadroomDegree(2, 2)
	if d < 1 {
		t.Fatalf("HeadroomDegree = %d, want >= 1", d)
	}
	// A degree within headroom must actually fit: largest term magnitude
	// stays below the symmetric range.
	bits := float64(d+1) * 16
	mag := 2 * math.Pow(2, float64(d)) * math.Pow(2, bits) * float64(d+1)
	if mag > float64(field.Modulus/2) {
		t.Errorf("degree %d exceeds field range", d)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	c := MustNew(30)
	f := func(raw int32) bool {
		x := float64(raw) / 1000 // range ±2.1e6, inside MaxAbs for frac=30? MaxAbs ≈ 1.07e9
		e, err := c.Encode(x)
		if err != nil {
			return false
		}
		return math.Abs(c.Decode(e)-x) <= c.QuantizationError()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAdditiveHomomorphism(t *testing.T) {
	c := MustNew(20)
	f := func(a, b int16) bool {
		x, y := float64(a)/100, float64(b)/100
		ex, err1 := c.Encode(x)
		ey, err2 := c.Encode(y)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(c.Decode(ex.Add(ey))-(x+y)) <= 2*c.QuantizationError()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
