package approx

import (
	"math"
	"testing"

	"repro/internal/poly"
)

func TestSymmetricSigmoid(t *testing.T) {
	a := SymmetricSigmoid()
	// Check against the paper's closed form (eq. 10).
	for _, x := range []float64{-3, -1, -0.5, 0, 0.5, 1, 3} {
		want := (1 - math.Exp(-x)) / (1 + math.Exp(-x))
		if got := a.F(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("F(%g) = %g, want %g", x, got, want)
		}
	}
	if a.F(0) != 0 {
		t.Error("F(0) != 0")
	}
	// Odd symmetry.
	if math.Abs(a.F(1.3)+a.F(-1.3)) > 1e-12 {
		t.Error("F not odd")
	}
	// Derivative by central differences.
	for _, x := range []float64{-2, -0.3, 0, 0.7, 2} {
		h := 1e-6
		want := (a.F(x+h) - a.F(x-h)) / (2 * h)
		if got := a.DF(x); math.Abs(got-want) > 1e-6 {
			t.Errorf("DF(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestFromPolynomial(t *testing.T) {
	p := poly.NewReal(1, 2, 3) // 1 + 2x + 3x²
	a := FromPolynomial("poly", p)
	if got := a.F(2); got != 17 {
		t.Errorf("F(2) = %g", got)
	}
	if got := a.DF(2); got != 14 { // 2 + 6x
		t.Errorf("DF(2) = %g", got)
	}
}

func TestLeastSquaresPaperSetting(t *testing.T) {
	// The paper's configuration: 21 uniform points on [-2, 2].
	act := SymmetricSigmoid()
	m := LeastSquares{SamplePoints: 21}
	prevErr := math.Inf(1)
	for _, deg := range []int{1, 3, 5, 7} {
		p, rep, err := Evaluate(m, act.F, -2, 2, deg)
		if err != nil {
			t.Fatal(err)
		}
		if p.Degree() > deg {
			t.Errorf("degree %d fit has degree %d", deg, p.Degree())
		}
		if rep.MaxError >= prevErr {
			t.Errorf("degree %d error %g did not improve on %g", deg, rep.MaxError, prevErr)
		}
		prevErr = rep.MaxError
	}
	// Degree-3 fit must be usably accurate on the working interval —
	// the paper calls this "ideal approximation accuracy".
	p, _ := m.Fit(act.F, -2, 2, 3)
	if e := p.MaxErrorOn(act.F, -2, 2, 1000); e > 0.01 {
		t.Errorf("degree-3 max error %g, want < 0.01", e)
	}
}

func TestLeastSquaresOddFunctionHasOddFit(t *testing.T) {
	// Fitting an odd function on a symmetric interval with symmetric
	// samples should produce (numerically) vanishing even coefficients.
	act := SymmetricSigmoid()
	p, err := LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		if math.Abs(p.Coeff(i)) > 1e-10 {
			t.Errorf("even coefficient %d = %g, want ~0", i, p.Coeff(i))
		}
	}
}

func TestLeastSquaresValidation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := (LeastSquares{SamplePoints: 3}).Fit(f, -1, 1, 5); err == nil {
		t.Error("underdetermined fit accepted")
	}
	if _, err := (LeastSquares{}).Fit(f, 1, -1, 2); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := (LeastSquares{}).Fit(f, -1, 1, 0); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestChebyshevNearMinimax(t *testing.T) {
	act := SymmetricSigmoid()
	for _, deg := range []int{3, 5, 7} {
		p, err := Chebyshev{}.Fit(act.F, -2, 2, deg)
		if err != nil {
			t.Fatal(err)
		}
		e := p.MaxErrorOn(act.F, -2, 2, 1000)
		// Chebyshev truncation is within a modest factor of minimax; for
		// this smooth function the errors are tiny.
		bound := []float64{0, 0, 0, 0.01, 0, 1e-3, 0, 1e-4}[deg]
		if e > bound {
			t.Errorf("degree %d Chebyshev error %g > %g", deg, e, bound)
		}
	}
}

func TestChebyshevRecoversPolynomialExactly(t *testing.T) {
	// Fitting a polynomial of degree ≤ requested must reproduce it.
	target := poly.NewReal(0.5, -1, 0, 2) // 0.5 - x + 2x³
	p, err := Chebyshev{}.Fit(target.Eval, -1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 3; i++ {
		if math.Abs(p.Coeff(i)-target.Coeff(i)) > 1e-9 {
			t.Errorf("coeff %d = %g, want %g", i, p.Coeff(i), target.Coeff(i))
		}
	}
}

func TestChebyshevValidation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := (Chebyshev{Nodes: 2}).Fit(f, -1, 1, 5); err == nil {
		t.Error("too few nodes accepted")
	}
	if _, err := (Chebyshev{}).Fit(f, 0, 0, 2); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestTaylorMatchesSeriesNearZero(t *testing.T) {
	act := SymmetricSigmoid()
	p, err := Taylor{}.Fit(act.F, -1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// tanh(x/2) = x/2 - x³/24 + x⁵/240 ...
	if math.Abs(p.Coeff(1)-0.5) > 1e-12 {
		t.Errorf("x coeff = %g, want 0.5", p.Coeff(1))
	}
	if math.Abs(p.Coeff(3)+1.0/24) > 1e-12 {
		t.Errorf("x³ coeff = %g, want %g", p.Coeff(3), -1.0/24)
	}
	if math.Abs(p.Coeff(5)-1.0/240) > 1e-12 {
		t.Errorf("x⁵ coeff = %g, want %g", p.Coeff(5), 1.0/240)
	}
	// Excellent near zero: the truncation error at x=0.5 is the x⁷ term,
	// |17/315·(1/2)⁷·0.5⁷| ≈ 3.3e-6.
	if e := p.MaxErrorOn(act.F, -0.5, 0.5, 200); e > 5e-6 {
		t.Errorf("near-zero error %g", e)
	}
}

func TestTaylorDegradesAtIntervalEnds(t *testing.T) {
	// The paper's §IV discussion: Taylor accuracy collapses away from the
	// expansion point, motivating normalisation of encoded data. At equal
	// degree, least-squares must beat Taylor in sup norm on [-2, 2].
	act := SymmetricSigmoid()
	tp, err := Taylor{}.Fit(act.F, -2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	te := tp.MaxErrorOn(act.F, -2, 2, 1000)
	le := lp.MaxErrorOn(act.F, -2, 2, 1000)
	if le >= te {
		t.Errorf("least-squares error %g not below Taylor %g", le, te)
	}
}

func TestTaylorValidation(t *testing.T) {
	if _, err := (Taylor{}).Fit(nil, -1, 1, 0); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestEvaluateReport(t *testing.T) {
	act := SymmetricSigmoid()
	_, rep, err := Evaluate(LeastSquares{SamplePoints: 21}, act.F, -2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "least-squares" || rep.Degree != 3 || rep.Lo != -2 || rep.Hi != 2 {
		t.Errorf("report metadata wrong: %+v", rep)
	}
	if rep.MaxError <= 0 || rep.MaxError > 0.05 {
		t.Errorf("report MaxError = %g", rep.MaxError)
	}
}

func TestMethodNames(t *testing.T) {
	if (LeastSquares{}).Name() != "least-squares" ||
		(Chebyshev{}).Name() != "chebyshev" ||
		(Taylor{}).Name() != "taylor" {
		t.Error("method names changed; experiment output depends on them")
	}
}
