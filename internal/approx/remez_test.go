package approx

import (
	"math"
	"testing"

	"repro/internal/poly"
)

func TestRemezBeatsOtherMethods(t *testing.T) {
	// Minimax is optimal in sup norm: it must not lose to least squares
	// or Chebyshev truncation at equal degree (ties within tolerance).
	act := SymmetricSigmoid()
	for _, deg := range []int{1, 3, 5} {
		rp, err := Remez{}.Fit(act.F, -2, 2, deg)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		re := rp.MaxErrorOn(act.F, -2, 2, 4000)
		for _, m := range []Method{LeastSquares{SamplePoints: 41}, Chebyshev{}} {
			op, err := m.Fit(act.F, -2, 2, deg)
			if err != nil {
				t.Fatal(err)
			}
			oe := op.MaxErrorOn(act.F, -2, 2, 4000)
			if re > oe*(1+1e-6) {
				t.Errorf("degree %d: remez %g worse than %s %g", deg, re, m.Name(), oe)
			}
		}
	}
}

func TestRemezEquioscillation(t *testing.T) {
	// Chebyshev's theorem: the optimal error equioscillates with deg+2
	// alternating extrema of (numerically) equal magnitude.
	f := math.Exp
	const deg = 4
	p, err := Remez{}.Fit(f, -1, 1, deg)
	if err != nil {
		t.Fatal(err)
	}
	const grid = 8000
	var extrema []float64
	prevSign := 0
	bestAbs := -1.0
	var bestVal float64
	flush := func() {
		if prevSign != 0 {
			extrema = append(extrema, bestVal)
		}
	}
	for i := 0; i <= grid; i++ {
		x := -1 + 2*float64(i)/grid
		e := p.Eval(x) - f(x)
		s := 0
		if e > 0 {
			s = 1
		} else if e < 0 {
			s = -1
		}
		if s == 0 {
			continue
		}
		if s != prevSign {
			flush()
			prevSign = s
			bestAbs = -1
		}
		if ae := math.Abs(e); ae > bestAbs {
			bestAbs = ae
			bestVal = e
		}
	}
	flush()
	if len(extrema) < deg+2 {
		t.Fatalf("only %d alternations, want >= %d", len(extrema), deg+2)
	}
	// Magnitudes of the first deg+2 alternations agree within 1%.
	var lo, hi float64 = math.Inf(1), 0
	for _, e := range extrema[:deg+2] {
		ae := math.Abs(e)
		lo = math.Min(lo, ae)
		hi = math.Max(hi, ae)
	}
	if (hi-lo)/hi > 0.01 {
		t.Errorf("extrema magnitudes not levelled: [%g, %g]", lo, hi)
	}
}

func TestRemezRecoversPolynomial(t *testing.T) {
	target := poly.NewReal(0.3, -1.2, 0, 0.7)
	p, err := Remez{}.Fit(target.Eval, -1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := p.MaxErrorOn(target.Eval, -1, 2, 1000); e > 1e-9 {
		t.Errorf("exact-degree fit error %g", e)
	}
}

func TestRemezValidation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := (Remez{}).Fit(f, 1, -1, 2); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := (Remez{}).Fit(f, -1, 1, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := (Remez{GridPoints: 4}).Fit(f, -1, 1, 3); err == nil {
		t.Error("coarse grid accepted")
	}
}

func TestRemezName(t *testing.T) {
	if (Remez{}).Name() != "remez" {
		t.Error("name changed")
	}
}
