package approx

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/poly"
)

// Remez computes the minimax (best sup-norm) polynomial approximation by
// the Remez exchange algorithm. It is the optimum the paper's Theorem 1
// guarantees exists and the yardstick the other methods are measured
// against: least-squares and Chebyshev truncation approach it within a
// small factor, Taylor does not.
type Remez struct {
	// GridPoints is the dense evaluation grid size (default 2048).
	GridPoints int
	// MaxIterations bounds the exchange loop (default 64).
	MaxIterations int
	// Tolerance stops the loop when the levelled error and the observed
	// maximum error agree to this relative precision (default 1e-10).
	Tolerance float64
}

// Name implements Method.
func (Remez) Name() string { return "remez" }

// Fit implements Method.
func (m Remez) Fit(f func(float64) float64, lo, hi float64, degree int) (poly.Real, error) {
	if err := checkFitArgs(lo, hi, degree); err != nil {
		return nil, err
	}
	grid := m.GridPoints
	if grid == 0 {
		grid = 2048
	}
	if grid < 4*(degree+2) {
		return nil, fmt.Errorf("approx: remez grid of %d too coarse for degree %d", grid, degree)
	}
	maxIter := m.MaxIterations
	if maxIter == 0 {
		maxIter = 64
	}
	tol := m.Tolerance
	if tol == 0 {
		tol = 1e-10
	}

	xs := make([]float64, grid)
	fs := make([]float64, grid)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(grid-1)
		fs[i] = f(xs[i])
	}

	// Initial reference: Chebyshev extrema of order degree+1 mapped to
	// [lo, hi] — the classical warm start.
	n := degree + 2
	ref := make([]float64, n)
	for i := 0; i < n; i++ {
		theta := math.Pi * float64(i) / float64(n-1)
		x := (lo+hi)/2 - (hi-lo)/2*math.Cos(theta)
		ref[i] = x
	}

	var best poly.Real
	for iter := 0; iter < maxIter; iter++ {
		// Solve for coefficients c_0..c_degree and the levelled error E:
		// p(x_i) + (−1)^i·E = f(x_i) on the reference.
		a := linalg.NewMatrix(n, n)
		b := make([]float64, n)
		for i, x := range ref {
			pw := 1.0
			for j := 0; j <= degree; j++ {
				a.Set(i, j, pw)
				pw *= x
			}
			sign := 1.0
			if i%2 == 1 {
				sign = -1
			}
			a.Set(i, degree+1, sign)
			b[i] = f(x)
		}
		sol, err := a.Solve(b)
		if err != nil {
			return nil, fmt.Errorf("approx: remez reference system: %w", err)
		}
		p := poly.NewReal(sol[:degree+1]...)
		levelledE := sol[degree+1]
		levelled := math.Abs(levelledE)
		best = p

		// Global maximum of |e| on the dense grid.
		var xStar, eStar float64
		maxAbs := -1.0
		for i := range xs {
			e := p.Eval(xs[i]) - fs[i]
			if ae := math.Abs(e); ae > maxAbs {
				maxAbs, xStar, eStar = ae, xs[i], e
			}
		}
		if maxAbs-levelled <= tol*(1+levelled) {
			return p, nil // reference errors already dominate: optimal
		}

		// Single-point exchange: bring x* into the reference while
		// preserving the sign alternation. The reference error signs are
		// e(ref_i) = −(−1)^i·E by construction.
		refSign := func(i int) float64 {
			s := -1.0
			if i%2 == 1 {
				s = 1
			}
			return s * levelledE
		}
		sStar := math.Signbit(eStar)
		switch {
		case levelledE == 0:
			// Degenerate levelling (symmetric f): no sign structure yet;
			// replace the reference point nearest to x*.
			nearest, bestDist := 0, math.Inf(1)
			for i, x := range ref {
				if d := math.Abs(x - xStar); d < bestDist {
					bestDist, nearest = d, i
				}
			}
			ref[nearest] = xStar
			sortRef(ref)
		case xStar < ref[0]:
			if math.Signbit(refSign(0)) == sStar {
				ref[0] = xStar
			} else {
				copy(ref[1:], ref[:n-1])
				ref[0] = xStar
			}
		case xStar > ref[n-1]:
			if math.Signbit(refSign(n-1)) == sStar {
				ref[n-1] = xStar
			} else {
				copy(ref[:n-1], ref[1:])
				ref[n-1] = xStar
			}
		default:
			// x* lies between two reference points: replace the one with
			// the matching error sign.
			i := 0
			for i < n-1 && !(xStar >= ref[i] && xStar <= ref[i+1]) {
				i++
			}
			if math.Signbit(refSign(i)) == sStar {
				ref[i] = xStar
			} else {
				ref[i+1] = xStar
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("approx: remez did not converge")
	}
	return best, nil
}

// sortRef keeps the reference ascending after a degenerate replacement.
func sortRef(ref []float64) {
	for i := 1; i < len(ref); i++ {
		for j := i; j > 0 && ref[j] < ref[j-1]; j-- {
			ref[j], ref[j-1] = ref[j-1], ref[j]
		}
	}
}
